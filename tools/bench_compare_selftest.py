#!/usr/bin/env python3
"""Self-test for bench_compare.py, run under ctest.

Exercises the exit-code contract on synthetic trajectory points:
  * identical inputs            -> exit 0
  * 2x slowdown on timing keys  -> exit 1 (regression)
  * same, with --advisory       -> exit 0
  * recall halved               -> exit 1 (higher-is-better direction)
  * batch QPS / speedup halved  -> exit 1 (higher-is-better direction)
  * merge overhead doubled      -> exit 1 (lower-is-better direction)
  * *_recall / *_precision suffixed names halved -> exit 1 (suffix wins
    over timing substrings)
  * recall-flavoured *_seconds name doubled -> exit 1 (still a timing)
  * *_recovery_seconds doubled -> exit 1 (explicit lower-is-better suffix)
  * durability ops/sec halved -> exit 1 (higher-is-better direction)
  * *_p50_micros / *_p99_micros doubled -> exit 1 (SLO latency suffixes,
    lower-is-better even when the name contains a throughput substring)
  * *_burn_rate tripled -> exit 1 (error-budget burn, lower-is-better)
  * churn suite directions: mutation ops/sec and rebalance *_moves_per_sec
    halved -> exit 1 (throughputs), reader *_p99_micros doubled -> exit 1
  * legacy point (no schema_version/env, missing scalar) -> exit 0
"""

import json
import os
import subprocess
import sys
import tempfile

BASE = {
    "schema_version": 2,
    "bench": "selftest",
    "env": {"git_sha": "abc", "compiler": "gcc", "cpu_model": "cpu",
            "num_cores": 1, "governor": "performance", "os": "linux"},
    "params": {"quick": True},
    "scalars": {
        "micro_jaccard_ns": 100.0,
        "fig7_avg_index_total_seconds": 0.5,
        "fig7_overall_recall": 0.9,
        "qc_avg_candidates": 8.0,
        "query_throughput_t4_modeled_qps": 2000.0,
        "build_scaling_t4_speedup": 3.0,
        "shard_scaling_p4_merge_overhead": 0.05,
        "replay_observed_recall": 0.95,
        "replay_candidate_precision": 0.8,
        "replay_recall_estimator_seconds": 0.2,
        "durability_full_log_recovery_seconds": 0.1,
        "durability_sync_every_record_ops_per_sec": 5000.0,
        "introspection_query_p50_micros": 50.0,
        "introspection_query_p99_micros": 200.0,
        "introspection_availability_burn_rate": 0.1,
        "qps_p99_micros": 120.0,
        "signing_classic_sign_ns": 25000.0,
        "signing_superminhash_sign_large_ns": 30000.0,
        "qps_weighted_sign_ns": 40.0,
        "signing_classic_recall": 0.75,
        "churn_mutation_ops_per_sec": 8000.0,
        "churn_reader_p99_micros": 900.0,
        "churn_rebalance_moves_per_sec": 1200.0,
    },
}


def run(compare, *argv):
    proc = subprocess.run([sys.executable, compare, *argv],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def write(directory, name, report):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f)
    return path


def main():
    if len(sys.argv) != 2:
        print("usage: bench_compare_selftest.py <bench_compare.py>")
        return 2
    compare = sys.argv[1]
    failures = []

    def check(label, want_rc, got_rc, output):
        if got_rc != want_rc:
            failures.append(f"{label}: want exit {want_rc}, got {got_rc}\n"
                            f"{output}")

    with tempfile.TemporaryDirectory() as tmp:
        base = write(tmp, "base.json", BASE)

        rc, out = run(compare, base, base)
        check("identical", 0, rc, out)

        slow = json.loads(json.dumps(BASE))
        slow["scalars"]["micro_jaccard_ns"] *= 2
        slow["scalars"]["fig7_avg_index_total_seconds"] *= 2
        slow_path = write(tmp, "slow.json", slow)
        rc, out = run(compare, base, slow_path)
        check("2x slowdown", 1, rc, out)
        if "REGRESSION" not in out:
            failures.append(f"2x slowdown: no REGRESSION marker\n{out}")

        rc, out = run(compare, "--advisory", base, slow_path)
        check("advisory", 0, rc, out)

        worse_recall = json.loads(json.dumps(BASE))
        worse_recall["scalars"]["fig7_overall_recall"] = 0.4
        rc, out = run(compare, base,
                      write(tmp, "recall.json", worse_recall))
        check("recall drop", 1, rc, out)

        worse_qps = json.loads(json.dumps(BASE))
        worse_qps["scalars"]["query_throughput_t4_modeled_qps"] = 900.0
        worse_qps["scalars"]["build_scaling_t4_speedup"] = 1.2
        rc, out = run(compare, base, write(tmp, "qps.json", worse_qps))
        check("qps/speedup drop", 1, rc, out)

        worse_merge = json.loads(json.dumps(BASE))
        worse_merge["scalars"]["shard_scaling_p4_merge_overhead"] = 0.15
        rc, out = run(compare, base,
                      write(tmp, "merge.json", worse_merge))
        check("merge overhead growth", 1, rc, out)

        # Suffix precedence: a *_recall / *_precision name is
        # higher-is-better even though "recall" alone would also match as a
        # substring elsewhere in a timing-flavoured name.
        worse_observed = json.loads(json.dumps(BASE))
        worse_observed["scalars"]["replay_observed_recall"] = 0.45
        worse_observed["scalars"]["replay_candidate_precision"] = 0.4
        rc, out = run(compare, base,
                      write(tmp, "observed.json", worse_observed))
        check("observed recall/precision drop", 1, rc, out)

        # ...and a recall-flavoured timing is still lower-is-better: the
        # "seconds" substring must win when the quality suffix is absent.
        slower_oracle = json.loads(json.dumps(BASE))
        slower_oracle["scalars"]["replay_recall_estimator_seconds"] = 0.5
        rc, out = run(compare, base,
                      write(tmp, "oracle.json", slower_oracle))
        check("recall-named timing growth", 1, rc, out)

        # The durability suite's direction contract: recovery time is
        # lower-is-better by explicit suffix rule, churned ops/sec is
        # higher-is-better.
        slow_recovery = json.loads(json.dumps(BASE))
        slow_recovery["scalars"]["durability_full_log_recovery_seconds"] = 0.3
        rc, out = run(compare, base,
                      write(tmp, "recovery.json", slow_recovery))
        check("recovery time growth", 1, rc, out)

        slow_churn = json.loads(json.dumps(BASE))
        slow_churn["scalars"]["durability_sync_every_record_ops_per_sec"] = \
            2000.0
        rc, out = run(compare, base,
                      write(tmp, "churn.json", slow_churn))
        check("durable churn throughput drop", 1, rc, out)

        # The SLO suffix family: latency quantiles are lower-is-better even
        # when the key also contains a higher-is-better substring ("_qps"
        # inside qps_p99_micros), and burn rate growth is a regression.
        slow_p99 = json.loads(json.dumps(BASE))
        slow_p99["scalars"]["introspection_query_p50_micros"] = 100.0
        slow_p99["scalars"]["introspection_query_p99_micros"] = 400.0
        rc, out = run(compare, base, write(tmp, "p99.json", slow_p99))
        check("SLO latency quantile growth", 1, rc, out)

        slow_qps_p99 = json.loads(json.dumps(BASE))
        slow_qps_p99["scalars"]["qps_p99_micros"] = 240.0
        rc, out = run(compare, base,
                      write(tmp, "qps_p99.json", slow_qps_p99))
        check("p99 suffix wins over qps substring", 1, rc, out)

        burn = json.loads(json.dumps(BASE))
        burn["scalars"]["introspection_availability_burn_rate"] = 0.3
        rc, out = run(compare, base, write(tmp, "burn.json", burn))
        check("burn rate growth", 1, rc, out)

        better_burn = json.loads(json.dumps(BASE))
        better_burn["scalars"]["introspection_availability_burn_rate"] = 0.01
        rc, out = run(compare, base,
                      write(tmp, "burn_down.json", better_burn))
        check("burn rate drop is an improvement", 0, rc, out)

        # Signature-engine suffix rule: *_sign_ns is lower-is-better even
        # when the key also carries a higher-is-better substring ("_qps"
        # inside qps_weighted_sign_ns), and the per-family ablation recall
        # keeps the quality direction despite the "signing_" timing prefix.
        slow_sign = json.loads(json.dumps(BASE))
        slow_sign["scalars"]["signing_classic_sign_ns"] = 60000.0
        slow_sign["scalars"]["signing_superminhash_sign_large_ns"] = 90000.0
        rc, out = run(compare, base, write(tmp, "sign.json", slow_sign))
        check("sign ns growth", 1, rc, out)

        slow_qps_sign = json.loads(json.dumps(BASE))
        slow_qps_sign["scalars"]["qps_weighted_sign_ns"] = 100.0
        rc, out = run(compare, base,
                      write(tmp, "qps_sign.json", slow_qps_sign))
        check("sign_ns suffix wins over qps substring", 1, rc, out)

        worse_fam_recall = json.loads(json.dumps(BASE))
        worse_fam_recall["scalars"]["signing_classic_recall"] = 0.3
        rc, out = run(compare, base,
                      write(tmp, "fam_recall.json", worse_fam_recall))
        check("family ablation recall drop", 1, rc, out)

        # Churn suite direction contract: both rates are throughputs
        # (higher-is-better — _moves_per_sec by explicit suffix, since no
        # generic substring matches it), the reader quantile rides the
        # existing *_p99_micros latency suffix.
        slow_mutate = json.loads(json.dumps(BASE))
        slow_mutate["scalars"]["churn_mutation_ops_per_sec"] = 3000.0
        slow_mutate["scalars"]["churn_rebalance_moves_per_sec"] = 400.0
        rc, out = run(compare, base,
                      write(tmp, "mutate.json", slow_mutate))
        check("churn throughput drop", 1, rc, out)

        slow_reader = json.loads(json.dumps(BASE))
        slow_reader["scalars"]["churn_reader_p99_micros"] = 2500.0
        rc, out = run(compare, base,
                      write(tmp, "reader.json", slow_reader))
        check("churn reader p99 growth", 1, rc, out)

        faster_moves = json.loads(json.dumps(BASE))
        faster_moves["scalars"]["churn_rebalance_moves_per_sec"] = 3000.0
        rc, out = run(compare, base,
                      write(tmp, "moves_up.json", faster_moves))
        check("rebalance rate gain is an improvement", 0, rc, out)

        faster_sign = json.loads(json.dumps(BASE))
        faster_sign["scalars"]["signing_classic_sign_ns"] = 6000.0
        rc, out = run(compare, base,
                      write(tmp, "sign_down.json", faster_sign))
        check("sign ns drop is an improvement", 0, rc, out)

        legacy = {"bench": "selftest",
                  "scalars": {"micro_jaccard_ns": 101.0}}
        rc, out = run(compare, write(tmp, "legacy.json", legacy), base)
        check("legacy point", 0, rc, out)
        if "no schema_version" not in out:
            failures.append(f"legacy point: missing pre-v2 note\n{out}")

    if failures:
        print("bench_compare_selftest FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("bench_compare_selftest OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
