#!/usr/bin/env python3
"""Lint a Prometheus text exposition (version 0.0.4) read from stdin or a
file. The CI smoke job pipes `curl /metrics` through this, so a process
that starts serving malformed exposition fails the build even when no C++
test happened to catch it. The checks mirror obs::ValidateExposition (the
C++ validator the benchrunner and tests use):

  * metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]* on HELP/TYPE/sample lines
  * well-formed `# HELP` / `# TYPE` comments, no duplicates per metric,
    TYPE before the first sample of its metric
  * sample label syntax, duplicate label names, duplicate series
  * values parseable as floats (+Inf/-Inf/NaN allowed)
  * histogram families: `le` buckets ascending and cumulative,
    an `le="+Inf"` bucket, `_sum`/`_count` present, and `_count` equal to
    the +Inf bucket — an inequality means the exporter tore the family
    mid-mutation, exactly the race the snapshot-consistent renderer exists
    to prevent
  * the document ends with a newline

Usage:
    prom_lint.py [FILE]      lint FILE (default: stdin); exit 1 on issues
    prom_lint.py --selftest  run the built-in cases; exit 1 on failure
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def parse_float(text):
    t = text.strip()
    if t in ("+Inf", "Inf"):
        return math.inf
    if t == "-Inf":
        return -math.inf
    try:
        return float(t)
    except ValueError:
        return None


def split_labels(body, line, issues):
    """Parses `name1="v1",name2="v2"` (the text between braces). Returns a
    sorted canonical list of (name, value) or None after reporting."""
    labels = []
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            issues.append((line, "label missing '='"))
            return None
        name = body[i:eq].strip().lstrip(",").strip()
        if not LABEL_NAME_RE.match(name):
            issues.append((line, f"bad label name '{name}'"))
            return None
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            issues.append((line, f"label '{name}' value not quoted"))
            return None
        j = eq + 2
        value = []
        while j < len(body):
            c = body[j]
            if c == "\\":
                if j + 1 >= len(body) or body[j + 1] not in ('\\', '"', "n"):
                    issues.append((line, f"bad escape in label '{name}'"))
                    return None
                value.append("\n" if body[j + 1] == "n" else body[j + 1])
                j += 2
            elif c == '"':
                break
            else:
                value.append(c)
                j += 1
        else:
            issues.append((line, f"unterminated value for label '{name}'"))
            return None
        if name in (n for n, _ in labels):
            issues.append((line, f"duplicate label '{name}'"))
            return None
        labels.append((name, "".join(value)))
        i = j + 1
    return sorted(labels)


def lint(text):
    """Returns a list of (line_number, message); empty means conformant.
    Line 0 carries document-level issues."""
    issues = []
    if text and not text.endswith("\n"):
        issues.append((0, "exposition must end with a newline"))

    helped, typed = set(), {}
    seen_series = set()
    # name -> {canonical label key without 'le' -> [(le, value, line)]}
    buckets = {}
    sums, counts = {}, {}

    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal
            if len(parts) < 3 or not NAME_RE.match(parts[2]):
                issues.append((lineno, f"bad metric name in {parts[1]}"))
                continue
            name = parts[2]
            if parts[1] == "HELP":
                if name in helped:
                    issues.append((lineno, f"duplicate HELP for {name}"))
                helped.add(name)
            else:
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    issues.append((lineno, f"bad TYPE for {name}"))
                    continue
                if name in typed:
                    issues.append((lineno, f"duplicate TYPE for {name}"))
                typed[name] = parts[3]
            continue

        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                issues.append((lineno, "unbalanced braces"))
                continue
            name = line[:brace]
            labels = split_labels(line[brace + 1:close], lineno, issues)
            if labels is None:
                continue
            rest = line[close + 1:].split()
        else:
            fields = line.split()
            name, labels, rest = fields[0], [], fields[1:]
        if not NAME_RE.match(name):
            issues.append((lineno, f"bad metric name '{name}'"))
            continue
        if len(rest) not in (1, 2):
            issues.append((lineno, f"sample for {name} needs a value "
                           "(and at most a timestamp)"))
            continue
        value = parse_float(rest[0])
        if value is None:
            issues.append((lineno, f"unparseable value '{rest[0]}'"))
            continue
        if len(rest) == 2 and parse_float(rest[1]) is None:
            issues.append((lineno, f"unparseable timestamp '{rest[1]}'"))
            continue

        series = name + "|" + ",".join(f"{n}={v}" for n, v in labels)
        if series in seen_series:
            issues.append((lineno, f"duplicate series {name}"))
            continue
        seen_series.add(series)

        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[:-len(suffix)] if name.endswith(suffix) else None
            if stem and typed.get(stem) == "histogram":
                base = stem
                break
        if base is None and name not in typed:
            issues.append((lineno, f"sample for {name} precedes its TYPE"))
            continue

        if base is not None and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                issues.append((lineno, f"{name} missing 'le' label"))
                continue
            bound = parse_float(le)
            if bound is None:
                issues.append((lineno, f"{name} has unparseable le '{le}'"))
                continue
            key = ",".join(f"{n}={v}" for n, v in labels if n != "le")
            buckets.setdefault(base, {}).setdefault(key, []).append(
                (bound, value, lineno))
        elif base is not None and name.endswith("_sum"):
            key = ",".join(f"{n}={v}" for n, v in labels)
            sums.setdefault(base, {})[key] = (value, lineno)
        elif base is not None and name.endswith("_count"):
            key = ",".join(f"{n}={v}" for n, v in labels)
            counts.setdefault(base, {})[key] = (value, lineno)

    for base, series in buckets.items():
        for key, rows in series.items():
            last_bound, last_value = -math.inf, 0.0
            inf_value = None
            for bound, value, lineno in rows:
                if bound <= last_bound:
                    issues.append((lineno,
                                   f"{base} buckets not ascending"))
                if value < last_value:
                    issues.append((lineno,
                                   f"{base} buckets not cumulative"))
                last_bound, last_value = bound, value
                if bound == math.inf:
                    inf_value = (value, lineno)
            line = rows[-1][2]
            if inf_value is None:
                issues.append((line, f'{base} missing le="+Inf" bucket'))
                continue
            if key not in sums.get(base, {}):
                issues.append((line, f"{base} missing _sum"))
            count = counts.get(base, {}).get(key)
            if count is None:
                issues.append((line, f"{base} missing _count"))
            elif count[0] != inf_value[0]:
                issues.append((count[1],
                               f"{base} _count {count[0]:g} != +Inf bucket "
                               f"{inf_value[0]:g} (torn family)"))
    for base, series in typed.items():
        if series == "histogram" and base not in buckets:
            issues.append((0, f"histogram {base} has no _bucket samples"))
    return issues


GOOD = """\
# HELP ssr_queries_total Total queries.
# TYPE ssr_queries_total counter
ssr_queries_total 12
# TYPE ssr_latency_micros histogram
ssr_latency_micros_bucket{le="1"} 3
ssr_latency_micros_bucket{le="10"} 9
ssr_latency_micros_bucket{le="+Inf"} 12
ssr_latency_micros_sum 55
ssr_latency_micros_count 12
# TYPE ssr_live gauge
ssr_live{scope="a b"} 4.5
"""

SELFTEST_CASES = [
    ("conformant", GOOD, 0),
    ("no trailing newline", GOOD.rstrip("\n"), 1),
    ("bad metric name", "# TYPE 9bad counter\n9bad 1\n", 1),
    ("sample before TYPE", "ssr_x_total 1\n", 1),
    ("unparseable value", "# TYPE ssr_x gauge\nssr_x four\n", 1),
    ("duplicate series",
     "# TYPE ssr_x gauge\nssr_x 1\nssr_x 2\n", 1),
    ("duplicate label",
     '# TYPE ssr_x gauge\nssr_x{a="1",a="2"} 3\n', 1),
    ("torn histogram family",
     GOOD.replace("ssr_latency_micros_count 12",
                  "ssr_latency_micros_count 11"), 1),
    ("missing +Inf bucket",
     '# TYPE ssr_h histogram\nssr_h_bucket{le="1"} 1\n'
     "ssr_h_sum 1\nssr_h_count 1\n", 1),
    ("non-cumulative buckets",
     '# TYPE ssr_h histogram\nssr_h_bucket{le="1"} 5\n'
     'ssr_h_bucket{le="+Inf"} 3\nssr_h_sum 1\nssr_h_count 3\n', 1),
]


def selftest():
    failures = []
    for label, doc, want in SELFTEST_CASES:
        got = 1 if lint(doc) else 0
        if got != want:
            failures.append(f"{label}: want {'issues' if want else 'clean'},"
                            f" got {lint(doc) or 'clean'}")
    if failures:
        print("prom_lint selftest FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print(f"prom_lint selftest OK ({len(SELFTEST_CASES)} cases)")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0
    if len(argv) > 1 and argv[1] == "--selftest":
        return selftest()
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(argv) == 2:
        try:
            with open(argv[1], "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"prom_lint: cannot read {argv[1]}: {e}", file=sys.stderr)
            return 2
    else:
        text = sys.stdin.read()

    issues = lint(text)
    if issues:
        for lineno, message in issues:
            where = f"line {lineno}" if lineno else "document"
            print(f"prom_lint: {where}: {message}", file=sys.stderr)
        print(f"prom_lint: {len(issues)} issue(s)", file=sys.stderr)
        return 1
    samples = sum(1 for line in text.split("\n")
                  if line and not line.startswith("#"))
    print(f"prom_lint: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
