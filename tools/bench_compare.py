#!/usr/bin/env python3
"""Diff two benchmark-trajectory points (BENCH_<n>.json) and flag regressions.

Usage:
    bench_compare.py BASELINE.json NEW.json [--threshold=0.30] [--advisory]
                     [--keys=substr1,substr2]

Compares the numeric "scalars" shared by both reports. The direction of
"worse" is inferred from the key name: keys containing time/latency/byte-ish
substrings are lower-is-better, recall/precision are higher-is-better, and
anything unrecognized is reported but never flagged (neutral). A metric is a
regression when it moves in the bad direction by more than --threshold
(relative; default 0.30 to ride out machine noise on shared runners).

Exit status: 0 when no regressions (or --advisory), 1 on regression, 2 on
usage/input errors. Tolerates schema drift: missing "schema_version", "env",
or scalar keys in either file are reported, not fatal.
"""

import json
import sys

LOWER_IS_BETTER = (
    "second",
    "_ns",
    "_us",
    "_micros",
    "_millis",
    "latency",
    "time",
    "_io",
    "bytes",
    "pages",
    "faults",
    "_merge_overhead",
)
HIGHER_IS_BETTER = ("recall", "precision", "throughput", "_qps", "ops_per",
                    "speedup")


def direction(key):
    """-1 = lower is better, +1 = higher is better, 0 = neutral."""
    k = key.lower()
    # Quality-metric suffixes win outright: a name like
    # `replay_observed_recall` is a recall however many timing-flavoured
    # substrings it contains, while `recall_estimator_seconds` is a timing.
    # Suffix (not substring) matching keeps the two distinguishable.
    if k.endswith(("_recall", "_precision")) or k in ("recall", "precision"):
        return +1
    # Recovery time is a timing whatever else the name says: the durability
    # suite charts *_recovery_seconds and a crash-recovery slowdown must be
    # flagged even if a future name picks up a higher-is-better substring.
    if k.endswith("_recovery_seconds"):
        return -1
    # The introspection plane's SLO scalars are lower-is-better by explicit
    # suffix: windowed latency quantiles and the error-budget burn rate.
    # Suffix precedence mirrors the recall rule — `*_p99_micros` stays a
    # latency even when the name also picks up a higher-is-better substring
    # (qps_p99_micros), and `*_burn_rate` has no direction substring at all
    # without this rule.
    if k.endswith(("_p50_micros", "_p99_micros", "_burn_rate")):
        return -1
    # Signing-cost scalars from the signature-engine ablation are ns/set by
    # construction. Explicit suffix precedence so the family name can never
    # flip the direction — `signing_<family>_sign_ns` stays a timing even
    # for a hypothetical family named after a higher-is-better substring
    # (e.g. `signing_qps_weighted_sign_ns`), where substring scanning would
    # depend on list order.
    if k.endswith("_sign_ns"):
        return -1
    # The churn suite's rebalance migration rate is a throughput: fewer
    # moves per second means a live reshard holds the index in its tagged
    # mid-rebalance state for longer. Explicit suffix so the rate can never
    # be mistaken for a neutral scalar (no generic substring matches it).
    if k.endswith("_moves_per_sec"):
        return +1
    if any(s in k for s in LOWER_IS_BETTER):
        return -1
    if any(s in k for s in HIGHER_IS_BETTER):
        return +1
    return 0


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(report, dict):
        print(f"bench_compare: {path}: not a JSON object", file=sys.stderr)
        sys.exit(2)
    return report


def numeric_scalars(report):
    out = {}
    for key, value in report.get("scalars", {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def env_summary(report):
    env = report.get("env", {})
    if not isinstance(env, dict):
        return "?"
    return "{} / {} / {}".format(
        env.get("git_sha", "?"), env.get("compiler", "?"),
        env.get("cpu_model", "?"))


def main(argv):
    threshold = 0.30
    advisory = False
    key_filters = []
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            try:
                threshold = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"bench_compare: bad threshold {arg!r}", file=sys.stderr)
                return 2
        elif arg == "--advisory":
            advisory = True
        elif arg.startswith("--keys="):
            key_filters = [s for s in arg.split("=", 1)[1].split(",") if s]
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            positional.append(arg)
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base = load_report(positional[0])
    new = load_report(positional[1])

    for label, report, path in (("baseline", base, positional[0]),
                                ("new", new, positional[1])):
        version = report.get("schema_version")
        if version is None:
            print(f"note: {label} {path} has no schema_version (pre-v2)")
        print(f"{label}: bench={report.get('bench', '?')} "
              f"schema=v{version if version is not None else '?'} "
              f"env=[{env_summary(report)}]")
    base_env, new_env = env_summary(base), env_summary(new)
    if base_env != new_env and "?" not in (base_env, new_env):
        print("note: env fingerprints differ; deltas may reflect the machine, "
              "not the code")

    base_scalars = numeric_scalars(base)
    new_scalars = numeric_scalars(new)
    if key_filters:
        keep = lambda k: any(s in k for s in key_filters)  # noqa: E731
        base_scalars = {k: v for k, v in base_scalars.items() if keep(k)}
        new_scalars = {k: v for k, v in new_scalars.items() if keep(k)}

    only_base = sorted(set(base_scalars) - set(new_scalars))
    only_new = sorted(set(new_scalars) - set(base_scalars))
    if only_base:
        print(f"note: {len(only_base)} scalar(s) only in baseline: "
              f"{', '.join(only_base)}")
    if only_new:
        print(f"note: {len(only_new)} scalar(s) only in new: "
              f"{', '.join(only_new)}")

    shared = sorted(set(base_scalars) & set(new_scalars))
    if not shared:
        print("bench_compare: no shared numeric scalars to compare",
              file=sys.stderr)
        return 0 if advisory else 2

    regressions = []
    improvements = []
    print(f"\n{'metric':<34} {'baseline':>14} {'new':>14} {'delta':>9}")
    for key in shared:
        b, n = base_scalars[key], new_scalars[key]
        if b == 0.0:
            rel = 0.0 if n == 0.0 else float("inf")
        else:
            rel = (n - b) / abs(b)
        sense = direction(key)
        bad = sense != 0 and (-sense) * rel > threshold
        good = sense != 0 and sense * rel > threshold
        marker = " <-- REGRESSION" if bad else (" (improved)" if good else "")
        rel_text = f"{rel:+9.1%}" if rel != float("inf") else "     +inf"
        print(f"{key:<34} {b:>14.6g} {n:>14.6g} {rel_text}{marker}")
        if bad:
            regressions.append(key)
        elif good:
            improvements.append(key)

    print(f"\n{len(shared)} compared, {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), threshold {threshold:.0%}")
    if regressions:
        verb = "ADVISORY" if advisory else "FAIL"
        print(f"{verb}: regressions in {', '.join(regressions)}")
        return 0 if advisory else 1
    print("OK: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
