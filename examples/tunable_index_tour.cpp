// A tour of the Section 5 tunability story: the same collection indexed
// under different space budgets and recall targets, showing how the
// optimizer trades structures, tables, precision, and recall — the
// "tunable" in the paper's title.
//
// Build & run:  ./build/examples/tunable_index_tour

#include <cstdio>

#include "baseline/exact_evaluator.h"
#include "core/set_similarity_index.h"
#include "eval/metrics.h"
#include "optimizer/error_model.h"
#include "optimizer/index_builder.h"
#include "optimizer/similarity_distribution.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

int main() {
  using namespace ssr;

  const SetCollection sets = MakeDataset("set2", 0.003);  // 600 sets
  std::printf("collection: %zu sets (Set2-like web log)\n\n", sets.size());

  Rng rng(0x7007);
  SimilarityHistogram hist = ComputeSampledDistribution(sets, 40000, 100, rng);
  std::printf("similarity distribution: mass median (Eq. 15 delta) = %.3f, "
              "90th percentile = %.3f\n\n",
              hist.MassMedian(), hist.Quantile(0.9));

  EmbeddingParams embedding_params;
  embedding_params.minhash.num_hashes = 100;
  auto embedding = Embedding::Create(embedding_params);

  struct Config {
    std::size_t budget;
    double recall_target;
  };
  for (const Config config : {Config{60, 0.75}, Config{150, 0.8},
                              Config{400, 0.85}, Config{400, 0.7}}) {
    IndexBuilderOptions options;
    options.table_budget = config.budget;
    options.recall_threshold = config.recall_target;
    auto built = ConstructIndexLayout(hist, *embedding, options);
    std::printf("--- budget %zu tables, recall target %.0f%% ---\n",
                config.budget, config.recall_target * 100.0);
    if (!built.ok()) {
      std::printf("  infeasible: %s\n\n",
                  built.status().ToString().c_str());
      continue;
    }
    std::printf("  %zu filter indices, predicted recall %.1f%%, predicted "
                "precision %.1f%%\n",
                built->layout.points.size(), built->predicted_recall * 100.0,
                built->predicted_precision * 100.0);
    for (const FilterPoint& p : built->layout.points) {
      std::printf("    %s(%.3f) with %zu tables, r=%zu\n",
                  p.kind == FilterKind::kSimilarity ? "SFI" : "DFI",
                  p.similarity, p.tables, p.r);
    }

    // Measure against ground truth on a small random workload.
    SetStore store;
    for (const ElementSet& s : sets) {
      if (!store.Add(s).ok()) return 1;
    }
    IndexOptions index_options;
    index_options.embedding = embedding_params;
    auto index = SetSimilarityIndex::Build(store, built->layout,
                                           index_options);
    if (!index.ok()) return 1;
    ExactEvaluator exact(sets);
    QueryGeneratorParams qparams;
    QueryGenerator generator(sets, qparams);
    double recall = 0.0, precision = 0.0;
    const int kQueries = 60;
    for (int q = 0; q < kQueries; ++q) {
      const RangeQuery query = generator.Next();
      auto result = index->Query(sets[query.query_sid], query.sigma1,
                                 query.sigma2);
      if (!result.ok()) continue;
      recall += Recall(result->sids,
                       exact.Query(sets[query.query_sid], query.sigma1,
                                   query.sigma2));
      precision += CandidatePrecision(result->stats.results,
                                      result->stats.candidates);
    }
    std::printf("  measured over %d random queries: recall %.1f%%, "
                "precision %.1f%%\n\n",
                kQueries, recall / kQueries * 100.0,
                precision / kQueries * 100.0);
  }
  return 0;
}
