// The paper's introduction scenario (Figures 1 and 2): a bookstore tracks
// the set of books each user bought. Two capabilities are shown:
//
//   1. Recommendations: for a user u, find the users whose purchases are
//      more than 90% similar to u's — the Figure 2 query
//      "Similar(u.books_bought, books_bought) > 0.9".
//   2. Campaign targeting: for a themed sale, find users who already own
//      between 40% and 70% of the sale bundle — interested, but not
//      saturated (the paper's e-mail campaign example).
//
// Build & run:  ./build/examples/book_recommendations

#include <cstdio>
#include <string>
#include <vector>

#include "core/set_similarity_index.h"
#include "optimizer/index_builder.h"
#include "optimizer/similarity_distribution.h"
#include "util/dictionary.h"
#include "util/random.h"
#include "util/set_ops.h"

namespace {

using namespace ssr;

// Synthesizes a purchase history: genres act as browsing profiles.
struct Bookstore {
  Dictionary titles;
  SetCollection purchases;  // by user id
  std::vector<std::string> user_names;
};

Bookstore MakeBookstore(std::size_t users) {
  Bookstore shop;
  const std::vector<std::string> genres = {"databases", "sailing", "poetry",
                                           "cooking", "astronomy"};
  // 60 titles per genre.
  std::vector<std::vector<ElementId>> genre_titles(genres.size());
  for (std::size_t g = 0; g < genres.size(); ++g) {
    for (int t = 0; t < 60; ++t) {
      genre_titles[g].push_back(shop.titles.Intern(
          genres[g] + "-vol-" + std::to_string(t)));
    }
  }
  Rng rng(0xb00c5);
  for (std::size_t u = 0; u < users; ++u) {
    const std::size_t favourite = rng.Uniform(genres.size());
    ElementSet bought;
    const std::size_t count = 8 + rng.Uniform(25);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t genre =
          rng.Bernoulli(0.8) ? favourite : rng.Uniform(genres.size());
      bought.push_back(
          genre_titles[genre][rng.Uniform(genre_titles[genre].size())]);
    }
    NormalizeSet(bought);
    shop.purchases.push_back(bought);
    shop.user_names.push_back("user-" + std::to_string(u) + " (" +
                              genres[favourite] + ")");
  }
  // Clone a few users to create highly similar purchase histories.
  for (int c = 0; c < 8; ++c) {
    const std::size_t base = rng.Uniform(users);
    ElementSet clone = shop.purchases[base];
    if (!clone.empty() && rng.Bernoulli(0.7)) {
      clone[rng.Uniform(clone.size())] =
          shop.titles.Intern("bestseller-" + std::to_string(c));
      NormalizeSet(clone);
    }
    shop.purchases.push_back(clone);
    shop.user_names.push_back("user-" + std::to_string(users + c) +
                              " (twin of user-" + std::to_string(base) + ")");
  }
  return shop;
}

}  // namespace

int main() {
  Bookstore shop = MakeBookstore(600);
  std::printf("bookstore: %zu users, %zu distinct titles\n",
              shop.purchases.size(), shop.titles.size());

  // Load the store and let the Section 5 optimizer design the index from
  // the (sampled) similarity distribution.
  SetStore store;
  for (const ElementSet& bought : shop.purchases) {
    if (!store.Add(bought).ok()) return 1;
  }
  Rng rng(0xd15c);
  SimilarityHistogram hist =
      ComputeSampledDistribution(shop.purchases, 40000, 100, rng);

  EmbeddingParams embedding_params;
  embedding_params.minhash.num_hashes = 100;
  auto embedding = Embedding::Create(embedding_params);
  IndexBuilderOptions builder_options;
  builder_options.table_budget = 120;
  // Ask for the best achievable average recall: step the target down until
  // the construction accepts (the analytic model is conservative).
  Result<BuiltLayout> layout = Status::Internal("unreached");
  for (double target = 0.85; target >= 0.55; target -= 0.05) {
    builder_options.recall_threshold = target;
    layout = ConstructIndexLayout(hist, *embedding, builder_options);
    if (layout.ok()) break;
  }
  if (!layout.ok()) {
    std::printf("optimizer failed: %s\n",
                layout.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer chose %zu filter indices (predicted recall %.1f%%)\n",
              layout->layout.points.size(),
              layout->predicted_recall * 100.0);

  IndexOptions index_options;
  index_options.embedding = embedding_params;
  auto index = SetSimilarityIndex::Build(store, layout->layout,
                                         index_options);
  if (!index.ok()) return 1;

  // 1. Recommendations: users >90% similar to a twin user (the Figure 2
  //    query). Twins were injected above, so the answer is non-empty.
  const SetId target_user = 602;
  auto similar = index->Query(shop.purchases[target_user], 0.9, 1.0);
  if (!similar.ok()) return 1;
  std::printf("\nusers with purchases >90%% similar to %s:\n",
              shop.user_names[target_user].c_str());
  for (SetId sid : similar->sids) {
    if (sid == target_user) continue;
    std::printf("  %s (similarity %.2f)\n", shop.user_names[sid].c_str(),
                Jaccard(shop.purchases[sid], shop.purchases[target_user]));
  }
  if (similar->sids.size() <= 1) {
    std::printf("  (none this similar — recommend from genre neighbours "
                "instead)\n");
  }

  // 2. Campaign targeting: a "databases" sale bundle; target users whose
  //    purchases overlap the bundle moderately — interested in the topic
  //    but far from owning it all (the paper's 40-70%-of-the-sale example,
  //    expressed as a Jaccard range on the bundle).
  std::vector<std::string> bundle_titles;
  for (int t = 0; t < 12; ++t) {
    bundle_titles.push_back("databases-vol-" + std::to_string(t));
  }
  const ElementSet bundle = shop.titles.InternSet(bundle_titles);
  auto interested = index->Query(bundle, 0.12, 0.45);
  if (!interested.ok()) return 1;
  std::printf("\nsale bundle of %zu database books; users moderately "
              "overlapping it (good campaign targets): %zu users\n",
              bundle.size(), interested->sids.size());
  int shown = 0;
  for (SetId sid : interested->sids) {
    if (++shown > 5) break;
    const double owned_fraction =
        static_cast<double>(IntersectionSize(shop.purchases[sid], bundle)) /
        static_cast<double>(bundle.size());
    std::printf("  %s (owns %.0f%% of the bundle, Jaccard %.2f)\n",
                shop.user_names[sid].c_str(), 100.0 * owned_fraction,
                Jaccard(shop.purchases[sid], bundle));
  }
  std::printf("query stats: %zu candidates fetched, %.2f ms simulated I/O\n",
              interested->stats.sets_fetched,
              interested->stats.io_seconds * 1e3);
  return 0;
}
