// The paper's "what's related" scenario: treating browsing sessions as
// sets of requested URLs, use similarity range queries as the primitive of
// a simple single-linkage clustering — exactly the "clustering operation
// based on set similarity [that] could identify clusters of web pages which
// are similar but not copies of each other" the introduction motivates.
//
// The clustering is a BFS over the similarity graph: neighbours(x) =
// Query(x, [threshold, 1]). The index answers each neighbour probe without
// scanning the collection.
//
// Build & run:  ./build/examples/weblog_clustering

#include <cstdio>
#include <queue>
#include <vector>

#include "core/set_similarity_index.h"
#include "optimizer/index_builder.h"
#include "optimizer/similarity_distribution.h"
#include "util/random.h"
#include "util/set_ops.h"
#include "workload/datasets.h"

int main() {
  using namespace ssr;

  // A scaled Set1-like web log: one set of URLs per client session.
  const SetCollection sessions = MakeDataset("set1", 0.004);  // 800 sessions
  std::printf("web log: %zu sessions\n", sessions.size());

  SetStore store;
  for (const ElementSet& s : sessions) {
    if (!store.Add(s).ok()) return 1;
  }

  Rng rng(0xc105e5);
  SimilarityHistogram hist =
      ComputeSampledDistribution(sessions, 50000, 100, rng);
  EmbeddingParams embedding_params;
  embedding_params.minhash.num_hashes = 100;
  auto embedding = Embedding::Create(embedding_params);
  IndexBuilderOptions builder_options;
  builder_options.table_budget = 150;
  Result<BuiltLayout> layout = Status::Internal("unreached");
  for (double target = 0.85; target >= 0.55; target -= 0.05) {
    builder_options.recall_threshold = target;
    layout = ConstructIndexLayout(hist, *embedding, builder_options);
    if (layout.ok()) break;
  }
  if (!layout.ok()) {
    std::printf("optimizer failed: %s\n", layout.status().ToString().c_str());
    return 1;
  }
  IndexOptions index_options;
  index_options.embedding = embedding_params;
  auto index = SetSimilarityIndex::Build(store, layout->layout,
                                         index_options);
  if (!index.ok()) return 1;

  // Single-linkage clustering at threshold 0.5 via index-powered BFS.
  const double threshold = 0.5;
  std::vector<int> cluster(sessions.size(), -1);
  int num_clusters = 0;
  std::size_t probes = 0;
  for (SetId seed = 0; seed < sessions.size(); ++seed) {
    if (cluster[seed] != -1) continue;
    const int id = num_clusters++;
    std::queue<SetId> frontier;
    frontier.push(seed);
    cluster[seed] = id;
    while (!frontier.empty()) {
      const SetId current = frontier.front();
      frontier.pop();
      auto neighbours = index->Query(sessions[current], threshold, 1.0);
      ++probes;
      if (!neighbours.ok()) continue;
      for (SetId next : neighbours->sids) {
        if (cluster[next] == -1) {
          cluster[next] = id;
          frontier.push(next);
        }
      }
    }
  }

  // Report the cluster-size distribution.
  std::vector<std::size_t> sizes(num_clusters, 0);
  for (int c : cluster) sizes[static_cast<std::size_t>(c)] += 1;
  std::size_t singletons = 0, largest = 0;
  for (std::size_t s : sizes) {
    if (s == 1) ++singletons;
    if (s > largest) largest = s;
  }
  std::printf("single-linkage clusters at similarity >= %.2f:\n", threshold);
  std::printf("  %d clusters, %zu singleton sessions, largest cluster %zu "
              "sessions\n",
              num_clusters, singletons, largest);
  std::printf("  %zu similarity probes answered by the index\n", probes);

  // Show one non-trivial cluster: sessions that are similar but not equal.
  for (int c = 0; c < num_clusters; ++c) {
    if (sizes[static_cast<std::size_t>(c)] < 3 ||
        sizes[static_cast<std::size_t>(c)] > 8) {
      continue;
    }
    std::printf("\nexample cluster #%d (%zu sessions):\n", c,
                sizes[static_cast<std::size_t>(c)]);
    SetId first = kInvalidSetId;
    for (SetId sid = 0; sid < sessions.size(); ++sid) {
      if (cluster[sid] != c) continue;
      if (first == kInvalidSetId) first = sid;
      std::printf("  session %u: %zu URLs, similarity to cluster seed "
                  "%.2f\n",
                  sid, sessions[sid].size(),
                  Jaccard(sessions[sid], sessions[first]));
    }
    break;
  }
  return 0;
}
