// Quickstart: the minimal end-to-end use of the library.
//   1. Put sets into a SetStore.
//   2. Describe (or optimize) an index layout.
//   3. Build the SetSimilarityIndex.
//   4. Ask range-similarity queries.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/set_similarity_index.h"
#include "util/set_ops.h"

int main() {
  using namespace ssr;

  // 1. A tiny collection. Sets are sorted vectors of 64-bit element ids;
  //    use util/dictionary.h to map strings to ids (see the other
  //    examples).
  SetStore store;
  SetCollection sets = {
      {1, 2, 3, 4, 5},        // sid 0
      {1, 2, 3, 4, 6},        // sid 1: 4/6 similar to sid 0
      {1, 2, 3, 4, 5, 6, 7},  // sid 2
      {10, 11, 12},           // sid 3: disjoint from the others
      {10, 11, 12, 13},       // sid 4
  };
  for (ElementSet& s : sets) {
    NormalizeSet(s);
    auto sid = store.Add(s);
    if (!sid.ok()) {
      std::printf("add failed: %s\n", sid.status().ToString().c_str());
      return 1;
    }
  }

  // 2. A hand-written layout: one DFI for dissimilarity queries below 0.4,
  //    one SFI for similarity queries above it. (Production code lets the
  //    optimizer choose the layout: see tunable_index_tour.cpp.)
  IndexLayout layout;
  layout.delta = 0.4;
  layout.points = {
      {0.4, FilterKind::kDissimilarity, /*tables=*/8, /*r=*/0},
      {0.4, FilterKind::kSimilarity, /*tables=*/8, /*r=*/0},
      {0.7, FilterKind::kSimilarity, /*tables=*/8, /*r=*/0},
  };

  // 3. Build. IndexOptions controls the min-hash embedding.
  IndexOptions options;
  options.embedding.minhash.num_hashes = 100;
  auto index = SetSimilarityIndex::Build(store, layout, options);
  if (!index.ok()) {
    std::printf("build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // 4. Query: "which sets are 60%-100% similar to {1,2,3,4,5}?"
  const ElementSet query = {1, 2, 3, 4, 5};
  auto result = index->Query(query, 0.6, 1.0);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("sets 60%%-100%% similar to {1,2,3,4,5}:\n");
  for (SetId sid : result->sids) {
    std::printf("  sid %u (exact similarity %.3f)\n", sid,
                Jaccard(sets[sid], query));
  }
  std::printf("stats: %zu candidates fetched, %zu bucket accesses, "
              "%.2f ms simulated I/O\n",
              result->stats.sets_fetched, result->stats.bucket_accesses,
              result->stats.io_seconds * 1e3);

  // Dissimilarity query: "which sets are at most 10% similar?"
  auto dissimilar = index->Query(query, 0.0, 0.1);
  if (dissimilar.ok()) {
    std::printf("sets at most 10%% similar:\n");
    for (SetId sid : dissimilar->sids) {
      std::printf("  sid %u (exact similarity %.3f)\n", sid,
                  Jaccard(sets[sid], query));
    }
  }
  return 0;
}
