file(REMOVE_RECURSE
  "CMakeFiles/fig6_precision_recall.dir/fig6_precision_recall.cc.o"
  "CMakeFiles/fig6_precision_recall.dir/fig6_precision_recall.cc.o.d"
  "fig6_precision_recall"
  "fig6_precision_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
