# Empty compiler generated dependencies file for embedding_fidelity.
# This may be replaced when dependencies are built.
