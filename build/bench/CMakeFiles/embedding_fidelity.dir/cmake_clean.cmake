file(REMOVE_RECURSE
  "CMakeFiles/embedding_fidelity.dir/embedding_fidelity.cc.o"
  "CMakeFiles/embedding_fidelity.dir/embedding_fidelity.cc.o.d"
  "embedding_fidelity"
  "embedding_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
