file(REMOVE_RECURSE
  "CMakeFiles/filter_curve.dir/filter_curve.cc.o"
  "CMakeFiles/filter_curve.dir/filter_curve.cc.o.d"
  "filter_curve"
  "filter_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
