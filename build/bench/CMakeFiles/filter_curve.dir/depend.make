# Empty dependencies file for filter_curve.
# This may be replaced when dependencies are built.
