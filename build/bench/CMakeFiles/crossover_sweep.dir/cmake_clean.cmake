file(REMOVE_RECURSE
  "CMakeFiles/crossover_sweep.dir/crossover_sweep.cc.o"
  "CMakeFiles/crossover_sweep.dir/crossover_sweep.cc.o.d"
  "crossover_sweep"
  "crossover_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
