# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/minhash_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/hamming_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
