
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/dictionary_test.cc" "tests/CMakeFiles/util_test.dir/util/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/dictionary_test.cc.o.d"
  "/root/repo/tests/util/hash_test.cc" "tests/CMakeFiles/util_test.dir/util/hash_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/hash_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/util_test.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/mathutil_test.cc" "tests/CMakeFiles/util_test.dir/util/mathutil_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/mathutil_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/util_test.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/result_test.cc" "tests/CMakeFiles/util_test.dir/util/result_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/result_test.cc.o.d"
  "/root/repo/tests/util/serialize_test.cc" "tests/CMakeFiles/util_test.dir/util/serialize_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/serialize_test.cc.o.d"
  "/root/repo/tests/util/set_ops_test.cc" "tests/CMakeFiles/util_test.dir/util/set_ops_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/set_ops_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/util_test.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/status_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_hamming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_minhash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
