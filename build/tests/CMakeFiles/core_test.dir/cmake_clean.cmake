file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/bit_sampler_test.cc.o"
  "CMakeFiles/core_test.dir/core/bit_sampler_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/dfi_test.cc.o"
  "CMakeFiles/core_test.dir/core/dfi_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/filter_function_test.cc.o"
  "CMakeFiles/core_test.dir/core/filter_function_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hash_table_test.cc.o"
  "CMakeFiles/core_test.dir/core/hash_table_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/index_layout_test.cc.o"
  "CMakeFiles/core_test.dir/core/index_layout_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/index_persistence_test.cc.o"
  "CMakeFiles/core_test.dir/core/index_persistence_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/set_similarity_index_test.cc.o"
  "CMakeFiles/core_test.dir/core/set_similarity_index_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sfi_test.cc.o"
  "CMakeFiles/core_test.dir/core/sfi_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/similarity_ops_test.cc.o"
  "CMakeFiles/core_test.dir/core/similarity_ops_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
