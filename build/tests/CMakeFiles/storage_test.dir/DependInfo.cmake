
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/bplus_tree_test.cc" "tests/CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o.d"
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/heap_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "/root/repo/tests/storage/io_cost_model_test.cc" "tests/CMakeFiles/storage_test.dir/storage/io_cost_model_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/io_cost_model_test.cc.o.d"
  "/root/repo/tests/storage/page_test.cc" "tests/CMakeFiles/storage_test.dir/storage/page_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/page_test.cc.o.d"
  "/root/repo/tests/storage/persistence_test.cc" "tests/CMakeFiles/storage_test.dir/storage/persistence_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/persistence_test.cc.o.d"
  "/root/repo/tests/storage/set_store_test.cc" "tests/CMakeFiles/storage_test.dir/storage/set_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/set_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_hamming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_minhash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
