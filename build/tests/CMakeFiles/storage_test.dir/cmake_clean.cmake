file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/bplus_tree_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/io_cost_model_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/io_cost_model_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/page_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/page_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/persistence_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/persistence_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/set_store_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/set_store_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
