file(REMOVE_RECURSE
  "libssr_ecc.a"
)
