file(REMOVE_RECURSE
  "CMakeFiles/ssr_ecc.dir/ecc/code.cc.o"
  "CMakeFiles/ssr_ecc.dir/ecc/code.cc.o.d"
  "CMakeFiles/ssr_ecc.dir/ecc/hadamard.cc.o"
  "CMakeFiles/ssr_ecc.dir/ecc/hadamard.cc.o.d"
  "CMakeFiles/ssr_ecc.dir/ecc/naive.cc.o"
  "CMakeFiles/ssr_ecc.dir/ecc/naive.cc.o.d"
  "CMakeFiles/ssr_ecc.dir/ecc/simplex.cc.o"
  "CMakeFiles/ssr_ecc.dir/ecc/simplex.cc.o.d"
  "libssr_ecc.a"
  "libssr_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
