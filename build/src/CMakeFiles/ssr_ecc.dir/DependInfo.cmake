
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/code.cc" "src/CMakeFiles/ssr_ecc.dir/ecc/code.cc.o" "gcc" "src/CMakeFiles/ssr_ecc.dir/ecc/code.cc.o.d"
  "/root/repo/src/ecc/hadamard.cc" "src/CMakeFiles/ssr_ecc.dir/ecc/hadamard.cc.o" "gcc" "src/CMakeFiles/ssr_ecc.dir/ecc/hadamard.cc.o.d"
  "/root/repo/src/ecc/naive.cc" "src/CMakeFiles/ssr_ecc.dir/ecc/naive.cc.o" "gcc" "src/CMakeFiles/ssr_ecc.dir/ecc/naive.cc.o.d"
  "/root/repo/src/ecc/simplex.cc" "src/CMakeFiles/ssr_ecc.dir/ecc/simplex.cc.o" "gcc" "src/CMakeFiles/ssr_ecc.dir/ecc/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
