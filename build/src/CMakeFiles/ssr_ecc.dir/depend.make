# Empty dependencies file for ssr_ecc.
# This may be replaced when dependencies are built.
