file(REMOVE_RECURSE
  "libssr_hamming.a"
)
