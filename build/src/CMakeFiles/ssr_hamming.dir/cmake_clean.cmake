file(REMOVE_RECURSE
  "CMakeFiles/ssr_hamming.dir/hamming/bitvector.cc.o"
  "CMakeFiles/ssr_hamming.dir/hamming/bitvector.cc.o.d"
  "CMakeFiles/ssr_hamming.dir/hamming/embedding.cc.o"
  "CMakeFiles/ssr_hamming.dir/hamming/embedding.cc.o.d"
  "libssr_hamming.a"
  "libssr_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
