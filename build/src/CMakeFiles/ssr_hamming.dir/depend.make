# Empty dependencies file for ssr_hamming.
# This may be replaced when dependencies are built.
