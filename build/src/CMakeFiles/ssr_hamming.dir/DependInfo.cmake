
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hamming/bitvector.cc" "src/CMakeFiles/ssr_hamming.dir/hamming/bitvector.cc.o" "gcc" "src/CMakeFiles/ssr_hamming.dir/hamming/bitvector.cc.o.d"
  "/root/repo/src/hamming/embedding.cc" "src/CMakeFiles/ssr_hamming.dir/hamming/embedding.cc.o" "gcc" "src/CMakeFiles/ssr_hamming.dir/hamming/embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_minhash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
