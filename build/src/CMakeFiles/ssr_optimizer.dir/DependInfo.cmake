
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/equidepth.cc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/equidepth.cc.o" "gcc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/equidepth.cc.o.d"
  "/root/repo/src/optimizer/error_model.cc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/error_model.cc.o" "gcc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/error_model.cc.o.d"
  "/root/repo/src/optimizer/greedy_allocator.cc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/greedy_allocator.cc.o" "gcc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/greedy_allocator.cc.o.d"
  "/root/repo/src/optimizer/index_builder.cc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/index_builder.cc.o" "gcc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/index_builder.cc.o.d"
  "/root/repo/src/optimizer/similarity_distribution.cc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/similarity_distribution.cc.o" "gcc" "src/CMakeFiles/ssr_optimizer.dir/optimizer/similarity_distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_hamming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_minhash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
