file(REMOVE_RECURSE
  "CMakeFiles/ssr_optimizer.dir/optimizer/equidepth.cc.o"
  "CMakeFiles/ssr_optimizer.dir/optimizer/equidepth.cc.o.d"
  "CMakeFiles/ssr_optimizer.dir/optimizer/error_model.cc.o"
  "CMakeFiles/ssr_optimizer.dir/optimizer/error_model.cc.o.d"
  "CMakeFiles/ssr_optimizer.dir/optimizer/greedy_allocator.cc.o"
  "CMakeFiles/ssr_optimizer.dir/optimizer/greedy_allocator.cc.o.d"
  "CMakeFiles/ssr_optimizer.dir/optimizer/index_builder.cc.o"
  "CMakeFiles/ssr_optimizer.dir/optimizer/index_builder.cc.o.d"
  "CMakeFiles/ssr_optimizer.dir/optimizer/similarity_distribution.cc.o"
  "CMakeFiles/ssr_optimizer.dir/optimizer/similarity_distribution.cc.o.d"
  "libssr_optimizer.a"
  "libssr_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
