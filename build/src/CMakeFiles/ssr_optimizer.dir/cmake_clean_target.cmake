file(REMOVE_RECURSE
  "libssr_optimizer.a"
)
