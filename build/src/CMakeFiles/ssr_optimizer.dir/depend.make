# Empty dependencies file for ssr_optimizer.
# This may be replaced when dependencies are built.
