
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bit_sampler.cc" "src/CMakeFiles/ssr_core.dir/core/bit_sampler.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/bit_sampler.cc.o.d"
  "/root/repo/src/core/dfi.cc" "src/CMakeFiles/ssr_core.dir/core/dfi.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/dfi.cc.o.d"
  "/root/repo/src/core/filter_function.cc" "src/CMakeFiles/ssr_core.dir/core/filter_function.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/filter_function.cc.o.d"
  "/root/repo/src/core/hash_table.cc" "src/CMakeFiles/ssr_core.dir/core/hash_table.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/hash_table.cc.o.d"
  "/root/repo/src/core/index_layout.cc" "src/CMakeFiles/ssr_core.dir/core/index_layout.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/index_layout.cc.o.d"
  "/root/repo/src/core/set_similarity_index.cc" "src/CMakeFiles/ssr_core.dir/core/set_similarity_index.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/set_similarity_index.cc.o.d"
  "/root/repo/src/core/sfi.cc" "src/CMakeFiles/ssr_core.dir/core/sfi.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/sfi.cc.o.d"
  "/root/repo/src/core/similarity_ops.cc" "src/CMakeFiles/ssr_core.dir/core/similarity_ops.cc.o" "gcc" "src/CMakeFiles/ssr_core.dir/core/similarity_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_minhash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_hamming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
