file(REMOVE_RECURSE
  "CMakeFiles/ssr_core.dir/core/bit_sampler.cc.o"
  "CMakeFiles/ssr_core.dir/core/bit_sampler.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/dfi.cc.o"
  "CMakeFiles/ssr_core.dir/core/dfi.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/filter_function.cc.o"
  "CMakeFiles/ssr_core.dir/core/filter_function.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/hash_table.cc.o"
  "CMakeFiles/ssr_core.dir/core/hash_table.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/index_layout.cc.o"
  "CMakeFiles/ssr_core.dir/core/index_layout.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/set_similarity_index.cc.o"
  "CMakeFiles/ssr_core.dir/core/set_similarity_index.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/sfi.cc.o"
  "CMakeFiles/ssr_core.dir/core/sfi.cc.o.d"
  "CMakeFiles/ssr_core.dir/core/similarity_ops.cc.o"
  "CMakeFiles/ssr_core.dir/core/similarity_ops.cc.o.d"
  "libssr_core.a"
  "libssr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
