
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/CMakeFiles/ssr_storage.dir/storage/bplus_tree.cc.o" "gcc" "src/CMakeFiles/ssr_storage.dir/storage/bplus_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/ssr_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/ssr_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/ssr_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/ssr_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/io_cost_model.cc" "src/CMakeFiles/ssr_storage.dir/storage/io_cost_model.cc.o" "gcc" "src/CMakeFiles/ssr_storage.dir/storage/io_cost_model.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/ssr_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/ssr_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/set_store.cc" "src/CMakeFiles/ssr_storage.dir/storage/set_store.cc.o" "gcc" "src/CMakeFiles/ssr_storage.dir/storage/set_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
