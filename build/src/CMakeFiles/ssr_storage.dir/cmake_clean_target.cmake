file(REMOVE_RECURSE
  "libssr_storage.a"
)
