file(REMOVE_RECURSE
  "CMakeFiles/ssr_storage.dir/storage/bplus_tree.cc.o"
  "CMakeFiles/ssr_storage.dir/storage/bplus_tree.cc.o.d"
  "CMakeFiles/ssr_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/ssr_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/ssr_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/ssr_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/ssr_storage.dir/storage/io_cost_model.cc.o"
  "CMakeFiles/ssr_storage.dir/storage/io_cost_model.cc.o.d"
  "CMakeFiles/ssr_storage.dir/storage/page.cc.o"
  "CMakeFiles/ssr_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/ssr_storage.dir/storage/set_store.cc.o"
  "CMakeFiles/ssr_storage.dir/storage/set_store.cc.o.d"
  "libssr_storage.a"
  "libssr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
