# Empty dependencies file for ssr_storage.
# This may be replaced when dependencies are built.
