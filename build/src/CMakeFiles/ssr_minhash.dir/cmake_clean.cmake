file(REMOVE_RECURSE
  "CMakeFiles/ssr_minhash.dir/minhash/estimator.cc.o"
  "CMakeFiles/ssr_minhash.dir/minhash/estimator.cc.o.d"
  "CMakeFiles/ssr_minhash.dir/minhash/min_hasher.cc.o"
  "CMakeFiles/ssr_minhash.dir/minhash/min_hasher.cc.o.d"
  "CMakeFiles/ssr_minhash.dir/minhash/signature.cc.o"
  "CMakeFiles/ssr_minhash.dir/minhash/signature.cc.o.d"
  "libssr_minhash.a"
  "libssr_minhash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_minhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
