
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minhash/estimator.cc" "src/CMakeFiles/ssr_minhash.dir/minhash/estimator.cc.o" "gcc" "src/CMakeFiles/ssr_minhash.dir/minhash/estimator.cc.o.d"
  "/root/repo/src/minhash/min_hasher.cc" "src/CMakeFiles/ssr_minhash.dir/minhash/min_hasher.cc.o" "gcc" "src/CMakeFiles/ssr_minhash.dir/minhash/min_hasher.cc.o.d"
  "/root/repo/src/minhash/signature.cc" "src/CMakeFiles/ssr_minhash.dir/minhash/signature.cc.o" "gcc" "src/CMakeFiles/ssr_minhash.dir/minhash/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
