file(REMOVE_RECURSE
  "libssr_minhash.a"
)
