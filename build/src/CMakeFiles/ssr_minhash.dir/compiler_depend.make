# Empty compiler generated dependencies file for ssr_minhash.
# This may be replaced when dependencies are built.
