# Empty dependencies file for ssr_minhash.
# This may be replaced when dependencies are built.
