# Empty compiler generated dependencies file for ssr_eval.
# This may be replaced when dependencies are built.
