file(REMOVE_RECURSE
  "CMakeFiles/ssr_eval.dir/eval/harness.cc.o"
  "CMakeFiles/ssr_eval.dir/eval/harness.cc.o.d"
  "CMakeFiles/ssr_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/ssr_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/ssr_eval.dir/eval/table_printer.cc.o"
  "CMakeFiles/ssr_eval.dir/eval/table_printer.cc.o.d"
  "libssr_eval.a"
  "libssr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
