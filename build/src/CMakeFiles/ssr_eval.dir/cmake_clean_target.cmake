file(REMOVE_RECURSE
  "libssr_eval.a"
)
