file(REMOVE_RECURSE
  "CMakeFiles/ssr_workload.dir/workload/buckets.cc.o"
  "CMakeFiles/ssr_workload.dir/workload/buckets.cc.o.d"
  "CMakeFiles/ssr_workload.dir/workload/datasets.cc.o"
  "CMakeFiles/ssr_workload.dir/workload/datasets.cc.o.d"
  "CMakeFiles/ssr_workload.dir/workload/query_generator.cc.o"
  "CMakeFiles/ssr_workload.dir/workload/query_generator.cc.o.d"
  "CMakeFiles/ssr_workload.dir/workload/weblog_generator.cc.o"
  "CMakeFiles/ssr_workload.dir/workload/weblog_generator.cc.o.d"
  "libssr_workload.a"
  "libssr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
