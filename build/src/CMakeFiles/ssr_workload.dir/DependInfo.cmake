
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/buckets.cc" "src/CMakeFiles/ssr_workload.dir/workload/buckets.cc.o" "gcc" "src/CMakeFiles/ssr_workload.dir/workload/buckets.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/ssr_workload.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/ssr_workload.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/CMakeFiles/ssr_workload.dir/workload/query_generator.cc.o" "gcc" "src/CMakeFiles/ssr_workload.dir/workload/query_generator.cc.o.d"
  "/root/repo/src/workload/weblog_generator.cc" "src/CMakeFiles/ssr_workload.dir/workload/weblog_generator.cc.o" "gcc" "src/CMakeFiles/ssr_workload.dir/workload/weblog_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
