
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/dictionary.cc" "src/CMakeFiles/ssr_util.dir/util/dictionary.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/dictionary.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/ssr_util.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/hash.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/ssr_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/mathutil.cc" "src/CMakeFiles/ssr_util.dir/util/mathutil.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/mathutil.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/ssr_util.dir/util/random.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/random.cc.o.d"
  "/root/repo/src/util/set_ops.cc" "src/CMakeFiles/ssr_util.dir/util/set_ops.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/set_ops.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/ssr_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/ssr_util.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/ssr_util.dir/util/stopwatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
