file(REMOVE_RECURSE
  "libssr_util.a"
)
