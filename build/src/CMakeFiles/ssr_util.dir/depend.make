# Empty dependencies file for ssr_util.
# This may be replaced when dependencies are built.
