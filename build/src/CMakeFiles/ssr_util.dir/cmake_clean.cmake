file(REMOVE_RECURSE
  "CMakeFiles/ssr_util.dir/util/dictionary.cc.o"
  "CMakeFiles/ssr_util.dir/util/dictionary.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/hash.cc.o"
  "CMakeFiles/ssr_util.dir/util/hash.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/logging.cc.o"
  "CMakeFiles/ssr_util.dir/util/logging.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/mathutil.cc.o"
  "CMakeFiles/ssr_util.dir/util/mathutil.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/random.cc.o"
  "CMakeFiles/ssr_util.dir/util/random.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/set_ops.cc.o"
  "CMakeFiles/ssr_util.dir/util/set_ops.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/status.cc.o"
  "CMakeFiles/ssr_util.dir/util/status.cc.o.d"
  "CMakeFiles/ssr_util.dir/util/stopwatch.cc.o"
  "CMakeFiles/ssr_util.dir/util/stopwatch.cc.o.d"
  "libssr_util.a"
  "libssr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
