file(REMOVE_RECURSE
  "CMakeFiles/ssr_baseline.dir/baseline/exact_evaluator.cc.o"
  "CMakeFiles/ssr_baseline.dir/baseline/exact_evaluator.cc.o.d"
  "CMakeFiles/ssr_baseline.dir/baseline/inverted_index.cc.o"
  "CMakeFiles/ssr_baseline.dir/baseline/inverted_index.cc.o.d"
  "CMakeFiles/ssr_baseline.dir/baseline/sequential_scan.cc.o"
  "CMakeFiles/ssr_baseline.dir/baseline/sequential_scan.cc.o.d"
  "libssr_baseline.a"
  "libssr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
