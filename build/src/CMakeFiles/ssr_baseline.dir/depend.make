# Empty dependencies file for ssr_baseline.
# This may be replaced when dependencies are built.
