file(REMOVE_RECURSE
  "libssr_baseline.a"
)
