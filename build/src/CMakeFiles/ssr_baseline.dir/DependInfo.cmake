
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/exact_evaluator.cc" "src/CMakeFiles/ssr_baseline.dir/baseline/exact_evaluator.cc.o" "gcc" "src/CMakeFiles/ssr_baseline.dir/baseline/exact_evaluator.cc.o.d"
  "/root/repo/src/baseline/inverted_index.cc" "src/CMakeFiles/ssr_baseline.dir/baseline/inverted_index.cc.o" "gcc" "src/CMakeFiles/ssr_baseline.dir/baseline/inverted_index.cc.o.d"
  "/root/repo/src/baseline/sequential_scan.cc" "src/CMakeFiles/ssr_baseline.dir/baseline/sequential_scan.cc.o" "gcc" "src/CMakeFiles/ssr_baseline.dir/baseline/sequential_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
