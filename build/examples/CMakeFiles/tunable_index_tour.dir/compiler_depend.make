# Empty compiler generated dependencies file for tunable_index_tour.
# This may be replaced when dependencies are built.
