file(REMOVE_RECURSE
  "CMakeFiles/tunable_index_tour.dir/tunable_index_tour.cpp.o"
  "CMakeFiles/tunable_index_tour.dir/tunable_index_tour.cpp.o.d"
  "tunable_index_tour"
  "tunable_index_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunable_index_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
