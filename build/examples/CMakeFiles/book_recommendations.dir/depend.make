# Empty dependencies file for book_recommendations.
# This may be replaced when dependencies are built.
