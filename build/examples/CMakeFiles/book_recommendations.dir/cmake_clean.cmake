file(REMOVE_RECURSE
  "CMakeFiles/book_recommendations.dir/book_recommendations.cpp.o"
  "CMakeFiles/book_recommendations.dir/book_recommendations.cpp.o.d"
  "book_recommendations"
  "book_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/book_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
