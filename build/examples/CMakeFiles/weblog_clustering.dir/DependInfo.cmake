
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/weblog_clustering.cpp" "examples/CMakeFiles/weblog_clustering.dir/weblog_clustering.cpp.o" "gcc" "examples/CMakeFiles/weblog_clustering.dir/weblog_clustering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_hamming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_minhash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
