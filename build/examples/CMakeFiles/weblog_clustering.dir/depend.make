# Empty dependencies file for weblog_clustering.
# This may be replaced when dependencies are built.
