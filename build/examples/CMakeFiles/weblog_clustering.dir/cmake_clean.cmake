file(REMOVE_RECURSE
  "CMakeFiles/weblog_clustering.dir/weblog_clustering.cpp.o"
  "CMakeFiles/weblog_clustering.dir/weblog_clustering.cpp.o.d"
  "weblog_clustering"
  "weblog_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
