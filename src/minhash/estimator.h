// Similarity estimation from min-hash signatures, with the two corrections
// the raw agreement fraction needs in practice: (1) b-bit fingerprint
// collisions inflate agreement by ~(1-s)/2^b, and (2) Chernoff-style
// confidence bounds on the estimate (Section 3.1 cites Cohen 1997 for the
// unbiased-estimator + Chernoff argument).

#ifndef SSR_MINHASH_ESTIMATOR_H_
#define SSR_MINHASH_ESTIMATOR_H_

#include <cstddef>

#include "minhash/packed.h"
#include "minhash/signature.h"

namespace ssr {

/// Estimates Jaccard similarity from two signatures.
class SimilarityEstimator {
 public:
  /// `value_bits` must match the MinHashParams used to produce signatures.
  explicit SimilarityEstimator(unsigned value_bits);

  /// Raw estimator: fraction of agreeing coordinates. Unbiased for the
  /// idealized (infinite precision) min-hash; biased upward by fingerprint
  /// collisions for finite b.
  double RawEstimate(const Signature& a, const Signature& b) const {
    return a.AgreementFraction(b);
  }

  /// Collision-corrected estimator. With collision probability c = 2^-b for
  /// non-matching minima, E[agreement] = s + (1-s)c, so
  /// s_hat = (raw - c) / (1 - c), clamped to [0, 1]. Unbiased for finite b.
  double Estimate(const Signature& a, const Signature& b) const;

  /// Packed counterparts: same estimators over b-bit packed signatures via
  /// the SWAR/popcount agreement kernel (minhash/packed.h). Numerically
  /// identical to the unpacked overloads on the same underlying values.
  double RawEstimate(const PackedSignature& a, const PackedSignature& b) const {
    return a.AgreementFraction(b);
  }
  double Estimate(const PackedSignature& a, const PackedSignature& b) const;

  /// Half-width of a (1 - delta) confidence interval around the estimate for
  /// signatures of k coordinates (two-sided Chernoff/Hoeffding bound).
  double ConfidenceHalfWidth(std::size_t k, double delta) const;

  /// Probability bound that the raw agreement of k coordinates deviates from
  /// its mean by more than eps (absolute), via Hoeffding's inequality.
  static double DeviationProbabilityBound(std::size_t k, double eps);

  unsigned value_bits() const { return value_bits_; }

  /// Fingerprint collision probability 2^-b.
  double collision_probability() const { return collision_p_; }

 private:
  unsigned value_bits_;
  double collision_p_;
};

}  // namespace ssr

#endif  // SSR_MINHASH_ESTIMATOR_H_
