// Signature engine v2: pluggable min-hash families (DESIGN.md §15).
//
// Every family maps a set to the same shape of signature — k values of
// value_bits bits, empty set -> all-ones sentinel — and keeps the defining
// property Pr[sig_A[i] == sig_B[i]] ≈ J(A, B) (exactly J for classic, up to
// the b-bit fingerprint collision handled by SimilarityEstimator). They
// differ in how much hashing that costs:
//
//   kClassic      k independent permutations: one Fmix64 per (element, i).
//                 The paper's §3.1 scheme, bit-identical to the pre-v2
//                 MinHasher (digest compatibility anchor).
//   kSuperMinHash Ertl 2017: one pass over the elements, a per-element
//                 partial Fisher-Yates draw scatters each element into
//                 O(log k) expected slots with early stopping — ~O(n + k
//                 log n) total work instead of n*k. Lower estimator
//                 variance than classic for J < 1. Scalar-only (the
//                 adaptive loop does not vectorize).
//   kCMinHash     Li & Li 2021 circulant reuse: one sigma hash per element,
//                 then lane i uses a cheap one-multiply mix of
//                 sigma(e) + i*step — k-fold hash reuse, AVX2-friendly.
//
// The family byte is persisted in the index snapshot (and therefore in the
// WAL checkpoint and every sharded shard section), so a store signed under
// one family can never be silently probed under another.

#ifndef SSR_MINHASH_FAMILY_H_
#define SSR_MINHASH_FAMILY_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/hash.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Which min-hash family signs the collection. The numeric values are the
/// persisted wire format (snapshot "options" section) — append-only.
enum class MinHashFamilyKind : std::uint8_t {
  kClassic = 0,
  kSuperMinHash = 1,
  kCMinHash = 2,
};

/// Human-readable family name ("classic" / "superminhash" / "cminhash").
std::string_view MinHashFamilyName(MinHashFamilyKind kind);

/// Decodes a persisted family byte; an out-of-range value is a typed
/// NotSupported (a snapshot from a newer engine, not corruption — the CRC
/// already vouched for the bytes).
Result<MinHashFamilyKind> MinHashFamilyFromByte(std::uint8_t byte);

/// Parses a family name as accepted on bench/test command lines and env
/// vars; InvalidArgument on unknown names.
Result<MinHashFamilyKind> MinHashFamilyFromName(std::string_view name);

/// All families, for sweep loops.
inline constexpr MinHashFamilyKind kAllMinHashFamilies[] = {
    MinHashFamilyKind::kClassic,
    MinHashFamilyKind::kSuperMinHash,
    MinHashFamilyKind::kCMinHash,
};

/// A min-hash signing backend. Implementations are immutable after
/// construction and reentrant: SignInto may be called concurrently from
/// the parallel builder's workers and the batch-query executor.
class MinHashFamily {
 public:
  virtual ~MinHashFamily() = default;

  virtual MinHashFamilyKind kind() const = 0;

  /// Writes the k b-bit values of `set`'s signature to out[0..k). The
  /// empty set yields the all-ones sentinel in every coordinate.
  virtual void SignInto(const ElementSet& set, std::uint16_t* out) const = 0;

  /// Signs `count` sets (a contiguous run) into `count` pre-sized outputs.
  /// Semantically identical to `count` SignInto calls — batching exists so
  /// kernels amortize dispatch and keep per-family state hot. The default
  /// implementation loops SignInto.
  virtual void SignBatch(const ElementSet* sets, std::size_t count,
                         std::uint16_t* const* outs) const;

  /// The b-bit value of coordinate `i` alone. The classic family computes
  /// just that permutation; the entangled families (SuperMinHash, C-MinHash
  /// share state across coordinates) sign fully into thread-local scratch
  /// and project — same values, SignOne is just not a fast path for them.
  virtual std::uint16_t SignOne(const ElementSet& set, std::size_t i) const;

  std::size_t num_hashes() const { return num_hashes_; }
  std::uint16_t value_mask() const { return value_mask_; }

 protected:
  MinHashFamily(std::size_t num_hashes, unsigned value_bits)
      : num_hashes_(num_hashes),
        value_mask_(static_cast<std::uint16_t>((1u << value_bits) - 1u)) {}

  std::size_t num_hashes_;
  std::uint16_t value_mask_;
};

/// Builds the backend for (kind, k, value_bits, seed). `value_bits` must
/// already be validated/sanitized by the caller (MinHasher).
std::unique_ptr<MinHashFamily> MakeMinHashFamily(MinHashFamilyKind kind,
                                                 std::size_t num_hashes,
                                                 unsigned value_bits,
                                                 std::uint64_t seed);

}  // namespace ssr

#endif  // SSR_MINHASH_FAMILY_H_
