#include "minhash/signature.h"

namespace ssr {

double Signature::AgreementFraction(const Signature& other) const {
  if (values_.empty() || values_.size() != other.values_.size()) return 0.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == other.values_[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(values_.size());
}

}  // namespace ssr
