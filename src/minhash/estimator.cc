#include "minhash/estimator.h"

#include <cmath>

#include "util/mathutil.h"

namespace ssr {

SimilarityEstimator::SimilarityEstimator(unsigned value_bits)
    : value_bits_(value_bits),
      collision_p_(std::ldexp(1.0, -static_cast<int>(value_bits))) {}

double SimilarityEstimator::Estimate(const Signature& a,
                                     const Signature& b) const {
  const double raw = RawEstimate(a, b);
  const double corrected = (raw - collision_p_) / (1.0 - collision_p_);
  return Clamp(corrected, 0.0, 1.0);
}

double SimilarityEstimator::Estimate(const PackedSignature& a,
                                     const PackedSignature& b) const {
  const double raw = RawEstimate(a, b);
  const double corrected = (raw - collision_p_) / (1.0 - collision_p_);
  return Clamp(corrected, 0.0, 1.0);
}

double SimilarityEstimator::ConfidenceHalfWidth(std::size_t k,
                                                double delta) const {
  if (k == 0) return 1.0;
  // Hoeffding: P(|X/k - mu| >= eps) <= 2 exp(-2 k eps^2); solve for eps.
  const double d = Clamp(delta, 1e-12, 1.0);
  return std::sqrt(std::log(2.0 / d) / (2.0 * static_cast<double>(k)));
}

double SimilarityEstimator::DeviationProbabilityBound(std::size_t k,
                                                      double eps) {
  if (k == 0) return 1.0;
  return Clamp(2.0 * std::exp(-2.0 * static_cast<double>(k) * eps * eps), 0.0,
               1.0);
}

}  // namespace ssr
