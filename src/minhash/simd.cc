#include "minhash/simd.h"

#include <cstdlib>
#include <limits>

#include "util/hash.h"

#if defined(SSR_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace ssr {
namespace simd {

namespace {
constexpr std::uint64_t kFmixM1 = 0xff51afd7ed558ccdULL;
constexpr std::uint64_t kFmixM2 = 0xc4ceb9fe1a85ec53ULL;
}  // namespace

bool Avx2Compiled() {
#if defined(SSR_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Runtime() {
#if defined(SSR_SIMD_AVX2)
  static const bool available = [] {
    if (const char* env = std::getenv("SSR_NO_SIMD")) {
      if (env[0] != '\0' && env[0] != '0') return false;
    }
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return available;
#else
  return false;
#endif
}

void ClassicMinScalar(const std::uint64_t* derived, std::size_t k,
                      const ElementId* elems, std::size_t n,
                      std::uint64_t* minima) {
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t d = derived[i];
    std::uint64_t mv = minima[i];
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t h = Fmix64(elems[j] ^ d);
      if (h < mv) mv = h;
    }
    minima[i] = mv;
  }
}

void CMinScalar(const std::uint64_t* z, std::size_t n, std::uint64_t step,
                std::size_t k, std::uint64_t* minima) {
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < k; ++i, offset += step) {
    std::uint64_t mv = minima[i];
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t v = CMix(z[j] + offset);
      if (v < mv) mv = v;
    }
    minima[i] = mv;
  }
}

#if defined(SSR_SIMD_AVX2)

namespace {

// 64-bit lane-wise multiply mod 2^64. AVX2 has no native mullo64; the
// exact product is lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32), all
// mod 2^64 — bit-identical to the scalar `*` operator.
__attribute__((target("avx2"))) inline __m256i Mullo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// Unsigned 64-bit lane-wise min: flip the sign bit so the signed compare
// orders like the unsigned one, then blend.
__attribute__((target("avx2"))) inline __m256i Min64u(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                                        _mm256_xor_si256(b, bias));
  return _mm256_blendv_epi8(a, b, gt);  // a > b ? b : a
}

__attribute__((target("avx2"))) inline __m256i Fmix64Vec(__m256i x) {
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kFmixM1));
  const __m256i m2 = _mm256_set1_epi64x(static_cast<long long>(kFmixM2));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mullo64(x, m1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mullo64(x, m2);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

// Exact x * M mod 2^64 for a multiplier below 2^32: the b_hi cross term of
// the general Mullo64 vanishes, leaving two VPMULUDQ. Bit-identical to the
// scalar `*`.
__attribute__((target("avx2"))) inline __m256i Mullo64By32(__m256i x,
                                                           __m256i m32) {
  const __m256i lo = _mm256_mul_epu32(x, m32);
  const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), m32);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

// Min in the sign-biased domain: operands already have the sign bit
// flipped, so the signed compare orders them as unsigned without per-call
// bias xors.
__attribute__((target("avx2"))) inline __m256i MinBiased(__m256i a,
                                                         __m256i v) {
  return _mm256_blendv_epi8(a, v, _mm256_cmpgt_epi64(a, v));
}

__attribute__((target("avx2"))) inline __m256i CMixVec(__m256i x) {
  const __m256i m = _mm256_set1_epi64x(0x9e3779b9LL);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mullo64By32(x, m);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 29));
  return x;
}

}  // namespace

__attribute__((target("avx2"))) void ClassicMinAvx2(
    const std::uint64_t* derived, std::size_t k, const ElementId* elems,
    std::size_t n, std::uint64_t* minima) {
  // Vectorize over permutation lanes: each 4-lane chunk keeps its running
  // minima in a register across the whole element run (one load/store pair
  // per chunk, not per element).
  std::size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m256i dv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(derived + i));
    __m256i mv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(minima + i));
    for (std::size_t j = 0; j < n; ++j) {
      const __m256i ev = _mm256_set1_epi64x(
          static_cast<long long>(elems[j]));
      mv = Min64u(mv, Fmix64Vec(_mm256_xor_si256(ev, dv)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(minima + i), mv);
  }
  if (i < k) ClassicMinScalar(derived + i, k - i, elems, n, minima + i);
}

__attribute__((target("avx2"))) void CMinAvx2(const std::uint64_t* z,
                                              std::size_t n,
                                              std::uint64_t step,
                                              std::size_t k,
                                              std::uint64_t* minima) {
  std::size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m256i offs = _mm256_set_epi64x(
        static_cast<long long>((i + 3) * step),
        static_cast<long long>((i + 2) * step),
        static_cast<long long>((i + 1) * step),
        static_cast<long long>(i * step));
    __m256i mv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(minima + i));
    // Four independent accumulators break the cmpgt+blend dependency chain
    // through the running minimum (the element iterations would otherwise
    // serialize on its ~6-cycle latency), and they live in the sign-biased
    // domain so each step pays one bias xor instead of Min64u's two. Min is
    // associative and commutative on integers, so the regrouping is
    // bit-identical to the scalar reduction order.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i ones = _mm256_set1_epi64x(-1);
    __m256i acc0 = _mm256_xor_si256(ones, bias);
    __m256i acc1 = acc0, acc2 = acc0, acc3 = acc0;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256i z0 = _mm256_set1_epi64x(static_cast<long long>(z[j]));
      const __m256i z1 = _mm256_set1_epi64x(static_cast<long long>(z[j + 1]));
      const __m256i z2 = _mm256_set1_epi64x(static_cast<long long>(z[j + 2]));
      const __m256i z3 = _mm256_set1_epi64x(static_cast<long long>(z[j + 3]));
      acc0 = MinBiased(acc0, _mm256_xor_si256(
          CMixVec(_mm256_add_epi64(z0, offs)), bias));
      acc1 = MinBiased(acc1, _mm256_xor_si256(
          CMixVec(_mm256_add_epi64(z1, offs)), bias));
      acc2 = MinBiased(acc2, _mm256_xor_si256(
          CMixVec(_mm256_add_epi64(z2, offs)), bias));
      acc3 = MinBiased(acc3, _mm256_xor_si256(
          CMixVec(_mm256_add_epi64(z3, offs)), bias));
    }
    for (; j < n; ++j) {
      const __m256i zv = _mm256_set1_epi64x(static_cast<long long>(z[j]));
      acc0 = MinBiased(acc0, _mm256_xor_si256(
          CMixVec(_mm256_add_epi64(zv, offs)), bias));
    }
    const __m256i acc = _mm256_xor_si256(
        MinBiased(MinBiased(acc0, acc1), MinBiased(acc2, acc3)), bias);
    mv = Min64u(mv, acc);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(minima + i), mv);
  }
  if (i < k) {
    // Scalar tail with the absolute lane offsets (CMinScalar starts its
    // offsets at 0, so it cannot be reused for a lane suffix directly).
    std::uint64_t offset = i * step;
    for (std::size_t t = i; t < k; ++t, offset += step) {
      std::uint64_t mv = minima[t];
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t v = CMix(z[j] + offset);
        if (v < mv) mv = v;
      }
      minima[t] = mv;
    }
  }
}

#else  // !SSR_SIMD_AVX2

void ClassicMinAvx2(const std::uint64_t* derived, std::size_t k,
                    const ElementId* elems, std::size_t n,
                    std::uint64_t* minima) {
  ClassicMinScalar(derived, k, elems, n, minima);
}

void CMinAvx2(const std::uint64_t* z, std::size_t n, std::uint64_t step,
              std::size_t k, std::uint64_t* minima) {
  CMinScalar(z, n, step, k, minima);
}

#endif  // SSR_SIMD_AVX2

void ClassicMinAuto(const std::uint64_t* derived, std::size_t k,
                    const ElementId* elems, std::size_t n,
                    std::uint64_t* minima) {
  if (Avx2Runtime()) {
    ClassicMinAvx2(derived, k, elems, n, minima);
  } else {
    ClassicMinScalar(derived, k, elems, n, minima);
  }
}

void CMinAuto(const std::uint64_t* z, std::size_t n, std::uint64_t step,
              std::size_t k, std::uint64_t* minima) {
  if (Avx2Runtime()) {
    CMinAvx2(z, n, step, k, minima);
  } else {
    CMinScalar(z, n, step, k, minima);
  }
}

}  // namespace simd
}  // namespace ssr
