// CPU-dispatched batch-signing kernels for the min-hash families.
//
// Each kernel computes, for one set, the running 64-bit minimum per
// permutation lane — the inner loop of signing. Two variants exist per
// kernel: a portable scalar loop and an AVX2 one (4 lanes of 64-bit
// arithmetic). Both perform the exact same mod-2^64 operations, so their
// outputs are bit-identical by construction; the dispatch-parity test
// (tests/minhash/dispatch_parity_test.cc) pins that.
//
// Dispatch strategy: the AVX2 variants are compiled behind the SSR_SIMD
// CMake option using __attribute__((target("avx2"))) — no special compiler
// flags, so the rest of the translation unit stays baseline x86-64 — and
// selected at runtime via __builtin_cpu_supports("avx2"). When SSR_SIMD is
// OFF, on non-x86 targets, or on pre-AVX2 hardware, the *Auto entry points
// degrade to the scalar loops. SSR_NO_SIMD=1 in the environment forces the
// scalar path at runtime (used by benches to measure the fallback).

#ifndef SSR_MINHASH_SIMD_H_
#define SSR_MINHASH_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "util/types.h"

namespace ssr {
namespace simd {

/// True iff the AVX2 kernels were compiled in (SSR_SIMD=ON on x86-64).
bool Avx2Compiled();

/// True iff the AVX2 kernels will actually run: compiled in, the CPU
/// reports AVX2, and SSR_NO_SIMD is not set in the environment. Resolved
/// once per process.
bool Avx2Runtime();

/// Classic k-permutation kernel: minima[i] = min over e in [elems, elems+n)
/// of Fmix64(e ^ derived[i]) for i in [0, k). `minima` must be
/// pre-initialized by the caller (UINT64_MAX for a fresh set; a previous
/// run's minima to continue a set split across calls).
void ClassicMinScalar(const std::uint64_t* derived, std::size_t k,
                      const ElementId* elems, std::size_t n,
                      std::uint64_t* minima);
void ClassicMinAvx2(const std::uint64_t* derived, std::size_t k,
                    const ElementId* elems, std::size_t n,
                    std::uint64_t* minima);
void ClassicMinAuto(const std::uint64_t* derived, std::size_t k,
                    const ElementId* elems, std::size_t n,
                    std::uint64_t* minima);

/// C-MinHash circulant kernel: minima[i] = min over per-element sigma
/// hashes z in [z, z+n) of CMix(z + i*step) for i in [0, k) — one light
/// mix per (element, permutation), the speed of the family. `step` must be
/// odd.
void CMinScalar(const std::uint64_t* z, std::size_t n, std::uint64_t step,
                std::size_t k, std::uint64_t* minima);
void CMinAvx2(const std::uint64_t* z, std::size_t n, std::uint64_t step,
              std::size_t k, std::uint64_t* minima);
void CMinAuto(const std::uint64_t* z, std::size_t n, std::uint64_t step,
              std::size_t k, std::uint64_t* minima);

/// The scalar CMix, exposed so tests can cross-check kernels per lane.
///
/// An xorshift-sandwiched multiply by a 32-bit odd constant (2^32 / phi).
/// The inputs are already Fmix64-uniform sigma hashes, so the mixer only
/// has to decorrelate the per-lane orderings; a full Fmix64 here would buy
/// nothing the post-selection finalizer doesn't already provide. The
/// multiplier deliberately fits in 32 bits: AVX2 has no 64-bit multiply,
/// and an exact x*M for M < 2^32 takes two VPMULUDQ instead of the three a
/// general 64-bit constant needs — this mixer IS the kernel's cost.
inline std::uint64_t CMix(std::uint64_t u) {
  u ^= u >> 33;
  u *= 0x9e3779b9ULL;
  u ^= u >> 29;
  return u;
}

}  // namespace simd
}  // namespace ssr

#endif  // SSR_MINHASH_SIMD_H_
