#include "minhash/packed.h"

#include <bit>
#include <cassert>

namespace ssr {

namespace {

unsigned LaneBitsFor(unsigned value_bits) {
  unsigned w = 1;
  while (w < value_bits) w <<= 1;
  assert(w <= 16);
  return w;
}

/// 64-bit word with the LSB of every w-bit lane set (w a power of two).
std::uint64_t LaneLsbMask(unsigned w) {
  std::uint64_t mask = 0;
  for (unsigned pos = 0; pos < 64; pos += w) mask |= 1ULL << pos;
  return mask;
}

}  // namespace

PackedSignature PackedSignature::Pack(const Signature& sig,
                                      unsigned value_bits) {
  PackedSignature out;
  out.size_ = sig.size();
  out.lane_bits_ = LaneBitsFor(value_bits);
  const unsigned lanes_per_word = 64 / out.lane_bits_;
  const std::uint64_t value_mask = (1ULL << value_bits) - 1ULL;
  out.words_.assign((sig.size() + lanes_per_word - 1) / lanes_per_word, 0);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(sig[i]) & value_mask;
    out.words_[i / lanes_per_word] |=
        v << ((i % lanes_per_word) * out.lane_bits_);
  }
  return out;
}

std::uint16_t PackedSignature::at(std::size_t i) const {
  const unsigned lanes_per_word = 64 / lane_bits_;
  const std::uint64_t word = words_[i / lanes_per_word];
  const std::uint64_t lane_mask = lane_bits_ == 64
                                      ? ~0ULL
                                      : (1ULL << lane_bits_) - 1ULL;
  return static_cast<std::uint16_t>(
      (word >> ((i % lanes_per_word) * lane_bits_)) & lane_mask);
}

std::size_t PackedSignature::AgreementCount(
    const PackedSignature& other) const {
  if (size_ != other.size_ || lane_bits_ != other.lane_bits_ || size_ == 0) {
    return 0;
  }
  const std::uint64_t lsb = LaneLsbMask(lane_bits_);
  std::size_t disagree = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t x = words_[w] ^ other.words_[w];
    // OR-fold each lane onto its LSB. Shifts only move bits toward lower
    // positions by < lane_bits_ total, so lanes cannot contaminate each
    // other; padding lanes are zero in both signatures and fold to zero.
    for (unsigned shift = lane_bits_ >> 1; shift >= 1; shift >>= 1) {
      x |= x >> shift;
    }
    disagree += static_cast<std::size_t>(std::popcount(x & lsb));
  }
  return size_ - disagree;
}

double PackedSignature::AgreementFraction(const PackedSignature& other) const {
  if (size_ != other.size_ || lane_bits_ != other.lane_bits_ || size_ == 0) {
    return 0.0;
  }
  return static_cast<double>(AgreementCount(other)) /
         static_cast<double>(size_);
}

}  // namespace ssr
