// Min-hash signature: a point of the intermediate space V (Section 3.1).

#ifndef SSR_MINHASH_SIGNATURE_H_
#define SSR_MINHASH_SIGNATURE_H_

#include <cstdint>
#include <vector>

namespace ssr {

/// A k-dimensional vector of b-bit min-hash values. Stored as uint16_t
/// regardless of b (<= 16) for simplicity; only the low b bits are
/// meaningful.
class Signature {
 public:
  Signature() = default;

  /// Creates a signature of `k` coordinates, zero-initialized.
  explicit Signature(std::size_t k) : values_(k, 0) {}

  /// Creates a signature from explicit values.
  explicit Signature(std::vector<std::uint16_t> values)
      : values_(std::move(values)) {}

  /// Number of coordinates k.
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  std::uint16_t operator[](std::size_t i) const { return values_[i]; }
  std::uint16_t& operator[](std::size_t i) { return values_[i]; }

  const std::vector<std::uint16_t>& values() const { return values_; }

  bool operator==(const Signature& other) const = default;

  /// Fraction of coordinates on which the two signatures agree: the unbiased
  /// estimator of Jaccard similarity (before b-bit collision correction).
  /// Requires equal sizes; returns 0 for mismatched or empty signatures.
  double AgreementFraction(const Signature& other) const;

 private:
  std::vector<std::uint16_t> values_;
};

}  // namespace ssr

#endif  // SSR_MINHASH_SIGNATURE_H_
