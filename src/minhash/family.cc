#include "minhash/family.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "minhash/simd.h"

namespace ssr {

std::string_view MinHashFamilyName(MinHashFamilyKind kind) {
  switch (kind) {
    case MinHashFamilyKind::kClassic:
      return "classic";
    case MinHashFamilyKind::kSuperMinHash:
      return "superminhash";
    case MinHashFamilyKind::kCMinHash:
      return "cminhash";
  }
  return "unknown";
}

Result<MinHashFamilyKind> MinHashFamilyFromByte(std::uint8_t byte) {
  if (byte > static_cast<std::uint8_t>(MinHashFamilyKind::kCMinHash)) {
    return Status::NotSupported("unknown minhash family");
  }
  return static_cast<MinHashFamilyKind>(byte);
}

Result<MinHashFamilyKind> MinHashFamilyFromName(std::string_view name) {
  for (MinHashFamilyKind kind : kAllMinHashFamilies) {
    if (name == MinHashFamilyName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown minhash family name");
}

void MinHashFamily::SignBatch(const ElementSet* sets, std::size_t count,
                              std::uint16_t* const* outs) const {
  for (std::size_t s = 0; s < count; ++s) SignInto(sets[s], outs[s]);
}

std::uint16_t MinHashFamily::SignOne(const ElementSet& set,
                                     std::size_t i) const {
  thread_local std::vector<std::uint16_t> buf;
  buf.resize(num_hashes_);
  SignInto(set, buf.data());
  return buf[i];
}

namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

/// Exact SplitMix64 sequence generator (the per-element PRG SuperMinHash's
/// Fisher-Yates draw consumes).
struct SplitMixPrg {
  std::uint64_t state;
  std::uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// ---------------------------------------------------------------------------
// Classic k-permutation family: the paper's §3.1 embedding, bit-identical
// to the pre-v2 MinHasher (per-permutation seeds hoisted via HashFamily's
// derived array, which changes no output bit).

class ClassicFamily final : public MinHashFamily {
 public:
  ClassicFamily(std::size_t num_hashes, unsigned value_bits,
                std::uint64_t seed)
      : MinHashFamily(num_hashes, value_bits), family_(num_hashes, seed) {}

  MinHashFamilyKind kind() const override {
    return MinHashFamilyKind::kClassic;
  }

  void SignInto(const ElementSet& set, std::uint16_t* out) const override {
    if (set.empty()) {
      std::fill(out, out + num_hashes_, value_mask_);
      return;
    }
    thread_local std::vector<std::uint64_t> minima;
    minima.assign(num_hashes_, kU64Max);
    simd::ClassicMinAuto(family_.derived_seeds().data(), num_hashes_,
                         set.data(), set.size(), minima.data());
    for (std::size_t i = 0; i < num_hashes_; ++i) {
      out[i] = static_cast<std::uint16_t>(Fmix64(minima[i]) & value_mask_);
    }
  }

  /// One coordinate without signing the rest (classic is the only family
  /// whose permutations are independent enough to allow it).
  std::uint16_t SignOne(const ElementSet& set, std::size_t i) const override {
    if (set.empty()) return value_mask_;
    std::uint64_t min_hash = kU64Max;
    for (ElementId e : set) {
      const std::uint64_t h = family_.Hash(i, e);
      if (h < min_hash) min_hash = h;
    }
    return static_cast<std::uint16_t>(Fmix64(min_hash) & value_mask_);
  }

  const HashFamily& hash_family() const { return family_; }

 private:
  HashFamily family_;
};

// ---------------------------------------------------------------------------
// SuperMinHash (Ertl 2017, arXiv:1706.05698). One pass over the elements;
// each element draws a partial Fisher-Yates permutation of the k slots and
// offers value (j, r_j) to slot p[j] at round j, with a histogram-driven
// early stop once no slot can improve. The slot values are encoded as
// integers v = (j << 40) | top-40-bits(r_j) so that ordering matches the
// paper's r_j + j and two sets produce equal slot values iff the same
// (element, round) pair won — which is what the agreement estimator needs.

class SuperMinHashFamily final : public MinHashFamily {
 public:
  SuperMinHashFamily(std::size_t num_hashes, unsigned value_bits,
                     std::uint64_t seed)
      : MinHashFamily(num_hashes, value_bits),
        element_seed_(SplitMix64(seed ^ 0x50e21feaa7b8d1c3ULL)) {}

  MinHashFamilyKind kind() const override {
    return MinHashFamilyKind::kSuperMinHash;
  }

  void SignInto(const ElementSet& set, std::uint16_t* out) const override {
    const std::size_t k = num_hashes_;
    if (set.empty()) {
      std::fill(out, out + k, value_mask_);
      return;
    }
    // Scratch is per-thread: Sign must stay const and reentrant for the
    // parallel builder and the batch executor.
    thread_local std::vector<std::uint64_t> h;
    thread_local std::vector<std::uint32_t> p;
    thread_local std::vector<std::uint64_t> q;
    thread_local std::vector<std::uint32_t> hist;
    h.assign(k, kU64Max);
    p.assign(k, 0);
    q.assign(k, 0);
    hist.assign(k, 0);
    hist[k - 1] = static_cast<std::uint32_t>(k);
    std::size_t a = k - 1;

    std::uint64_t gen = 0;
    for (ElementId e : set) {
      ++gen;
      SplitMixPrg prg{Fmix64(e ^ element_seed_)};
      for (std::size_t j = 0; j <= a; ++j) {
        // One draw feeds both the rank (top 40 bits) and the Fisher-Yates
        // index: Lemire's multiply-shift on the low 24 bits replaces a
        // hardware division, and k <= 2^16 keeps the map's bias below
        // 2^-8 of a slot. This inner loop is the family's entire cost, so
        // the draw count and the divide dominate ns/set.
        const std::uint64_t r = prg.Next();
        const std::size_t l =
            j + static_cast<std::size_t>(
                    ((r & 0xffffffULL) * static_cast<std::uint64_t>(k - j)) >>
                    24);
        if (q[j] != gen) {
          q[j] = gen;
          p[j] = static_cast<std::uint32_t>(j);
        }
        if (q[l] != gen) {
          q[l] = gen;
          p[l] = static_cast<std::uint32_t>(l);
        }
        std::swap(p[j], p[l]);
        const std::size_t slot = p[j];
        const std::uint64_t v =
            (static_cast<std::uint64_t>(j) << 40) | (r >> 24);
        if (v < h[slot]) {
          const std::size_t j_old = std::min<std::size_t>(
              static_cast<std::size_t>(h[slot] >> 40), k - 1);
          h[slot] = v;
          if (j < j_old) {
            --hist[j_old];
            ++hist[j];
            while (a > 0 && hist[a] == 0) --a;
          }
        }
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = static_cast<std::uint16_t>(Fmix64(h[i]) & value_mask_);
    }
  }

 private:
  std::uint64_t element_seed_;
};

// ---------------------------------------------------------------------------
// C-MinHash (Li & Li 2021, arXiv:2109.03337). One full-strength sigma hash
// per element, then permutation lane i orders elements by a one-multiply
// bijective mix of sigma(e) + i*step (the circulant shift). Total multiply
// count per set: n Fmix64 + n*k CMix — roughly a third of classic's
// per-(element, lane) Fmix64, and the lane loop vectorizes (simd::CMinAuto).

class CMinHashFamily final : public MinHashFamily {
 public:
  CMinHashFamily(std::size_t num_hashes, unsigned value_bits,
                 std::uint64_t seed)
      : MinHashFamily(num_hashes, value_bits),
        sigma_derived_(SplitMix64(seed ^ 0xc1bc1bc1bc1bc1bULL)),
        step_(SplitMix64(seed ^ 0x9127ed5c0ffee123ULL) | 1ULL) {}

  MinHashFamilyKind kind() const override {
    return MinHashFamilyKind::kCMinHash;
  }

  void SignInto(const ElementSet& set, std::uint16_t* out) const override {
    const std::size_t k = num_hashes_;
    if (set.empty()) {
      std::fill(out, out + k, value_mask_);
      return;
    }
    thread_local std::vector<std::uint64_t> z;
    thread_local std::vector<std::uint64_t> minima;
    z.resize(set.size());
    for (std::size_t j = 0; j < set.size(); ++j) {
      z[j] = Fmix64(set[j] ^ sigma_derived_);
    }
    minima.assign(k, kU64Max);
    simd::CMinAuto(z.data(), set.size(), step_, k, minima.data());
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = static_cast<std::uint16_t>(Fmix64(minima[i]) & value_mask_);
    }
  }

  std::uint64_t sigma_derived() const { return sigma_derived_; }
  std::uint64_t step() const { return step_; }

 private:
  std::uint64_t sigma_derived_;  // hoisted SplitMix64 of the sigma seed
  std::uint64_t step_;           // odd circulant stride
};

}  // namespace

std::unique_ptr<MinHashFamily> MakeMinHashFamily(MinHashFamilyKind kind,
                                                 std::size_t num_hashes,
                                                 unsigned value_bits,
                                                 std::uint64_t seed) {
  switch (kind) {
    case MinHashFamilyKind::kClassic:
      return std::make_unique<ClassicFamily>(num_hashes, value_bits, seed);
    case MinHashFamilyKind::kSuperMinHash:
      return std::make_unique<SuperMinHashFamily>(num_hashes, value_bits,
                                                  seed);
    case MinHashFamilyKind::kCMinHash:
      return std::make_unique<CMinHashFamily>(num_hashes, value_bits, seed);
  }
  return nullptr;
}

}  // namespace ssr
