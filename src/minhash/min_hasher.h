// Min-wise independent permutations (Section 3.1 of the paper; Broder et al.
// 1997, Cohen 1997). A random permutation of the element universe is
// approximated by a seeded 64-bit hash function; min over a set of the hashed
// values gives Pr[min(pi(A)) = min(pi(B))] = Jaccard(A, B). Repeating k times
// yields the min-hash signature, the embedding of the set collection S into
// the k-dimensional vector space V.
//
// Since signature engine v2 the k-permutation scheme is one of several
// pluggable families (minhash/family.h): classic (this header's original
// semantics, digest-compatible), SuperMinHash, and C-MinHash. MinHasher is
// the façade: it owns the family backend selected by MinHashParams::family
// and keeps the original Sign/SignOne surface.

#ifndef SSR_MINHASH_MIN_HASHER_H_
#define SSR_MINHASH_MIN_HASHER_H_

#include <cstdint>
#include <memory>

#include "minhash/family.h"
#include "minhash/signature.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Configuration of the min-hash embedding (S -> V).
struct MinHashParams {
  /// Number of min-wise permutations k (the dimensionality of V). The paper's
  /// experiments use 100.
  std::size_t num_hashes = 100;

  /// Precision b of each stored min-hash value in bits (1..16). The paper
  /// represents min-hash values "using a number of fixed precision"; the ECC
  /// codeword length is m = 2^b (Hadamard), so b controls the Hamming
  /// dimensionality D = m*k. Two distinct minima collide in their b-bit
  /// representation with probability ~2^-b, which inflates estimated
  /// similarity by at most that amount (see estimator.h for the correction).
  unsigned value_bits = 8;

  /// Master seed for the permutation family. Index build and query must use
  /// identical params (enforced by signature dimension checks).
  std::uint64_t seed = 0x5eedf00dcafebabeULL;

  /// Which signing backend produces the signature. Families are not
  /// interchangeable at query time: the byte is persisted in the index
  /// snapshot and a mismatch surfaces as a typed NotSupported on load.
  MinHashFamilyKind family = MinHashFamilyKind::kClassic;

  /// Validates ranges (num_hashes >= 1, 1 <= value_bits <= 16).
  Status Validate() const;
};

/// Computes min-hash signatures for sets under a fixed signing family.
/// Immutable and thread-compatible after construction (Sign is const and
/// reentrant). Cheaply copyable: copies share the immutable backend.
class MinHasher {
 public:
  /// Builds the signing family. `params` must validate OK; invalid
  /// params are clamped after an assert in debug builds.
  explicit MinHasher(const MinHashParams& params);

  /// Signature of a set: k values of `value_bits` bits each. For the empty
  /// set every coordinate takes the reserved sentinel value (all ones),
  /// making sim(empty, empty) estimate as 1 and sim(empty, s) typically ~0.
  Signature Sign(const ElementSet& set) const;

  /// Signs a contiguous run of sets into `out[0..count)` (pre-allocated by
  /// the caller or resized here). Bit-identical to `count` Sign calls; the
  /// batch shape lets family kernels amortize dispatch overhead, which is
  /// what the parallel builder's block-signing phase feeds.
  void SignBatch(const ElementSet* sets, std::size_t count,
                 Signature* out) const;

  /// The b-bit min-hash value of `set` under permutation `i` alone.
  std::uint16_t SignOne(const ElementSet& set, std::size_t i) const;

  const MinHashParams& params() const { return params_; }

  /// The signing backend (family kind, kernels).
  const MinHashFamily& family() const { return *impl_; }

  /// Mask with the low `value_bits` bits set.
  std::uint16_t value_mask() const { return value_mask_; }

 private:
  MinHashParams params_;
  std::shared_ptr<const MinHashFamily> impl_;
  std::uint16_t value_mask_;
};

}  // namespace ssr

#endif  // SSR_MINHASH_MIN_HASHER_H_
