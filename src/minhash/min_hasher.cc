#include "minhash/min_hasher.h"

#include <cassert>
#include <limits>

namespace ssr {

Status MinHashParams::Validate() const {
  if (num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be >= 1");
  }
  if (value_bits < 1 || value_bits > 16) {
    return Status::InvalidArgument("value_bits must be in [1, 16]");
  }
  return Status::OK();
}

namespace {

MinHashParams Sanitize(MinHashParams p) {
  assert(p.Validate().ok());
  if (p.num_hashes == 0) p.num_hashes = 1;
  if (p.value_bits < 1) p.value_bits = 1;
  if (p.value_bits > 16) p.value_bits = 16;
  return p;
}

}  // namespace

MinHasher::MinHasher(const MinHashParams& params)
    : params_(Sanitize(params)),
      family_(params_.num_hashes, params_.seed),
      value_mask_(static_cast<std::uint16_t>(
          (1u << params_.value_bits) - 1u)) {}

Signature MinHasher::Sign(const ElementSet& set) const {
  Signature sig(params_.num_hashes);
  for (std::size_t i = 0; i < params_.num_hashes; ++i) {
    sig[i] = SignOne(set, i);
  }
  return sig;
}

std::uint16_t MinHasher::SignOne(const ElementSet& set, std::size_t i) const {
  if (set.empty()) return value_mask_;  // reserved empty-set sentinel
  // The permutation of the (unknown) universe is the hash ordering; the
  // minimum is taken over full 64-bit hash values and only then truncated to
  // b bits, so truncation cannot change which element is minimal.
  std::uint64_t min_hash = std::numeric_limits<std::uint64_t>::max();
  for (ElementId e : set) {
    const std::uint64_t h = family_.Hash(i, e);
    if (h < min_hash) min_hash = h;
  }
  // Remix before truncation: the b-bit fingerprint of the minimum must look
  // uniform even though minima are biased toward small hash values.
  return static_cast<std::uint16_t>(Fmix64(min_hash) & value_mask_);
}

}  // namespace ssr
