#include "minhash/min_hasher.h"

#include <cassert>

namespace ssr {

Status MinHashParams::Validate() const {
  if (num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be >= 1");
  }
  if (value_bits < 1 || value_bits > 16) {
    return Status::InvalidArgument("value_bits must be in [1, 16]");
  }
  return Status::OK();
}

namespace {

MinHashParams Sanitize(MinHashParams p) {
  assert(p.Validate().ok());
  if (p.num_hashes == 0) p.num_hashes = 1;
  if (p.value_bits < 1) p.value_bits = 1;
  if (p.value_bits > 16) p.value_bits = 16;
  return p;
}

}  // namespace

MinHasher::MinHasher(const MinHashParams& params)
    : params_(Sanitize(params)),
      impl_(MakeMinHashFamily(params_.family, params_.num_hashes,
                              params_.value_bits, params_.seed)),
      value_mask_(static_cast<std::uint16_t>(
          (1u << params_.value_bits) - 1u)) {}

Signature MinHasher::Sign(const ElementSet& set) const {
  Signature sig(params_.num_hashes);
  impl_->SignInto(set, &sig[0]);
  return sig;
}

void MinHasher::SignBatch(const ElementSet* sets, std::size_t count,
                          Signature* out) const {
  if (count == 0) return;
  thread_local std::vector<std::uint16_t*> outs;
  outs.resize(count);
  for (std::size_t s = 0; s < count; ++s) {
    if (out[s].size() != params_.num_hashes) {
      out[s] = Signature(params_.num_hashes);
    }
    outs[s] = &out[s][0];
  }
  impl_->SignBatch(sets, count, outs.data());
}

std::uint16_t MinHasher::SignOne(const ElementSet& set, std::size_t i) const {
  return impl_->SignOne(set, i);
}

}  // namespace ssr
