// b-bit compressed signatures: the k b-bit min-hash values packed into
// power-of-two lanes of 64-bit words, compared with a branchless SWAR +
// std::popcount agreement kernel instead of a value-by-value loop.
//
// Lane width w is the smallest power of two in {1, 2, 4, 8, 16} holding
// value_bits, so lanes never straddle word boundaries and the per-word
// disagreement count is exact: fold each lane's XOR down to its LSB with
// log2(w) shift-ORs (bits can only travel within their own lane — a bit at
// distance >= w can never reach a lower lane's LSB), mask the lane LSBs,
// popcount. A 100-coordinate b=8 signature compares in two popcounts.
//
// The agreement fraction feeds the same collision-corrected estimator as
// unpacked signatures (SimilarityEstimator::Estimate has an overload for
// PackedSignature pairs); packing loses
// nothing — the b-bit truncation already happened when the signature was
// produced.

#ifndef SSR_MINHASH_PACKED_H_
#define SSR_MINHASH_PACKED_H_

#include <cstdint>
#include <vector>

#include "minhash/signature.h"

namespace ssr {

class PackedSignature {
 public:
  PackedSignature() = default;

  /// Packs `sig` (values of `value_bits` significant bits) into lanes of
  /// width NextPow2(value_bits).
  static PackedSignature Pack(const Signature& sig, unsigned value_bits);

  /// Number of coordinates k.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Lane width in bits (power of two >= value_bits).
  unsigned lane_bits() const { return lane_bits_; }

  /// Coordinate i, for tests and spot checks.
  std::uint16_t at(std::size_t i) const;

  /// Number of coordinates on which the two packed signatures agree.
  /// Requires identical size and lane width; returns 0 on mismatch.
  std::size_t AgreementCount(const PackedSignature& other) const;

  /// AgreementCount / k — the packed counterpart of
  /// Signature::AgreementFraction (0 for mismatched or empty signatures).
  double AgreementFraction(const PackedSignature& other) const;

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  unsigned lane_bits_ = 0;
};

}  // namespace ssr

#endif  // SSR_MINHASH_PACKED_H_
