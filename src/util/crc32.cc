#include "util/crc32.h"

#include <array>

namespace ssr {

namespace {

// Table-driven CRC32 with the reflected IEEE polynomial 0xEDB88320,
// generated at static-init time (256 entries, byte-at-a-time update).
std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace ssr
