// Minimal leveled logger. Benchmarks and the optimizer use it to narrate
// construction decisions; default level is kWarning so library use is quiet.

#ifndef SSR_UTIL_LOGGING_H_
#define SSR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ssr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line to stderr if `level` >= the global level.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style builder used by the SSR_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: SSR_LOG(kInfo) << "built " << n << " tables";
#define SSR_LOG(severity) \
  ::ssr::internal::LogLine(::ssr::LogLevel::severity)

}  // namespace ssr

#endif  // SSR_UTIL_LOGGING_H_
