// Structured leveled logger. Each line carries a timestamp, level,
// component tag, message, and optional key=value fields so log output
// correlates with the obs/ trace stream. Benchmarks and the optimizer use
// it to narrate construction decisions; default level is kWarning so
// library use is quiet.
//
// The SSR_LOG macros short-circuit on the global level *before* the
// streamed arguments are evaluated: a dropped message costs one atomic
// load, never an ostringstream.

#ifndef SSR_UTIL_LOGGING_H_
#define SSR_UTIL_LOGGING_H_

#include <chrono>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True iff a message at `level` would be emitted.
bool LogLevelEnabled(LogLevel level);

/// One structured log line.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;  // empty = untagged
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
  std::chrono::system_clock::time_point time;
};

/// "2001-05-21T12:00:00.123Z INFO [component] message key=value ..."
/// (component bracket omitted when empty; values containing spaces are
/// double-quoted).
std::string FormatLogRecord(const LogRecord& record);

/// Replaces the destination for emitted records; pass nullptr to restore
/// the default stderr sink. Used by tests to capture structured output.
using LogSink = std::function<void(const LogRecord&)>;
void SetLogSink(LogSink sink);

/// Emits one structured record if its level passes the global threshold.
void LogRecordMessage(LogRecord record);

/// Back-compat helper: an untagged, field-free line.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style builder used by the SSR_LOG macros. The macros guarantee a
/// LogLine is only constructed when its level is enabled, so the builder
/// formats unconditionally and emits in the destructor.
class LogLine {
 public:
  explicit LogLine(LogLevel level, std::string_view component = {})
      : level_(level), component_(component) {}
  ~LogLine() {
    LogRecord record;
    record.level = level_;
    record.component = std::move(component_);
    record.message = stream_.str();
    record.fields = std::move(fields_);
    LogRecordMessage(std::move(record));
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  /// Attaches a key=value field (rendered after the message).
  template <typename T>
  LogLine& With(std::string_view key, const T& value) {
    std::ostringstream formatted;
    formatted << value;
    fields_.emplace_back(std::string(key), formatted.str());
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Swallows the LogLine in the enabled branch of the macros so both
/// branches of the ternary have type void (glog's voidify idiom).
struct Voidify {
  void operator&(const LogLine&) const {}
};

}  // namespace internal

/// Usage: SSR_LOG(kInfo) << "built " << n << " tables";
/// The streamed expressions are NOT evaluated when the level is disabled.
#define SSR_LOG(severity)                                              \
  !::ssr::LogLevelEnabled(::ssr::LogLevel::severity)                   \
      ? (void)0                                                        \
      : ::ssr::internal::Voidify() &                                   \
            ::ssr::internal::LogLine(::ssr::LogLevel::severity)

/// Tagged variant: SSR_LOG_C(kInfo, "harness") << "..." — the component
/// shows up in brackets and machine-readable sinks.
#define SSR_LOG_C(severity, component)                                 \
  !::ssr::LogLevelEnabled(::ssr::LogLevel::severity)                   \
      ? (void)0                                                        \
      : ::ssr::internal::Voidify() &                                   \
            ::ssr::internal::LogLine(::ssr::LogLevel::severity,        \
                                     (component))

}  // namespace ssr

#endif  // SSR_UTIL_LOGGING_H_
