#include "util/status.h"

namespace ssr {

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kDataLoss:
      return "DataLoss";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ssr
