#include "util/hash.h"

namespace ssr {

std::uint64_t HashBytes(std::string_view bytes, std::uint64_t seed) {
  // FNV-1a over the bytes, then a strong final mix so short keys avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ SplitMix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Fmix64(h);
}

HashFamily::HashFamily(std::size_t count, std::uint64_t master_seed) {
  seeds_.reserve(count);
  derived_.reserve(count);
  std::uint64_t state = master_seed;
  for (std::size_t i = 0; i < count; ++i) {
    state = SplitMix64(state + 0x632be59bd9b4e019ULL);
    seeds_.push_back(state);
    derived_.push_back(SplitMix64(state));
  }
}

TabulationHash::TabulationHash(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& table : table_) {
    for (auto& entry : table) {
      state = SplitMix64(state + 0x9e3779b97f4a7c15ULL);
      entry = state;
    }
  }
}

}  // namespace ssr
