// Hashing substrate: 64-bit mixers and seeded hash families. Min-wise
// permutations (minhash/) and the filter-index hash tables (core/) are both
// built on these primitives, so their statistical quality matters: all mixers
// here pass avalanche sanity tests (tests/util/hash_test.cc).

#ifndef SSR_UTIL_HASH_H_
#define SSR_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ssr {

/// SplitMix64 finalizer: a strong 64->64 bit mixer (Vigna, 2015). Stateless
/// and invertible; the workhorse for seed derivation and integer hashing.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Murmur3-style 64-bit finalizer (fmix64). Used where an independent mixing
/// family from SplitMix64 is desirable.
inline std::uint64_t Fmix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hashes a 64-bit key under a 64-bit seed. Different seeds give hash
/// functions that behave as if drawn independently from a universal family.
inline std::uint64_t HashU64(std::uint64_t key, std::uint64_t seed) {
  return Fmix64(key ^ SplitMix64(seed));
}

/// Combines two hash values (boost::hash_combine-style, 64-bit).
inline std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  return h ^ (SplitMix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Hashes an arbitrary byte string (FNV-1a core + final mixing). Used by
/// Dictionary to map external element representations to ElementIds.
std::uint64_t HashBytes(std::string_view bytes, std::uint64_t seed = 0);

/// A seeded family of hash functions over 64-bit keys. Instance i of the
/// family is HashU64(key, seed_i) with seeds derived from a master seed.
/// MinHasher uses one instance per min-wise permutation.
///
/// HashU64(key, seed) = Fmix64(key ^ SplitMix64(seed)) only depends on the
/// seed through SplitMix64(seed), so the family precomputes that derivation
/// once per function; Hash() is a single xor + Fmix64 per call, bit-identical
/// to evaluating HashU64 from the raw seed.
class HashFamily {
 public:
  /// Creates `count` hash functions derived from `master_seed`.
  HashFamily(std::size_t count, std::uint64_t master_seed);

  /// Number of functions in the family.
  std::size_t size() const { return seeds_.size(); }

  /// Evaluates function `i` on `key`.
  std::uint64_t Hash(std::size_t i, std::uint64_t key) const {
    return Fmix64(key ^ derived_[i]);
  }

  /// The seed of function `i` (exposed for serialization/tests).
  std::uint64_t seed(std::size_t i) const { return seeds_[i]; }

  /// SplitMix64(seed(i)): the hoisted per-function state. Hash(i, key) ==
  /// Fmix64(key ^ derived_seed(i)); the SIMD batch-signing kernels consume
  /// the derived array directly.
  std::uint64_t derived_seed(std::size_t i) const { return derived_[i]; }
  const std::vector<std::uint64_t>& derived_seeds() const { return derived_; }

 private:
  std::vector<std::uint64_t> seeds_;
  std::vector<std::uint64_t> derived_;
};

/// Tabulation hashing over 64-bit keys: 8 lookup tables of 256 random 64-bit
/// entries, XORed per input byte. 3-independent and extremely fast; provided
/// as an alternative implementation of "random permutation via hashing" with
/// stronger independence guarantees than multiplicative mixing.
class TabulationHash {
 public:
  /// Builds the 8x256 tables deterministically from `seed`.
  explicit TabulationHash(std::uint64_t seed);

  /// Hashes a 64-bit key.
  std::uint64_t Hash(std::uint64_t key) const {
    std::uint64_t h = 0;
    for (int byte = 0; byte < 8; ++byte) {
      h ^= table_[byte][(key >> (8 * byte)) & 0xff];
    }
    return h;
  }

 private:
  std::uint64_t table_[8][256];
};

}  // namespace ssr

#endif  // SSR_UTIL_HASH_H_
