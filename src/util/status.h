// RocksDB-style Status: cheap, exception-free error propagation across the
// public API. Functions that can fail return Status (or Result<T>, see
// result.h) instead of throwing.

#ifndef SSR_UTIL_STATUS_H_
#define SSR_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ssr {

/// Outcome of an operation. Default-constructed Status is OK. Non-OK
/// statuses carry a code and a human-readable message.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kAlreadyExists,
    kFailedPrecondition,
    kResourceExhausted,
    kInternal,
    kNotSupported,
    kCorruption,
    kDataLoss,
    kUnavailable,
  };

  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(Code code, std::string_view message)
      : code_(code), message_(message) {}

  // Named constructors, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status DataLoss(std::string_view msg) {
    return Status(Code::kDataLoss, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

/// Human-readable name of a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(Status::Code code);

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define SSR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::ssr::Status _ssr_status = (expr);      \
    if (!_ssr_status.ok()) return _ssr_status; \
  } while (0)

}  // namespace ssr

#endif  // SSR_UTIL_STATUS_H_
