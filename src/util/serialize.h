// Minimal binary (de)serialization: little-endian scalars, length-prefixed
// vectors and strings, over std::ostream/std::istream. Used by the storage
// and index persistence layers (SetStore::SaveTo / SetSimilarityIndex::
// SaveTo). Deliberately simple: fixed-width integers only, explicit
// versioned headers at the call sites, no reflection.
//
// Robustness: every length prefix is validated against a sanity limit AND
// the number of bytes actually remaining in the stream (when the stream is
// seekable), so a corrupt u64 length surfaces as Corruption instead of a
// multi-GiB resize/OOM. Truncation (EOF mid-field) is DataLoss; an
// implausible length is Corruption. Both classes optionally host fault-
// injection sites (fault/fault_injector.h) so tests can exercise torn
// writes, bit flips, and transient I/O errors deterministically.

#ifndef SSR_UTIL_SERIALIZE_H_
#define SSR_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <type_traits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_injector.h"
#include "util/status.h"

namespace ssr {

/// Writes little-endian scalars and length-prefixed containers. When
/// `fault_site` is non-empty and the default FaultInjector is enabled,
/// every raw write consults that site: kWriteError fails the stream,
/// kTornWrite writes a prefix then fails it, kBitFlip corrupts one bit of
/// the outgoing bytes (caught later by snapshot CRCs).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out, std::string_view fault_site = {})
      : out_(&out), fault_site_(fault_site) {}

  void WriteU8(std::uint8_t v) { WriteRaw(&v, 1); }
  void WriteU16(std::uint16_t v) { WriteRaw(&v, 2); }
  void WriteU32(std::uint32_t v) { WriteRaw(&v, 4); }
  void WriteU64(std::uint64_t v) { WriteRaw(&v, 8); }
  void WriteDouble(double v) { WriteRaw(&v, 8); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// Raw bytes without a length prefix (page images, section payloads).
  void WriteBytes(const void* data, std::size_t len) { WriteRaw(data, len); }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteVector needs a trivially copyable element type");
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// True iff every write so far succeeded.
  bool ok() const { return out_->good(); }

 private:
  void WriteRaw(const void* data, std::size_t len) {
    if (!fault_site_.empty() && fault::FaultInjector::Default().enabled()) {
      if (WriteRawWithFaults(data, len)) return;
    }
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(len));
  }

  /// Returns true when the fault fully handled the write.
  bool WriteRawWithFaults(const void* data, std::size_t len) {
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    const auto kind = injector.Check(fault_site_);
    if (!kind.has_value()) return false;
    switch (*kind) {
      case fault::FaultKind::kWriteError:
        out_->setstate(std::ios::failbit);
        return true;
      case fault::FaultKind::kTornWrite:
        out_->write(static_cast<const char*>(data),
                    static_cast<std::streamsize>(len / 2));
        out_->setstate(std::ios::failbit);
        return true;
      case fault::FaultKind::kBitFlip: {
        if (len == 0) return false;
        std::vector<std::uint8_t> copy(
            static_cast<const std::uint8_t*>(data),
            static_cast<const std::uint8_t*>(data) + len);
        const std::uint64_t bit = injector.NextRandom() % (len * 8);
        copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        out_->write(reinterpret_cast<const char*>(copy.data()),
                    static_cast<std::streamsize>(len));
        return true;
      }
      default:
        return false;  // read-side kinds are inert on a writer
    }
  }

  std::ostream* out_;
  std::string fault_site_;
};

/// Reads what BinaryWriter wrote. Every accessor returns a Status-checked
/// value via output parameter so truncated/corrupt streams surface as
/// errors, not garbage: EOF mid-field is DataLoss, an implausible length
/// prefix is Corruption.
class BinaryReader {
 public:
  /// "Anything larger in a single field is corruption, not data."
  static constexpr std::uint64_t kDefaultSanityLimit = 1ULL << 30;  // 1 GiB
  static constexpr std::uint64_t kUnknownSize = ~0ULL;

  explicit BinaryReader(std::istream& in, std::string_view fault_site = {},
                        std::uint64_t sanity_limit = kDefaultSanityLimit)
      : in_(&in), fault_site_(fault_site), sanity_limit_(sanity_limit) {}

  Status ReadU8(std::uint8_t* v) { return ReadRaw(v, 1); }
  Status ReadU16(std::uint16_t* v) { return ReadRaw(v, 2); }
  Status ReadU32(std::uint32_t* v) { return ReadRaw(v, 4); }
  Status ReadU64(std::uint64_t* v) { return ReadRaw(v, 8); }
  Status ReadDouble(double* v) { return ReadRaw(v, 8); }
  Status ReadBool(bool* v) {
    std::uint8_t byte = 0;
    SSR_RETURN_IF_ERROR(ReadU8(&byte));
    *v = byte != 0;
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    std::uint64_t size = 0;
    SSR_RETURN_IF_ERROR(ReadU64(&size));
    SSR_RETURN_IF_ERROR(CheckLength(size, "string"));
    s->resize(static_cast<std::size_t>(size));
    return ReadRaw(s->data(), s->size());
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ReadVector needs a trivially copyable element type");
    std::uint64_t size = 0;
    SSR_RETURN_IF_ERROR(ReadU64(&size));
    // Overflow-safe: bound the element count before multiplying.
    if (size > sanity_limit_ / sizeof(T)) {
      return Status::Corruption("vector length exceeds sanity limit");
    }
    SSR_RETURN_IF_ERROR(CheckLength(size * sizeof(T), "vector"));
    v->resize(static_cast<std::size_t>(size));
    return ReadRaw(v->data(), v->size() * sizeof(T));
  }

  /// Raw bytes without a length prefix (page images, section payloads).
  Status ReadBytes(void* out, std::size_t len) { return ReadRaw(out, len); }

  /// Bytes left before EOF, or kUnknownSize when the stream is not
  /// seekable. Used to reject length prefixes that promise more data than
  /// the stream can possibly hold.
  std::uint64_t RemainingBytes() {
    std::istream& in = *in_;
    if (!in.good()) return kUnknownSize;
    const std::istream::pos_type pos = in.tellg();
    if (pos == std::istream::pos_type(-1)) return kUnknownSize;
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(pos);
    if (end == std::istream::pos_type(-1) || end < pos) return kUnknownSize;
    return static_cast<std::uint64_t>(end - pos);
  }

 private:
  Status CheckLength(std::uint64_t bytes, std::string_view what) {
    if (bytes > sanity_limit_) {
      return Status::Corruption(std::string(what) +
                                " length exceeds sanity limit");
    }
    const std::uint64_t remaining = RemainingBytes();
    if (remaining != kUnknownSize && bytes > remaining) {
      return Status::Corruption(std::string(what) +
                                " length exceeds remaining stream bytes");
    }
    return Status::OK();
  }

  Status ReadRaw(void* data, std::size_t len) {
    if (!fault_site_.empty() && fault::FaultInjector::Default().enabled()) {
      Status injected;
      if (ReadRawWithFaults(data, len, &injected)) return injected;
    }
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    if (!in_->good() && len > 0) {
      return Status::DataLoss("unexpected end of stream");
    }
    return Status::OK();
  }

  /// Returns true when the fault fully handled the read; `*out_status` then
  /// carries the outcome (possibly OK for a bit flip, which corrupts but
  /// does not fail).
  bool ReadRawWithFaults(void* data, std::size_t len, Status* out_status) {
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    const auto kind = injector.Check(fault_site_);
    if (!kind.has_value()) return false;
    switch (*kind) {
      case fault::FaultKind::kReadError:
        *out_status = Status::Unavailable("injected read error");
        return true;
      case fault::FaultKind::kBitFlip: {
        in_->read(static_cast<char*>(data),
                  static_cast<std::streamsize>(len));
        if (!in_->good() && len > 0) {
          *out_status = Status::DataLoss("unexpected end of stream");
          return true;
        }
        if (len > 0) {
          const std::uint64_t bit = injector.NextRandom() % (len * 8);
          static_cast<std::uint8_t*>(data)[bit / 8] ^=
              static_cast<std::uint8_t>(1u << (bit % 8));
        }
        *out_status = Status::OK();
        return true;
      }
      default:
        return false;  // write-side kinds are inert on a reader
    }
  }

  std::istream* in_;
  std::string fault_site_;
  std::uint64_t sanity_limit_;
};

}  // namespace ssr

#endif  // SSR_UTIL_SERIALIZE_H_
