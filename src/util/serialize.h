// Minimal binary (de)serialization: little-endian scalars, length-prefixed
// vectors and strings, over std::ostream/std::istream. Used by the storage
// and index persistence layers (SetStore::SaveTo / SetSimilarityIndex::
// SaveTo). Deliberately simple: fixed-width integers only, explicit
// versioned headers at the call sites, no reflection.

#ifndef SSR_UTIL_SERIALIZE_H_
#define SSR_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <type_traits>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace ssr {

/// Writes little-endian scalars and length-prefixed containers.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(&out) {}

  void WriteU8(std::uint8_t v) { WriteRaw(&v, 1); }
  void WriteU16(std::uint16_t v) { WriteRaw(&v, 2); }
  void WriteU32(std::uint32_t v) { WriteRaw(&v, 4); }
  void WriteU64(std::uint64_t v) { WriteRaw(&v, 8); }
  void WriteDouble(double v) { WriteRaw(&v, 8); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteVector needs a trivially copyable element type");
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// True iff every write so far succeeded.
  bool ok() const { return out_->good(); }

 private:
  void WriteRaw(const void* data, std::size_t len) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(len));
  }
  std::ostream* out_;
};

/// Reads what BinaryWriter wrote. Every accessor returns a Status-checked
/// value via output parameter so truncated/corrupt streams surface as
/// errors, not garbage.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(&in) {}

  Status ReadU8(std::uint8_t* v) { return ReadRaw(v, 1); }
  Status ReadU16(std::uint16_t* v) { return ReadRaw(v, 2); }
  Status ReadU32(std::uint32_t* v) { return ReadRaw(v, 4); }
  Status ReadU64(std::uint64_t* v) { return ReadRaw(v, 8); }
  Status ReadDouble(double* v) { return ReadRaw(v, 8); }
  Status ReadBool(bool* v) {
    std::uint8_t byte = 0;
    SSR_RETURN_IF_ERROR(ReadU8(&byte));
    *v = byte != 0;
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    std::uint64_t size = 0;
    SSR_RETURN_IF_ERROR(ReadU64(&size));
    if (size > kSanityLimit) {
      return Status::Corruption("string length exceeds sanity limit");
    }
    s->resize(static_cast<std::size_t>(size));
    return ReadRaw(s->data(), s->size());
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ReadVector needs a trivially copyable element type");
    std::uint64_t size = 0;
    SSR_RETURN_IF_ERROR(ReadU64(&size));
    if (size * sizeof(T) > kSanityLimit) {
      return Status::Corruption("vector length exceeds sanity limit");
    }
    v->resize(static_cast<std::size_t>(size));
    return ReadRaw(v->data(), v->size() * sizeof(T));
  }

 private:
  // 16 GiB: anything larger in a single field is corruption, not data.
  static constexpr std::uint64_t kSanityLimit = 16ULL << 30;

  Status ReadRaw(void* data, std::size_t len) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    if (!in_->good() && len > 0) {
      return Status::Corruption("unexpected end of stream");
    }
    return Status::OK();
  }
  std::istream* in_;
};

}  // namespace ssr

#endif  // SSR_UTIL_SERIALIZE_H_
