#include "util/stopwatch.h"

namespace ssr {

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

std::uint64_t Stopwatch::ElapsedMicros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start_)
          .count());
}

}  // namespace ssr
