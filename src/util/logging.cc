#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace ssr {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

// The sink is replaced rarely (tests); guarded by a mutex that also
// serializes emission so interleaved lines stay whole.
std::mutex g_sink_mu;
LogSink g_sink;  // empty = default stderr sink

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void AppendField(std::string& out, const std::string& key,
                 const std::string& value) {
  out += ' ';
  out += key;
  out += '=';
  const bool quote =
      value.empty() || value.find_first_of(" \t\"") != std::string::npos;
  if (!quote) {
    out += value;
    return;
  }
  out += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

std::string FormatLogRecord(const LogRecord& record) {
  const std::time_t secs =
      std::chrono::system_clock::to_time_t(record.time);
  const auto sub_second =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          record.time.time_since_epoch()) %
      std::chrono::seconds(1);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp),
                "%04u-%02u-%02uT%02u:%02u:%02u.%03uZ",
                static_cast<unsigned>(tm_utc.tm_year + 1900) % 10000u,
                static_cast<unsigned>(tm_utc.tm_mon + 1),
                static_cast<unsigned>(tm_utc.tm_mday),
                static_cast<unsigned>(tm_utc.tm_hour),
                static_cast<unsigned>(tm_utc.tm_min),
                static_cast<unsigned>(tm_utc.tm_sec),
                static_cast<unsigned>(sub_second.count()));
  std::string out = stamp;
  out += ' ';
  out += LevelName(record.level);
  if (!record.component.empty()) {
    out += " [";
    out += record.component;
    out += ']';
  }
  out += ' ';
  out += record.message;
  for (const auto& [key, value] : record.fields) {
    AppendField(out, key, value);
  }
  return out;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void LogRecordMessage(LogRecord record) {
  if (!LogLevelEnabled(record.level)) {
    return;
  }
  record.time = std::chrono::system_clock::now();
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(record);
    return;
  }
  std::fprintf(stderr, "%s\n", FormatLogRecord(record).c_str());
}

void LogMessage(LogLevel level, const std::string& message) {
  LogRecord record;
  record.level = level;
  record.message = message;
  LogRecordMessage(std::move(record));
}

}  // namespace ssr
