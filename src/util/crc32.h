// CRC32 (IEEE 802.3 polynomial, the zlib/gzip/PNG checksum) for snapshot
// integrity. Every section of the v2 snapshot formats (storage/snapshot.h)
// carries a CRC32 of its payload so torn writes and bit flips are detected
// at load time instead of silently deserialized into garbage.

#ifndef SSR_UTIL_CRC32_H_
#define SSR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ssr {

/// Extends a running CRC32 with `len` bytes. Start (and finish) with
/// `crc = 0`; the pre/post-conditioning (~) is handled internally, so
/// Crc32Update(Crc32Update(0, a), b) == Crc32(concat(a, b)).
std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t len);

/// One-shot CRC32 of a byte buffer.
inline std::uint32_t Crc32(const void* data, std::size_t len) {
  return Crc32Update(0, data, len);
}

inline std::uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace ssr

#endif  // SSR_UTIL_CRC32_H_
