#include "util/random.h"

#include <cassert>
#include <cmath>

#include "util/hash.h"

namespace ssr {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors;
  // guarantees a nonzero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    word = SplitMix64(sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove bias.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: k iterations, set membership via sorted probing of a
  // small vector (k is small in all our uses).
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = Uniform(j + 1);
    bool seen = false;
    for (std::uint64_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  Shuffle(out);
  return out;
}

Rng Rng::Fork() {
  return Rng(Next() ^ 0x5851f42d4c957f2dULL);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  assert(n >= 1);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against floating point shortfall
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first rank whose CDF covers u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace ssr
