// Dictionary: bidirectional mapping between external element representations
// (strings: URLs, book titles, words) and dense ElementIds. The paper does
// not assume the element universe is known in advance; the dictionary grows
// as elements are first seen, which is exactly that model.

#ifndef SSR_UTIL_DICTIONARY_H_
#define SSR_UTIL_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Interns strings to ElementIds (dense, assigned in first-seen order) and
/// resolves ids back to strings. Not thread-safe.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id of `token`, interning it if unseen.
  ElementId Intern(std::string_view token);

  /// Returns the id of `token` if present, or NotFound.
  Result<ElementId> Lookup(std::string_view token) const;

  /// Returns the token for `id`, or NotFound if out of range.
  Result<std::string> Resolve(ElementId id) const;

  /// Converts a list of tokens into a normalized ElementSet, interning all
  /// unseen tokens.
  ElementSet InternSet(const std::vector<std::string>& tokens);

  /// Number of distinct interned tokens.
  std::size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, ElementId> ids_;
  std::vector<std::string> tokens_;
};

}  // namespace ssr

#endif  // SSR_UTIL_DICTIONARY_H_
