// Result<T>: a Status, or a value of type T. The value-or-error companion of
// status.h (analogous to absl::StatusOr / rocksdb's StatusOr patterns).

#ifndef SSR_UTIL_RESULT_H_
#define SSR_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ssr {

/// Holds either a value of type T (status is OK) or a non-OK Status.
/// Accessing the value of a failed Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Value accessors; valid only when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when the result failed.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
/// Usable only in functions returning Status.
#define SSR_ASSIGN_OR_RETURN(lhs, expr)              \
  do {                                               \
    auto _ssr_result = (expr);                       \
    if (!_ssr_result.ok()) return _ssr_result.status(); \
    lhs = std::move(_ssr_result).value();            \
  } while (0)

}  // namespace ssr

#endif  // SSR_UTIL_RESULT_H_
