#include "util/mathutil.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ssr {

std::uint64_t NextPowerOfTwo(std::uint64_t x) {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

int FloorLog2(std::uint64_t x) {
  if (x == 0) return -1;
  return 63 - std::countl_zero(x);
}

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

double IntegrateMidpoint(const std::function<double(double)>& f, double a,
                         double b, std::size_t steps) {
  if (steps == 0 || b <= a) return 0.0;
  const double h = (b - a) / static_cast<double>(steps);
  double acc = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    acc += f(a + (static_cast<double>(i) + 0.5) * h);
  }
  return acc * h;
}

double ChernoffTwoSidedBound(std::size_t n, double p, double eps) {
  const double mu = static_cast<double>(n) * p;
  return std::min(1.0, 2.0 * std::exp(-mu * eps * eps / 3.0));
}

std::size_t MinHashesForAccuracy(double s, double eps, double delta) {
  // Solve 2·exp(−k·s·(eps/s)²/3) <= delta for k where the deviation is an
  // absolute ±eps around mean k·s: relative factor eps/s.
  s = Clamp(s, 1e-9, 1.0);
  eps = std::max(eps, 1e-9);
  delta = Clamp(delta, 1e-12, 1.0);
  const double rel = eps / s;
  const double k = 3.0 * std::log(2.0 / delta) / (s * rel * rel);
  return static_cast<std::size_t>(std::ceil(k));
}

double BinomialUpperTail(std::size_t n, double p, std::size_t t) {
  if (t == 0) return 1.0;
  if (t > n) return 0.0;
  p = Clamp(p, 0.0, 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Incremental pmf: pmf(0) = (1-p)^n, pmf(i+1) = pmf(i)·(n-i)/(i+1)·p/(1-p).
  // Work in log space to start, then accumulate linearly.
  double log_pmf = static_cast<double>(n) * std::log1p(-p);
  double pmf = std::exp(log_pmf);
  double below = 0.0;  // P(X < t)
  const double ratio = p / (1.0 - p);
  for (std::size_t i = 0; i < t; ++i) {
    below += pmf;
    pmf *= ratio * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return Clamp(1.0 - below, 0.0, 1.0);
}

}  // namespace ssr
