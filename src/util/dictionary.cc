#include "util/dictionary.h"

#include "util/set_ops.h"

namespace ssr {

ElementId Dictionary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const ElementId id = static_cast<ElementId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

Result<ElementId> Dictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  if (it == ids_.end()) {
    return Status::NotFound("token not interned: " + std::string(token));
  }
  return it->second;
}

Result<std::string> Dictionary::Resolve(ElementId id) const {
  if (id >= tokens_.size()) {
    return Status::NotFound("element id out of range");
  }
  return tokens_[static_cast<std::size_t>(id)];
}

ElementSet Dictionary::InternSet(const std::vector<std::string>& tokens) {
  ElementSet out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(Intern(t));
  NormalizeSet(out);
  return out;
}

}  // namespace ssr
