// Core value types shared across the whole library.

#ifndef SSR_UTIL_TYPES_H_
#define SSR_UTIL_TYPES_H_

#include <cstdint>
#include <vector>

namespace ssr {

/// Identifier of a set in a collection ("sid" in the paper). Dense, assigned
/// in insertion order by SetStore / in-memory collections.
using SetId = std::uint32_t;

/// Sentinel for "no set".
inline constexpr SetId kInvalidSetId = static_cast<SetId>(-1);

/// Identifier of a set element. Elements from arbitrary domains (strings,
/// URLs, numbers) are mapped to 64-bit ids via util::Dictionary or any
/// user-supplied hash; the library never assumes a known universe.
using ElementId = std::uint64_t;

/// A set is represented as a sorted, duplicate-free vector of element ids.
/// Sortedness is an invariant relied upon by set_ops.h; use NormalizeSet()
/// to establish it.
using ElementSet = std::vector<ElementId>;

/// A collection of sets, indexed by SetId.
using SetCollection = std::vector<ElementSet>;

/// Similarity values (Jaccard or Hamming similarity) live in [0, 1].
using Similarity = double;

}  // namespace ssr

#endif  // SSR_UTIL_TYPES_H_
