// Deterministic random number generation. Everything in this library that is
// randomized (min-wise permutations, bit sampling, workload synthesis) is
// seeded explicitly so experiments are reproducible bit-for-bit.

#ifndef SSR_UTIL_RANDOM_H_
#define SSR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssr {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0xbadc0ffee0ddf00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next 64 random bits.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless technique (unbiased).
  std::uint64_t Uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples `k` distinct values from [0, n) (floyd's algorithm; returned in
  /// random order). Requires k <= n.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::size_t k);

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent child generator (for per-component streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

/// Zipf(N, alpha) sampler over ranks {0, .., n-1}: rank r is drawn with
/// probability proportional to 1/(r+1)^alpha. Used by the web-log workload
/// generator to model heavy-tailed URL popularity. Precomputes the CDF once
/// (O(n) space) and samples by binary search (O(log n)).
class ZipfDistribution {
 public:
  /// `n` must be >= 1, `alpha` >= 0 (alpha = 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double alpha);

  /// Draws one rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace ssr

#endif  // SSR_UTIL_RANDOM_H_
