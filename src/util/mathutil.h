// Small numeric helpers shared by the optimizer and the filter-function
// analysis: numeric integration over histograms, binomial/Chernoff tails,
// power-of-two utilities.

#ifndef SSR_UTIL_MATHUTIL_H_
#define SSR_UTIL_MATHUTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ssr {

/// Smallest power of two >= x (x = 0 maps to 1).
std::uint64_t NextPowerOfTwo(std::uint64_t x);

/// True iff x is a power of two (x > 0).
inline bool IsPowerOfTwo(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x > 0.
int FloorLog2(std::uint64_t x);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

/// Numerically integrates f over [a, b] with `steps` midpoint-rule panels.
/// The optimizer uses this for the expected false positive/negative
/// integrals (Definitions 6 and 7 of the paper).
double IntegrateMidpoint(const std::function<double(double)>& f, double a,
                         double b, std::size_t steps = 256);

/// Two-sided Chernoff bound for a Binomial(n, p) deviating from its mean by
/// a relative factor eps: P(|X − np| >= eps·np) <= 2·exp(−np·eps²/3).
/// Used to bound min-hash signature estimation error (Section 3.1).
double ChernoffTwoSidedBound(std::size_t n, double p, double eps);

/// Number of min-hash values k needed so the signature-based similarity
/// estimate is within ±eps of the true similarity s with probability at
/// least 1 − delta (inverted Chernoff bound, conservative).
std::size_t MinHashesForAccuracy(double s, double eps, double delta);

/// Exact binomial tail P(X >= t) for X ~ Binomial(n, p); O(n) time with
/// incremental pmf evaluation. n is expected to be small (<= a few thousand).
double BinomialUpperTail(std::size_t n, double p, std::size_t t);

}  // namespace ssr

#endif  // SSR_UTIL_MATHUTIL_H_
