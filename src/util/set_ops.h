// Exact set operations on sorted ElementSets: Jaccard similarity (the paper's
// Definition 1), intersection/union sizes, and normalization helpers. These
// are the ground-truth primitives every approximate structure is validated
// against, and the verification step of the composite index uses them to
// remove false positives.

#ifndef SSR_UTIL_SET_OPS_H_
#define SSR_UTIL_SET_OPS_H_

#include <cstddef>

#include "util/types.h"

namespace ssr {

/// Sorts and deduplicates `s` in place, establishing the ElementSet invariant.
void NormalizeSet(ElementSet& s);

/// Returns true iff `s` is sorted and duplicate-free.
bool IsNormalizedSet(const ElementSet& s);

/// |a ∩ b| for normalized sets (linear merge).
std::size_t IntersectionSize(const ElementSet& a, const ElementSet& b);

/// |a ∪ b| for normalized sets.
std::size_t UnionSize(const ElementSet& a, const ElementSet& b);

/// Jaccard coefficient sim(a, b) = |a ∩ b| / |a ∪ b| (Definition 1).
/// By convention sim(∅, ∅) = 1 (identical sets).
Similarity Jaccard(const ElementSet& a, const ElementSet& b);

/// Jaccard distance d(a, b) = 1 − sim(a, b); a metric (footnote 1 of the
/// paper).
inline double JaccardDistance(const ElementSet& a, const ElementSet& b) {
  return 1.0 - Jaccard(a, b);
}

}  // namespace ssr

#endif  // SSR_UTIL_SET_OPS_H_
