#include "util/set_ops.h"

#include <algorithm>

namespace ssr {

void NormalizeSet(ElementSet& s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
}

bool IsNormalizedSet(const ElementSet& s) {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1] >= s[i]) return false;
  }
  return true;
}

std::size_t IntersectionSize(const ElementSet& a, const ElementSet& b) {
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t UnionSize(const ElementSet& a, const ElementSet& b) {
  return a.size() + b.size() - IntersectionSize(a, b);
}

Similarity Jaccard(const ElementSet& a, const ElementSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  const std::size_t inter = IntersectionSize(a, b);
  const std::size_t uni = a.size() + b.size() - inter;
  return static_cast<Similarity>(inter) / static_cast<Similarity>(uni);
}

}  // namespace ssr
