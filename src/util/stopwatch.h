// Wall-clock stopwatch for the evaluation harness (CPU-side timing of query
// processing; simulated I/O time comes from storage/io_cost_model.h).

#ifndef SSR_UTIL_STOPWATCH_H_
#define SSR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ssr {

/// Measures elapsed wall time with steady_clock resolution. Start() resets.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  /// (Re)starts the stopwatch.
  void Start() { start_ = Clock::now(); }

  /// Elapsed seconds since Start().
  double ElapsedSeconds() const;

  /// Elapsed microseconds since Start().
  std::uint64_t ElapsedMicros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ssr

#endif  // SSR_UTIL_STOPWATCH_H_
