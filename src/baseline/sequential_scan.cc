#include "baseline/sequential_scan.h"

#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {

Result<ScanResult> SequentialScanQuery(SetStore& store,
                                       const ElementSet& query, double sigma1,
                                       double sigma2) {
  if (!(sigma1 >= 0.0 && sigma1 <= sigma2 && sigma2 <= 1.0)) {
    return Status::InvalidArgument("require 0 <= sigma1 <= sigma2 <= 1");
  }
  if (!IsNormalizedSet(query)) {
    return Status::InvalidArgument("query set must be sorted and unique");
  }
  Stopwatch watch;
  const IoStats before = store.io().stats();
  ScanResult result;
  constexpr double kEps = 1e-12;
  store.ScanAll([&](SetId sid, const ElementSet& set) {
    ++result.stats.sets_examined;
    const double sim = Jaccard(set, query);
    if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
      result.sids.push_back(sid);
    }
    return true;
  });
  result.stats.results = result.sids.size();
  result.stats.io = store.io().stats() - before;
  result.stats.io_seconds =
      result.stats.io.SimulatedSeconds(store.io().params());
  result.stats.cpu_seconds = watch.ElapsedSeconds();
  return result;
}

double ScanCrossoverResultSize(const SetStore& store) {
  const double a = store.AvgSetPages();
  const double rtn = store.io().params().random_multiplier;
  if (rtn <= 0.0) return 0.0;
  return static_cast<double>(store.size()) * a / rtn;
}

}  // namespace ssr
