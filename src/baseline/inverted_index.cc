#include "baseline/inverted_index.h"

#include <algorithm>

#include "util/set_ops.h"

namespace ssr {

InvertedIndex::InvertedIndex(const SetCollection& sets) : sets_(&sets) {
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (ElementId e : sets[i]) {
      postings_[e].push_back(static_cast<SetId>(i));
      ++total_postings_;
    }
  }
}

std::vector<SetId> InvertedIndex::Query(const ElementSet& query, double sigma1,
                                        double sigma2) const {
  constexpr double kEps = 1e-12;
  std::vector<SetId> out;
  if (sigma1 <= kEps) {
    // Similarity-0 sets (disjoint) qualify; no pruning possible.
    for (std::size_t i = 0; i < sets_->size(); ++i) {
      const double sim = Jaccard((*sets_)[i], query);
      if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
        out.push_back(static_cast<SetId>(i));
      }
    }
    return out;
  }
  // Count intersections by merging posting lists.
  std::unordered_map<SetId, std::size_t> overlap;
  for (ElementId e : query) {
    auto it = postings_.find(e);
    if (it == postings_.end()) continue;
    for (SetId sid : it->second) ++overlap[sid];
  }
  for (const auto& [sid, inter] : overlap) {
    const std::size_t uni =
        (*sets_)[sid].size() + query.size() - inter;
    const double sim = static_cast<double>(inter) / static_cast<double>(uni);
    if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
      out.push_back(sid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ssr
