// Exact in-memory ground truth: the reference answer a(q) every approximate
// result is scored against (recall/precision in Section 5 are defined
// relative to it). No I/O accounting — this is the oracle, not a contender.

#ifndef SSR_BASELINE_EXACT_EVALUATOR_H_
#define SSR_BASELINE_EXACT_EVALUATOR_H_

#include <vector>

#include "util/types.h"

namespace ssr {

/// Holds a reference to an in-memory collection and answers range queries
/// exactly by brute force.
class ExactEvaluator {
 public:
  /// `sets` must outlive the evaluator; sid i is sets[i].
  explicit ExactEvaluator(const SetCollection& sets) : sets_(&sets) {}

  /// All sids with σ1 <= sim(set, query) <= σ2, ascending.
  std::vector<SetId> Query(const ElementSet& query, double sigma1,
                           double sigma2) const;

  /// Exact similarity of sid's set with the query.
  double SimilarityTo(SetId sid, const ElementSet& query) const;

  /// All pairwise similarities >= `threshold` as (i, j, sim) triples
  /// (i < j). O(N²); utility for tests and small analyses.
  std::vector<std::tuple<SetId, SetId, double>> SimilarPairs(
      double threshold) const;

  std::size_t size() const { return sets_->size(); }

 private:
  const SetCollection* sets_;
};

}  // namespace ssr

#endif  // SSR_BASELINE_EXACT_EVALUATOR_H_
