// Sequential scan: the paper's comparator (Section 6). Reads every page of
// the collection sequentially, evaluates exact Jaccard similarity of every
// live set against the query, and returns the ones inside the range. Exact
// (recall 1) but pays the full file read plus per-set CPU on every query.

#ifndef SSR_BASELINE_SEQUENTIAL_SCAN_H_
#define SSR_BASELINE_SEQUENTIAL_SCAN_H_

#include <vector>

#include "storage/io_cost_model.h"
#include "storage/set_store.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Per-query scan statistics.
struct ScanStats {
  std::size_t sets_examined = 0;
  std::size_t results = 0;
  IoStats io;
  double io_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// Scan answer.
struct ScanResult {
  std::vector<SetId> sids;
  ScanStats stats;
};

/// Answers (q, [σ1, σ2]) by scanning `store` in full.
/// Requires 0 <= σ1 <= σ2 <= 1 and a normalized query set.
Result<ScanResult> SequentialScanQuery(SetStore& store,
                                       const ElementSet& query, double sigma1,
                                       double sigma2);

/// Analytic crossover bound of Section 6: the query result size (in sets)
/// below which the index is expected to beat the scan,
/// |Q| < |S| · a / rtn, with a = average set size in pages and
/// rtn = random/sequential cost ratio.
double ScanCrossoverResultSize(const SetStore& store);

}  // namespace ssr

#endif  // SSR_BASELINE_SEQUENTIAL_SCAN_H_
