#include "baseline/exact_evaluator.h"

#include <tuple>

#include "util/set_ops.h"

namespace ssr {

std::vector<SetId> ExactEvaluator::Query(const ElementSet& query,
                                         double sigma1, double sigma2) const {
  std::vector<SetId> out;
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < sets_->size(); ++i) {
    const double sim = Jaccard((*sets_)[i], query);
    if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
      out.push_back(static_cast<SetId>(i));
    }
  }
  return out;
}

double ExactEvaluator::SimilarityTo(SetId sid, const ElementSet& query) const {
  return Jaccard((*sets_)[sid], query);
}

std::vector<std::tuple<SetId, SetId, double>> ExactEvaluator::SimilarPairs(
    double threshold) const {
  std::vector<std::tuple<SetId, SetId, double>> out;
  for (std::size_t i = 0; i < sets_->size(); ++i) {
    for (std::size_t j = i + 1; j < sets_->size(); ++j) {
      const double sim = Jaccard((*sets_)[i], (*sets_)[j]);
      if (sim >= threshold) {
        out.emplace_back(static_cast<SetId>(i), static_cast<SetId>(j), sim);
      }
    }
  }
  return out;
}

}  // namespace ssr
