// Inverted-list exact baseline: element -> posting list of sids. A range
// query with σ1 > 0 only needs sets sharing at least one element with the
// query (sim > 0 requires a nonempty intersection), so candidate generation
// merges the query elements' posting lists and similarity is computed from
// the exact intersection counts. Exact like the scan, but avoids touching
// disjoint sets; degenerates to a scan-equivalent for σ1 = 0. Included as
// the extra comparator the paper's related work (signature files) gestures
// at.

#ifndef SSR_BASELINE_INVERTED_INDEX_H_
#define SSR_BASELINE_INVERTED_INDEX_H_

#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// In-memory inverted index over a set collection.
class InvertedIndex {
 public:
  /// Builds postings for every element of every set. sid i is sets[i].
  explicit InvertedIndex(const SetCollection& sets);

  /// Exact answer to (q, [σ1, σ2]). For σ1 <= 0 falls back to scoring
  /// every set (disjoint sets qualify at similarity 0).
  std::vector<SetId> Query(const ElementSet& query, double sigma1,
                           double sigma2) const;

  /// Number of distinct indexed elements.
  std::size_t vocabulary_size() const { return postings_.size(); }

  /// Total posting entries (sum of set cardinalities).
  std::size_t total_postings() const { return total_postings_; }

 private:
  const SetCollection* sets_;
  std::unordered_map<ElementId, std::vector<SetId>> postings_;
  std::size_t total_postings_ = 0;
};

}  // namespace ssr

#endif  // SSR_BASELINE_INVERTED_INDEX_H_
