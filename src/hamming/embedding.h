// The full two-step embedding of Section 3: a set S is mapped to its
// min-hash signature (S -> V) and the signature to the concatenation of the
// ECC codewords of its coordinates (V -> H^{mk}).
//
// With an equidistant code of codeword length m and pairwise distance d, two
// signatures agreeing on a fraction s of their k coordinates embed to binary
// vectors at Hamming distance exactly (1-s)·k·d, i.e. Hamming similarity
//     S_H = 1 − (1 − s)·ρ,   ρ = d/m.
// For the Hadamard code ρ = 1/2, giving the paper's Theorem 1:
// d_H = (1−s)/2 · D with D = m·k.
//
// The filter indices never materialize the D-dimensional vectors: any single
// bit of the embedding is computable from the signature in O(1) via
// EmbeddedBit(). Materialization (EmbedSignature) exists for tests, the
// embedding-fidelity experiment, and small collections.

#ifndef SSR_HAMMING_EMBEDDING_H_
#define SSR_HAMMING_EMBEDDING_H_

#include <memory>
#include <utility>

#include "ecc/code.h"
#include "hamming/bitvector.h"
#include "minhash/min_hasher.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Configuration of the full embedding.
struct EmbeddingParams {
  MinHashParams minhash;
  CodeKind code_kind = CodeKind::kHadamard;
};

/// Immutable embedding pipeline shared by index build and query processing.
class Embedding {
 public:
  /// Creates the pipeline; fails on invalid parameters.
  static Result<Embedding> Create(const EmbeddingParams& params);

  /// Min-hash signature of a set (step S -> V).
  Signature Sign(const ElementSet& set) const { return hasher_->Sign(set); }

  /// Signs a contiguous run of sets (bit-identical to `count` Sign calls;
  /// the family kernels amortize dispatch over the run). The serial and
  /// parallel index builds both sign through this entry point.
  void SignBatch(const ElementSet* sets, std::size_t count,
                 Signature* out) const {
    hasher_->SignBatch(sets, count, out);
  }

  /// Materializes the D-dimensional binary vector of a signature
  /// (step V -> H). D = dimension().
  BitVector EmbedSignature(const Signature& sig) const;

  /// Both steps: set -> D-dimensional binary vector.
  BitVector Embed(const ElementSet& set) const {
    return EmbedSignature(Sign(set));
  }

  /// Bit `global_pos` (0 <= global_pos < dimension()) of the embedded vector
  /// of `sig`, computed on the fly without materialization.
  bool EmbeddedBit(const Signature& sig, std::size_t global_pos) const {
    const unsigned m = code_->codeword_bits();
    return code_->Bit(sig[global_pos / m], static_cast<unsigned>(global_pos % m));
  }

  /// Hamming dimensionality D = m·k.
  std::size_t dimension() const {
    return static_cast<std::size_t>(code_->codeword_bits()) *
           hasher_->params().num_hashes;
  }

  /// ρ = d/m: the fraction of codeword bits that flip between two distinct
  /// codewords (1/2 for Hadamard). 0 for non-equidistant codes.
  double distance_ratio() const { return rho_; }

  /// Maps signature-agreement similarity s to embedded Hamming similarity:
  /// S_H = 1 − (1 − s)·ρ. Exact for equidistant codes; a heuristic identity
  /// mapping for non-equidistant codes.
  double SetToHammingSimilarity(double s) const;

  /// Inverse of SetToHammingSimilarity, clamped into [0, 1].
  double HammingToSetSimilarity(double s_h) const;

  /// Maps a set-similarity query range [s1, s2] to the corresponding
  /// Hamming distance range [d1, d2] over the embedded space (Theorem 1):
  /// d = (1 − s)·ρ·D, so d1 comes from s2 and d2 from s1.
  std::pair<std::size_t, std::size_t> SimilarityRangeToDistanceRange(
      double s1, double s2) const;

  const MinHasher& hasher() const { return *hasher_; }
  const Code& code() const { return *code_; }
  const EmbeddingParams& params() const { return params_; }

 private:
  Embedding(EmbeddingParams params, std::shared_ptr<MinHasher> hasher,
            std::shared_ptr<Code> code);

  EmbeddingParams params_;
  // shared_ptr so Embedding stays cheaply copyable (index + queries share it).
  std::shared_ptr<MinHasher> hasher_;
  std::shared_ptr<Code> code_;
  double rho_;
};

}  // namespace ssr

#endif  // SSR_HAMMING_EMBEDDING_H_
