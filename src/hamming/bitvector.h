// Packed binary vectors: the points of the Hamming space H^{mk}
// (Section 3.2). Backed by 64-bit words with popcount-based distance.

#ifndef SSR_HAMMING_BITVECTOR_H_
#define SSR_HAMMING_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ssr {

/// Fixed-length bit vector. Bits beyond size() in the last word are kept
/// zero (class invariant), so word-wise operations are exact.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `num_bits` zero bits.
  explicit BitVector(std::size_t num_bits);

  /// Creates from a "0101..." string (for tests and examples).
  static BitVector FromString(const std::string& bits);

  std::size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i, bool value) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Number of set bits.
  std::size_t PopCount() const;

  /// Flips every bit in place (used by the Dissimilarity Filter Index,
  /// Theorem 2).
  void ComplementInPlace();

  /// Returns the complement without modifying this vector.
  BitVector Complement() const;

  /// Appends the low `count` bits of `bits` (LSB first). Grows the vector.
  void AppendBits(std::uint64_t bits, unsigned count);

  /// Appends `count` bits from a packed word array (LSB-first within words).
  void AppendWords(const std::uint64_t* words, std::size_t count);

  /// Direct word access (read-only; (size()+63)/64 words).
  const std::vector<std::uint64_t>& words() const { return words_; }

  bool operator==(const BitVector& other) const = default;

  /// "0101..." rendering (for tests and debugging).
  std::string ToString() const;

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hamming distance: number of differing bits (Definition 3). Requires equal
/// sizes; asserts in debug builds, returns max(size) mismatch-tolerant
/// otherwise.
std::size_t HammingDistance(const BitVector& a, const BitVector& b);

/// Hamming similarity: fraction of agreeing bits, 1 - d_H/t (Definition 4).
/// Two empty vectors have similarity 1.
double HammingSimilarity(const BitVector& a, const BitVector& b);

}  // namespace ssr

#endif  // SSR_HAMMING_BITVECTOR_H_
