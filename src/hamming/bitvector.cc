#include "hamming/bitvector.h"

#include <bit>
#include <cassert>

namespace ssr {

BitVector::BitVector(std::size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') v.Set(i, true);
  }
  return v;
}

std::size_t BitVector::PopCount() const {
  // std::popcount lowers to a single POPCNT when the target allows it (the
  // build adds -mpopcnt on x86-64; see SSR_ENABLE_POPCNT in CMake).
  std::size_t count = 0;
  for (std::uint64_t w : words_) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

void BitVector::ComplementInPlace() {
  for (std::uint64_t& w : words_) w = ~w;
  // Re-zero the bits past num_bits_ to preserve the class invariant.
  const unsigned tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

BitVector BitVector::Complement() const {
  BitVector out = *this;
  out.ComplementInPlace();
  return out;
}

void BitVector::AppendBits(std::uint64_t bits, unsigned count) {
  assert(count <= 64);
  for (unsigned i = 0; i < count; ++i) {
    const std::size_t pos = num_bits_ + i;
    if ((pos >> 6) >= words_.size()) words_.push_back(0);
    if ((bits >> i) & 1u) {
      words_[pos >> 6] |= (1ULL << (pos & 63));
    }
  }
  num_bits_ += count;
}

void BitVector::AppendWords(const std::uint64_t* words, std::size_t count) {
  std::size_t remaining = count;
  std::size_t w = 0;
  while (remaining > 0) {
    const unsigned chunk = remaining >= 64 ? 64u : static_cast<unsigned>(remaining);
    AppendBits(words[w], chunk);
    remaining -= chunk;
    ++w;
  }
}

std::string BitVector::ToString() const {
  std::string out(num_bits_, '0');
  for (std::size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) out[i] = '1';
  }
  return out;
}

std::size_t HammingDistance(const BitVector& a, const BitVector& b) {
  assert(a.size() == b.size());
  if (a.size() != b.size()) return a.size() > b.size() ? a.size() : b.size();
  std::size_t dist = 0;
  const auto& aw = a.words();
  const auto& bw = b.words();
  for (std::size_t i = 0; i < aw.size(); ++i) {
    dist += static_cast<std::size_t>(std::popcount(aw[i] ^ bw[i]));
  }
  return dist;
}

double HammingSimilarity(const BitVector& a, const BitVector& b) {
  if (a.size() == 0 && b.size() == 0) return 1.0;
  const std::size_t t = a.size();
  if (t == 0 || t != b.size()) return 0.0;
  return 1.0 -
         static_cast<double>(HammingDistance(a, b)) / static_cast<double>(t);
}

}  // namespace ssr
