#include "hamming/embedding.h"

#include <cmath>
#include <vector>

#include "util/mathutil.h"

namespace ssr {

Result<Embedding> Embedding::Create(const EmbeddingParams& params) {
  SSR_RETURN_IF_ERROR(params.minhash.Validate());
  auto code_result = MakeCode(params.code_kind, params.minhash.value_bits);
  if (!code_result.ok()) return code_result.status();
  auto hasher = std::make_shared<MinHasher>(params.minhash);
  return Embedding(params, std::move(hasher),
                   std::shared_ptr<Code>(std::move(code_result).value()));
}

Embedding::Embedding(EmbeddingParams params, std::shared_ptr<MinHasher> hasher,
                     std::shared_ptr<Code> code)
    : params_(std::move(params)),
      hasher_(std::move(hasher)),
      code_(std::move(code)) {
  rho_ = code_->is_equidistant()
             ? static_cast<double>(code_->pairwise_distance()) /
                   static_cast<double>(code_->codeword_bits())
             : 0.0;
}

BitVector Embedding::EmbedSignature(const Signature& sig) const {
  BitVector out;
  const unsigned m = code_->codeword_bits();
  std::vector<std::uint64_t> scratch(code_->codeword_words());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    code_->Encode(sig[i], scratch.data());
    out.AppendWords(scratch.data(), m);
  }
  return out;
}

double Embedding::SetToHammingSimilarity(double s) const {
  if (rho_ == 0.0) return s;  // non-equidistant: no affine mapping exists
  return 1.0 - (1.0 - Clamp(s, 0.0, 1.0)) * rho_;
}

double Embedding::HammingToSetSimilarity(double s_h) const {
  if (rho_ == 0.0) return s_h;
  return Clamp(1.0 - (1.0 - s_h) / rho_, 0.0, 1.0);
}

std::pair<std::size_t, std::size_t> Embedding::SimilarityRangeToDistanceRange(
    double s1, double s2) const {
  const double d_max = (1.0 - Clamp(s1, 0.0, 1.0)) * rho_;
  const double d_min = (1.0 - Clamp(s2, 0.0, 1.0)) * rho_;
  const double dim = static_cast<double>(dimension());
  return {static_cast<std::size_t>(std::floor(d_min * dim)),
          static_cast<std::size_t>(std::ceil(d_max * dim))};
}

}  // namespace ssr
