#include "shard/sharded_index.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {
namespace shard {

namespace {

constexpr std::string_view kShardedIndexMagic = "SSRSHARD";
constexpr std::uint32_t kShardedIndexVersion = 1;

std::string ShardScope(const std::string& base, std::uint32_t s) {
  std::string scope = base;
  scope += "/shard/";
  scope += std::to_string(s);
  return scope;
}

std::string ShardSectionName(std::uint32_t s, const char* kind) {
  std::string name = "shard";
  name += std::to_string(s);
  name += '_';
  name += kind;
  return name;
}

struct RebalanceMetrics {
  obs::Counter* begun;      // ssr_rebalance_begun_total
  obs::Counter* finished;   // ssr_rebalance_finished_total
  obs::Counter* moves;      // ssr_rebalance_moves_total
  obs::Counter* skipped;    // ssr_rebalance_moves_skipped_total
  obs::Gauge* active;       // ssr_rebalance_active
  obs::Gauge* pending;      // ssr_rebalance_pending_moves
};

RebalanceMetrics& Rebal() {
  static RebalanceMetrics* m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    auto* metrics = new RebalanceMetrics();
    metrics->begun = r.GetCounter("ssr_rebalance_begun_total");
    metrics->finished = r.GetCounter("ssr_rebalance_finished_total");
    metrics->moves = r.GetCounter("ssr_rebalance_moves_total");
    metrics->skipped = r.GetCounter("ssr_rebalance_moves_skipped_total");
    metrics->active = r.GetGauge("ssr_rebalance_active");
    metrics->pending = r.GetGauge("ssr_rebalance_pending_moves");
    return metrics;
  }();
  return *m;
}

}  // namespace

std::uint32_t ResolveShardCount(std::uint32_t num_shards) {
  if (num_shards > 0) return num_shards;
  if (const char* env = std::getenv("SSR_SHARDS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::uint32_t>(parsed);
    }
  }
  return 1;  // sharding is opt-in; unset means a single shard
}

ShardedSetSimilarityIndex::ShardedSetSimilarityIndex(
    ShardedIndexOptions options, IndexLayout layout)
    : options_(std::move(options)),
      layout_(std::move(layout)),
      map_(options_.num_shards, options_.map_seed) {
  // The caller (Build/Load) resolved num_shards before constructing us. The
  // base metrics scope hangs the per-shard scopes off one stable prefix.
  base_scope_ = options_.index.metrics_scope.empty()
                    ? obs::MetricsRegistry::Default().NewScope("sharded")
                    : options_.index.metrics_scope;
  shards_.EnsureCapacity(options_.num_shards);
  for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
    owned_shards_.push_back(std::make_unique<Shard>());
    shards_.Set(s, owned_shards_.back().get());
  }
  num_shards_.store(options_.num_shards, std::memory_order_seq_cst);
}

void ShardedSetSimilarityIndex::FreeShards() {
  // Slots may still point at the shards; null them before the owners go so
  // a stale Get during single-threaded teardown cannot dangle.
  for (std::uint32_t s = 0; s < shards_.capacity(); ++s) {
    shards_.Set(s, nullptr);
  }
  owned_shards_.clear();
}

ShardedSetSimilarityIndex::~ShardedSetSimilarityIndex() { FreeShards(); }

ShardedSetSimilarityIndex::ShardedSetSimilarityIndex(
    ShardedSetSimilarityIndex&& other) noexcept
    : options_(std::move(other.options_)),
      layout_(std::move(other.layout_)),
      base_scope_(std::move(other.base_scope_)),
      map_(std::move(other.map_)),
      shards_(std::move(other.shards_)),
      owned_shards_(std::move(other.owned_shards_)),
      shard_wals_(std::move(other.shard_wals_)),
      local_of_global_(std::move(other.local_of_global_)),
      build_stats_(std::move(other.build_stats_)),
      epoch_manager_(other.epoch_manager_),
      rebalance_target_(other.rebalance_target_),
      pending_moves_(std::move(other.pending_moves_)),
      next_move_(other.next_move_),
      moves_done_(other.moves_done_),
      moves_skipped_(other.moves_skipped_),
      rebalance_checkpointed_(other.rebalance_checkpointed_),
      rebalance_wedged_(other.rebalance_wedged_),
      checkpoint_hook_(std::move(other.checkpoint_hook_)) {
  num_shards_.store(other.num_shards_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  num_live_.store(other.num_live_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  rebalance_active_.store(
      other.rebalance_active_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.num_shards_.store(0, std::memory_order_relaxed);
  other.num_live_.store(0, std::memory_order_relaxed);
  other.rebalance_active_.store(false, std::memory_order_relaxed);
  other.epoch_manager_ = nullptr;
  other.next_move_ = other.moves_done_ = other.moves_skipped_ = 0;
}

ShardedSetSimilarityIndex& ShardedSetSimilarityIndex::operator=(
    ShardedSetSimilarityIndex&& other) noexcept {
  if (this != &other) {
    FreeShards();
    options_ = std::move(other.options_);
    layout_ = std::move(other.layout_);
    base_scope_ = std::move(other.base_scope_);
    map_ = std::move(other.map_);
    shards_ = std::move(other.shards_);
    owned_shards_ = std::move(other.owned_shards_);
    shard_wals_ = std::move(other.shard_wals_);
    local_of_global_ = std::move(other.local_of_global_);
    build_stats_ = std::move(other.build_stats_);
    epoch_manager_ = other.epoch_manager_;
    rebalance_target_ = other.rebalance_target_;
    pending_moves_ = std::move(other.pending_moves_);
    next_move_ = other.next_move_;
    moves_done_ = other.moves_done_;
    moves_skipped_ = other.moves_skipped_;
    rebalance_checkpointed_ = other.rebalance_checkpointed_;
    rebalance_wedged_ = other.rebalance_wedged_;
    checkpoint_hook_ = std::move(other.checkpoint_hook_);
    num_shards_.store(other.num_shards_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    num_live_.store(other.num_live_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    rebalance_active_.store(
        other.rebalance_active_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.num_shards_.store(0, std::memory_order_relaxed);
    other.num_live_.store(0, std::memory_order_relaxed);
    other.rebalance_active_.store(false, std::memory_order_relaxed);
    other.epoch_manager_ = nullptr;
    other.next_move_ = other.moves_done_ = other.moves_skipped_ = 0;
  }
  return *this;
}

Status ShardedSetSimilarityIndex::CreateShard(std::uint32_t s) {
  if (shards_.Get(s) == nullptr) {
    owned_shards_.push_back(std::make_unique<Shard>());
    shards_.Set(s, owned_shards_.back().get());
  }
  const std::string scope = ShardScope(base_scope_, s);
  SetStoreOptions store_options = options_.store;
  store_options.metrics_scope = scope + "/store";
  ShardAt(s).store = std::make_unique<SetStore>(store_options);
  return Status::OK();
}

void ShardedSetSimilarityIndex::EnableConcurrentWrites(
    exec::EpochManager* manager) {
  if (manager == nullptr) manager = &exec::EpochManager::Default();
  epoch_manager_ = manager;
  shards_.SetEpochManager(manager);
  const std::uint32_t n = num_shards();
  for (std::uint32_t s = 0; s < n; ++s) {
    Shard* sh = shards_.Get(s);
    if (sh == nullptr) continue;
    sh->global_of_local.SetEpochManager(manager);
    if (sh->index != nullptr) sh->index->EnableConcurrentWrites(manager);
  }
}

std::vector<SetId> ShardedSetSimilarityIndex::global_of_local(
    std::uint32_t s) const {
  std::optional<exec::EpochGuard> guard;
  if (epoch_manager_ != nullptr) guard.emplace(*epoch_manager_);
  const Shard* sh = shards_.Get(s);
  if (sh == nullptr) return {};
  const std::size_t n = sh->local_count.load(std::memory_order_seq_cst);
  std::vector<SetId> out(n, kInvalidSetId);
  for (std::size_t local = 0; local < n; ++local) {
    out[local] = sh->global_of_local.Get(local);
  }
  return out;
}

Result<ShardedSetSimilarityIndex> ShardedSetSimilarityIndex::Build(
    const SetCollection& sets, const IndexLayout& layout,
    const ShardedIndexOptions& options) {
  SSR_RETURN_IF_ERROR(layout.Validate());

  ShardedIndexOptions resolved = options;
  resolved.num_shards = ResolveShardCount(options.num_shards);
  ShardedSetSimilarityIndex sharded(std::move(resolved), layout);

  Stopwatch watch;
  obs::TraceSpan span("sharded_build");
  span.Tag("shards", static_cast<std::uint64_t>(sharded.num_shards()));
  span.Tag("sets", static_cast<std::uint64_t>(sets.size()));

  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s) {
    SSR_RETURN_IF_ERROR(sharded.CreateShard(s));
  }

  // Phase 1: partition. Global sid = position in `sets`; every sid gets an
  // explicit recorded vote so the placement is reproducible from the
  // snapshot, never re-derived.
  sharded.local_of_global_.resize(sets.size());
  for (SetId gsid = 0; gsid < sets.size(); ++gsid) {
    const std::uint32_t s = sharded.map_.Assign(gsid);
    Shard& sh = sharded.ShardAt(s);
    SetId local = kInvalidSetId;
    SSR_ASSIGN_OR_RETURN(local, sh.store->Add(sets[gsid]));
    sh.global_of_local.Set(local, gsid);
    sh.local_count.store(local + std::size_t{1}, std::memory_order_seq_cst);
    sharded.local_of_global_[gsid] = LocalRef{s, local};
  }
  sharded.num_live_.store(sets.size(), std::memory_order_relaxed);

  // Phase 2: per-shard index builds (each using the parallel builder).
  // Shards build one after another on this host but deploy independently,
  // so the modeled makespan is the slowest shard, not the sum.
  sharded.build_stats_.per_shard.reserve(sharded.num_shards());
  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s) {
    obs::TraceSpan shard_span("sharded_build_shard");
    shard_span.Tag("shard", static_cast<std::uint64_t>(s));
    Shard& sh = sharded.ShardAt(s);
    IndexOptions index_options = sharded.options_.index;
    index_options.metrics_scope = ShardScope(sharded.base_scope_, s) + "/index";
    auto built = SetSimilarityIndex::Build(*sh.store, layout, index_options);
    if (!built.ok()) return built.status();
    sh.index = std::make_unique<SetSimilarityIndex>(std::move(built).value());
    sharded.build_stats_.per_shard.push_back(sh.index->build_stats());
    sharded.build_stats_.modeled_makespan_seconds =
        std::max(sharded.build_stats_.modeled_makespan_seconds,
                 sh.index->build_stats().makespan_seconds);
  }
  sharded.build_stats_.wall_seconds = watch.ElapsedSeconds();
  span.Tag("modeled_makespan_seconds",
           sharded.build_stats_.modeled_makespan_seconds);
  return sharded;
}

Status ShardedSetSimilarityIndex::InsertIntoShardLocked(
    std::uint32_t s, SetId sid, const ElementSet& set) {
  Shard& sh = ShardAt(s);
  SetId local = kInvalidSetId;
  SSR_ASSIGN_OR_RETURN(local, sh.store->Add(set));
  // Publish the local -> global mapping *before* the index entry: a
  // concurrent gather that finds the local in the index must be able to
  // translate it.
  sh.global_of_local.Set(local, sid);
  if (local + std::size_t{1} >
      sh.local_count.load(std::memory_order_seq_cst)) {
    sh.local_count.store(local + std::size_t{1}, std::memory_order_seq_cst);
  }
  Status st = sh.index->Insert(local, set);
  if (!st.ok()) {
    (void)sh.store->Delete(local);
    return st;
  }
  if (sid >= local_of_global_.size()) {
    local_of_global_.resize(sid + 1);
  }
  local_of_global_[sid] = LocalRef{s, local};
  return Status::OK();
}

Status ShardedSetSimilarityIndex::RemoveFromShardLocked(const LocalRef& ref) {
  Shard& sh = ShardAt(ref.shard);
  // Index first, then store: once the index stops returning the local, a
  // racing reader that already holds it still fetches through its pinned
  // snapshot (or sees NotFound, tagged by the degrade path). The dead
  // local's global_of_local entry intentionally stays — the store is the
  // liveness truth, exactly as it was with the plain vector.
  SSR_RETURN_IF_ERROR(sh.index->Erase(ref.local));
  SSR_RETURN_IF_ERROR(sh.store->Delete(ref.local));
  return Status::OK();
}

Status ShardedSetSimilarityIndex::Insert(SetId sid, const ElementSet& set) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (sid < local_of_global_.size() &&
      local_of_global_[sid].shard != ShardMap::kUnassigned) {
    return Status::AlreadyExists("global sid already live");
  }
  if (!IsNormalizedSet(set)) {
    return Status::InvalidArgument("set must be sorted and duplicate-free");
  }
  // Mid-rebalance inserts vote under the *target* topology so nothing
  // fresh lands on a draining shard (shrink) and new shards fill (grow).
  const std::uint32_t s =
      rebalance_active_.load(std::memory_order_seq_cst)
          ? map_.AssignForTarget(sid, rebalance_target_)
          : map_.Assign(sid);
  if (shard_degraded(s)) {
    map_.Forget(sid);
    return Status::Unavailable("shard is degraded");
  }
  // Write-ahead, with the *global* sid: recovery replays through this
  // same Insert, so the record must carry the id the caller speaks. The
  // normalization precondition is checked above so nothing unappliable is
  // ever logged; a failed append fails the Insert with nothing applied.
  if (WalWriter* wal = shard_wal(s)) {
    auto appended = wal->AppendInsert(sid, set);
    if (!appended.ok()) {
      map_.Forget(sid);
      return appended.status();
    }
  }
  Status st = InsertIntoShardLocked(s, sid, set);
  if (!st.ok()) {
    map_.Forget(sid);
    return st;
  }
  num_live_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedSetSimilarityIndex::Erase(SetId sid) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (sid >= local_of_global_.size() ||
      local_of_global_[sid].shard == ShardMap::kUnassigned) {
    return Status::NotFound("sid not indexed");
  }
  const LocalRef ref = local_of_global_[sid];
  if (shard_degraded(ref.shard)) {
    return Status::Unavailable("shard is degraded");
  }
  if (WalWriter* wal = shard_wal(ref.shard)) {
    SSR_RETURN_IF_ERROR(wal->AppendErase(sid).status());
  }
  SSR_RETURN_IF_ERROR(RemoveFromShardLocked(ref));
  local_of_global_[sid] = LocalRef{};
  map_.Forget(sid);
  num_live_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

void ShardedSetSimilarityIndex::GatherShardAnswer(
    std::uint32_t s, QueryResult&& answer, ShardedQueryResult* result) const {
  const Shard* sh = shards_.Get(s);
  if (sh == nullptr) return;  // shrink retired it mid-query; tagged already
  for (SetId local : answer.sids) {
    const SetId g = sh->global_of_local.Get(local);
    // kInvalidSetId cannot surface for a local the index returned (the
    // mapping publishes before the index entry); guard anyway so a logic
    // bug degrades to a dropped row, never an invalid sid.
    if (g != kInvalidSetId) result->sids.push_back(g);
  }
  // Counters and I/O sum across shards; the plan and enclosing points agree
  // on every shard (same layout, same σs) so overwriting is deterministic.
  QueryStats& total = result->stats;
  const QueryStats& stats = answer.stats;
  total.plan = stats.plan;
  total.lo_point = stats.lo_point;
  total.up_point = stats.up_point;
  total.candidates += stats.candidates;
  total.bucket_accesses += stats.bucket_accesses;
  total.bucket_pages += stats.bucket_pages;
  total.sids_scanned += stats.sids_scanned;
  total.sets_fetched += stats.sets_fetched;
  total.io += stats.io;
  total.io_seconds += stats.io_seconds;
  total.cpu_seconds += stats.cpu_seconds;
  total.probe_failures += stats.probe_failures;
  total.fetch_failures += stats.fetch_failures;
  total.retry_attempts += stats.retry_attempts;
  total.retry_backoff_micros += stats.retry_backoff_micros;
  // Per-FI probe attribution: every shard probes the same layout, so
  // entries accumulate by fi index (shards' probe orders agree — plans do).
  for (const QueryStats::FiProbeStat& probe : stats.fi_probes) {
    QueryStats::FiProbeStat* merged = nullptr;
    for (QueryStats::FiProbeStat& existing : total.fi_probes) {
      if (existing.fi == probe.fi) {
        merged = &existing;
        break;
      }
    }
    if (merged == nullptr) {
      total.fi_probes.push_back(probe);
    } else {
      merged->bucket_accesses += probe.bucket_accesses;
      merged->sids += probe.sids;
      merged->failed = merged->failed || probe.failed;
    }
  }
  if (stats.degraded) {
    total.degraded = true;
    // A shard that degraded under its own kPartialResults mode may have
    // dropped candidates, so the merged answer may be missing sids.
    if (options_.index.degrade == DegradeMode::kPartialResults) {
      result->partial = true;
    }
  }
  if (s < result->per_shard.size()) result->per_shard[s] = stats;
}

Status ShardedSetSimilarityIndex::GatherShardFailure(
    std::uint32_t s, Status status, ShardedQueryResult* result) const {
  static obs::Counter* const skipped = obs::MetricsRegistry::Default()
      .GetCounter("ssr_sharded_shards_skipped_total");
  if (options_.on_shard_failure == ShardFailurePolicy::kFailFast) {
    return Status::Unavailable("shard " + std::to_string(s) +
                               " cannot answer: " + status.ToString());
  }
  skipped->Increment();
  if (s < result->shard_status.size()) {
    result->shard_status[s] = std::move(status);
  }
  result->degraded_shards.push_back(s);
  result->stats.degraded = true;
  result->partial = true;
  return Status::OK();
}

void ShardedSetSimilarityIndex::FinishGather(ShardedQueryResult* result) const {
  // Shard answers are disjoint at rest, but a sid whose move commits
  // mid-scatter can be gathered from both its old and new shard — so the
  // merge sorts *and* dedups. Sorting also erases any dependence on the
  // shard iteration order: the output is ascending global sids, always.
  std::sort(result->sids.begin(), result->sids.end());
  result->sids.erase(std::unique(result->sids.begin(), result->sids.end()),
                     result->sids.end());
  if (rebalance_active_.load(std::memory_order_seq_cst)) {
    // A move's commit window can hide the moving sid from this scatter:
    // conservative partial tagging, same contract as a degraded shard —
    // a verified subset, never a wrong member.
    result->rebalancing = true;
    result->partial = true;
  }
  result->stats.results = result->sids.size();
}

Result<ShardedQueryResult> ShardedSetSimilarityIndex::Query(
    const ElementSet& query, double sigma1, double sigma2) const {
  obs::TraceSpan span("sharded_query");
  std::optional<exec::EpochGuard> guard;
  if (epoch_manager_ != nullptr) guard.emplace(*epoch_manager_);
  const std::uint32_t n = num_shards();
  span.Tag("shards", static_cast<std::uint64_t>(n));
  ShardedQueryResult result;
  if (rebalance_active_.load(std::memory_order_seq_cst)) {
    result.rebalancing = true;
    result.partial = true;
  }
  result.per_shard.resize(n);
  result.shard_status.assign(n, Status::OK());
  for (std::uint32_t s = 0; s < n; ++s) {
    // Load the slot exactly once: a concurrent shrink can null it between
    // a degraded check and the probe (the epoch guard defers the *free*,
    // not the null store), so every dereference below goes through `sh`.
    const Shard* sh = shards_.Get(s);
    if (sh == nullptr) {
      if (s >= num_shards()) {
        // Shrink-retired mid-query: the shard was verified empty before
        // its slot was nulled, so skipping it drops nothing — but the
        // overlap means a moved sid may be hidden from this scatter, so
        // tag conservatively (same contract as an active rebalance).
        result.rebalancing = true;
        result.partial = true;
        continue;
      }
      SSR_RETURN_IF_ERROR(GatherShardFailure(
          s, Status::Unavailable("shard administratively degraded"), &result));
      continue;
    }
    if (sh->index == nullptr ||
        sh->degraded.load(std::memory_order_relaxed)) {
      SSR_RETURN_IF_ERROR(GatherShardFailure(
          s, Status::Unavailable("shard administratively degraded"), &result));
      continue;
    }
    auto answer = sh->index->Query(query, sigma1, sigma2);
    if (!answer.ok()) {
      // Validation errors are the caller's bug, not a shard failure — every
      // shard would reject identically, so propagate instead of degrading.
      if (answer.status().IsInvalidArgument()) return answer.status();
      SSR_RETURN_IF_ERROR(GatherShardFailure(s, answer.status(), &result));
      continue;
    }
    GatherShardAnswer(s, std::move(answer).value(), &result);
  }
  FinishGather(&result);
  span.Tag("results", static_cast<std::uint64_t>(result.sids.size()));
  if (result.partial) span.Tag("partial", std::uint64_t{1});
  if (result.rebalancing) span.Tag("rebalancing", std::uint64_t{1});
  return result;
}

void ShardedSetSimilarityIndex::SetShardDegraded(std::uint32_t s,
                                                 bool degraded) {
  Shard* sh = shards_.Get(s);
  if (sh != nullptr) sh->degraded.store(degraded, std::memory_order_relaxed);
}

// --- Online rebalance ---------------------------------------------------

Status ShardedSetSimilarityIndex::BeginRebalance(std::uint32_t new_num_shards) {
  SSR_RETURN_IF_ERROR(BeginRebalanceImpl(new_num_shards));
  // The hook runs without writer_mu_: it typically attaches WALs to the
  // freshly published shards (AttachShardWal locks) and writes the
  // post-Begin checkpoint. On hook failure the rebalance stays active but
  // un-checkpointed, so StepRebalance refuses until the caller recovers.
  if (checkpoint_hook_) {
    SSR_RETURN_IF_ERROR(checkpoint_hook_());
    return MarkRebalanceCheckpointed();
  }
  return Status::OK();
}

Status ShardedSetSimilarityIndex::BeginRebalanceImpl(
    std::uint32_t new_num_shards) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (rebalance_active_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("a rebalance is already active");
  }
  const std::uint32_t target = new_num_shards == 0 ? 1 : new_num_shards;
  const std::uint32_t current = num_shards();
  for (std::uint32_t s = 0; s < current; ++s) {
    if (shard_degraded(s)) {
      return Status::Unavailable(
          "cannot rebalance with a degraded shard (restore or drop shard " +
          std::to_string(s) + " first)");
    }
  }
  obs::TraceSpan span("rebalance_begin");
  span.Tag("from_shards", static_cast<std::uint64_t>(current));
  span.Tag("to_shards", static_cast<std::uint64_t>(target));

  pending_moves_ = map_.PlanRebalance(target);
  next_move_ = moves_done_ = moves_skipped_ = 0;
  rebalance_target_ = target;

  if (target > current) {
    // Grow: publish the new, still-empty shards before any mover or fresh
    // insert can route to them. Each Shard is fully initialized — store,
    // index, epoch wiring — *before* its slot is set: a reader that pinned
    // under a wider pre-shrink topology can still load these slots
    // mid-scatter, so a half-built Shard must never be reachable. Slot
    // first, count after — a reader that observes the bumped count finds
    // live slots.
    for (std::uint32_t s = current; s < target; ++s) {
      auto fresh = std::make_unique<Shard>();
      SetStoreOptions store_options = options_.store;
      store_options.metrics_scope = ShardScope(base_scope_, s) + "/store";
      fresh->store = std::make_unique<SetStore>(store_options);
      IndexOptions index_options = options_.index;
      index_options.metrics_scope = ShardScope(base_scope_, s) + "/index";
      auto built = SetSimilarityIndex::Build(*fresh->store, layout_,
                                             index_options);
      if (!built.ok()) return built.status();
      fresh->index =
          std::make_unique<SetSimilarityIndex>(std::move(built).value());
      if (epoch_manager_ != nullptr) {
        fresh->global_of_local.SetEpochManager(epoch_manager_);
        fresh->index->EnableConcurrentWrites(epoch_manager_);
      }
      owned_shards_.push_back(std::move(fresh));
      shards_.Set(s, owned_shards_.back().get());
    }
    num_shards_.store(target, std::memory_order_seq_cst);
    // Fresh inserts now vote under the grown topology (existing recorded
    // assignments are untouched until their move commits).
    map_.SetNumShards(target);
  }
  // Shrink keeps the old count until FinishRebalance: the draining shards
  // still hold un-moved sids that queries must keep reaching.

  span.Tag("planned_moves", static_cast<std::uint64_t>(pending_moves_.size()));
  Rebal().begun->Increment();
  Rebal().active->Set(1.0);
  Rebal().pending->Set(static_cast<double>(pending_moves_.size()));
  // With any WAL attached, moves must wait for the post-Begin checkpoint:
  // without one, a crash replays move records against the pre-Begin cut,
  // where a sid's records from an older topology can interleave across
  // logs with no consistent replay order. WAL-less (in-memory) callers owe
  // nothing.
  bool any_wal = false;
  for (const WalWriter* wal : shard_wals_) any_wal = any_wal || wal != nullptr;
  rebalance_checkpointed_ = !any_wal;
  rebalance_wedged_ = false;
  rebalance_active_.store(true, std::memory_order_seq_cst);
  return Status::OK();
}

Status ShardedSetSimilarityIndex::MarkRebalanceCheckpointed() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!rebalance_active_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("no rebalance is active");
  }
  rebalance_checkpointed_ = true;
  return Status::OK();
}

Result<bool> ShardedSetSimilarityIndex::ExecuteMoveLocked(
    const ShardMove& move) {
  if (move.sid >= local_of_global_.size() ||
      local_of_global_[move.sid].shard != move.from) {
    // Erased, or re-placed by an earlier recovery/convergence pass, since
    // the plan was taken. Nothing to migrate.
    return false;
  }
  if (shard_degraded(move.from) || shard_degraded(move.to)) {
    return Status::Unavailable("shard degraded mid-rebalance");
  }
  const LocalRef ref = local_of_global_[move.sid];
  Shard& src = ShardAt(move.from);
  ElementSet set;
  SSR_ASSIGN_OR_RETURN(set, src.store->Get(ref.local));
  // Move protocol: advisory kMoveOut to the source log, then kMoveIn — the
  // commit point — to the destination log carrying the payload. A crash
  // before the kMoveIn sync leaves the sid fully old; after, recovery's
  // ApplyMoveIn lands it fully new. Never split.
  if (WalWriter* wal = shard_wal(move.from)) {
    SSR_RETURN_IF_ERROR(wal->AppendMoveOut(move.sid, move.to).status());
  }
  if (WalWriter* wal = shard_wal(move.to)) {
    SSR_RETURN_IF_ERROR(wal->AppendMoveIn(move.sid, move.from, set).status());
  }
  // Committed. Copy into the destination (readers may briefly see both
  // copies — FinishGather dedups), cut the routing over, then drop the
  // source copy. A failure past this point is NOT retryable: the log
  // already says the move happened, so re-running it would diverge from
  // what recovery replays — and a lingering source copy would keep
  // answering after a later erase. Wedge the state machine instead; the
  // durable truth is checkpoint + WALs.
  Status applied = InsertIntoShardLocked(move.to, move.sid, set);
  if (applied.ok()) {
    map_.Reassign(move.sid, move.to);
    applied = RemoveFromShardLocked(ref);
  }
  if (!applied.ok()) {
    rebalance_wedged_ = true;
    return Status::Internal(
        "move apply failed after its WAL commit point (" +
        applied.message() +
        "); rebalance wedged — recover from checkpoint + WALs");
  }
  return true;
}

Result<std::size_t> ShardedSetSimilarityIndex::StepRebalance(
    std::size_t max_moves) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!rebalance_active_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("no rebalance is active");
  }
  if (rebalance_wedged_) {
    return Status::FailedPrecondition(
        "rebalance is wedged: a move failed after its WAL commit point — "
        "recover from checkpoint + WALs");
  }
  if (!rebalance_checkpointed_) {
    return Status::FailedPrecondition(
        "rebalance moves require the post-Begin checkpoint: write one and "
        "call MarkRebalanceCheckpointed (or install a checkpoint hook)");
  }
  obs::TraceSpan span("rebalance_step");
  std::size_t processed = 0;
  while (processed < max_moves && next_move_ < pending_moves_.size()) {
    auto moved = ExecuteMoveLocked(pending_moves_[next_move_]);
    // Unavailable/NotFound before the kMoveIn append is retryable:
    // next_move_ stays and nothing was committed. A post-commit failure
    // comes back Internal with rebalance_wedged_ set — every further Step
    // and Finish then refuses.
    if (!moved.ok()) return moved.status();
    ++next_move_;
    ++processed;
    if (*moved) {
      ++moves_done_;
      Rebal().moves->Increment();
    } else {
      ++moves_skipped_;
      Rebal().skipped->Increment();
    }
  }
  const std::size_t remaining = pending_moves_.size() - next_move_;
  Rebal().pending->Set(static_cast<double>(remaining));
  span.Tag("processed", static_cast<std::uint64_t>(processed));
  span.Tag("remaining", static_cast<std::uint64_t>(remaining));
  return remaining;
}

Status ShardedSetSimilarityIndex::FinishRebalance() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!rebalance_active_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("no rebalance is active");
  }
  if (rebalance_wedged_) {
    return Status::FailedPrecondition(
        "rebalance is wedged: a move failed after its WAL commit point — "
        "recover from checkpoint + WALs");
  }
  if (!rebalance_checkpointed_ && next_move_ < pending_moves_.size()) {
    return Status::FailedPrecondition(
        "rebalance moves require the post-Begin checkpoint: write one and "
        "call MarkRebalanceCheckpointed (or install a checkpoint hook)");
  }
  if (next_move_ < pending_moves_.size()) {
    return Status::FailedPrecondition("planned moves are still pending");
  }
  obs::TraceSpan span("rebalance_finish");
  const std::uint32_t current = num_shards();
  const std::uint32_t target = rebalance_target_;
  span.Tag("to_shards", static_cast<std::uint64_t>(target));
  if (target < current) {
    for (std::uint32_t s = target; s < current; ++s) {
      const Shard* sh = shards_.Get(s);
      if (sh != nullptr && sh->store != nullptr && sh->store->size() != 0) {
        return Status::Internal("draining shard still holds live sets");
      }
    }
    // Adopt the shrunk topology, then retire the husks. Count first, slots
    // after: a reader that loaded the old count just before the store may
    // find a nulled slot, and shard_retired() classifies exactly that case
    // (null at/past the new count) as shrink-retired — provably empty, so
    // the reader tags rebalancing+partial instead of tripping the failure
    // policy.
    num_shards_.store(target, std::memory_order_seq_cst);
    map_.SetNumShards(target);
    for (std::uint32_t s = target; s < current; ++s) {
      Shard* victim = shards_.Get(s);
      shards_.Set(s, nullptr);
      if (s < shard_wals_.size()) shard_wals_[s] = nullptr;
      if (victim == nullptr) continue;
      auto owner = std::find_if(
          owned_shards_.begin(), owned_shards_.end(),
          [victim](const std::unique_ptr<Shard>& p) {
            return p.get() == victim;
          });
      if (owner != owned_shards_.end()) {
        owner->release();
        owned_shards_.erase(owner);
      }
      if (epoch_manager_ != nullptr) {
        epoch_manager_->Retire([victim] { delete victim; });
      } else {
        delete victim;
      }
    }
  }
  rebalance_active_.store(false, std::memory_order_seq_cst);
  pending_moves_.clear();
  next_move_ = 0;
  rebalance_target_ = 0;
  rebalance_checkpointed_ = true;
  Rebal().finished->Increment();
  Rebal().active->Set(0.0);
  Rebal().pending->Set(0.0);
  return Status::OK();
}

Status ShardedSetSimilarityIndex::RebalanceTo(std::uint32_t new_num_shards) {
  SSR_RETURN_IF_ERROR(BeginRebalance(new_num_shards));
  for (;;) {
    auto remaining = StepRebalance(64);
    if (!remaining.ok()) return remaining.status();
    if (*remaining == 0) break;
  }
  return FinishRebalance();
}

RebalanceStatus ShardedSetSimilarityIndex::rebalance_status() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  RebalanceStatus status;
  status.active = rebalance_active_.load(std::memory_order_seq_cst);
  status.target_shards = rebalance_target_;
  status.moves_planned = pending_moves_.size();
  status.moves_done = moves_done_;
  status.moves_skipped = moves_skipped_;
  status.checkpointed = rebalance_checkpointed_;
  status.wedged = rebalance_wedged_;
  return status;
}

Status ShardedSetSimilarityIndex::ApplyMoveInLocked(std::uint32_t dest,
                                                    SetId sid,
                                                    const ElementSet& set) {
  const bool recorded =
      sid < local_of_global_.size() &&
      local_of_global_[sid].shard != ShardMap::kUnassigned;
  if (recorded && local_of_global_[sid].shard == dest) {
    return Status::AlreadyExists("sid already lives at the destination");
  }
  bool removed_live = false;
  if (recorded) {
    const LocalRef ref = local_of_global_[sid];
    if (!shard_degraded(ref.shard)) {
      SSR_RETURN_IF_ERROR(RemoveFromShardLocked(ref));
      removed_live = true;
    }
    // A degraded source cannot release its copy; the kMoveIn payload is
    // authoritative, so the relocation proceeds regardless.
  }
  if (!IsNormalizedSet(set)) {
    return Status::Corruption("kMoveIn payload is not a normalized set");
  }
  SSR_RETURN_IF_ERROR(InsertIntoShardLocked(dest, sid, set));
  map_.Reassign(sid, dest);
  // A sid removed from a live shard nets zero; one that was absent (its
  // insert replays later / its source shard is dead) counts as new.
  if (!removed_live) num_live_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedSetSimilarityIndex::ApplyMoveIn(std::uint32_t dest, SetId sid,
                                              std::uint32_t from_shard,
                                              const ElementSet& set) {
  (void)from_shard;  // advisory; local_of_global_ is the routing truth
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (dest >= num_shards()) {
    return Status::Corruption("kMoveIn destination shard out of range");
  }
  if (shard_degraded(dest)) {
    return Status::Unavailable("kMoveIn destination shard is degraded");
  }
  return ApplyMoveInLocked(dest, sid, set);
}

// --- Persistence --------------------------------------------------------

Status ShardedSetSimilarityIndex::SaveTo(std::ostream& out) const {
  SnapshotWriter snapshot(out, kShardedIndexMagic, kShardedIndexVersion);
  const std::uint32_t n = num_shards();

  {
    BinaryWriter& meta = snapshot.BeginSection("meta");
    meta.WriteU32(n);
    meta.WriteU64(num_live_.load(std::memory_order_relaxed));
    meta.WriteU64(local_of_global_.size());
    for (std::uint32_t s = 0; s < n; ++s) {
      // A shard that is *dead* (lost in a previous salvage) has nothing to
      // serialize; it round-trips as dead. The administrative degraded flag
      // is runtime-only and intentionally not persisted.
      meta.WriteBool(shard_index(s) == nullptr);
    }
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  {
    BinaryWriter& body = snapshot.BeginSection("shardmap");
    map_.WriteTo(body);
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  {
    BinaryWriter& body = snapshot.BeginSection("routing");
    for (std::uint32_t s = 0; s < n; ++s) {
      body.WriteVector(global_of_local(s));
    }
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }

  // One nested snapshot pair per shard, each its own checksummed section so
  // damage quarantines one shard while its neighbors stay loadable.
  for (std::uint32_t s = 0; s < n; ++s) {
    const Shard& sh = ShardAt(s);
    std::string store_bytes, index_bytes;
    if (sh.index != nullptr) {
      std::ostringstream store_out, index_out;
      SSR_RETURN_IF_ERROR(sh.store->SaveTo(store_out));
      SSR_RETURN_IF_ERROR(sh.index->SaveTo(index_out));
      store_bytes = std::move(store_out).str();
      index_bytes = std::move(index_out).str();
    }
    BinaryWriter& store_section =
        snapshot.BeginSection(ShardSectionName(s, "store"));
    store_section.WriteBytes(store_bytes.data(), store_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
    BinaryWriter& index_section =
        snapshot.BeginSection(ShardSectionName(s, "index"));
    index_section.WriteBytes(index_bytes.data(), index_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  return snapshot.Finish();
}

Result<ShardedSetSimilarityIndex> ShardedSetSimilarityIndex::Load(
    std::istream& in, const ShardedIndexOptions& options,
    const SnapshotLoadOptions& load_options) {
  SnapshotReader snapshot(in);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kShardedIndexMagic, &version));
  if (version != kShardedIndexVersion) {
    return Status::NotSupported("unknown sharded-index snapshot version");
  }

  // The structural sections (meta, shardmap, routing) are small and load
  // strictly — without them there is nothing to route to, so salvage
  // cannot help. Shard payload damage is where salvage earns its keep.
  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  std::uint32_t num_shards = 0;
  std::uint64_t num_live = 0, capacity = 0;
  std::vector<bool> dead;
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    SSR_RETURN_IF_ERROR(meta.ReadU32(&num_shards));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&num_live));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&capacity));
    if (num_shards == 0) {
      return Status::Corruption("sharded snapshot with 0 shards");
    }
    if (num_shards > (1u << 20) || capacity > (1ULL << 32) ||
        num_live > capacity) {
      return Status::Corruption("implausible sharded-snapshot meta");
    }
    dead.resize(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      bool flag = false;
      SSR_RETURN_IF_ERROR(meta.ReadBool(&flag));
      dead[s] = flag;
    }
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("shardmap", &payload));
  std::istringstream map_in(payload);
  BinaryReader map_reader(map_in);
  auto map_or = ShardMap::ReadFrom(map_reader);
  if (!map_or.ok()) return map_or.status();
  ShardMap map = std::move(map_or).value();
  if (map.num_shards() != num_shards) {
    return Status::Corruption("shard map / meta shard-count mismatch");
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("routing", &payload));
  std::vector<std::vector<SetId>> routing(num_shards);
  {
    std::istringstream routing_in(payload);
    BinaryReader routing_reader(routing_in);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      SSR_RETURN_IF_ERROR(routing_reader.ReadVector(&routing[s]));
    }
  }

  ShardedIndexOptions resolved = options;
  resolved.num_shards = num_shards;
  resolved.map_seed = map.seed();
  ShardedSetSimilarityIndex sharded(std::move(resolved), IndexLayout{});
  sharded.map_ = std::move(map);

  RecoveryReport report;
  bool truncated = false;  // DataLoss: everything after this point is gone
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    Shard& sh = sharded.ShardAt(s);
    for (SetId local = 0; local < routing[s].size(); ++local) {
      sh.global_of_local.Set(local, routing[s][local]);
    }
    sh.local_count.store(routing[s].size(), std::memory_order_seq_cst);

    std::string store_payload, index_payload;
    Status store_st = Status::OK(), index_st = Status::OK();
    if (!truncated) {
      store_st = snapshot.ReadSection(ShardSectionName(s, "store"),
                                      &store_payload);
      if (store_st.IsDataLoss()) truncated = true;
    } else {
      store_st = Status::DataLoss("snapshot truncated before this shard");
    }
    if (!truncated) {
      index_st = snapshot.ReadSection(ShardSectionName(s, "index"),
                                      &index_payload);
      if (index_st.IsDataLoss()) truncated = true;
    } else {
      index_st = Status::DataLoss("snapshot truncated before this shard");
    }
    if (!load_options.salvage) {
      SSR_RETURN_IF_ERROR(store_st);
      SSR_RETURN_IF_ERROR(index_st);
    }
    if (dead[s]) continue;  // was already lost when saved; stays dead

    // The section payload *is* the nested snapshot. A CRC mismatch on the
    // outer section still yields the (corrupt) bytes — hand them to the
    // inner loader, whose page-level salvage can often keep most of the
    // shard.
    SSR_RETURN_IF_ERROR(
        sharded.LoadShardFromPayloads(s, store_st, store_payload, index_st,
                                      index_payload, load_options, &report));
    if (sh.index == nullptr) {
      // The whole shard was unrecoverable: its routed sids are lost.
      report.salvaged = true;
      for (SetId g : routing[s]) {
        if (g != kInvalidSetId && sharded.map_.IsAssigned(g) &&
            sharded.map_.ShardOf(g) == s) {
          ++report.records_quarantined;
        }
      }
    }
  }

  Status footer = truncated ? Status::DataLoss("snapshot truncated")
                            : snapshot.VerifyFooter();
  if (!footer.ok()) {
    if (!load_options.salvage) return footer;
    report.salvaged = true;
  }

  // Every surviving shard must have been signed under the same minhash
  // family (each shard section nests its own index snapshot, so skew is
  // representable on disk): a mixed composite would route one query
  // signature against incompatibly-signed shards. Typed NotSupported, same
  // contract as the single-index family check.
  {
    bool have_family = false;
    MinHashFamilyKind family = MinHashFamilyKind::kClassic;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const Shard& sh = sharded.ShardAt(s);
      if (sh.index == nullptr) continue;
      const MinHashFamilyKind shard_family =
          sh.index->embedding().params().minhash.family;
      if (!have_family) {
        have_family = true;
        family = shard_family;
      } else if (shard_family != family) {
        return Status::NotSupported(
            "shard minhash family mismatch across shard sections");
      }
    }
  }

  // Rebuild the global -> local table from the per-shard routing tables.
  // Liveness truth: a healthy shard's store (salvage may have dropped
  // records); for a dead shard, the persisted map (its live sids at save
  // time — they exist but are unavailable until restored).
  sharded.local_of_global_.assign(static_cast<std::size_t>(capacity),
                                  LocalRef{});
  std::size_t live_total = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    Shard& sh = sharded.ShardAt(s);
    for (SetId local = 0; local < routing[s].size(); ++local) {
      const SetId g = routing[s][local];
      if (g == kInvalidSetId || g >= capacity) continue;
      const bool live = sh.store != nullptr
                            ? sh.store->Contains(local)
                            : (sharded.map_.IsAssigned(g) &&
                               sharded.map_.ShardOf(g) == s);
      if (live) sharded.local_of_global_[g] = LocalRef{s, local};
    }
    if (sh.store != nullptr) live_total += sh.store->size();
  }
  sharded.num_live_.store(live_total, std::memory_order_relaxed);

  if (load_options.report != nullptr) {
    load_options.report->MergeFrom(report);
  }
  return sharded;
}

Status ShardedSetSimilarityIndex::LoadShardFromPayloads(
    std::uint32_t s, const Status& store_st, const std::string& store_payload,
    const Status& index_st, const std::string& index_payload,
    const SnapshotLoadOptions& load_options, RecoveryReport* report) {
  Shard& sh = ShardAt(s);
  const std::string scope = ShardScope(base_scope_, s);

  SetStoreOptions store_options = options_.store;
  store_options.metrics_scope = scope + "/store";
  Status shard_status = store_st;
  if (shard_status.ok() && store_payload.empty()) {
    shard_status = Status::Corruption("empty shard store payload");
  }
  if ((shard_status.ok() || load_options.salvage) && !store_payload.empty()) {
    std::istringstream store_in(store_payload);
    SnapshotLoadOptions inner = load_options;
    inner.report = report;
    auto store = SetStore::Load(store_in, store_options, inner);
    if (store.ok()) {
      sh.store = std::make_unique<SetStore>(std::move(store).value());
      shard_status = Status::OK();
    } else {
      shard_status = store.status();
    }
  }
  if (!shard_status.ok()) {
    if (!load_options.salvage) return shard_status;
    sh.store = nullptr;  // unrecoverable: quarantine the whole shard
    sh.index = nullptr;
    return Status::OK();
  }

  Status idx_status = index_st;
  if (idx_status.ok() && index_payload.empty()) {
    idx_status = Status::Corruption("empty shard index payload");
  }
  if ((idx_status.ok() || load_options.salvage) && !index_payload.empty()) {
    std::istringstream index_in(index_payload);
    SnapshotLoadOptions inner = load_options;
    inner.report = report;
    auto index = SetSimilarityIndex::Load(*sh.store, index_in, inner);
    if (index.ok()) {
      sh.index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
      if (layout_.points.empty()) layout_ = sh.index->layout();
      return Status::OK();
    }
    idx_status = index.status();
  }
  if (!load_options.salvage) return idx_status;

  // The index snapshot is beyond saving but the store survived: rebuild the
  // shard's index from its records. Deterministic under the configured
  // seeds, so the shard keeps serving with zero data loss. Needs the layout,
  // which comes from the first successfully loaded shard index.
  if (!layout_.points.empty()) {
    IndexOptions index_options = options_.index;
    index_options.metrics_scope = scope + "/index";
    auto rebuilt = SetSimilarityIndex::Build(*sh.store, layout_,
                                             index_options);
    if (rebuilt.ok()) {
      sh.index =
          std::make_unique<SetSimilarityIndex>(std::move(rebuilt).value());
      report->signatures_rebuilt += sh.store->size();
      report->salvaged = true;
      return Status::OK();
    }
  }
  sh.store = nullptr;
  sh.index = nullptr;
  return Status::OK();
}

std::uint64_t ShardedSetSimilarityIndex::ContentDigest() const {
  std::uint64_t h = map_.ContentDigest();
  h = HashCombine(h, num_live_.load(std::memory_order_relaxed));
  const std::uint32_t n = num_shards();
  for (std::uint32_t s = 0; s < n; ++s) {
    const Shard& sh = ShardAt(s);
    h = HashCombine(h, sh.index != nullptr ? sh.index->ContentDigest() : 0);
    const std::vector<SetId> to_global = global_of_local(s);
    h = HashCombine(h, to_global.size());
    for (SetId g : to_global) h = HashCombine(h, g);
  }
  return h;
}

}  // namespace shard
}  // namespace ssr
