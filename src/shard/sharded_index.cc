#include "shard/sharded_index.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {
namespace shard {

namespace {

constexpr std::string_view kShardedIndexMagic = "SSRSHARD";
constexpr std::uint32_t kShardedIndexVersion = 1;

std::string ShardScope(const std::string& base, std::uint32_t s) {
  std::string scope = base;
  scope += "/shard/";
  scope += std::to_string(s);
  return scope;
}

std::string ShardSectionName(std::uint32_t s, const char* kind) {
  std::string name = "shard";
  name += std::to_string(s);
  name += '_';
  name += kind;
  return name;
}

}  // namespace

std::uint32_t ResolveShardCount(std::uint32_t num_shards) {
  if (num_shards > 0) return num_shards;
  if (const char* env = std::getenv("SSR_SHARDS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::uint32_t>(parsed);
    }
  }
  return 1;  // sharding is opt-in; unset means a single shard
}

ShardedSetSimilarityIndex::ShardedSetSimilarityIndex(
    ShardedIndexOptions options, IndexLayout layout)
    : options_(std::move(options)),
      layout_(std::move(layout)),
      map_(options_.num_shards, options_.map_seed) {
  // The caller (Build/Load) resolved num_shards before constructing us. The
  // base metrics scope hangs the per-shard scopes off one stable prefix.
  base_scope_ = options_.index.metrics_scope.empty()
                    ? obs::MetricsRegistry::Default().NewScope("sharded")
                    : options_.index.metrics_scope;
  shards_.resize(options_.num_shards);
}

Status ShardedSetSimilarityIndex::CreateShard(std::uint32_t s) {
  const std::string scope = ShardScope(base_scope_, s);
  SetStoreOptions store_options = options_.store;
  store_options.metrics_scope = scope + "/store";
  shards_[s].store = std::make_unique<SetStore>(store_options);
  return Status::OK();
}

Result<ShardedSetSimilarityIndex> ShardedSetSimilarityIndex::Build(
    const SetCollection& sets, const IndexLayout& layout,
    const ShardedIndexOptions& options) {
  SSR_RETURN_IF_ERROR(layout.Validate());

  ShardedIndexOptions resolved = options;
  resolved.num_shards = ResolveShardCount(options.num_shards);
  ShardedSetSimilarityIndex sharded(std::move(resolved), layout);

  Stopwatch watch;
  obs::TraceSpan span("sharded_build");
  span.Tag("shards", static_cast<std::uint64_t>(sharded.num_shards()));
  span.Tag("sets", static_cast<std::uint64_t>(sets.size()));

  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s) {
    SSR_RETURN_IF_ERROR(sharded.CreateShard(s));
  }

  // Phase 1: partition. Global sid = position in `sets`; every sid gets an
  // explicit recorded vote so the placement is reproducible from the
  // snapshot, never re-derived.
  sharded.local_of_global_.resize(sets.size());
  for (SetId gsid = 0; gsid < sets.size(); ++gsid) {
    const std::uint32_t s = sharded.map_.Assign(gsid);
    Shard& sh = sharded.shards_[s];
    SetId local = kInvalidSetId;
    SSR_ASSIGN_OR_RETURN(local, sh.store->Add(sets[gsid]));
    sh.global_of_local.push_back(gsid);
    sharded.local_of_global_[gsid] = LocalRef{s, local};
  }
  sharded.num_live_ = sets.size();

  // Phase 2: per-shard index builds (each using the parallel builder).
  // Shards build one after another on this host but deploy independently,
  // so the modeled makespan is the slowest shard, not the sum.
  sharded.build_stats_.per_shard.reserve(sharded.num_shards());
  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s) {
    obs::TraceSpan shard_span("sharded_build_shard");
    shard_span.Tag("shard", static_cast<std::uint64_t>(s));
    Shard& sh = sharded.shards_[s];
    IndexOptions index_options = sharded.options_.index;
    index_options.metrics_scope = ShardScope(sharded.base_scope_, s) + "/index";
    auto built = SetSimilarityIndex::Build(*sh.store, layout, index_options);
    if (!built.ok()) return built.status();
    sh.index = std::make_unique<SetSimilarityIndex>(std::move(built).value());
    sharded.build_stats_.per_shard.push_back(sh.index->build_stats());
    sharded.build_stats_.modeled_makespan_seconds =
        std::max(sharded.build_stats_.modeled_makespan_seconds,
                 sh.index->build_stats().makespan_seconds);
  }
  sharded.build_stats_.wall_seconds = watch.ElapsedSeconds();
  span.Tag("modeled_makespan_seconds",
           sharded.build_stats_.modeled_makespan_seconds);
  return sharded;
}

Status ShardedSetSimilarityIndex::Insert(SetId sid, const ElementSet& set) {
  if (sid < local_of_global_.size() &&
      local_of_global_[sid].shard != ShardMap::kUnassigned) {
    return Status::AlreadyExists("global sid already live");
  }
  if (!IsNormalizedSet(set)) {
    return Status::InvalidArgument("set must be sorted and duplicate-free");
  }
  const std::uint32_t s = map_.Assign(sid);
  if (shard_degraded(s)) {
    map_.Forget(sid);
    return Status::Unavailable("shard is degraded");
  }
  // Write-ahead, with the *global* sid: recovery replays through this
  // same Insert, so the record must carry the id the caller speaks. The
  // normalization precondition is checked above so nothing unappliable is
  // ever logged; a failed append fails the Insert with nothing applied.
  if (WalWriter* wal = shard_wal(s)) {
    auto appended = wal->AppendInsert(sid, set);
    if (!appended.ok()) {
      map_.Forget(sid);
      return appended.status();
    }
  }
  Shard& sh = shards_[s];
  auto local = sh.store->Add(set);
  if (!local.ok()) {
    map_.Forget(sid);
    return local.status();
  }
  Status st = sh.index->Insert(*local, set);
  if (!st.ok()) {
    (void)sh.store->Delete(*local);
    map_.Forget(sid);
    return st;
  }
  if (*local >= sh.global_of_local.size()) {
    sh.global_of_local.resize(*local + 1, kInvalidSetId);
  }
  sh.global_of_local[*local] = sid;
  if (sid >= local_of_global_.size()) {
    local_of_global_.resize(sid + 1);
  }
  local_of_global_[sid] = LocalRef{s, *local};
  ++num_live_;
  return Status::OK();
}

Status ShardedSetSimilarityIndex::Erase(SetId sid) {
  if (sid >= local_of_global_.size() ||
      local_of_global_[sid].shard == ShardMap::kUnassigned) {
    return Status::NotFound("sid not indexed");
  }
  const LocalRef ref = local_of_global_[sid];
  if (shard_degraded(ref.shard)) {
    return Status::Unavailable("shard is degraded");
  }
  if (WalWriter* wal = shard_wal(ref.shard)) {
    SSR_RETURN_IF_ERROR(wal->AppendErase(sid).status());
  }
  Shard& sh = shards_[ref.shard];
  SSR_RETURN_IF_ERROR(sh.index->Erase(ref.local));
  SSR_RETURN_IF_ERROR(sh.store->Delete(ref.local));
  local_of_global_[sid] = LocalRef{};
  map_.Forget(sid);
  --num_live_;
  return Status::OK();
}

void ShardedSetSimilarityIndex::GatherShardAnswer(
    std::uint32_t s, QueryResult&& answer, ShardedQueryResult* result) const {
  const std::vector<SetId>& to_global = shards_[s].global_of_local;
  for (SetId local : answer.sids) {
    result->sids.push_back(to_global[local]);
  }
  // Counters and I/O sum across shards; the plan and enclosing points agree
  // on every shard (same layout, same σs) so overwriting is deterministic.
  QueryStats& total = result->stats;
  const QueryStats& stats = answer.stats;
  total.plan = stats.plan;
  total.lo_point = stats.lo_point;
  total.up_point = stats.up_point;
  total.candidates += stats.candidates;
  total.bucket_accesses += stats.bucket_accesses;
  total.bucket_pages += stats.bucket_pages;
  total.sids_scanned += stats.sids_scanned;
  total.sets_fetched += stats.sets_fetched;
  total.io += stats.io;
  total.io_seconds += stats.io_seconds;
  total.cpu_seconds += stats.cpu_seconds;
  total.probe_failures += stats.probe_failures;
  total.fetch_failures += stats.fetch_failures;
  total.retry_attempts += stats.retry_attempts;
  total.retry_backoff_micros += stats.retry_backoff_micros;
  // Per-FI probe attribution: every shard probes the same layout, so
  // entries accumulate by fi index (shards' probe orders agree — plans do).
  for (const QueryStats::FiProbeStat& probe : stats.fi_probes) {
    QueryStats::FiProbeStat* merged = nullptr;
    for (QueryStats::FiProbeStat& existing : total.fi_probes) {
      if (existing.fi == probe.fi) {
        merged = &existing;
        break;
      }
    }
    if (merged == nullptr) {
      total.fi_probes.push_back(probe);
    } else {
      merged->bucket_accesses += probe.bucket_accesses;
      merged->sids += probe.sids;
      merged->failed = merged->failed || probe.failed;
    }
  }
  if (stats.degraded) {
    total.degraded = true;
    // A shard that degraded under its own kPartialResults mode may have
    // dropped candidates, so the merged answer may be missing sids.
    if (options_.index.degrade == DegradeMode::kPartialResults) {
      result->partial = true;
    }
  }
  result->per_shard[s] = stats;
}

Status ShardedSetSimilarityIndex::GatherShardFailure(
    std::uint32_t s, Status status, ShardedQueryResult* result) const {
  static obs::Counter* const skipped = obs::MetricsRegistry::Default()
      .GetCounter("ssr_sharded_shards_skipped_total");
  if (options_.on_shard_failure == ShardFailurePolicy::kFailFast) {
    return Status::Unavailable("shard " + std::to_string(s) +
                               " cannot answer: " + status.ToString());
  }
  skipped->Increment();
  result->shard_status[s] = std::move(status);
  result->degraded_shards.push_back(s);
  result->stats.degraded = true;
  result->partial = true;
  return Status::OK();
}

void ShardedSetSimilarityIndex::FinishGather(ShardedQueryResult* result) const {
  // Shard answers are disjoint (shards partition the collection), so the
  // merge is a sort, no dedup. Sorting also erases any dependence on the
  // shard iteration order — the output is ascending global sids, always.
  std::sort(result->sids.begin(), result->sids.end());
  result->stats.results = result->sids.size();
}

Result<ShardedQueryResult> ShardedSetSimilarityIndex::Query(
    const ElementSet& query, double sigma1, double sigma2) const {
  obs::TraceSpan span("sharded_query");
  span.Tag("shards", static_cast<std::uint64_t>(num_shards()));
  ShardedQueryResult result;
  result.per_shard.resize(num_shards());
  result.shard_status.assign(num_shards(), Status::OK());
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    if (shard_degraded(s)) {
      SSR_RETURN_IF_ERROR(GatherShardFailure(
          s, Status::Unavailable("shard administratively degraded"), &result));
      continue;
    }
    auto answer = shards_[s].index->Query(query, sigma1, sigma2);
    if (!answer.ok()) {
      // Validation errors are the caller's bug, not a shard failure — every
      // shard would reject identically, so propagate instead of degrading.
      if (answer.status().IsInvalidArgument()) return answer.status();
      SSR_RETURN_IF_ERROR(GatherShardFailure(s, answer.status(), &result));
      continue;
    }
    GatherShardAnswer(s, std::move(answer).value(), &result);
  }
  FinishGather(&result);
  span.Tag("results", static_cast<std::uint64_t>(result.sids.size()));
  if (result.partial) span.Tag("partial", std::uint64_t{1});
  return result;
}

void ShardedSetSimilarityIndex::SetShardDegraded(std::uint32_t s,
                                                 bool degraded) {
  shards_[s].degraded = degraded;
}

Status ShardedSetSimilarityIndex::SaveTo(std::ostream& out) const {
  SnapshotWriter snapshot(out, kShardedIndexMagic, kShardedIndexVersion);

  {
    BinaryWriter& meta = snapshot.BeginSection("meta");
    meta.WriteU32(num_shards());
    meta.WriteU64(num_live_);
    meta.WriteU64(local_of_global_.size());
    for (const Shard& sh : shards_) {
      // A shard that is *dead* (lost in a previous salvage) has nothing to
      // serialize; it round-trips as dead. The administrative degraded flag
      // is runtime-only and intentionally not persisted.
      meta.WriteBool(sh.index == nullptr);
    }
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  {
    BinaryWriter& body = snapshot.BeginSection("shardmap");
    map_.WriteTo(body);
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  {
    BinaryWriter& body = snapshot.BeginSection("routing");
    for (const Shard& sh : shards_) {
      body.WriteVector(sh.global_of_local);
    }
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }

  // One nested snapshot pair per shard, each its own checksummed section so
  // damage quarantines one shard while its neighbors stay loadable.
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[s];
    std::string store_bytes, index_bytes;
    if (sh.index != nullptr) {
      std::ostringstream store_out, index_out;
      SSR_RETURN_IF_ERROR(sh.store->SaveTo(store_out));
      SSR_RETURN_IF_ERROR(sh.index->SaveTo(index_out));
      store_bytes = std::move(store_out).str();
      index_bytes = std::move(index_out).str();
    }
    BinaryWriter& store_section =
        snapshot.BeginSection(ShardSectionName(s, "store"));
    store_section.WriteBytes(store_bytes.data(), store_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
    BinaryWriter& index_section =
        snapshot.BeginSection(ShardSectionName(s, "index"));
    index_section.WriteBytes(index_bytes.data(), index_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  return snapshot.Finish();
}

Result<ShardedSetSimilarityIndex> ShardedSetSimilarityIndex::Load(
    std::istream& in, const ShardedIndexOptions& options,
    const SnapshotLoadOptions& load_options) {
  SnapshotReader snapshot(in);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kShardedIndexMagic, &version));
  if (version != kShardedIndexVersion) {
    return Status::NotSupported("unknown sharded-index snapshot version");
  }

  // The structural sections (meta, shardmap, routing) are small and load
  // strictly — without them there is nothing to route to, so salvage
  // cannot help. Shard payload damage is where salvage earns its keep.
  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  std::uint32_t num_shards = 0;
  std::uint64_t num_live = 0, capacity = 0;
  std::vector<bool> dead;
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    SSR_RETURN_IF_ERROR(meta.ReadU32(&num_shards));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&num_live));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&capacity));
    if (num_shards == 0) {
      return Status::Corruption("sharded snapshot with 0 shards");
    }
    if (num_shards > (1u << 20) || capacity > (1ULL << 32) ||
        num_live > capacity) {
      return Status::Corruption("implausible sharded-snapshot meta");
    }
    dead.resize(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      bool flag = false;
      SSR_RETURN_IF_ERROR(meta.ReadBool(&flag));
      dead[s] = flag;
    }
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("shardmap", &payload));
  std::istringstream map_in(payload);
  BinaryReader map_reader(map_in);
  auto map_or = ShardMap::ReadFrom(map_reader);
  if (!map_or.ok()) return map_or.status();
  ShardMap map = std::move(map_or).value();
  if (map.num_shards() != num_shards) {
    return Status::Corruption("shard map / meta shard-count mismatch");
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("routing", &payload));
  std::vector<std::vector<SetId>> routing(num_shards);
  {
    std::istringstream routing_in(payload);
    BinaryReader routing_reader(routing_in);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      SSR_RETURN_IF_ERROR(routing_reader.ReadVector(&routing[s]));
    }
  }

  ShardedIndexOptions resolved = options;
  resolved.num_shards = num_shards;
  resolved.map_seed = map.seed();
  ShardedSetSimilarityIndex sharded(std::move(resolved), IndexLayout{});
  sharded.map_ = std::move(map);

  RecoveryReport report;
  bool truncated = false;  // DataLoss: everything after this point is gone
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    Shard& sh = sharded.shards_[s];
    sh.global_of_local = std::move(routing[s]);

    std::string store_payload, index_payload;
    Status store_st = Status::OK(), index_st = Status::OK();
    if (!truncated) {
      store_st = snapshot.ReadSection(ShardSectionName(s, "store"),
                                      &store_payload);
      if (store_st.IsDataLoss()) truncated = true;
    } else {
      store_st = Status::DataLoss("snapshot truncated before this shard");
    }
    if (!truncated) {
      index_st = snapshot.ReadSection(ShardSectionName(s, "index"),
                                      &index_payload);
      if (index_st.IsDataLoss()) truncated = true;
    } else {
      index_st = Status::DataLoss("snapshot truncated before this shard");
    }
    if (!load_options.salvage) {
      SSR_RETURN_IF_ERROR(store_st);
      SSR_RETURN_IF_ERROR(index_st);
    }
    if (dead[s]) continue;  // was already lost when saved; stays dead

    // The section payload *is* the nested snapshot. A CRC mismatch on the
    // outer section still yields the (corrupt) bytes — hand them to the
    // inner loader, whose page-level salvage can often keep most of the
    // shard.
    SSR_RETURN_IF_ERROR(
        sharded.LoadShardFromPayloads(s, store_st, store_payload, index_st,
                                      index_payload, load_options, &report));
    if (sh.index == nullptr) {
      // The whole shard was unrecoverable: its routed sids are lost.
      report.salvaged = true;
      for (SetId g : sh.global_of_local) {
        if (g != kInvalidSetId && sharded.map_.IsAssigned(g) &&
            sharded.map_.ShardOf(g) == s) {
          ++report.records_quarantined;
        }
      }
    }
  }

  Status footer = truncated ? Status::DataLoss("snapshot truncated")
                            : snapshot.VerifyFooter();
  if (!footer.ok()) {
    if (!load_options.salvage) return footer;
    report.salvaged = true;
  }

  // Every surviving shard must have been signed under the same minhash
  // family (each shard section nests its own index snapshot, so skew is
  // representable on disk): a mixed composite would route one query
  // signature against incompatibly-signed shards. Typed NotSupported, same
  // contract as the single-index family check.
  {
    bool have_family = false;
    MinHashFamilyKind family = MinHashFamilyKind::kClassic;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const Shard& sh = sharded.shards_[s];
      if (sh.index == nullptr) continue;
      const MinHashFamilyKind shard_family =
          sh.index->embedding().params().minhash.family;
      if (!have_family) {
        have_family = true;
        family = shard_family;
      } else if (shard_family != family) {
        return Status::NotSupported(
            "shard minhash family mismatch across shard sections");
      }
    }
  }

  // Rebuild the global -> local table from the per-shard routing tables.
  // Liveness truth: a healthy shard's store (salvage may have dropped
  // records); for a dead shard, the persisted map (its live sids at save
  // time — they exist but are unavailable until restored).
  sharded.local_of_global_.assign(static_cast<std::size_t>(capacity),
                                  LocalRef{});
  sharded.num_live_ = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    Shard& sh = sharded.shards_[s];
    for (SetId local = 0; local < sh.global_of_local.size(); ++local) {
      const SetId g = sh.global_of_local[local];
      if (g == kInvalidSetId || g >= capacity) continue;
      const bool live = sh.store != nullptr
                            ? sh.store->Contains(local)
                            : (sharded.map_.IsAssigned(g) &&
                               sharded.map_.ShardOf(g) == s);
      if (live) sharded.local_of_global_[g] = LocalRef{s, local};
    }
    if (sh.store != nullptr) sharded.num_live_ += sh.store->size();
  }

  if (load_options.report != nullptr) {
    load_options.report->MergeFrom(report);
  }
  return sharded;
}

Status ShardedSetSimilarityIndex::LoadShardFromPayloads(
    std::uint32_t s, const Status& store_st, const std::string& store_payload,
    const Status& index_st, const std::string& index_payload,
    const SnapshotLoadOptions& load_options, RecoveryReport* report) {
  Shard& sh = shards_[s];
  const std::string scope = ShardScope(base_scope_, s);

  SetStoreOptions store_options = options_.store;
  store_options.metrics_scope = scope + "/store";
  Status shard_status = store_st;
  if (shard_status.ok() && store_payload.empty()) {
    shard_status = Status::Corruption("empty shard store payload");
  }
  if ((shard_status.ok() || load_options.salvage) && !store_payload.empty()) {
    std::istringstream store_in(store_payload);
    SnapshotLoadOptions inner = load_options;
    inner.report = report;
    auto store = SetStore::Load(store_in, store_options, inner);
    if (store.ok()) {
      sh.store = std::make_unique<SetStore>(std::move(store).value());
      shard_status = Status::OK();
    } else {
      shard_status = store.status();
    }
  }
  if (!shard_status.ok()) {
    if (!load_options.salvage) return shard_status;
    sh.store = nullptr;  // unrecoverable: quarantine the whole shard
    sh.index = nullptr;
    return Status::OK();
  }

  Status idx_status = index_st;
  if (idx_status.ok() && index_payload.empty()) {
    idx_status = Status::Corruption("empty shard index payload");
  }
  if ((idx_status.ok() || load_options.salvage) && !index_payload.empty()) {
    std::istringstream index_in(index_payload);
    SnapshotLoadOptions inner = load_options;
    inner.report = report;
    auto index = SetSimilarityIndex::Load(*sh.store, index_in, inner);
    if (index.ok()) {
      sh.index = std::make_unique<SetSimilarityIndex>(std::move(index).value());
      if (layout_.points.empty()) layout_ = sh.index->layout();
      return Status::OK();
    }
    idx_status = index.status();
  }
  if (!load_options.salvage) return idx_status;

  // The index snapshot is beyond saving but the store survived: rebuild the
  // shard's index from its records. Deterministic under the configured
  // seeds, so the shard keeps serving with zero data loss. Needs the layout,
  // which comes from the first successfully loaded shard index.
  if (!layout_.points.empty()) {
    IndexOptions index_options = options_.index;
    index_options.metrics_scope = scope + "/index";
    auto rebuilt = SetSimilarityIndex::Build(*sh.store, layout_,
                                             index_options);
    if (rebuilt.ok()) {
      sh.index =
          std::make_unique<SetSimilarityIndex>(std::move(rebuilt).value());
      report->signatures_rebuilt += sh.store->size();
      report->salvaged = true;
      return Status::OK();
    }
  }
  sh.store = nullptr;
  sh.index = nullptr;
  return Status::OK();
}

std::uint64_t ShardedSetSimilarityIndex::ContentDigest() const {
  std::uint64_t h = map_.ContentDigest();
  h = HashCombine(h, num_live_);
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[s];
    h = HashCombine(h, sh.index != nullptr ? sh.index->ContentDigest() : 0);
    h = HashCombine(h, sh.global_of_local.size());
    for (SetId g : sh.global_of_local) h = HashCombine(h, g);
  }
  return h;
}

}  // namespace shard
}  // namespace ssr
