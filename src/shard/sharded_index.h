// ShardedSetSimilarityIndex: the horizontal axis of the system. The
// collection is partitioned across P shards by the ShardMap's stable
// sid-hash; each shard owns a private SetStore and a SetSimilarityIndex
// built over it with the PR-4 parallel builder. A range query is answered
// by scattering it to every shard (similarity gives no shard pruning — any
// shard can hold a match) and gathering the per-shard verified answers,
// merged *in shard order* so the output never depends on completion order.
//
// Shards keep their own dense local sid spaces (SetStore requires it); the
// sharded index is the only layer that speaks global sids, translating at
// the boundary via per-shard local -> global tables. Verified answers are
// exact per shard and shards partition the collection, so the merged answer
// is set-identical to a single index / sequential scan over the same
// collection — the property the differential harness (tests/difftest/)
// pins down across P, churn, and degraded shards.
//
// Failure semantics: a shard can be administratively degraded (operator
// action or a salvage load that lost it). Under kPartialResults the router
// and the serial Query skip it and tag the answer (partial, degraded shard
// ids listed) — every returned sid is still verified correct, so a degraded
// answer is a subset, never a superset. Under kFailFast the query errors.

#ifndef SSR_SHARD_SHARDED_INDEX_H_
#define SSR_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/set_similarity_index.h"
#include "shard/shard_map.h"
#include "storage/set_store.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {
namespace shard {

/// Resolves a `num_shards` knob: n > 0 is taken as-is; n == 0 means the
/// SSR_SHARDS environment variable when set to a positive integer,
/// otherwise 1 (sharding is opt-in, unlike threading).
std::uint32_t ResolveShardCount(std::uint32_t num_shards);

/// What a query does when a shard cannot answer (degraded or erroring).
enum class ShardFailurePolicy {
  /// Propagate Unavailable for the whole query.
  kFailFast,
  /// Answer from the healthy shards, tagged partial + degraded. Returned
  /// sids are verified correct; the answer is a subset, never a superset.
  kPartialResults,
};

struct ShardedIndexOptions {
  /// Shard count; 0 resolves via SSR_SHARDS (ResolveShardCount).
  std::uint32_t num_shards = 0;

  /// Seed for the ShardMap's rendezvous votes.
  std::uint64_t map_seed = ShardMap::kDefaultSeed;

  /// Per-shard index options (embedding, seed, build threads, per-shard
  /// DegradeMode, probe retry). metrics_scope is used as the *base* scope:
  /// shard s registers under "<base>/shard/<s>" (a fresh "sharded/N" base
  /// is allocated when empty).
  IndexOptions index;

  /// Per-shard store options (same base-scope treatment).
  SetStoreOptions store;

  /// Behavior when a shard cannot answer a query.
  ShardFailurePolicy on_shard_failure = ShardFailurePolicy::kPartialResults;
};

/// A sharded query answer: global sids plus the scatter/gather bookkeeping.
struct ShardedQueryResult {
  std::vector<SetId> sids;  // verified global sids, ascending
  /// Stats merged deterministically in shard order: counters and I/O sum
  /// across shards; plan/lo/up come from the first answering shard (all
  /// shards share the layout, so their plans agree); degraded is the OR.
  QueryStats stats;
  std::vector<QueryStats> per_shard;  // by shard; default-initialized if dead
  std::vector<Status> shard_status;   // by shard
  std::vector<std::uint32_t> degraded_shards;  // shards that did not answer
  bool partial = false;  // some shard's sids are missing from `sids`
};

/// Aggregate build statistics. Shards build one after another on the host,
/// but deploy to separate machines: the modeled makespan is the slowest
/// shard's modeled build time, the figure the shard_scaling bench charts.
struct ShardedBuildStats {
  std::vector<BuildStats> per_shard;
  double wall_seconds = 0.0;
  double modeled_makespan_seconds = 0.0;
};

class ShardedSetSimilarityIndex {
 public:
  /// Partitions `sets` (global sid = position) across the shards and builds
  /// every shard's index. The per-shard builds use options.index.num_threads
  /// workers each (the PR-4 parallel builder), one shard at a time.
  static Result<ShardedSetSimilarityIndex> Build(
      const SetCollection& sets, const IndexLayout& layout,
      const ShardedIndexOptions& options);

  /// Routes the set to its shard's store + index. `sid` is the caller's
  /// global sid (AlreadyExists if live). Global sids must be fresh — the
  /// sharded index never reuses them, mirroring SetStore's dense allocator.
  Status Insert(SetId sid, const ElementSet& set);

  /// Erases a global sid from its shard. NotFound when `sid` was never
  /// inserted or is already erased — same contract as
  /// SetSimilarityIndex::Erase.
  Status Erase(SetId sid);

  /// Serial reference scatter/gather: queries shards 0..P-1 in order on the
  /// calling thread and merges. Identical answers (and failure semantics)
  /// to QueryRouter::Query — the differential harness holds the two equal.
  Result<ShardedQueryResult> Query(const ElementSet& query, double sigma1,
                                   double sigma2) const;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::size_t num_live_sets() const { return num_live_; }
  const ShardMap& shard_map() const { return map_; }
  const ShardedBuildStats& build_stats() const { return build_stats_; }
  const std::string& metrics_scope() const { return base_scope_; }

  /// Per-shard access (the router fans out over these). A dead shard (lost
  /// in a salvage load) has null store/index and degraded == true.
  const SetStore* shard_store(std::uint32_t s) const {
    return shards_[s].store.get();
  }
  const SetSimilarityIndex* shard_index(std::uint32_t s) const {
    return shards_[s].index.get();
  }
  /// Local sid -> global sid table for shard `s` (by local sid; dead locals
  /// keep their entry).
  const std::vector<SetId>& global_of_local(std::uint32_t s) const {
    return shards_[s].global_of_local;
  }

  /// Attaches shard `s`'s write-ahead log to the mutation path. Records
  /// are appended *here*, at the sharded layer, carrying global sids —
  /// the inner per-shard indexes never get their own WAL (no double
  /// logging) — after precondition checks and before any state changes:
  /// a failed append fails the mutation with the routing tables, store,
  /// and index untouched. Runtime-only, like AttachWal on the inner
  /// index; pass nullptr to detach. The writer must outlive the index or
  /// be detached first.
  void AttachShardWal(std::uint32_t s, WalWriter* wal) {
    if (shard_wals_.size() < shards_.size()) {
      shard_wals_.resize(shards_.size(), nullptr);
    }
    shard_wals_[s] = wal;
  }
  WalWriter* shard_wal(std::uint32_t s) const {
    return s < shard_wals_.size() ? shard_wals_[s] : nullptr;
  }

  /// Marks a shard (un)available. A degraded shard is skipped (partial,
  /// tagged) or fails the query, per ShardFailurePolicy.
  void SetShardDegraded(std::uint32_t s, bool degraded);
  bool shard_degraded(std::uint32_t s) const {
    return shards_[s].degraded || shards_[s].index == nullptr;
  }

  ShardFailurePolicy on_shard_failure() const {
    return options_.on_shard_failure;
  }

  /// Translates one shard's verified local answer into `result`: maps local
  /// sids to global, appends them, and merges the per-shard stats in shard
  /// order. Shared by the serial Query and the router's gather.
  void GatherShardAnswer(std::uint32_t s, QueryResult&& answer,
                         ShardedQueryResult* result) const;
  /// Records shard `s` as unanswered under the failure policy. Returns the
  /// Unavailable status to propagate when the policy is kFailFast.
  Status GatherShardFailure(std::uint32_t s, Status status,
                            ShardedQueryResult* result) const;
  /// Finalizes a gathered result: sorts the merged global sids and settles
  /// the aggregate stats fields.
  void FinishGather(ShardedQueryResult* result) const;

  /// Persists the whole sharded index as one checksummed v2 snapshot: the
  /// shard map and routing tables first, then one nested store + index
  /// snapshot pair per shard, each in its own checksummed section. With
  /// SnapshotLoadOptions::salvage, a damaged shard section quarantines
  /// *that shard only* — it comes back dead (degraded, its sids lost) while
  /// every other shard loads intact and keeps serving; the RecoveryReport
  /// counts the quarantined records.
  Status SaveTo(std::ostream& out) const;
  static Result<ShardedSetSimilarityIndex> Load(
      std::istream& in, const ShardedIndexOptions& options,
      const SnapshotLoadOptions& load_options = {});

  /// Digest over the shard map, routing tables, and every live shard's
  /// index digest; equal iff the sharded structures are bit-identical.
  std::uint64_t ContentDigest() const;

 private:
  struct Shard {
    std::unique_ptr<SetStore> store;
    std::unique_ptr<SetSimilarityIndex> index;
    std::vector<SetId> global_of_local;
    bool degraded = false;
  };
  struct LocalRef {
    std::uint32_t shard = ShardMap::kUnassigned;
    SetId local = kInvalidSetId;
  };

  ShardedSetSimilarityIndex(ShardedIndexOptions options, IndexLayout layout);

  /// Allocates shard s's store + (empty-collection) index structures.
  Status CreateShard(std::uint32_t s);

  /// Reconstructs shard `s` from its two nested snapshot payloads (store,
  /// index) during Load. `store_st`/`index_st` are the outer section
  /// statuses. Strict loads propagate the first failure; salvage loads try
  /// inner page-level recovery, then an index rebuild from the surviving
  /// store, and finally quarantine the whole shard (null store/index).
  Status LoadShardFromPayloads(std::uint32_t s, const Status& store_st,
                               const std::string& store_payload,
                               const Status& index_st,
                               const std::string& index_payload,
                               const SnapshotLoadOptions& load_options,
                               RecoveryReport* report);

  ShardedIndexOptions options_;
  IndexLayout layout_;
  std::string base_scope_;
  ShardMap map_;
  std::vector<Shard> shards_;
  std::vector<WalWriter*> shard_wals_;  // by shard; not owned, runtime-only
  std::vector<LocalRef> local_of_global_;  // by global sid
  std::size_t num_live_ = 0;
  ShardedBuildStats build_stats_;
};

}  // namespace shard
}  // namespace ssr

#endif  // SSR_SHARD_SHARDED_INDEX_H_
