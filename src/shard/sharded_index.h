// ShardedSetSimilarityIndex: the horizontal axis of the system. The
// collection is partitioned across P shards by the ShardMap's stable
// sid-hash; each shard owns a private SetStore and a SetSimilarityIndex
// built over it with the PR-4 parallel builder. A range query is answered
// by scattering it to every shard (similarity gives no shard pruning — any
// shard can hold a match) and gathering the per-shard verified answers,
// merged *in shard order* so the output never depends on completion order.
//
// Shards keep their own dense local sid spaces (SetStore requires it); the
// sharded index is the only layer that speaks global sids, translating at
// the boundary via per-shard local -> global tables. Verified answers are
// exact per shard and shards partition the collection, so the merged answer
// is set-identical to a single index / sequential scan over the same
// collection — the property the differential harness (tests/difftest/)
// pins down across P, churn, and degraded shards.
//
// Live mutability (see DESIGN.md §16): after EnableConcurrentWrites,
// Insert/Erase (serialized on an internal writer mutex) run concurrently
// with any number of Query/QueryRouter readers. Reader-visible state — the
// shard slot table, each shard's local->global map, and the inner indexes'
// copy-on-write structures — is epoch-protected (exec/epoch.h): readers
// pin an epoch for the duration of a scatter/gather and writers retire
// replaced structures through the manager.
//
// Online rebalance: BeginRebalance plans a ShardMap move list toward a new
// shard count, StepRebalance migrates sids one at a time (each move is
// WAL-logged — kMoveOut to the source log, then kMoveIn, the commit point,
// to the destination log — so a crash mid-rebalance recovers each sid
// fully old or fully new, never split), and FinishRebalance retires the
// old topology. While a rebalance is active every answer is tagged
// `rebalancing` (and conservatively `partial`, reusing the degraded-shard
// tagging): a move's commit window can hide the moving sid from a
// concurrent scatter, so in-flight answers are partial-but-never-wrong.
//
// Failure semantics: a shard can be administratively degraded (operator
// action or a salvage load that lost it). Under kPartialResults the router
// and the serial Query skip it and tag the answer (partial, degraded shard
// ids listed) — every returned sid is still verified correct, so a degraded
// answer is a subset, never a superset. Under kFailFast the query errors.

#ifndef SSR_SHARD_SHARDED_INDEX_H_
#define SSR_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/set_similarity_index.h"
#include "exec/atomic_slot_array.h"
#include "exec/epoch.h"
#include "shard/shard_map.h"
#include "storage/set_store.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {
namespace shard {

/// Resolves a `num_shards` knob: n > 0 is taken as-is; n == 0 means the
/// SSR_SHARDS environment variable when set to a positive integer,
/// otherwise 1 (sharding is opt-in, unlike threading).
std::uint32_t ResolveShardCount(std::uint32_t num_shards);

/// What a query does when a shard cannot answer (degraded or erroring).
enum class ShardFailurePolicy {
  /// Propagate Unavailable for the whole query.
  kFailFast,
  /// Answer from the healthy shards, tagged partial + degraded. Returned
  /// sids are verified correct; the answer is a subset, never a superset.
  kPartialResults,
};

struct ShardedIndexOptions {
  /// Shard count; 0 resolves via SSR_SHARDS (ResolveShardCount).
  std::uint32_t num_shards = 0;

  /// Seed for the ShardMap's rendezvous votes.
  std::uint64_t map_seed = ShardMap::kDefaultSeed;

  /// Per-shard index options (embedding, seed, build threads, per-shard
  /// DegradeMode, probe retry). metrics_scope is used as the *base* scope:
  /// shard s registers under "<base>/shard/<s>" (a fresh "sharded/N" base
  /// is allocated when empty).
  IndexOptions index;

  /// Per-shard store options (same base-scope treatment).
  SetStoreOptions store;

  /// Behavior when a shard cannot answer a query.
  ShardFailurePolicy on_shard_failure = ShardFailurePolicy::kPartialResults;
};

/// A sharded query answer: global sids plus the scatter/gather bookkeeping.
struct ShardedQueryResult {
  std::vector<SetId> sids;  // verified global sids, ascending
  /// Stats merged deterministically in shard order: counters and I/O sum
  /// across shards; plan/lo/up come from the first answering shard (all
  /// shards share the layout, so their plans agree); degraded is the OR.
  QueryStats stats;
  std::vector<QueryStats> per_shard;  // by shard; default-initialized if dead
  std::vector<Status> shard_status;   // by shard
  std::vector<std::uint32_t> degraded_shards;  // shards that did not answer
  bool partial = false;  // some shard's sids may be missing from `sids`
  /// An online rebalance overlapped this query. The answer is still a
  /// verified subset of the true answer (never wrong), but a sid whose
  /// move committed mid-scatter may be missing — so `partial` is set too.
  bool rebalancing = false;
};

/// Aggregate build statistics. Shards build one after another on the host,
/// but deploy to separate machines: the modeled makespan is the slowest
/// shard's modeled build time, the figure the shard_scaling bench charts.
struct ShardedBuildStats {
  std::vector<BuildStats> per_shard;
  double wall_seconds = 0.0;
  double modeled_makespan_seconds = 0.0;
};

/// Progress of the online rebalance state machine.
struct RebalanceStatus {
  bool active = false;
  std::uint32_t target_shards = 0;
  std::size_t moves_planned = 0;
  std::size_t moves_done = 0;     // migrations committed (kMoveIn logged)
  std::size_t moves_skipped = 0;  // sid erased / re-placed before its turn
  /// The post-Begin checkpoint has been taken (or is not needed because no
  /// shard WAL is attached); StepRebalance refuses moves until it is.
  bool checkpointed = false;
  /// A move failed *after* its WAL commit point: in-memory state is behind
  /// the log and the rebalance is frozen — recover from checkpoint + WALs.
  bool wedged = false;
};

class ShardedSetSimilarityIndex {
 public:
  /// Partitions `sets` (global sid = position) across the shards and builds
  /// every shard's index. The per-shard builds use options.index.num_threads
  /// workers each (the PR-4 parallel builder), one shard at a time.
  static Result<ShardedSetSimilarityIndex> Build(
      const SetCollection& sets, const IndexLayout& layout,
      const ShardedIndexOptions& options);

  /// Switches every reader-visible structure (shard slots, local->global
  /// maps, the inner indexes) to epoch-protected publication under
  /// `manager` (Default() when null). Call once, after Build/Load and
  /// before the first concurrent reader or writer. Required before
  /// BeginRebalance or any mutation that overlaps queries.
  void EnableConcurrentWrites(exec::EpochManager* manager = nullptr);
  exec::EpochManager* epoch_manager() const { return epoch_manager_; }

  /// Routes the set to its shard's store + index. `sid` is the caller's
  /// global sid (AlreadyExists if live). Global sids must be fresh — the
  /// sharded index never reuses them, mirroring SetStore's dense allocator.
  /// Thread-safe against queries and other mutations after
  /// EnableConcurrentWrites (mutations serialize on the writer mutex).
  Status Insert(SetId sid, const ElementSet& set);

  /// Erases a global sid from its shard. NotFound when `sid` was never
  /// inserted or is already erased — same contract as
  /// SetSimilarityIndex::Erase. Same thread-safety as Insert.
  Status Erase(SetId sid);

  /// Serial reference scatter/gather: queries shards 0..P-1 in order on the
  /// calling thread and merges. Identical answers (and failure semantics)
  /// to QueryRouter::Query — the differential harness holds the two equal.
  Result<ShardedQueryResult> Query(const ElementSet& query, double sigma1,
                                   double sigma2) const;

  std::uint32_t num_shards() const {
    return num_shards_.load(std::memory_order_seq_cst);
  }
  std::size_t num_live_sets() const {
    return num_live_.load(std::memory_order_relaxed);
  }
  const ShardMap& shard_map() const { return map_; }
  const ShardedBuildStats& build_stats() const { return build_stats_; }
  const std::string& metrics_scope() const { return base_scope_; }

  /// Per-shard access (the router fans out over these). A dead shard (lost
  /// in a salvage load) has null store/index and degraded == true. Concurrent
  /// callers hold an exec::EpochGuard across the use of the returned
  /// pointers (shard objects are epoch-retired when a shrink completes).
  const SetStore* shard_store(std::uint32_t s) const {
    const Shard* sh = shards_.Get(s);
    return sh == nullptr ? nullptr : sh->store.get();
  }
  const SetSimilarityIndex* shard_index(std::uint32_t s) const {
    const Shard* sh = shards_.Get(s);
    return sh == nullptr ? nullptr : sh->index.get();
  }
  /// Local sid -> global sid table for shard `s`, materialized (by local
  /// sid; dead locals keep their entry). A point-in-time copy: the live
  /// table is a lock-free slot array that concurrent writers keep extending.
  std::vector<SetId> global_of_local(std::uint32_t s) const;

  /// Attaches shard `s`'s write-ahead log to the mutation path. Records
  /// are appended *here*, at the sharded layer, carrying global sids —
  /// the inner per-shard indexes never get their own WAL (no double
  /// logging) — after precondition checks and before any state changes:
  /// a failed append fails the mutation with the routing tables, store,
  /// and index untouched. Runtime-only, like AttachWal on the inner
  /// index; pass nullptr to detach. The writer must outlive the index or
  /// be detached first. Not thread-safe against in-flight mutations —
  /// attach during setup (or between Begin/Step for a grown shard, from
  /// the rebalance driver thread).
  void AttachShardWal(std::uint32_t s, WalWriter* wal) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (shard_wals_.size() <= s) shard_wals_.resize(s + 1, nullptr);
    shard_wals_[s] = wal;
  }
  WalWriter* shard_wal(std::uint32_t s) const {
    return s < shard_wals_.size() ? shard_wals_[s] : nullptr;
  }

  /// Marks a shard (un)available. A degraded shard is skipped (partial,
  /// tagged) or fails the query, per ShardFailurePolicy.
  void SetShardDegraded(std::uint32_t s, bool degraded);
  bool shard_degraded(std::uint32_t s) const {
    const Shard* sh = shards_.Get(s);
    return sh == nullptr || sh->index == nullptr ||
           sh->degraded.load(std::memory_order_relaxed);
  }
  /// True when slot `s` was nulled by a completed shrink: the shard was
  /// verified empty before FinishRebalance retired it, so a query that
  /// loaded the pre-shrink count skips it silently (a retired slot is not
  /// a failed shard — it must not trip ShardFailurePolicy::kFailFast).
  /// Slots below the live count are published before the count, so a null
  /// slot at or past the current count is the only way this reads true.
  bool shard_retired(std::uint32_t s) const {
    return shards_.Get(s) == nullptr && s >= num_shards();
  }

  ShardFailurePolicy on_shard_failure() const {
    return options_.on_shard_failure;
  }

  // --- Online rebalance (the move state machine) ---------------------
  //
  // Protocol: BeginRebalance(P') plans the ShardMap move list and (when
  // growing) publishes the new, still-empty shards so fresh inserts and
  // queries see them. The caller attaches WALs to any new shards, takes a
  // checkpoint (so recovery knows the new topology and every log's records
  // are anchored to one consistent cut), then drains the plan with
  // StepRebalance while readers and writers keep running, and calls
  // FinishRebalance to adopt the final shard count (shrink retires the
  // drained shards through the epoch manager). A crash anywhere in between
  // recovers to a consistent per-sid assignment — kMoveIn is the commit
  // point — and a re-run RebalanceTo converges the remainder.
  //
  // The post-Begin checkpoint is *enforced*, not advisory: with any shard
  // WAL attached, StepRebalance and FinishRebalance refuse until the
  // caller either declares the checkpoint via MarkRebalanceCheckpointed
  // or installs a SetRebalanceCheckpointHook (which BeginRebalance and
  // RebalanceTo invoke automatically). Without it, a crash could leave
  // move records from two topologies interleaved across logs with no
  // consistent replay cut.

  /// Starts a rebalance toward `new_num_shards`. FailedPrecondition when
  /// one is already active; Unavailable when any shard is degraded (its
  /// sids cannot be moved safely). When a checkpoint hook is installed it
  /// runs here — after the target topology is published, before any move
  /// can execute; its failure is returned and the rebalance stays active
  /// but un-checkpointed (StepRebalance refuses until the caller marks).
  Status BeginRebalance(std::uint32_t new_num_shards);

  /// Declares that the post-Begin checkpoint is durably written. With any
  /// shard WAL attached this is required before the first StepRebalance;
  /// without WALs it is implicit. FailedPrecondition when no rebalance is
  /// active.
  Status MarkRebalanceCheckpointed();

  /// Installs the durability callback BeginRebalance runs (without the
  /// writer lock, so it may AttachShardWal to grown shards) right after
  /// publishing the target topology: typically attach-WALs + write a
  /// sharded checkpoint. Success marks the rebalance checkpointed, which
  /// makes RebalanceTo safe end-to-end in durable deployments. Set during
  /// setup; not thread-safe against an in-flight BeginRebalance.
  void SetRebalanceCheckpointHook(std::function<Status()> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Executes up to `max_moves` planned migrations; returns the number of
  /// moves still pending. Call repeatedly (typically from one driver
  /// thread) until it reports 0, then FinishRebalance.
  Result<std::size_t> StepRebalance(std::size_t max_moves);

  /// Completes the rebalance: verifies the plan drained, adopts the target
  /// shard count, and (shrink) epoch-retires the emptied shards.
  Status FinishRebalance();

  /// Begin + drain + finish in one call (the offline-convenience path;
  /// still safe under concurrent readers/writers).
  Status RebalanceTo(std::uint32_t new_num_shards);

  RebalanceStatus rebalance_status() const;
  bool rebalancing() const {
    return rebalance_active_.load(std::memory_order_seq_cst);
  }

  /// Recovery-side replay of a kMoveIn record from shard `dest`'s WAL:
  /// relocates `sid` (wherever it currently lives, usually `from_shard`)
  /// into shard `dest` with `set` as its payload. Idempotent —
  /// AlreadyExists when the sid already lives at `dest`.
  Status ApplyMoveIn(std::uint32_t dest, SetId sid, std::uint32_t from_shard,
                     const ElementSet& set);

  /// Translates one shard's verified local answer into `result`: maps local
  /// sids to global, appends them, and merges the per-shard stats in shard
  /// order. Shared by the serial Query and the router's gather.
  void GatherShardAnswer(std::uint32_t s, QueryResult&& answer,
                         ShardedQueryResult* result) const;
  /// Records shard `s` as unanswered under the failure policy. Returns the
  /// Unavailable status to propagate when the policy is kFailFast.
  Status GatherShardFailure(std::uint32_t s, Status status,
                            ShardedQueryResult* result) const;
  /// Finalizes a gathered result: sorts + dedups the merged global sids
  /// (a mid-move sid can surface from both its old and new shard) and
  /// settles the aggregate stats and rebalance tagging.
  void FinishGather(ShardedQueryResult* result) const;

  /// Persists the whole sharded index as one checksummed v2 snapshot: the
  /// shard map and routing tables first, then one nested store + index
  /// snapshot pair per shard, each in its own checksummed section. With
  /// SnapshotLoadOptions::salvage, a damaged shard section quarantines
  /// *that shard only* — it comes back dead (degraded, its sids lost) while
  /// every other shard loads intact and keeps serving; the RecoveryReport
  /// counts the quarantined records. The caller quiesces mutations and any
  /// active rebalance driver for the duration of the save (the durability
  /// protocol's checkpoint contract).
  Status SaveTo(std::ostream& out) const;
  static Result<ShardedSetSimilarityIndex> Load(
      std::istream& in, const ShardedIndexOptions& options,
      const SnapshotLoadOptions& load_options = {});

  /// Digest over the shard map, routing tables, and every live shard's
  /// index digest; equal iff the sharded structures are bit-identical.
  std::uint64_t ContentDigest() const;

  // Moves happen only while singly-owned (Load/Recover plumbing) — never
  // concurrently with readers, writers, or an active rebalance.
  ShardedSetSimilarityIndex(ShardedSetSimilarityIndex&& other) noexcept;
  ShardedSetSimilarityIndex& operator=(
      ShardedSetSimilarityIndex&& other) noexcept;
  ~ShardedSetSimilarityIndex();

 private:
  struct Shard {
    std::unique_ptr<SetStore> store;
    std::unique_ptr<SetSimilarityIndex> index;
    /// Local sid -> global sid (kInvalidSetId = never populated). Dead
    /// locals keep their last entry, exactly like the old vector did — the
    /// store is the liveness truth.
    exec::AtomicSlotArray<SetId> global_of_local{kInvalidSetId};
    /// Logical length of global_of_local (== the store's next local sid).
    std::atomic<std::size_t> local_count{0};
    std::atomic<bool> degraded{false};
  };
  struct LocalRef {
    std::uint32_t shard = ShardMap::kUnassigned;
    SetId local = kInvalidSetId;
  };

  ShardedSetSimilarityIndex(ShardedIndexOptions options, IndexLayout layout);

  /// Allocates shard s's Shard object + store and publishes it in the slot
  /// table (does not bump num_shards_).
  Status CreateShard(std::uint32_t s);

  Shard& ShardAt(std::uint32_t s) const { return *shards_.Get(s); }

  /// BeginRebalance minus the checkpoint hook: plans the move list and
  /// publishes the target topology under the writer lock. The hook runs in
  /// the public wrapper, outside writer_mu_, because it typically calls
  /// AttachShardWal (which takes the lock).
  Status BeginRebalanceImpl(std::uint32_t new_num_shards);

  /// One migration, writer lock held. Returns true when the move executed
  /// (vs. skipped because the sid is no longer at move.from).
  Result<bool> ExecuteMoveLocked(const ShardMove& move);

  /// ApplyMoveIn body with writer_mu_ held.
  Status ApplyMoveInLocked(std::uint32_t dest, SetId sid,
                           const ElementSet& set);

  /// Inserts an already-routed (sid, set) into shard `s`, publishing the
  /// local->global mapping before the index entry so concurrent gathers
  /// never see an unmapped local. Writer lock held.
  Status InsertIntoShardLocked(std::uint32_t s, SetId sid,
                               const ElementSet& set);

  /// Removes `sid`'s record from its current shard (index + store; the
  /// local->global entry intentionally stays, dead). Writer lock held.
  Status RemoveFromShardLocked(const LocalRef& ref);

  /// Reconstructs shard `s` from its two nested snapshot payloads (store,
  /// index) during Load. `store_st`/`index_st` are the outer section
  /// statuses. Strict loads propagate the first failure; salvage loads try
  /// inner page-level recovery, then an index rebuild from the surviving
  /// store, and finally quarantine the whole shard (null store/index).
  Status LoadShardFromPayloads(std::uint32_t s, const Status& store_st,
                               const std::string& store_payload,
                               const Status& index_st,
                               const std::string& index_payload,
                               const SnapshotLoadOptions& load_options,
                               RecoveryReport* report);

  void FreeShards();

  ShardedIndexOptions options_;
  IndexLayout layout_;
  std::string base_scope_;
  ShardMap map_;
  /// Reader path: shards_.Get(s) for s < num_shards_. Slots are published
  /// once and stay valid while any reader could hold them (epoch-retired
  /// on shrink). owned_shards_ is the writer-side ownership list.
  exec::AtomicSlotArray<Shard*> shards_{nullptr};
  std::atomic<std::uint32_t> num_shards_{0};
  std::vector<std::unique_ptr<Shard>> owned_shards_;
  std::vector<WalWriter*> shard_wals_;  // by shard; not owned, runtime-only
  std::vector<LocalRef> local_of_global_;  // by global sid; writer-side only
  std::atomic<std::size_t> num_live_{0};
  ShardedBuildStats build_stats_;

  /// Serializes Insert/Erase/ApplyMoveIn and the rebalance state machine.
  mutable std::mutex writer_mu_;
  exec::EpochManager* epoch_manager_ = nullptr;  // not owned; set once

  // Rebalance state (writer_mu_ except the active flag, which readers tag
  // answers from).
  std::atomic<bool> rebalance_active_{false};
  std::uint32_t rebalance_target_ = 0;
  std::vector<ShardMove> pending_moves_;
  std::size_t next_move_ = 0;
  std::size_t moves_done_ = 0;
  std::size_t moves_skipped_ = 0;
  /// True once the post-Begin checkpoint is declared (or vacuously, when
  /// no shard WAL is attached at Begin). StepRebalance and FinishRebalance
  /// refuse while false.
  bool rebalance_checkpointed_ = true;
  /// Set when a move fails after its kMoveIn append: the log says the move
  /// committed but memory disagrees, so no further rebalance work is safe.
  bool rebalance_wedged_ = false;
  std::function<Status()> checkpoint_hook_;
};

}  // namespace shard
}  // namespace ssr

#endif  // SSR_SHARD_SHARDED_INDEX_H_
