// QueryRouter: the parallel scatter/gather front end of the sharded index.
// A single query fans out to every shard on the router's thread pool (one
// ReadView per probe, so shards are queried concurrently without touching
// each other's buffer pools); a batch goes through one BatchExecutor per
// shard, every executor scheduling on the router's one shared pool. Either
// way the gather merges per-shard answers *in shard order* with the same
// helpers the serial ShardedSetSimilarityIndex::Query uses — router answers
// are bit-identical to serial answers, which the differential harness
// (tests/difftest/) holds as an invariant.
//
// Failure semantics are inherited from the index's ShardFailurePolicy: a
// degraded or erroring shard either fails the query (kFailFast) or is
// skipped with the answer tagged partial + degraded (kPartialResults).

#ifndef SSR_SHARD_QUERY_ROUTER_H_
#define SSR_SHARD_QUERY_ROUTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "exec/batch_executor.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/workload_observer.h"
#include "shard/sharded_index.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {
namespace shard {

struct QueryRouterOptions {
  /// Worker threads for the router's pool: 0 = resolve from SSR_THREADS /
  /// hardware concurrency (exec::ResolveThreadCount), 1 = serial.
  std::size_t num_threads = 0;

  /// Buffer-pool pages per shard ReadView; 0 = each shard store's
  /// configured capacity.
  std::size_t view_buffer_pool_pages = 0;

  /// Queries per scheduling chunk inside each shard's BatchExecutor.
  std::size_t batch_grain = 1;

  /// Scope for this router's per-shard instruments
  /// (ssr_router_shard_latency_micros under <scope>/shard/<s>). Empty
  /// allocates a unique "router/N" scope.
  std::string metrics_scope;

  /// Workload capture target (not owned; may be null). The router counts
  /// each routed query once — thresholds, set size, merged per-FI probes —
  /// plus per-shard load (CountShardAnswer), and offers completed answers
  /// to the observer's sampled side channels. Shard-level executors do NOT
  /// get the observer (that would count every query once per shard). Must
  /// outlive the router's queries.
  obs::WorkloadObserver* workload_observer = nullptr;
};

/// The outcome of one QueryRouter::RunBatch.
struct RoutedBatchResult {
  /// Per-query status/result, in input order. results[i] is meaningful iff
  /// statuses[i].ok(); a query can fail while its neighbors succeed
  /// (kFailFast with a degraded shard fails every query in the batch).
  std::vector<Status> statuses;
  std::vector<ShardedQueryResult> results;

  std::size_t queries = 0;
  std::size_t failed = 0;
  std::size_t threads_used = 0;

  /// Host wall clock for the whole batch (scatter + gather), and for the
  /// gather/merge alone.
  double wall_seconds = 0.0;
  double merge_seconds = 0.0;

  /// Per-shard batch execution reports, by shard. Default-initialized for
  /// shards that were skipped (degraded).
  std::vector<exec::BatchResult> per_shard;

  /// Modeled batch runtime when every shard runs on its own machine: the
  /// slowest shard's modeled batch makespan plus the (measured) merge time
  /// at the router. modeled_qps = queries / that.
  double modeled_makespan_seconds = 0.0;
  double modeled_qps = 0.0;
};

/// Scatters queries across a ShardedSetSimilarityIndex's shards on a shared
/// thread pool and gathers deterministically. After the index's
/// EnableConcurrentWrites, Query/RunBatch may run concurrently with
/// Insert/Erase and an online rebalance (the router pins epochs around
/// every scatter; mid-rebalance answers come back tagged rebalancing +
/// partial). Without it, the index must not be mutated while a
/// Query/RunBatch is in flight (SetShardDegraded included).
class QueryRouter {
 public:
  explicit QueryRouter(const ShardedSetSimilarityIndex& index,
                       QueryRouterOptions options = {});

  /// One query, scattered to all shards in parallel. Answers (including
  /// stats merging and failure tagging) are identical to the serial
  /// ShardedSetSimilarityIndex::Query.
  Result<ShardedQueryResult> Query(const ElementSet& query, double sigma1,
                                   double sigma2);

  /// A batch of queries: one BatchExecutor per shard on the router's pool
  /// (shard batches run one after another on this host; the modeled
  /// makespan treats them as concurrent machines), then a per-query gather
  /// in shard order.
  RoutedBatchResult RunBatch(const std::vector<exec::BatchQuery>& queries);

  std::size_t num_threads() const { return pool_.size(); }
  const std::string& metrics_scope() const { return options_.metrics_scope; }

 private:
  /// Feeds one merged answer to the workload observer (counts + sampled
  /// side channels + per-shard load). No-op when no observer is attached.
  void ObserveRoutedAnswer(const ElementSet& query, double sigma1,
                           double sigma2, const ShardedQueryResult& result);

  const ShardedSetSimilarityIndex* index_;
  QueryRouterOptions options_;
  exec::ThreadPool pool_;
  /// Per-shard gather-latency histograms under <scope>/shard/<s>: the wall
  /// time of each shard's probe in Query, and each shard's batch makespan
  /// in RunBatch. This is where shard skew becomes visible — the modeled
  /// makespan scalar only reports the max.
  std::vector<obs::Histogram*> shard_latency_;
  /// End-to-end routed query latency (scatter + gather + merge) under the
  /// router's scope: the series the SLO windows track for the sharded
  /// front end, the sharded counterpart of ssr_index_query_latency_micros.
  obs::Histogram* query_latency_;
};

}  // namespace shard
}  // namespace ssr

#endif  // SSR_SHARD_QUERY_ROUTER_H_
