// ShardMap: the authoritative sid -> shard assignment for a sharded
// collection. Placement is rendezvous hashing (highest random weight): shard
// of sid = argmax over shards of HashU64(sid, shard_seed). HRW gives the
// minimal-movement property the rebalance contract relies on — growing
// P -> P' moves a sid only when one of the *new* shards wins its vote, and
// shrinking moves only the sids whose shard was removed; no sid ever hops
// between two surviving shards.
//
// The assignment is nonetheless *explicit*: every sid the map has ever
// placed is recorded and persisted, and lookups answer from the record, not
// the hash. Loading a snapshot therefore reproduces the exact placement it
// was saved with — changing the shard count is a planned Rebalance that
// reports which sids moved (so their data can be migrated), never a silent
// re-hash on the next lookup.

#ifndef SSR_SHARD_SHARD_MAP_H_
#define SSR_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/result.h"
#include "util/serialize.h"
#include "util/types.h"

namespace ssr {
namespace shard {

/// One sid relocation produced by Rebalance.
struct ShardMove {
  SetId sid = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

class ShardMap {
 public:
  static constexpr std::uint32_t kUnassigned = 0xffffffffu;
  static constexpr std::uint64_t kDefaultSeed = 0x5a4dba1a7c3dULL;

  /// `num_shards` must be >= 1.
  explicit ShardMap(std::uint32_t num_shards,
                    std::uint64_t seed = kDefaultSeed);

  std::uint32_t num_shards() const { return num_shards_; }
  std::uint64_t seed() const { return seed_; }

  /// Number of sids with a recorded assignment.
  std::size_t num_assigned() const { return num_assigned_; }

  /// Records (and returns) sid's shard. Total: every sid maps to exactly
  /// one shard in [0, num_shards). Idempotent — a sid that already has a
  /// recorded assignment keeps it.
  std::uint32_t Assign(SetId sid);

  /// The recorded shard for `sid`, or — for a sid never assigned — the
  /// shard Assign would record (the pure HRW placement). Never kUnassigned.
  std::uint32_t ShardOf(SetId sid) const;

  /// True iff `sid` has a recorded assignment.
  bool IsAssigned(SetId sid) const {
    return sid < assigned_.size() && assigned_[sid] != kUnassigned;
  }

  /// Drops sid's recorded assignment (the sid was erased from the
  /// collection; a later re-insert re-votes under the current shard count).
  void Forget(SetId sid);

  /// Re-votes every recorded sid under `new_num_shards` shards and returns
  /// the sids whose shard changed, in ascending sid order. By the HRW
  /// construction the moves are exactly the mathematically required ones:
  /// when growing, every move's destination is a newly added shard; when
  /// shrinking, every move's source is a removed shard.
  std::vector<ShardMove> Rebalance(std::uint32_t new_num_shards);

  /// The move list Rebalance(new_num_shards) *would* produce, without
  /// mutating the map. The online rebalance plans with this, then applies
  /// each move individually (Reassign) as its data migration commits, so
  /// the map always describes where each sid's data actually lives.
  std::vector<ShardMove> PlanRebalance(std::uint32_t new_num_shards) const;

  /// Points sid at `to`, recording the assignment when absent (its
  /// migration committed; recovery may replay a move before the insert
  /// that created the sid).
  void Reassign(SetId sid, std::uint32_t to);

  /// Adopts a new shard count without re-voting recorded sids. Grow-side
  /// BeginRebalance calls this so fresh inserts vote under the target
  /// topology while the planned moves drain.
  void SetNumShards(std::uint32_t n);

  /// Records sid's assignment as the HRW vote under `target_count` shards
  /// (instead of num_shards()). Shrink-side rebalance routes fresh inserts
  /// through this so nothing new lands on a draining shard. Idempotent like
  /// Assign.
  std::uint32_t AssignForTarget(SetId sid, std::uint32_t target_count);

  /// Serializes the map (shard count, seed, explicit assignment) into an
  /// open writer / reads it back. Used as a section payload by the sharded
  /// index snapshot; SaveTo/Load below wrap the same bytes for standalone
  /// use.
  void WriteTo(BinaryWriter& out) const;
  static Result<ShardMap> ReadFrom(BinaryReader& in);

  Status SaveTo(std::ostream& out) const;
  static Result<ShardMap> Load(std::istream& in);

  /// Order-sensitive digest over (num_shards, seed, every recorded
  /// assignment); equal digests mean bit-identical placement.
  std::uint64_t ContentDigest() const;

 private:
  /// Pure HRW vote for `sid` over `num_shards` shards under seed_.
  std::uint32_t HrwShard(SetId sid, std::uint32_t num_shards) const;

  std::uint32_t num_shards_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> assigned_;  // by sid; kUnassigned = no record
  std::size_t num_assigned_ = 0;
};

}  // namespace shard
}  // namespace ssr

#endif  // SSR_SHARD_SHARD_MAP_H_
