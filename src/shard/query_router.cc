#include "shard/query_router.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "exec/epoch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ssr {
namespace shard {

QueryRouter::QueryRouter(const ShardedSetSimilarityIndex& index,
                         QueryRouterOptions options)
    : index_(&index),
      options_(options),
      pool_(exec::ResolveThreadCount(options.num_threads)) {
  auto& registry = obs::MetricsRegistry::Default();
  if (options_.metrics_scope.empty()) {
    options_.metrics_scope = registry.NewScope("router");
  }
  const std::vector<double> bounds = obs::LatencyBoundsMicros();
  shard_latency_.reserve(index_->num_shards());
  for (std::uint32_t s = 0; s < index_->num_shards(); ++s) {
    shard_latency_.push_back(registry.GetHistogram(
        "ssr_router_shard_latency_micros",
        options_.metrics_scope + "/shard/" + std::to_string(s), bounds));
  }
  query_latency_ = registry.GetHistogram("ssr_router_query_latency_micros",
                                         options_.metrics_scope, bounds);
}

void QueryRouter::ObserveRoutedAnswer(const ElementSet& query, double sigma1,
                                      double sigma2,
                                      const ShardedQueryResult& result) {
  obs::WorkloadObserver* const target = options_.workload_observer;
  if (target == nullptr) return;
  target->CountQuery(sigma1, sigma2, query.size());
  // The merged stats carry per-FI probe totals summed across shards, so one
  // routed query contributes exactly one probe record per FI, like serial.
  for (const auto& p : result.stats.fi_probes) {
    target->CountFiProbe(p.fi, p.bucket_accesses, p.sids, p.failed);
  }
  for (std::size_t s = 0; s < result.per_shard.size(); ++s) {
    if (s < result.shard_status.size() && !result.shard_status[s].ok()) {
      continue;  // degraded shard did no work for this query
    }
    target->CountShardAnswer(s, result.per_shard[s].results);
  }
  target->OfferSample(query, sigma1, sigma2, result.sids,
                      result.stats.candidates);
}

Result<ShardedQueryResult> QueryRouter::Query(const ElementSet& query,
                                              double sigma1, double sigma2) {
  static obs::Counter* const queries =
      obs::MetricsRegistry::Default().GetCounter("ssr_router_queries_total");
  static obs::Counter* const partials = obs::MetricsRegistry::Default()
      .GetCounter("ssr_router_partial_answers_total");
  queries->Increment();

  // End-to-end latency covers every exit path (including rejected queries:
  // a caller-bug rejection is still time the front end spent answering).
  struct LatencyGuard {
    Stopwatch watch;
    obs::Histogram* hist;
    ~LatencyGuard() { hist->Observe(watch.ElapsedSeconds() * 1e6); }
  } latency_guard{Stopwatch(), query_latency_};

  // Pin an epoch for the whole scatter/gather: shard slots and routing
  // tables loaded here stay dereferenceable even if a concurrent rebalance
  // retires them mid-query. Workers pin their own epochs below.
  std::optional<exec::EpochGuard> epoch_guard;
  if (index_->epoch_manager() != nullptr) {
    epoch_guard.emplace(*index_->epoch_manager());
  }
  const std::uint32_t num_shards = index_->num_shards();
  obs::TraceSpan span("router_query");
  span.Tag("shards", static_cast<std::uint64_t>(num_shards));
  span.Tag("workers", static_cast<std::uint64_t>(pool_.size()));

  // Scatter: every healthy shard is probed concurrently through its own
  // ReadView (private buffer pool + I/O model), so the only shared state
  // the workers touch is read-only index structure. Slots are per-shard,
  // so writes are index-disjoint.
  std::vector<QueryResult> answers(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  std::vector<char> answered(num_shards, 0);
  std::vector<char> retired(num_shards, 0);
  {
    obs::TraceSpan scatter("router_scatter");
    pool_.ParallelFor(0, num_shards, 1, [&](std::size_t s, std::size_t) {
      // The worker's own pin: the shard pointers it loads stay valid even
      // if a shrink retires the shard before the probe finishes.
      std::optional<exec::EpochGuard> worker_guard;
      if (index_->epoch_manager() != nullptr) {
        worker_guard.emplace(*index_->epoch_manager());
      }
      const SetStore* store =
          index_->shard_store(static_cast<std::uint32_t>(s));
      const SetSimilarityIndex* shard_index =
          index_->shard_index(static_cast<std::uint32_t>(s));
      if (store == nullptr || shard_index == nullptr ||
          index_->shard_degraded(static_cast<std::uint32_t>(s))) {
        // A slot nulled by a completed shrink is not a failed shard: the
        // shard was provably empty when retired, so it is skipped (and
        // tagged at gather) instead of tripping the failure policy.
        if (index_->shard_retired(static_cast<std::uint32_t>(s))) {
          retired[s] = 1;
          return;
        }
        statuses[s] = Status::Unavailable("shard administratively degraded");
        return;
      }
      Stopwatch probe_watch;
      SetStore::ReadView view(*store, options_.view_buffer_pool_pages);
      std::vector<SetId> scratch;
      auto r = shard_index->QueryThrough(view, query, sigma1, sigma2,
                                         &scratch);
      // Shards added by a grow rebalance after router construction have no
      // histogram slot; their latency is uncounted until a new router.
      if (s < shard_latency_.size()) {
        shard_latency_[s]->Observe(probe_watch.ElapsedSeconds() * 1e6);
      }
      if (r.ok()) {
        answers[s] = std::move(r).value();
        answered[s] = 1;
      } else {
        statuses[s] = r.status();
      }
    });
  }

  // Gather in shard order — deterministic regardless of which worker
  // finished when.
  obs::TraceSpan gather("router_gather");
  ShardedQueryResult result;
  result.per_shard.resize(num_shards);
  result.shard_status.assign(num_shards, Status::OK());
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (answered[s]) {
      index_->GatherShardAnswer(s, std::move(answers[s]), &result);
      continue;
    }
    if (retired[s]) {
      // Shrink finished mid-scatter: nothing was dropped (the shard was
      // empty), but the overlap can hide a moved sid — conservative tag,
      // same contract as a query under an active rebalance.
      result.rebalancing = true;
      result.partial = true;
      continue;
    }
    // A malformed query is the caller's bug, not a shard failure: every
    // shard rejects identically, so propagate instead of degrading.
    if (statuses[s].IsInvalidArgument()) return statuses[s];
    SSR_RETURN_IF_ERROR(
        index_->GatherShardFailure(s, std::move(statuses[s]), &result));
  }
  index_->FinishGather(&result);
  if (result.partial) partials->Increment();
  if (options_.workload_observer != nullptr) {
    ObserveRoutedAnswer(query, sigma1, sigma2, result);
    options_.workload_observer->UpdateGauges();
  }
  span.Tag("results", static_cast<std::uint64_t>(result.sids.size()));
  return result;
}

RoutedBatchResult QueryRouter::RunBatch(
    const std::vector<exec::BatchQuery>& queries) {
  static obs::Counter* const batches =
      obs::MetricsRegistry::Default().GetCounter("ssr_router_batches_total");
  static obs::Counter* const batch_queries = obs::MetricsRegistry::Default()
      .GetCounter("ssr_router_batch_queries_total");
  batches->Increment();
  batch_queries->Add(queries.size());

  // Pinned for the whole batch: shard objects loaded below survive a
  // concurrent shrink (inner copy-on-write structures are protected by the
  // per-query pins the executors' workers take themselves).
  std::optional<exec::EpochGuard> epoch_guard;
  if (index_->epoch_manager() != nullptr) {
    epoch_guard.emplace(*index_->epoch_manager());
  }
  const std::uint32_t num_shards = index_->num_shards();
  Stopwatch wall;
  obs::TraceSpan span("router_batch");
  span.Tag("queries", static_cast<std::uint64_t>(queries.size()));
  span.Tag("shards", static_cast<std::uint64_t>(num_shards));

  RoutedBatchResult out;
  out.queries = queries.size();
  out.threads_used = pool_.size();
  out.statuses.assign(queries.size(), Status::OK());
  out.results.resize(queries.size());
  out.per_shard.resize(num_shards);

  // Scatter: each shard runs the whole batch through a BatchExecutor on
  // the router's shared pool. Shard batches execute one after another on
  // this host (the pool is not reentrant), but deploy to one machine per
  // shard — the modeled makespan below is the slowest shard, not the sum.
  std::vector<char> shard_ran(num_shards, 0);
  std::vector<char> shard_retired(num_shards, 0);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const SetSimilarityIndex* shard_index = index_->shard_index(s);
    if (shard_index == nullptr || index_->shard_degraded(s)) {
      // Retired by a completed shrink vs. genuinely degraded: the former
      // is skipped silently (it was empty), the latter per failure policy.
      if (index_->shard_retired(s)) shard_retired[s] = 1;
      continue;
    }
    obs::TraceSpan shard_span("router_shard_batch");
    shard_span.Tag("shard", static_cast<std::uint64_t>(s));
    exec::BatchExecutorOptions exec_options;
    exec_options.grain = options_.batch_grain;
    exec_options.view_buffer_pool_pages = options_.view_buffer_pool_pages;
    exec::BatchExecutor executor(*shard_index, pool_, exec_options);
    out.per_shard[s] = executor.Run(queries);
    // One observation per batch: the shard's host wall clock, the honest
    // per-shard figure the latency histogram tracks in batch mode. Shards
    // grown after router construction have no histogram slot.
    if (s < shard_latency_.size()) {
      shard_latency_[s]->Observe(out.per_shard[s].wall_seconds * 1e6);
    }
    shard_ran[s] = 1;
    out.modeled_makespan_seconds =
        std::max(out.modeled_makespan_seconds,
                 out.per_shard[s].modeled_makespan_seconds);
  }

  // Gather: per query, merge the per-shard answers in shard order.
  Stopwatch merge_watch;
  {
    obs::TraceSpan gather("router_gather");
    gather.Tag("queries", static_cast<std::uint64_t>(queries.size()));
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ShardedQueryResult merged;
      merged.per_shard.resize(num_shards);
      merged.shard_status.assign(num_shards, Status::OK());
      Status failure = Status::OK();
      for (std::uint32_t s = 0; s < num_shards && failure.ok(); ++s) {
        if (!shard_ran[s]) {
          if (shard_retired[s]) {
            merged.rebalancing = true;
            merged.partial = true;
            continue;
          }
          failure = index_->GatherShardFailure(
              s, Status::Unavailable("shard administratively degraded"),
              &merged);
          continue;
        }
        const Status& st = out.per_shard[s].statuses[i];
        if (st.ok()) {
          index_->GatherShardAnswer(
              s, std::move(out.per_shard[s].results[i]), &merged);
        } else if (st.IsInvalidArgument()) {
          failure = st;  // caller bug: propagate, don't degrade
        } else {
          failure = index_->GatherShardFailure(s, st, &merged);
        }
      }
      if (!failure.ok()) {
        out.statuses[i] = std::move(failure);
        ++out.failed;
        continue;
      }
      index_->FinishGather(&merged);
      out.results[i] = std::move(merged);
    }
  }
  if (options_.workload_observer != nullptr) {
    // Serial post-gather pass in input order, exactly like BatchExecutor:
    // deterministic decimation for the sampled side channels.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!out.statuses[i].ok()) continue;
      ObserveRoutedAnswer(queries[i].query, queries[i].sigma1,
                          queries[i].sigma2, out.results[i]);
    }
    options_.workload_observer->UpdateGauges();
  }
  out.merge_seconds = merge_watch.ElapsedSeconds();
  out.wall_seconds = wall.ElapsedSeconds();
  out.modeled_makespan_seconds += out.merge_seconds;
  if (out.modeled_makespan_seconds > 0.0) {
    out.modeled_qps =
        static_cast<double>(out.queries) / out.modeled_makespan_seconds;
  }
  span.Tag("failed", static_cast<std::uint64_t>(out.failed));
  span.Tag("modeled_qps", out.modeled_qps);
  return out;
}

}  // namespace shard
}  // namespace ssr
