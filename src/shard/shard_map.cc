#include "shard/shard_map.h"

#include <cassert>
#include <string_view>

#include "storage/snapshot.h"
#include "util/hash.h"

namespace ssr {
namespace shard {

namespace {
constexpr std::string_view kShardMapMagic = "SSRSHMAP";
constexpr std::uint32_t kShardMapVersion = 1;
}  // namespace

ShardMap::ShardMap(std::uint32_t num_shards, std::uint64_t seed)
    : num_shards_(num_shards == 0 ? 1 : num_shards), seed_(seed) {}

std::uint32_t ShardMap::HrwShard(SetId sid,
                                 std::uint32_t num_shards) const {
  // Rendezvous vote: every shard hashes the sid under its own derived seed;
  // the highest value wins (ties, vanishingly rare, go to the lower shard).
  std::uint32_t best_shard = 0;
  std::uint64_t best_weight = 0;
  const std::uint64_t sid_mixed = SplitMix64(seed_ ^ sid);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const std::uint64_t weight = HashU64(sid_mixed, SplitMix64(seed_ + s));
    if (s == 0 || weight > best_weight) {
      best_weight = weight;
      best_shard = s;
    }
  }
  return best_shard;
}

std::uint32_t ShardMap::Assign(SetId sid) {
  if (sid >= assigned_.size()) {
    assigned_.resize(sid + 1, kUnassigned);
  }
  if (assigned_[sid] == kUnassigned) {
    assigned_[sid] = HrwShard(sid, num_shards_);
    ++num_assigned_;
  }
  return assigned_[sid];
}

std::uint32_t ShardMap::ShardOf(SetId sid) const {
  if (IsAssigned(sid)) return assigned_[sid];
  return HrwShard(sid, num_shards_);
}

void ShardMap::Forget(SetId sid) {
  if (!IsAssigned(sid)) return;
  assigned_[sid] = kUnassigned;
  --num_assigned_;
}

std::vector<ShardMove> ShardMap::Rebalance(std::uint32_t new_num_shards) {
  if (new_num_shards == 0) new_num_shards = 1;
  std::vector<ShardMove> moves;
  for (SetId sid = 0; sid < assigned_.size(); ++sid) {
    if (assigned_[sid] == kUnassigned) continue;
    const std::uint32_t to = HrwShard(sid, new_num_shards);
    if (to != assigned_[sid]) {
      moves.push_back({sid, assigned_[sid], to});
      assigned_[sid] = to;
    }
  }
  num_shards_ = new_num_shards;
  return moves;
}

std::vector<ShardMove> ShardMap::PlanRebalance(
    std::uint32_t new_num_shards) const {
  if (new_num_shards == 0) new_num_shards = 1;
  std::vector<ShardMove> moves;
  for (SetId sid = 0; sid < assigned_.size(); ++sid) {
    if (assigned_[sid] == kUnassigned) continue;
    const std::uint32_t to = HrwShard(sid, new_num_shards);
    if (to != assigned_[sid]) moves.push_back({sid, assigned_[sid], to});
  }
  return moves;
}

void ShardMap::Reassign(SetId sid, std::uint32_t to) {
  if (sid >= assigned_.size()) {
    assigned_.resize(sid + 1, kUnassigned);
  }
  if (assigned_[sid] == kUnassigned) ++num_assigned_;
  assigned_[sid] = to;
}

void ShardMap::SetNumShards(std::uint32_t n) {
  num_shards_ = n == 0 ? 1 : n;
}

std::uint32_t ShardMap::AssignForTarget(SetId sid,
                                        std::uint32_t target_count) {
  if (target_count == 0) target_count = 1;
  if (sid >= assigned_.size()) {
    assigned_.resize(sid + 1, kUnassigned);
  }
  if (assigned_[sid] == kUnassigned) {
    assigned_[sid] = HrwShard(sid, target_count);
    ++num_assigned_;
  }
  return assigned_[sid];
}

void ShardMap::WriteTo(BinaryWriter& out) const {
  out.WriteU32(num_shards_);
  out.WriteU64(seed_);
  out.WriteU64(assigned_.size());
  out.WriteU64(num_assigned_);
  for (SetId sid = 0; sid < assigned_.size(); ++sid) {
    if (assigned_[sid] == kUnassigned) continue;
    out.WriteU32(sid);
    out.WriteU32(assigned_[sid]);
  }
}

Result<ShardMap> ShardMap::ReadFrom(BinaryReader& in) {
  std::uint32_t num_shards = 0;
  std::uint64_t seed = 0, capacity = 0, count = 0;
  SSR_RETURN_IF_ERROR(in.ReadU32(&num_shards));
  SSR_RETURN_IF_ERROR(in.ReadU64(&seed));
  SSR_RETURN_IF_ERROR(in.ReadU64(&capacity));
  SSR_RETURN_IF_ERROR(in.ReadU64(&count));
  if (num_shards == 0) return Status::Corruption("shard map with 0 shards");
  if (capacity > (1ULL << 32) || count > capacity) {
    return Status::Corruption("implausible shard-map size");
  }
  ShardMap map(num_shards, seed);
  map.assigned_.assign(static_cast<std::size_t>(capacity), kUnassigned);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t sid = 0, shard = 0;
    SSR_RETURN_IF_ERROR(in.ReadU32(&sid));
    SSR_RETURN_IF_ERROR(in.ReadU32(&shard));
    if (sid >= capacity || shard >= num_shards) {
      return Status::Corruption("shard-map entry out of range");
    }
    if (map.assigned_[sid] != kUnassigned) {
      return Status::Corruption("duplicate shard-map entry");
    }
    map.assigned_[sid] = shard;
  }
  map.num_assigned_ = static_cast<std::size_t>(count);
  return map;
}

Status ShardMap::SaveTo(std::ostream& out) const {
  SnapshotWriter snapshot(out, kShardMapMagic, kShardMapVersion);
  BinaryWriter& body = snapshot.BeginSection("assignment");
  WriteTo(body);
  SSR_RETURN_IF_ERROR(snapshot.EndSection());
  return snapshot.Finish();
}

Result<ShardMap> ShardMap::Load(std::istream& in) {
  SnapshotReader snapshot(in);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kShardMapMagic, &version));
  if (version != kShardMapVersion) {
    return Status::NotSupported("unknown shard-map version");
  }
  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("assignment", &payload));
  std::istringstream body_in(payload);
  BinaryReader body(body_in);
  auto map = ReadFrom(body);
  if (!map.ok()) return map.status();
  SSR_RETURN_IF_ERROR(snapshot.VerifyFooter());
  return map;
}

std::uint64_t ShardMap::ContentDigest() const {
  std::uint64_t h = SplitMix64(num_shards_);
  h = HashCombine(h, seed_);
  h = HashCombine(h, num_assigned_);
  for (SetId sid = 0; sid < assigned_.size(); ++sid) {
    if (assigned_[sid] == kUnassigned) continue;
    h = HashCombine(h, sid);
    h = HashCombine(h, assigned_[sid]);
  }
  return h;
}

}  // namespace shard
}  // namespace ssr
