#include "ecc/code.h"

#include <bit>
#include <vector>

#include "ecc/hadamard.h"
#include "ecc/naive.h"
#include "ecc/simplex.h"

namespace ssr {

void Code::Encode(std::uint16_t message, std::uint64_t* out) const {
  const unsigned m = codeword_bits();
  const std::size_t words = codeword_words();
  for (std::size_t w = 0; w < words; ++w) out[w] = 0;
  for (unsigned p = 0; p < m; ++p) {
    if (Bit(message, p)) {
      out[p >> 6] |= (1ULL << (p & 63));
    }
  }
}

Result<std::unique_ptr<Code>> MakeCode(CodeKind kind, unsigned message_bits) {
  if (message_bits < 1 || message_bits > 16) {
    return Status::InvalidArgument("message_bits must be in [1, 16]");
  }
  switch (kind) {
    case CodeKind::kHadamard:
      return std::unique_ptr<Code>(new HadamardCode(message_bits));
    case CodeKind::kSimplex:
      return std::unique_ptr<Code>(new SimplexCode(message_bits));
    case CodeKind::kNaiveBinary:
      return std::unique_ptr<Code>(new NaiveBinaryCode(message_bits));
  }
  return Status::InvalidArgument("unknown code kind");
}

Status VerifyEquidistant(const Code& code) {
  if (!code.is_equidistant()) {
    return Status::FailedPrecondition(code.name() +
                                      " does not claim equidistance");
  }
  const unsigned b = code.message_bits();
  const unsigned m = code.codeword_bits();
  const unsigned expected = code.pairwise_distance();
  const std::uint32_t count = 1u << b;
  const std::size_t words = code.codeword_words();
  // Materialize all codewords once, then check all pairs.
  std::vector<std::uint64_t> table(count * words);
  for (std::uint32_t u = 0; u < count; ++u) {
    code.Encode(static_cast<std::uint16_t>(u), &table[u * words]);
  }
  for (std::uint32_t u = 0; u < count; ++u) {
    for (std::uint32_t v = u + 1; v < count; ++v) {
      unsigned dist = 0;
      for (std::size_t w = 0; w < words; ++w) {
        dist += static_cast<unsigned>(
            std::popcount(table[u * words + w] ^ table[v * words + w]));
      }
      if (dist != expected) {
        return Status::Corruption(
            code.name() + ": codewords " + std::to_string(u) + "," +
            std::to_string(v) + " at distance " + std::to_string(dist) +
            ", expected " + std::to_string(expected) + " (m=" +
            std::to_string(m) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace ssr
