#include "ecc/naive.h"

#include <cassert>

namespace ssr {

NaiveBinaryCode::NaiveBinaryCode(unsigned message_bits) : b_(message_bits) {
  assert(b_ >= 1 && b_ <= 16);
}

std::string NaiveBinaryCode::name() const {
  return "naive(b=" + std::to_string(b_) + ")";
}

}  // namespace ssr
