#include "ecc/hadamard.h"

#include <cassert>
#include <cstring>

namespace ssr {

HadamardCode::HadamardCode(unsigned message_bits) : b_(message_bits) {
  assert(b_ >= 1 && b_ <= 16);
  m_ = 1u << b_;
}

void HadamardCode::Encode(std::uint16_t message, std::uint64_t* out) const {
  const std::size_t words = codeword_words();
  std::memset(out, 0, words * sizeof(std::uint64_t));
  for (unsigned p = 0; p < m_; ++p) {
    if (Bit(message, p)) {
      out[p >> 6] |= (1ULL << (p & 63));
    }
  }
}

std::string HadamardCode::name() const {
  return "hadamard(b=" + std::to_string(b_) + ",m=" + std::to_string(m_) + ")";
}

}  // namespace ssr
