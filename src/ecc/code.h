// Binary code interface for the V -> Hamming embedding (Section 3.2).
// A code maps each b-bit min-hash value to an m-bit codeword; Theorem 1
// requires every pair of *distinct* codewords to be at Hamming distance
// exactly m/2, which makes the embedded Hamming similarity an affine
// function of signature agreement: S_H = (1 + s) / 2.
//
// Implementations:
//   - HadamardCode (m = 2^b): distance exactly m/2 between any two distinct
//     codewords — the property Theorem 1 needs. Default.
//   - SimplexCode (m = 2^b - 1): the code family the paper cites; all
//     distinct codewords at distance exactly 2^(b-1) (= (m+1)/2, slightly
//     more than m/2; equidistant, so the embedding is still affine).
//   - NaiveBinaryCode (m = b): the identity "straw man" of the paper's
//     Example 1; does NOT preserve similarity. Included for the
//     embedding-fidelity experiment.

#ifndef SSR_ECC_CODE_H_
#define SSR_ECC_CODE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"

namespace ssr {

/// Abstract binary code over b-bit messages.
class Code {
 public:
  virtual ~Code() = default;

  /// Message length b in bits.
  virtual unsigned message_bits() const = 0;

  /// Codeword length m in bits.
  virtual unsigned codeword_bits() const = 0;

  /// Bit `pos` (0 <= pos < codeword_bits()) of the codeword for `message`.
  /// This on-the-fly form is the one the filter indices use: a sampled bit
  /// of the embedded vector is computed directly from the signature without
  /// ever materializing the (huge) D-dimensional vector.
  virtual bool Bit(std::uint16_t message, unsigned pos) const = 0;

  /// Full codeword of `message`, packed little-endian into a uint64_t block
  /// sequence of ceil(m/64) words written into `out` (which must have space).
  /// Default implementation calls Bit() m times; subclasses may override.
  virtual void Encode(std::uint16_t message, std::uint64_t* out) const;

  /// True iff all pairs of distinct codewords are at one single distance
  /// (an "equidistant" code). Hadamard and simplex are; naive is not.
  virtual bool is_equidistant() const = 0;

  /// The pairwise distance of distinct codewords for equidistant codes
  /// (m/2 for Hadamard, 2^(b-1) for simplex); 0 otherwise.
  virtual unsigned pairwise_distance() const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Number of uint64_t words a packed codeword occupies.
  std::size_t codeword_words() const { return (codeword_bits() + 63) / 64; }
};

/// Kinds for the factory.
enum class CodeKind {
  kHadamard,
  kSimplex,
  kNaiveBinary,
};

/// Creates a code for b-bit messages. Fails for b outside [1, 16].
Result<std::unique_ptr<Code>> MakeCode(CodeKind kind, unsigned message_bits);

/// Exhaustively verifies the equidistance property of `code` over all
/// 2^b * (2^b - 1) / 2 message pairs. Intended for tests and small b.
/// Returns OK iff every pair of distinct codewords is at distance
/// code.pairwise_distance().
Status VerifyEquidistant(const Code& code);

}  // namespace ssr

#endif  // SSR_ECC_CODE_H_
