// The "straw man" embedding of the paper's Example 1: concatenate the plain
// b-bit binary representations of the min-hash values. Distinct values may
// differ in as little as 1 of b bits, so Hamming similarity is NOT a
// function of signature agreement and the embedding distorts similarity
// (Example 1: sim 0.5 maps to bit agreement 0.83). Provided for the
// embedding-fidelity experiment and tests.

#ifndef SSR_ECC_NAIVE_H_
#define SSR_ECC_NAIVE_H_

#include "ecc/code.h"

namespace ssr {

/// Identity "code": codeword = message, m = b.
class NaiveBinaryCode : public Code {
 public:
  /// `message_bits` in [1, 16].
  explicit NaiveBinaryCode(unsigned message_bits);

  unsigned message_bits() const override { return b_; }
  unsigned codeword_bits() const override { return b_; }

  bool Bit(std::uint16_t message, unsigned pos) const override {
    return ((message >> pos) & 1u) != 0;
  }

  bool is_equidistant() const override { return false; }
  unsigned pairwise_distance() const override { return 0; }
  std::string name() const override;

 private:
  unsigned b_;
};

}  // namespace ssr

#endif  // SSR_ECC_NAIVE_H_
