// Hadamard (first-order Reed-Muller, punctured-at-nothing) code: the codeword
// of a b-bit message u has bit <u, p> (GF(2) inner product) at position p,
// for p = 0 .. 2^b - 1. Any two distinct codewords differ in exactly 2^(b-1)
// = m/2 positions — precisely the property required by Theorem 1.

#ifndef SSR_ECC_HADAMARD_H_
#define SSR_ECC_HADAMARD_H_

#include <bit>

#include "ecc/code.h"

namespace ssr {

/// Hadamard code over b-bit messages; m = 2^b.
class HadamardCode : public Code {
 public:
  /// `message_bits` in [1, 16].
  explicit HadamardCode(unsigned message_bits);

  unsigned message_bits() const override { return b_; }
  unsigned codeword_bits() const override { return m_; }

  bool Bit(std::uint16_t message, unsigned pos) const override {
    // <u, p> over GF(2) = parity of popcount(u & p).
    return (std::popcount(static_cast<unsigned>(message) &
                          static_cast<unsigned>(pos)) &
            1) != 0;
  }

  void Encode(std::uint16_t message, std::uint64_t* out) const override;

  bool is_equidistant() const override { return true; }
  unsigned pairwise_distance() const override { return m_ / 2; }
  std::string name() const override;

 private:
  unsigned b_;
  unsigned m_;
};

}  // namespace ssr

#endif  // SSR_ECC_HADAMARD_H_
