// Simplex code (the family the paper cites, [MS93]): the Hadamard code with
// the all-zero position punctured, m = 2^b - 1. Any two distinct codewords
// are at distance exactly 2^(b-1) = (m+1)/2 — an equidistant code, so the
// embedded Hamming similarity is still an affine function of signature
// agreement: S_H = s + (1 - s) * (m - d) / m with d = 2^(b-1).

#ifndef SSR_ECC_SIMPLEX_H_
#define SSR_ECC_SIMPLEX_H_

#include <bit>

#include "ecc/code.h"

namespace ssr {

/// Simplex code over b-bit messages; m = 2^b - 1.
class SimplexCode : public Code {
 public:
  /// `message_bits` in [1, 16].
  explicit SimplexCode(unsigned message_bits);

  unsigned message_bits() const override { return b_; }
  unsigned codeword_bits() const override { return m_; }

  bool Bit(std::uint16_t message, unsigned pos) const override {
    // Position `pos` corresponds to the Hadamard position p = pos + 1
    // (puncture position 0, whose bit is identically zero).
    return (std::popcount(static_cast<unsigned>(message) &
                          static_cast<unsigned>(pos + 1)) &
            1) != 0;
  }

  bool is_equidistant() const override { return true; }
  unsigned pairwise_distance() const override { return 1u << (b_ - 1); }
  std::string name() const override;

 private:
  unsigned b_;
  unsigned m_;
};

}  // namespace ssr

#endif  // SSR_ECC_SIMPLEX_H_
