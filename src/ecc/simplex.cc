#include "ecc/simplex.h"

#include <cassert>

namespace ssr {

SimplexCode::SimplexCode(unsigned message_bits) : b_(message_bits) {
  assert(b_ >= 1 && b_ <= 16);
  m_ = (1u << b_) - 1u;
}

std::string SimplexCode::name() const {
  return "simplex(b=" + std::to_string(b_) + ",m=" + std::to_string(m_) + ")";
}

}  // namespace ssr
