#include "fault/retry.h"

#include "obs/metrics.h"

namespace ssr {
namespace fault {
namespace internal {

namespace {
obs::Counter* AttemptsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_attempts_total");
  return c;
}
obs::Counter* RecoveriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_recoveries_total");
  return c;
}
obs::Counter* ExhaustedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_exhausted_total");
  return c;
}
}  // namespace

void CountAttempt() { AttemptsCounter()->Increment(); }
void CountRecovery() { RecoveriesCounter()->Increment(); }
void CountExhausted() { ExhaustedCounter()->Increment(); }

}  // namespace internal
}  // namespace fault
}  // namespace ssr
