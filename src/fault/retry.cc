#include "fault/retry.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/hash.h"

namespace ssr {
namespace fault {

double BackoffForRetry(const RetryPolicy& policy, std::size_t retry_index) {
  if (retry_index < 1 || policy.initial_backoff_micros <= 0.0) return 0.0;
  double backoff = policy.initial_backoff_micros;
  for (std::size_t k = 1; k < retry_index; ++k) {
    backoff *= policy.backoff_multiplier;
    // Short-circuit once past the cap so a large retry_index cannot
    // overflow to inf before the cap applies.
    if (policy.max_backoff_micros > 0.0 &&
        backoff >= policy.max_backoff_micros) {
      break;
    }
  }
  if (policy.max_backoff_micros > 0.0) {
    backoff = std::min(backoff, policy.max_backoff_micros);
  }
  if (policy.jitter_fraction > 0.0) {
    // u in [-1, 1] from a seeded stream keyed by the retry index: the same
    // policy replays the same schedule, different seeds decorrelate.
    const std::uint64_t draw =
        SplitMix64(policy.jitter_seed + static_cast<std::uint64_t>(retry_index));
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-52 - 1.0;
    backoff *= 1.0 + u * policy.jitter_fraction;
    if (backoff < 0.0) backoff = 0.0;
  }
  return backoff;
}

namespace internal {

namespace {
obs::Counter* AttemptsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_attempts_total");
  return c;
}
obs::Counter* RecoveriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_recoveries_total");
  return c;
}
obs::Counter* ExhaustedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("ssr_retry_exhausted_total");
  return c;
}
}  // namespace

void CountAttempt() { AttemptsCounter()->Increment(); }
void CountRecovery() { RecoveriesCounter()->Increment(); }
void CountExhausted() { ExhaustedCounter()->Increment(); }

}  // namespace internal
}  // namespace fault
}  // namespace ssr
