// Deterministic, seedable fault injection for robustness testing. Storage
// and index hot paths declare named *fault sites* ("serialize/write",
// "store/get", "index/probe", ...); tests and the fault-matrix CI job arm
// those sites with schedules (fire with probability p, every Nth hit, or
// once after a skip count) and fault kinds (I/O errors, torn writes, bit
// flips, injected latency).
//
// Cost when disabled: every site check is a single relaxed atomic load
// (`enabled()`), and with -DSSR_NO_FAULT_INJECTION the check constant-folds
// to `false` and the whole site compiles out. The acceptance bar is that
// fault hooks are free when off (<2% on the query and snapshot benches).
//
// Determinism: all randomized decisions (probability schedules, which bit a
// kBitFlip corrupts) come from one SplitMix64 stream seeded by Enable(seed),
// so a failing schedule replays exactly under the same seed. The CI matrix
// sweeps SSR_FAULT_SEED to diversify schedules across runs while keeping
// each run reproducible.

#ifndef SSR_FAULT_FAULT_INJECTOR_H_
#define SSR_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "util/status.h"

namespace ssr {
namespace fault {

/// What happens at a fault site when its schedule fires.
enum class FaultKind : unsigned char {
  kReadError,   // transient read failure (surfaces as Status::Unavailable)
  kWriteError,  // write failure (stream failbit / Unavailable)
  kTornWrite,   // a prefix of the bytes is written, then the stream fails
  kBitFlip,     // one bit of the payload is corrupted in flight
  kLatency,     // the operation is delayed; it still succeeds
  kCrashPoint,  // the component "loses power": it stops accepting work and
                // keeps only the bytes already written (WAL crash harness)
};

/// Stable lowercase name ("read_error", "torn_write", ...).
const char* FaultKindName(FaultKind kind);

/// Seed for fault-injection tests: the SSR_FAULT_SEED environment variable
/// when set (the CI fault matrix sweeps it to diversify schedules across
/// runs), otherwise `fallback`. Tests whose assertions hold under any seed
/// call this; tests pinning exact fire patterns keep a hard-coded seed.
std::uint64_t SeedFromEnv(std::uint64_t fallback);

/// When a fault site fires. Conditions combine as OR: a hit fires if the
/// probability draw succeeds *or* the every-Nth counter matches. Hits
/// before `skip_first` never fire; `one_shot` disarms the site after its
/// first fire (the torn-final-write test pattern: skip all but the last
/// write, fire once).
struct FaultSchedule {
  double probability = 0.0;      // per-hit fire probability (seeded RNG)
  std::uint64_t every_nth = 0;   // fire when (armed hit count % n) == 0
  std::uint64_t skip_first = 0;  // hits to let pass before arming
  bool one_shot = false;         // disarm after the first fire
  double latency_micros = 0.0;   // delay applied for kLatency fires

  static FaultSchedule Always() {
    FaultSchedule s;
    s.every_nth = 1;
    return s;
  }
  static FaultSchedule Once(std::uint64_t after_hits = 0) {
    FaultSchedule s;
    s.every_nth = 1;
    s.skip_first = after_hits;
    s.one_shot = true;
    return s;
  }
  static FaultSchedule WithProbability(double p) {
    FaultSchedule s;
    s.probability = p;
    return s;
  }
  static FaultSchedule EveryNth(std::uint64_t n) {
    FaultSchedule s;
    s.every_nth = n;
    return s;
  }
};

/// The registry of armed fault sites. Thread-safe; the disabled fast path
/// is lock-free.
class FaultInjector {
 public:
  FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-wide injector every built-in fault site consults. Never
  /// destroyed (leaked like the metrics registry, so site checks in static
  /// teardown stay safe).
  static FaultInjector& Default();

  /// True iff fault evaluation is on. The only cost a production code path
  /// pays when faults are off.
  bool enabled() const {
#ifdef SSR_NO_FAULT_INJECTION
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  /// Turns fault evaluation on and (re)seeds the decision RNG.
  void Enable(std::uint64_t seed);

  /// Turns fault evaluation off. Armed sites and counters are kept (a test
  /// can disable, inspect, re-enable).
  void Disable();

  /// Disable + DisarmAll + zero per-site counters: a clean slate between
  /// tests.
  void Reset();

  /// Arms (or re-arms, replacing any previous fault) `site`.
  void Arm(std::string_view site, FaultKind kind, FaultSchedule schedule);
  void Disarm(std::string_view site);
  void DisarmAll();

  /// Counts a hit at `site` and returns the fault the caller must apply,
  /// if any. kLatency is applied internally (this call sleeps) and is
  /// never returned. Callers gate on enabled() first; Check on a disabled
  /// injector returns nullopt without counting.
  std::optional<FaultKind> Check(std::string_view site);

  /// Convenience for Status-returning sites: translates a fired
  /// kReadError/kWriteError into Status::Unavailable (a transient,
  /// retriable failure) and anything else (or no fire) into OK. Sites
  /// where torn writes / bit flips are meaningful use Check() directly.
  Status CheckStatus(std::string_view site);

  /// Next value of the deterministic decision stream (e.g. which bit a
  /// flip corrupts). Advances the same RNG the schedules draw from.
  std::uint64_t NextRandom();

  /// Observed hits / fires at `site` (0 if never armed).
  std::uint64_t hits(std::string_view site) const;
  std::uint64_t fires(std::string_view site) const;

  /// Total fires across all sites since construction/Reset.
  std::uint64_t total_fires() const;

 private:
  struct Site {
    FaultKind kind = FaultKind::kReadError;
    FaultSchedule schedule;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool disarmed = false;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
  std::uint64_t rng_state_ = 0x5eedf417u;
  std::uint64_t total_fires_ = 0;
  obs::Counter* hits_total_;      // ssr_fault_hits_total
  obs::Counter* injected_total_;  // ssr_fault_injected_total
  obs::Counter* latency_total_;   // ssr_fault_latency_injected_total
};

}  // namespace fault
}  // namespace ssr

#endif  // SSR_FAULT_FAULT_INJECTOR_H_
