#include "fault/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/hash.h"

namespace ssr {
namespace fault {

std::uint64_t SeedFromEnv(std::uint64_t fallback) {
  const char* env = std::getenv("SSR_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 0);
  if (end == env) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kReadError:
      return "read_error";
    case FaultKind::kWriteError:
      return "write_error";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kCrashPoint:
      return "crash_point";
  }
  return "unknown";
}

FaultInjector::FaultInjector() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  hits_total_ = registry.GetCounter("ssr_fault_hits_total");
  injected_total_ = registry.GetCounter("ssr_fault_injected_total");
  latency_total_ = registry.GetCounter("ssr_fault_latency_injected_total");
}

FaultInjector& FaultInjector::Default() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Enable(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  Disable();
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  total_fires_ = 0;
}

void FaultInjector::Arm(std::string_view site, FaultKind kind,
                        FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[std::string(site)];
  s.kind = kind;
  s.schedule = schedule;
  s.hits = 0;
  s.fires = 0;
  s.disarmed = false;
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.disarmed = true;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site.disarmed = true;
}

std::uint64_t FaultInjector::NextRandom() {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  return SplitMix64(rng_state_);
}

std::optional<FaultKind> FaultInjector::Check(std::string_view site) {
  if (!enabled()) return std::nullopt;
  double latency_micros = 0.0;
  std::optional<FaultKind> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return std::nullopt;
    Site& s = it->second;
    ++s.hits;
    hits_total_->Increment();
    if (s.disarmed || s.hits <= s.schedule.skip_first) return std::nullopt;
    const std::uint64_t armed_hit = s.hits - s.schedule.skip_first;
    bool fire = s.schedule.every_nth > 0 &&
                armed_hit % s.schedule.every_nth == 0;
    if (!fire && s.schedule.probability > 0.0) {
      rng_state_ += 0x9e3779b97f4a7c15ULL;
      const double draw =
          static_cast<double>(SplitMix64(rng_state_) >> 11) * 0x1.0p-53;
      fire = draw < s.schedule.probability;
    }
    if (!fire) return std::nullopt;
    ++s.fires;
    ++total_fires_;
    injected_total_->Increment();
    if (s.schedule.one_shot) s.disarmed = true;
    if (s.kind == FaultKind::kLatency) {
      latency_total_->Increment();
      latency_micros = s.schedule.latency_micros;
    } else {
      fired = s.kind;
    }
  }
  // Latency is applied outside the lock so concurrent sites aren't stalled.
  if (latency_micros > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        latency_micros));
  }
  return fired;
}

Status FaultInjector::CheckStatus(std::string_view site) {
  const std::optional<FaultKind> kind = Check(site);
  if (!kind.has_value()) return Status::OK();
  switch (*kind) {
    case FaultKind::kReadError:
    case FaultKind::kWriteError:
      return Status::Unavailable(std::string("injected I/O error at ") +
                                 std::string(site));
    default:
      // Torn writes / bit flips are stream-level faults; a Status-only
      // site cannot model them, so treat as a transient error too.
      return Status::Unavailable(std::string("injected fault at ") +
                                 std::string(site));
  }
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_fires_;
}

}  // namespace fault
}  // namespace ssr
