// Bounded retry with exponential backoff for transient failures. Storage
// page fetches and filter-index probes wrap their fallible step in
// RetryWithPolicy; only Status::Unavailable (the transient code the fault
// injector and a real I/O layer emit) is retried — Corruption/DataLoss are
// permanent and propagate immediately.
//
// Retries are observable: ssr_retry_attempts_total counts re-issued
// operations, ssr_retry_recoveries_total counts operations that succeeded
// after at least one retry, ssr_retry_exhausted_total counts operations
// that failed even after max_attempts.

#ifndef SSR_FAULT_RETRY_H_
#define SSR_FAULT_RETRY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace ssr {
namespace fault {

/// Retry knobs. Defaults: 3 attempts total, no backoff sleep (tests and the
/// simulated-I/O benches stay fast; a deployment would set a real backoff).
///
/// The backoff schedule is exponential with an optional cap and optional
/// *deterministic* jitter: retry k (1-based) sleeps
///   min(initial * multiplier^(k-1), max) * (1 + u_k * jitter_fraction)
/// where u_k in [-1, 1] is drawn from SplitMix64(jitter_seed + k). The same
/// policy always produces the same schedule — tests pin it exactly — while
/// distinct seeds decorrelate concurrent retriers (no thundering herd).
struct RetryPolicy {
  std::size_t max_attempts = 3;        // total attempts, including the first
  double initial_backoff_micros = 0.0;  // sleep before the first retry
  double backoff_multiplier = 2.0;      // growth per subsequent retry
  double max_backoff_micros = 0.0;      // cap per sleep; 0 = uncapped
  double jitter_fraction = 0.0;         // +/- fraction of the sleep; [0, 1]
  std::uint64_t jitter_seed = 0x5eedbacc0ffULL;  // jitter stream seed
};

/// The backoff (microseconds) RetryWithPolicy sleeps before retry
/// `retry_index` (1 = the first retry). Exposed so tests can assert the
/// exact schedule a seeded policy produces.
double BackoffForRetry(const RetryPolicy& policy, std::size_t retry_index);

/// Per-operation retry accounting, threaded out of RetryWithPolicy so
/// callers (query paths) can surface attempts/backoff in QueryStats.
struct RetryStats {
  std::size_t attempts = 0;       // total attempts, including the first
  std::size_t retries = 0;        // re-issued operations (attempts - 1)
  double backoff_micros = 0.0;    // total time slept before retries
  bool recovered = false;         // succeeded after at least one retry
  bool exhausted = false;         // still retriable when attempts ran out
};

/// True for failures worth retrying (transient unavailability).
inline bool IsRetriable(const Status& status) {
  return status.IsUnavailable();
}

namespace internal {
// Counter bumps live in retry.cc so this header stays light.
void CountAttempt();
void CountRecovery();
void CountExhausted();

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
/// times, retrying retriable failures with capped, deterministically
/// jittered exponential backoff (BackoffForRetry). Returns the first
/// success or the last failure. When `stats` is non-null it receives this
/// operation's attempt/backoff accounting (always written, even on the
/// no-retry fast path).
template <typename Fn>
auto RetryWithPolicy(const RetryPolicy& policy, Fn&& fn,
                     RetryStats* stats = nullptr) -> decltype(fn()) {
  const std::size_t attempts = policy.max_attempts < 1 ? 1
                                                       : policy.max_attempts;
  RetryStats local;
  for (std::size_t attempt = 1;; ++attempt) {
    local.attempts = attempt;
    auto outcome = fn();
    const Status& status = internal::StatusOf(outcome);
    if (status.ok()) {
      if (attempt > 1) {
        local.recovered = true;
        internal::CountRecovery();
      }
      if (stats != nullptr) *stats = local;
      return outcome;
    }
    if (attempt >= attempts || !IsRetriable(status)) {
      if (attempt >= attempts && IsRetriable(status)) {
        local.exhausted = true;
        internal::CountExhausted();
      }
      if (stats != nullptr) *stats = local;
      return outcome;
    }
    internal::CountAttempt();
    ++local.retries;
    const double backoff = BackoffForRetry(policy, attempt);
    if (backoff > 0.0) {
      local.backoff_micros += backoff;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(backoff));
    }
  }
}

}  // namespace fault
}  // namespace ssr

#endif  // SSR_FAULT_RETRY_H_
