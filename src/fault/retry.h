// Bounded retry with exponential backoff for transient failures. Storage
// page fetches and filter-index probes wrap their fallible step in
// RetryWithPolicy; only Status::Unavailable (the transient code the fault
// injector and a real I/O layer emit) is retried — Corruption/DataLoss are
// permanent and propagate immediately.
//
// Retries are observable: ssr_retry_attempts_total counts re-issued
// operations, ssr_retry_recoveries_total counts operations that succeeded
// after at least one retry, ssr_retry_exhausted_total counts operations
// that failed even after max_attempts.

#ifndef SSR_FAULT_RETRY_H_
#define SSR_FAULT_RETRY_H_

#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace ssr {
namespace fault {

/// Retry knobs. Defaults: 3 attempts total, no backoff sleep (tests and the
/// simulated-I/O benches stay fast; a deployment would set a real backoff).
struct RetryPolicy {
  std::size_t max_attempts = 3;        // total attempts, including the first
  double initial_backoff_micros = 0.0;  // sleep before the first retry
  double backoff_multiplier = 2.0;      // growth per subsequent retry
};

/// True for failures worth retrying (transient unavailability).
inline bool IsRetriable(const Status& status) {
  return status.IsUnavailable();
}

namespace internal {
// Counter bumps live in retry.cc so this header stays light.
void CountAttempt();
void CountRecovery();
void CountExhausted();

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
/// times, retrying retriable failures with exponential backoff. Returns the
/// first success or the last failure.
template <typename Fn>
auto RetryWithPolicy(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  const std::size_t attempts = policy.max_attempts < 1 ? 1
                                                       : policy.max_attempts;
  double backoff = policy.initial_backoff_micros;
  for (std::size_t attempt = 1;; ++attempt) {
    auto outcome = fn();
    const Status& status = internal::StatusOf(outcome);
    if (status.ok()) {
      if (attempt > 1) internal::CountRecovery();
      return outcome;
    }
    if (attempt >= attempts || !IsRetriable(status)) {
      if (attempt >= attempts && IsRetriable(status)) {
        internal::CountExhausted();
      }
      return outcome;
    }
    internal::CountAttempt();
    if (backoff > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(backoff));
      backoff *= policy.backoff_multiplier;
    }
  }
}

}  // namespace fault
}  // namespace ssr

#endif  // SSR_FAULT_RETRY_H_
