#include "eval/metrics.h"

namespace ssr {

std::size_t SortedIntersectionCount(const std::vector<SetId>& a,
                                    const std::vector<SetId>& b) {
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double Recall(const std::vector<SetId>& answer,
              const std::vector<SetId>& truth) {
  if (truth.empty()) return 1.0;
  return static_cast<double>(SortedIntersectionCount(answer, truth)) /
         static_cast<double>(truth.size());
}

double CandidatePrecision(std::size_t verified_count,
                          std::size_t candidate_count) {
  if (candidate_count == 0) return 1.0;
  return static_cast<double>(verified_count) /
         static_cast<double>(candidate_count);
}

}  // namespace ssr
