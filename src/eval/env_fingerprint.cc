#include "eval/env_fingerprint.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "obs/json_writer.h"

namespace ssr {

namespace {

constexpr const char* kUnknown = "unknown";

std::string FirstLineOf(const char* path) {
  std::ifstream in(path);
  std::string line;
  if (!in.is_open() || !std::getline(in, line) || line.empty()) return "";
  return line;
}

std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return kUnknown;
}

std::string CompilerId() {
#if defined(__clang__)
  std::ostringstream out;
  out << "clang " << __clang_major__ << "." << __clang_minor__ << "."
      << __clang_patchlevel__;
  return out.str();
#elif defined(__GNUC__)
  std::ostringstream out;
  out << "gcc " << __GNUC__ << "." << __GNUC_MINOR__ << "."
      << __GNUC_PATCHLEVEL__;
  return out.str();
#else
  return kUnknown;
#endif
}

std::string OsId() {
#if defined(__unix__) || defined(__APPLE__)
  utsname info;
  if (uname(&info) == 0) {
    return std::string(info.sysname) + " " + info.release;
  }
#endif
  return kUnknown;
}

}  // namespace

EnvFingerprint CollectEnvFingerprint() {
  EnvFingerprint env;

  // Runtime override first (CI stamps the exact commit being tested even
  // when the build tree was configured earlier), then the sha CMake baked
  // in at configure time.
  const char* sha_env = std::getenv("SSR_GIT_SHA");
  if (sha_env != nullptr && sha_env[0] != '\0') {
    env.git_sha = sha_env;
  } else {
#if defined(SSR_GIT_SHA)
    env.git_sha = SSR_GIT_SHA;
#else
    env.git_sha = kUnknown;
#endif
  }

  env.compiler = CompilerId();
#if defined(SSR_BUILD_TYPE)
  env.build_type = SSR_BUILD_TYPE;
#else
  env.build_type = kUnknown;
#endif
  env.cpu_model = CpuModel();
  env.num_cores = std::thread::hardware_concurrency();
  const std::string governor =
      FirstLineOf("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  env.governor = governor.empty() ? kUnknown : governor;
  env.os = OsId();
  return env;
}

void WriteEnvJson(obs::JsonWriter& writer, const EnvFingerprint& env) {
  writer.BeginObject();
  writer.Key("git_sha").String(env.git_sha);
  writer.Key("compiler").String(env.compiler);
  writer.Key("build_type").String(env.build_type);
  writer.Key("cpu_model").String(env.cpu_model);
  writer.Key("num_cores").UInt(env.num_cores);
  writer.Key("governor").String(env.governor);
  writer.Key("os").String(env.os);
  writer.EndObject();
}

}  // namespace ssr
