// Environment fingerprint stamped into every RunReport "env" section, so a
// BENCH_*.json trajectory point is self-describing: a perf delta between
// two points is only meaningful when their fingerprints match (same
// hardware, governor, compiler, and commit).

#ifndef SSR_EVAL_ENV_FINGERPRINT_H_
#define SSR_EVAL_ENV_FINGERPRINT_H_

#include <cstdint>
#include <string>

namespace ssr {

namespace obs {
class JsonWriter;
}  // namespace obs

/// Fields default to "unknown" when a source is unavailable (non-Linux,
/// stripped container, no git checkout at configure time).
struct EnvFingerprint {
  std::string git_sha;     // SSR_GIT_SHA env var, else configure-time sha
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string build_type;  // configure-time CMAKE_BUILD_TYPE
  std::string cpu_model;   // /proc/cpuinfo "model name"
  std::uint32_t num_cores = 0;
  std::string governor;    // cpu0 scaling_governor, e.g. "performance"
  std::string os;          // uname sysname/release
};

/// Collects the fingerprint for the running process. Cheap enough to call
/// per report; no caching.
EnvFingerprint CollectEnvFingerprint();

/// Appends the fingerprint as a JSON object value.
void WriteEnvJson(obs::JsonWriter& writer, const EnvFingerprint& env);

}  // namespace ssr

#endif  // SSR_EVAL_ENV_FINGERPRINT_H_
