// Machine-readable run artifacts (BENCH_*.json): every bench binary can
// accumulate its parameters, headline scalars, and result tables into a
// RunReport and write one JSON document that also embeds a dump of the
// metrics registry and the query-trace ring. Downstream tooling (plots,
// regression checks) consumes these instead of scraping stdout.

#ifndef SSR_EVAL_RUN_REPORT_H_
#define SSR_EVAL_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/table_printer.h"
#include "util/result.h"

namespace ssr {

/// Accumulates one bench run's output and renders it as a JSON document:
///   {"schema_version": 2, "bench": "...",
///    "env": {git_sha, compiler, build_type, cpu_model, num_cores,
///            governor, os},
///    "params": {...}, "scalars": {...},
///    "tables": [{"label", "headers": [...], "rows": [[...], ...]}, ...],
///    "metrics": {counters/gauges/histograms dump},
///    "profile": {source, per-phase counter aggregates},
///    "trace": [spans, oldest first]}
/// The env, metrics, profile, and trace sections are rendered at ToJson()
/// time from the process environment, obs::MetricsRegistry::Default(),
/// obs::Profiler::Default(), and obs::Tracer::Default(). Consumers
/// (tools/bench_compare.py) must tolerate absent fields: schema 1 reports
/// predate env/profile.
class RunReport {
 public:
  /// Bumped when the document shape changes; see tools/bench_compare.py.
  static constexpr std::uint64_t kSchemaVersion = 2;

  explicit RunReport(std::string bench_name);

  /// Run parameters (rendered under "params"). Insertion order preserved.
  void AddParam(const std::string& key, const std::string& value);
  void AddParam(const std::string& key, const char* value);
  void AddParam(const std::string& key, double value);
  void AddParam(const std::string& key, std::uint64_t value);
  void AddParam(const std::string& key, bool value);

  /// Headline numbers (rendered under "scalars").
  void AddScalar(const std::string& key, double value);
  void AddScalar(const std::string& key, std::uint64_t value);

  /// A result table; reuses the cells a bench already renders to stdout.
  void AddTable(const std::string& label, const TablePrinter& table);
  void AddTable(const std::string& label, std::vector<std::string> headers,
                std::vector<std::vector<std::string>> rows);

  /// Renders the full document (including current metrics + trace state).
  std::string ToJson() const;

  /// ToJson() to `path`. Parent directory must exist.
  Status WriteTo(const std::string& path) const;

 private:
  struct Table {
    std::string label;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string bench_name_;
  // (key, pre-rendered JSON value) pairs, insertion-ordered.
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<Table> tables_;
};

}  // namespace ssr

#endif  // SSR_EVAL_RUN_REPORT_H_
