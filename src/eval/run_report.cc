#include "eval/run_report.h"

#include <fstream>

#include "eval/env_fingerprint.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ssr {

namespace {

// Built with append rather than operator+ chains: the `const char* +
// string&&` overload trips a GCC 12 -Wrestrict false positive (PR105329)
// under -O2, and CI builds with -Werror.
std::string JsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  out += obs::JsonWriter::Escape(value);
  out += '"';
  return out;
}

std::string JsonDouble(double value) {
  obs::JsonWriter writer;
  writer.Double(value);
  return writer.str();
}

void WritePairs(
    obs::JsonWriter& writer,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  writer.BeginObject();
  for (const auto& [key, value] : pairs) {
    writer.Key(key).Raw(value);
  }
  writer.EndObject();
}

}  // namespace

RunReport::RunReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void RunReport::AddParam(const std::string& key, const std::string& value) {
  params_.emplace_back(key, JsonString(value));
}
void RunReport::AddParam(const std::string& key, const char* value) {
  AddParam(key, std::string(value));
}
void RunReport::AddParam(const std::string& key, double value) {
  params_.emplace_back(key, JsonDouble(value));
}
void RunReport::AddParam(const std::string& key, std::uint64_t value) {
  params_.emplace_back(key, std::to_string(value));
}
void RunReport::AddParam(const std::string& key, bool value) {
  params_.emplace_back(key, value ? "true" : "false");
}

void RunReport::AddScalar(const std::string& key, double value) {
  scalars_.emplace_back(key, JsonDouble(value));
}
void RunReport::AddScalar(const std::string& key, std::uint64_t value) {
  scalars_.emplace_back(key, std::to_string(value));
}

void RunReport::AddTable(const std::string& label, const TablePrinter& table) {
  AddTable(label, table.headers(), table.rows());
}

void RunReport::AddTable(const std::string& label,
                         std::vector<std::string> headers,
                         std::vector<std::vector<std::string>> rows) {
  tables_.push_back({label, std::move(headers), std::move(rows)});
}

std::string RunReport::ToJson() const {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version").UInt(kSchemaVersion);
  writer.Key("bench").String(bench_name_);
  writer.Key("env");
  WriteEnvJson(writer, CollectEnvFingerprint());
  writer.Key("params");
  WritePairs(writer, params_);
  writer.Key("scalars");
  WritePairs(writer, scalars_);
  writer.Key("tables").BeginArray();
  for (const Table& table : tables_) {
    writer.BeginObject();
    writer.Key("label").String(table.label);
    writer.Key("headers").BeginArray();
    for (const std::string& h : table.headers) writer.String(h);
    writer.EndArray();
    writer.Key("rows").BeginArray();
    for (const auto& row : table.rows) {
      writer.BeginArray();
      for (const std::string& cell : row) writer.String(cell);
      writer.EndArray();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  obs::WriteMetricsJson(writer, obs::MetricsRegistry::Default());
  writer.Key("profile");
  obs::WriteProfileJson(writer, obs::Profiler::Default());
  writer.Key("trace");
  obs::WriteTraceJson(writer, obs::Tracer::Default());
  writer.EndObject();
  return writer.str();
}

Status RunReport::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open report file: " + path);
  }
  out << ToJson() << "\n";
  if (!out.good()) {
    return Status::Internal("report write failed: " + path);
  }
  return Status::OK();
}

}  // namespace ssr
