#include "eval/harness.h"

#include <algorithm>

#include "baseline/exact_evaluator.h"
#include "baseline/sequential_scan.h"
#include "eval/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace ssr {

Result<std::unique_ptr<ExperimentHarness>> ExperimentHarness::Create(
    const ExperimentConfig& config) {
  auto harness = std::unique_ptr<ExperimentHarness>(new ExperimentHarness());
  harness->config_ = config;

  SSR_LOG_C(kInfo, "harness").With("dataset", config.dataset)
      << "generating dataset at scale " << config.scale;
  harness->collection_ = MakeDataset(config.dataset, config.scale);

  SetStoreOptions store_options;
  store_options.buffer_pool_pages = config.buffer_pool_pages;
  store_options.io = config.io;
  harness->store_ = std::make_unique<SetStore>(store_options);
  for (const ElementSet& set : harness->collection_) {
    auto sid = harness->store_->Add(set);
    if (!sid.ok()) return sid.status();
  }

  SSR_LOG(kInfo) << "estimating similarity distribution (Lemma 1 sampling)";
  Rng rng(config.seed ^ 0xd15b0fULL);
  harness->distribution_ = std::make_unique<SimilarityHistogram>(
      ComputeSampledDistribution(harness->collection_,
                                 config.distribution_sample_pairs,
                                 /*num_bins=*/100, rng));

  EmbeddingParams embedding_params;
  embedding_params.minhash.num_hashes = config.num_minhashes;
  embedding_params.minhash.value_bits = config.value_bits;
  embedding_params.minhash.seed = config.seed ^ 0xa11ce5ULL;
  embedding_params.minhash.family = config.minhash_family;
  auto embedding = Embedding::Create(embedding_params);
  if (!embedding.ok()) return embedding.status();

  IndexBuilderOptions builder_options;
  builder_options.table_budget = config.table_budget;
  builder_options.recall_threshold = config.recall_threshold;
  Result<BuiltLayout> layout = Status::Internal("unreached");
  double threshold = config.recall_threshold;
  while (true) {
    builder_options.recall_threshold = threshold;
    layout = ConstructIndexLayout(*harness->distribution_, embedding.value(),
                                  builder_options);
    if (layout.ok() || !config.allow_threshold_fallback ||
        threshold - 0.05 < config.threshold_floor - 1e-9) {
      break;
    }
    threshold -= 0.05;
    SSR_LOG(kInfo) << "recall threshold infeasible; retrying at "
                   << threshold;
  }
  if (!layout.ok()) return layout.status();
  harness->achieved_threshold_ = threshold;
  harness->layout_ = std::move(layout).value();
  SSR_LOG(kInfo) << "optimizer layout:\n" << harness->layout_.ToString();

  IndexOptions index_options;
  index_options.embedding = embedding_params;
  index_options.seed = config.seed ^ 0x1de5eedULL;
  auto index = SetSimilarityIndex::Build(*harness->store_,
                                         harness->layout_.layout,
                                         index_options);
  if (!index.ok()) return index.status();
  harness->index_ =
      std::make_unique<SetSimilarityIndex>(std::move(index).value());
  SSR_LOG_C(kInfo, "harness")
          .With("dataset", config.dataset)
          .With("index_scope", harness->index_->metrics_scope())
          .With("store_scope", harness->store_->metrics_scope())
      << "environment ready: " << harness->store_->size() << " sets, "
      << harness->index_->num_filter_indices() << " filter indices";
  return harness;
}

Result<ExperimentHarness::SingleQueryOutcome> ExperimentHarness::RunOne(
    const RangeQuery& query, bool with_scan) {
  SingleQueryOutcome outcome;
  const ElementSet& q = collection_[query.query_sid];

  store_->buffer_pool().Clear();  // cold-cache per query, as on a busy server
  auto index_result = index_->Query(q, query.sigma1, query.sigma2);
  if (!index_result.ok()) return index_result.status();
  outcome.index = std::move(index_result).value();

  ExactEvaluator exact(collection_);
  outcome.truth = exact.Query(q, query.sigma1, query.sigma2);
  outcome.recall = Recall(outcome.index.sids, outcome.truth);
  outcome.precision = CandidatePrecision(outcome.index.stats.results,
                                         outcome.index.stats.candidates);

  if (with_scan) {
    store_->buffer_pool().Clear();
    obs::TraceSpan scan_span("scan");
    auto scan = SequentialScanQuery(*store_, q, query.sigma1, query.sigma2);
    if (!scan.ok()) return scan.status();
    outcome.scan_io_seconds = scan.value().stats.io_seconds;
    outcome.scan_cpu_seconds = scan.value().stats.cpu_seconds;
  }
  return outcome;
}

Result<ExperimentResult> ExperimentHarness::RunBucketedQueries() {
  ExperimentResult result;
  result.layout = layout_;
  result.collection_size = store_->size();
  result.heap_pages = store_->num_pages();
  result.avg_set_pages = store_->AvgSetPages();
  result.crossover_result_size = ScanCrossoverResultSize(*store_);

  const std::vector<ResultSizeBucket> buckets = PaperResultSizeBuckets();
  struct Accumulator {
    std::size_t count = 0;
    double recall = 0.0, precision = 0.0;
    double candidates = 0.0, results = 0.0;
    double idx_io = 0.0, idx_cpu = 0.0, scan_io = 0.0, scan_cpu = 0.0;
  };
  std::vector<Accumulator> acc(buckets.size());

  QueryGeneratorParams qparams;
  qparams.seed = config_.seed ^ 0x9e7e1a70ULL;
  QueryGenerator generator(collection_, qparams);

  const std::size_t quota = config_.queries_per_bucket;
  const std::size_t max_attempts =
      quota * buckets.size() * config_.max_attempts_factor;
  std::size_t filled = 0;
  double overall_recall = 0.0, overall_precision = 0.0;
  double sum_matched = 0.0, sum_truth = 0.0;
  double sum_results = 0.0, sum_candidates = 0.0;
  for (std::size_t attempt = 0;
       attempt < max_attempts && filled < buckets.size(); ++attempt) {
    const RangeQuery query = generator.Next();
    auto outcome = RunOne(query, config_.run_scan);
    if (!outcome.ok()) return outcome.status();
    ++result.total_queries_run;
    overall_recall += outcome->recall;
    overall_precision += outcome->precision;
    sum_matched += static_cast<double>(
        SortedIntersectionCount(outcome->index.sids, outcome->truth));
    sum_truth += static_cast<double>(outcome->truth.size());
    sum_results += static_cast<double>(outcome->index.stats.results);
    sum_candidates += static_cast<double>(outcome->index.stats.candidates);
    const std::size_t bucket = ClassifyResultSize(
        outcome->index.stats.candidates, store_->size(), buckets);
    if (bucket >= buckets.size()) continue;  // outside the studied range
    Accumulator& a = acc[bucket];
    if (a.count >= quota) continue;
    a.count += 1;
    a.recall += outcome->recall;
    a.precision += outcome->precision;
    a.candidates += static_cast<double>(outcome->index.stats.candidates);
    a.results += static_cast<double>(outcome->index.stats.results);
    a.idx_io += outcome->index.stats.io_seconds;
    a.idx_cpu += outcome->index.stats.cpu_seconds;
    a.scan_io += outcome->scan_io_seconds;
    a.scan_cpu += outcome->scan_cpu_seconds;
    if (a.count == quota) ++filled;
  }

  if (result.total_queries_run > 0) {
    result.overall_avg_recall =
        overall_recall / static_cast<double>(result.total_queries_run);
    result.overall_avg_precision =
        overall_precision / static_cast<double>(result.total_queries_run);
    result.overall_weighted_recall =
        sum_truth > 0.0 ? sum_matched / sum_truth : 1.0;
    result.overall_weighted_precision =
        sum_candidates > 0.0 ? sum_results / sum_candidates : 1.0;
  }
  SSR_LOG_C(kInfo, "harness")
          .With("dataset", config_.dataset)
      << "bucketed sweep done: " << result.total_queries_run << " queries, "
      << filled << "/" << buckets.size() << " buckets filled";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    BucketAggregate agg;
    agg.label = buckets[i].label;
    agg.query_count = acc[i].count;
    if (acc[i].count > 0) {
      const double n = static_cast<double>(acc[i].count);
      agg.avg_recall = acc[i].recall / n;
      agg.avg_precision = acc[i].precision / n;
      agg.avg_candidates = acc[i].candidates / n;
      agg.avg_results = acc[i].results / n;
      agg.avg_index_io_seconds = acc[i].idx_io / n;
      agg.avg_index_cpu_seconds = acc[i].idx_cpu / n;
      agg.avg_scan_io_seconds = acc[i].scan_io / n;
      agg.avg_scan_cpu_seconds = acc[i].scan_cpu / n;
    }
    result.buckets.push_back(agg);
  }
  return result;
}

}  // namespace ssr
