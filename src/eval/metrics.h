// Answer-quality metrics: recall and precision of an approximate answer
// against the exact one (Definitions 8/9 measure these in expectation; the
// harness measures them empirically per query and averages per bucket).

#ifndef SSR_EVAL_METRICS_H_
#define SSR_EVAL_METRICS_H_

#include <vector>

#include "util/types.h"

namespace ssr {

/// |a ∩ b| for sorted sid vectors.
std::size_t SortedIntersectionCount(const std::vector<SetId>& a,
                                    const std::vector<SetId>& b);

/// Recall of `answer` w.r.t. ground truth: |answer ∩ truth| / |truth|.
/// 1.0 when the truth is empty.
double Recall(const std::vector<SetId>& answer,
              const std::vector<SetId>& truth);

/// Precision of a candidate list w.r.t. the verified answer it produced:
/// the paper's efficiency metric ia / (ia + ie). `verified_count` is the
/// number of candidates that passed verification; `candidate_count` the
/// total fetched. 1.0 when no candidates were fetched.
double CandidatePrecision(std::size_t verified_count,
                          std::size_t candidate_count);

}  // namespace ssr

#endif  // SSR_EVAL_METRICS_H_
