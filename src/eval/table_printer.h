// Console table rendering for the benchmark harness: fixed-width aligned
// columns, so every bench binary prints the same rows/series the paper's
// figures report in a readable form.

#ifndef SSR_EVAL_TABLE_PRINTER_H_
#define SSR_EVAL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ssr {

/// Accumulates rows of string cells and prints them aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 4);
  static std::string Pct(double v, int precision = 1);  // 0.873 -> "87.3%"
  static std::string Count(std::uint64_t v);

  /// Renders the table with a header underline.
  void Print(std::ostream& os) const;

  /// Structured access for machine-readable exports (eval/run_report).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssr

#endif  // SSR_EVAL_TABLE_PRINTER_H_
