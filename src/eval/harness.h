// The end-to-end experiment harness behind the Figure 6/7 benchmarks:
// generate (or accept) a dataset, load it into the paged store, run the
// Section 5 optimizer for a table budget + recall target, build the
// composite index, then drive random range queries bucketed by candidate
// result size (the paper's five buckets), measuring per-bucket recall,
// precision, simulated I/O time, CPU time, and the sequential-scan
// comparator.

#ifndef SSR_EVAL_HARNESS_H_
#define SSR_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/set_similarity_index.h"
#include "optimizer/index_builder.h"
#include "storage/set_store.h"
#include "util/result.h"
#include "workload/buckets.h"
#include "workload/query_generator.h"

namespace ssr {

/// Experiment knobs (defaults: a laptop-scale rendition of the paper's
/// setup: k = 100 min-hashes, budget 500, 90% recall target).
struct ExperimentConfig {
  /// Dataset name ("set1"/"set2") and down-scaling factor (1.0 = the
  /// paper's 200,000 sets).
  std::string dataset = "set1";
  double scale = 0.05;

  /// Optimization constraint (Section 5): total hash tables.
  std::size_t table_budget = 500;

  /// Optimization objective: expected worst-case recall threshold T.
  double recall_threshold = 0.9;

  /// If the construction cannot meet `recall_threshold` (the predicted
  /// model is conservative and small scaled collections are hard), retry
  /// with thresholds lowered in 0.05 steps down to this floor instead of
  /// failing. The achieved threshold is reported in `achieved_threshold`.
  bool allow_threshold_fallback = true;
  double threshold_floor = 0.6;

  /// Embedding: number of min-hashes k and value precision b.
  std::size_t num_minhashes = 100;
  unsigned value_bits = 8;

  /// Signing family (signature engine v2): the benchrunner's `signing`
  /// ablation sweeps this to pin each family's accuracy-vs-speed point.
  MinHashFamilyKind minhash_family = MinHashFamilyKind::kClassic;

  /// Query workload per result-size bucket, and the attempt cap (some
  /// buckets are rare under a given distribution).
  std::size_t queries_per_bucket = 100;
  std::size_t max_attempts_factor = 60;

  /// Pairs sampled for the Lemma 1 distribution estimate.
  std::size_t distribution_sample_pairs = 100000;

  /// Whether to run the sequential-scan comparator per query (Figure 7).
  bool run_scan = true;

  /// Storage knobs.
  std::size_t buffer_pool_pages = 128;
  IoCostParams io;

  std::uint64_t seed = 0xe9a1ab1e5eedULL;
};

/// Per-bucket aggregates (one row of Figure 6 / 7).
struct BucketAggregate {
  std::string label;
  std::size_t query_count = 0;
  double avg_recall = 0.0;
  double avg_precision = 0.0;
  double avg_candidates = 0.0;
  double avg_results = 0.0;
  double avg_index_io_seconds = 0.0;
  double avg_index_cpu_seconds = 0.0;
  double avg_scan_io_seconds = 0.0;
  double avg_scan_cpu_seconds = 0.0;

  double avg_index_total_seconds() const {
    return avg_index_io_seconds + avg_index_cpu_seconds;
  }
  double avg_scan_total_seconds() const {
    return avg_scan_io_seconds + avg_scan_cpu_seconds;
  }
};

/// Everything a bench binary needs to print its figure.
struct ExperimentResult {
  std::vector<BucketAggregate> buckets;
  BuiltLayout layout;
  std::size_t collection_size = 0;
  std::size_t heap_pages = 0;
  double avg_set_pages = 0.0;
  double crossover_result_size = 0.0;  // Section 6 analytic bound
  std::size_t total_queries_run = 0;

  /// Unconditioned averages over every query run during the sweep
  /// (including ones whose bucket was already full or out of range).
  /// `overall_avg_*` is the per-query mean; `overall_weighted_*` is the
  /// ratio of sums (Σ retrieved-in-range / Σ answer size), which is the
  /// paper's Definition 8/9 "ratio of expectations" form (footnote 3) and
  /// the quantity the optimizer's average-recall objective predicts.
  double overall_avg_recall = 0.0;
  double overall_avg_precision = 0.0;
  double overall_weighted_recall = 0.0;
  double overall_weighted_precision = 0.0;
};

/// A loaded experiment environment, reusable across query sweeps.
class ExperimentHarness {
 public:
  /// Generates the dataset, loads the store, runs the optimizer, builds the
  /// index. Heavyweight; construct once per configuration.
  static Result<std::unique_ptr<ExperimentHarness>> Create(
      const ExperimentConfig& config);

  /// Runs the bucketed query sweep and aggregates per bucket.
  Result<ExperimentResult> RunBucketedQueries();

  /// Runs one query through index and (optionally) scan; exposed for
  /// focused benches. `truth` receives the exact answer.
  struct SingleQueryOutcome {
    QueryResult index;
    double scan_io_seconds = 0.0;
    double scan_cpu_seconds = 0.0;
    std::vector<SetId> truth;
    double recall = 0.0;
    double precision = 0.0;
  };
  Result<SingleQueryOutcome> RunOne(const RangeQuery& query, bool with_scan);

  const SetCollection& collection() const { return collection_; }
  SetStore& store() { return *store_; }
  SetSimilarityIndex& index() { return *index_; }
  const BuiltLayout& layout() const { return layout_; }
  const ExperimentConfig& config() const { return config_; }

  /// The recall threshold the construction actually met (== the configured
  /// one unless fallback stepped it down).
  double achieved_threshold() const { return achieved_threshold_; }
  const SimilarityHistogram& distribution() const { return *distribution_; }

 private:
  ExperimentHarness() = default;

  ExperimentConfig config_;
  double achieved_threshold_ = 0.0;
  SetCollection collection_;
  std::unique_ptr<SetStore> store_;
  std::unique_ptr<SimilarityHistogram> distribution_;
  BuiltLayout layout_;
  std::unique_ptr<SetSimilarityIndex> index_;
};

}  // namespace ssr

#endif  // SSR_EVAL_HARNESS_H_
