#include "eval/table_printer.h"

#include <cstdint>
#include <iomanip>
#include <sstream>

namespace ssr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TablePrinter::Pct(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
  return out.str();
}

std::string TablePrinter::Count(std::uint64_t v) {
  return std::to_string(v);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string underline;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    underline += std::string(widths[c], '-') + "  ";
  }
  os << underline << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ssr
