#include "storage/atomic_file.h"

#include <cstdio>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "fault/fault_injector.h"

namespace ssr {

namespace {

// One fault check per save phase. kCrashPoint and kWriteError both mean
// "the machine died here": abort, leaving the target file untouched.
Status CheckSavePhase() {
  fault::FaultInjector& injector = fault::FaultInjector::Default();
  if (!injector.enabled()) return Status::OK();
  const auto kind = injector.Check(kAtomicSaveFaultSite);
  if (!kind.has_value()) return Status::OK();
  if (*kind == fault::FaultKind::kWriteError ||
      *kind == fault::FaultKind::kCrashPoint) {
    return Status::Unavailable("injected crash during atomic save");
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Unavailable("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Unavailable("fsync failed: " + path);
  return Status::OK();
}

}  // namespace

Status AtomicSave(const std::string& path,
                  const std::function<Status(std::ostream&)>& write_fn) {
  const std::string tmp = path + ".tmp";

  // Phase 1: stream the complete new contents into the temp file.
  SSR_RETURN_IF_ERROR(CheckSavePhase());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Unavailable("cannot create temp file: " + tmp);
    }
    SSR_RETURN_IF_ERROR(write_fn(out));
    out.flush();
    if (!out.good()) {
      return Status::Unavailable("write to temp file failed: " + tmp);
    }
  }

  // Phase 2: force the temp bytes to stable storage *before* the rename
  // publishes them — otherwise a power cut could leave the target pointing
  // at pages that never hit disk.
  SSR_RETURN_IF_ERROR(CheckSavePhase());
  SSR_RETURN_IF_ERROR(FsyncPath(tmp));

  // Phase 3: atomic publish. After rename returns, `path` is the new
  // snapshot; before, it is untouched. (Syncing the directory entry is
  // best-effort: a lost rename re-exposes the *old complete* snapshot,
  // which recovery handles like any pre-checkpoint crash.)
  SSR_RETURN_IF_ERROR(CheckSavePhase());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Unavailable("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace ssr
