// SetStore: the disk-resident set collection. Composes the heap file (record
// storage), the B+-tree (sid -> record locator, the "conventional data
// structure supporting queries on set identifier" of Section 6), the buffer
// pool, and the I/O cost model. This is what both query paths touch:
//   - the index path fetches candidate sets by sid (random reads), and
//   - the sequential-scan baseline reads every page in file order.

#ifndef SSR_STORAGE_SET_STORE_H_
#define SSR_STORAGE_SET_STORE_H_

#include <functional>
#include <istream>
#include <ostream>
#include <shared_mutex>
#include <string>

#include "fault/retry.h"
#include "obs/metrics.h"
#include "storage/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/io_cost_model.h"
#include "storage/snapshot.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// SetStore construction options.
struct SetStoreOptions {
  /// Buffer pool capacity in pages. Small relative to the collection keeps
  /// the workload disk-bound, as in the paper's setup.
  std::size_t buffer_pool_pages = 256;

  /// Simulated I/O cost parameters (seq/random page cost).
  IoCostParams io;

  /// Max keys per B+-tree node.
  std::size_t btree_max_keys = 256;

  /// Whether B+-tree traversals charge random reads per node visited
  /// (index assumed disk-resident). Default false: the paper keeps the sid
  /// index hot and counts data-page I/O only.
  bool charge_btree_io = false;

  /// Scope for this store's instruments (buffer pool, I/O model, record
  /// counters) in obs::MetricsRegistry::Default(). Empty allocates a
  /// unique "store/N" scope so independent stores never share counters.
  std::string metrics_scope;

  /// Retry policy for transient (Unavailable) failures on record fetches —
  /// the "store/get" fault site. Defaults to 3 attempts, no backoff delay.
  fault::RetryPolicy get_retry;
};

/// Mutable collection of sets with paged storage and I/O accounting.
/// Internally synchronized: Add/Delete/Get/ScanAll take the store's
/// exclusive lock (Get mutates the shared buffer pool's LRU state and the
/// I/O counters), while Contains and ReadView reads share it — so any
/// number of ReadViews may run concurrently with writers. High-throughput
/// concurrent readers still prefer ReadView (private pool, no contention
/// on the store's own pool).
class SetStore {
 public:
  explicit SetStore(SetStoreOptions options = SetStoreOptions());

  /// A per-worker read-only view: a private buffer pool and a private I/O
  /// cost model over the store's immutable heap file and sid index. As long
  /// as no writer runs concurrently, any number of ReadViews may Get() in
  /// parallel — the only mutable state each touches is its own. The batch
  /// executor gives each worker one view and merges io_stats() deltas into
  /// per-query stats; process-wide store counters (gets, failures, latency)
  /// are still shared, which is safe (relaxed atomics).
  class ReadView {
   public:
    /// `buffer_pool_pages` = 0 uses the store's configured pool capacity.
    /// The view's pool and I/O instruments live under a fresh
    /// "<store-scope>/view/N" metrics scope so views never share counters.
    explicit ReadView(const SetStore& store,
                      std::size_t buffer_pool_pages = 0);

    /// Identical semantics to SetStore::Get (fault retries included), but
    /// charges this view's pool and cost model only.
    Result<ElementSet> Get(SetId sid);

    /// Identical semantics to SetStore::ScanAll (sequential-read charging
    /// included), against this view's cost model.
    void ScanAll(const std::function<bool(SetId, const ElementSet&)>& visitor);

    /// This view's accumulated simulated I/O.
    IoStats io_stats() const { return io_.stats(); }
    IoCostModel& io() { return io_; }
    const IoCostModel& io() const { return io_; }
    BufferPool& buffer_pool() { return pool_; }

   private:
    const SetStore* store_;
    BufferPool pool_;
    IoCostModel io_;
  };

  /// Adds a set, assigning the next dense SetId. `set` must be normalized
  /// (sorted unique); InvalidArgument otherwise.
  Result<SetId> Add(const ElementSet& set);

  /// Fetches a set by sid through the buffer pool, charging random reads
  /// on misses. NotFound for deleted/unknown sids. Transient page-fetch
  /// faults (the "store/get" site, surfaced as Unavailable) are retried
  /// under options.get_retry before the error escapes.
  Result<ElementSet> Get(SetId sid);

  /// Removes a set from the collection (unlinks it from the sid index; heap
  /// space is not reclaimed, as in a heap file without vacuum).
  Status Delete(SetId sid);

  /// True iff sid currently maps to a live record.
  bool Contains(SetId sid) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return btree_.Contains(sid);
  }

  /// Visits every live set in file order, charging one sequential read per
  /// distinct page in file order (the cost of a full-file scan). Returning
  /// false stops the scan early (the cost of remaining pages is not
  /// charged).
  void ScanAll(const std::function<bool(SetId, const ElementSet&)>& visitor);

  /// Number of live sets.
  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return btree_.size();
  }

  /// Total heap-file pages (the sequential-scan cost in pages).
  std::size_t num_pages() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return file_.num_pages();
  }

  /// Average live-record size in pages (fractional); the paper's crossover
  /// bound |Q| < |S| * a / rtn uses this "a".
  double AvgSetPages() const;

  IoCostModel& io() { return io_; }
  const IoCostModel& io() const { return io_; }
  BufferPool& buffer_pool() { return pool_; }
  const BufferPool& buffer_pool() const { return pool_; }
  const BPlusTree& btree() const { return btree_; }
  const HeapFile& file() const { return file_; }

  /// The scope this store's instruments are registered under.
  const std::string& metrics_scope() const { return options_.metrics_scope; }

  /// Drops the buffer pool contents and zeroes I/O counters (between
  /// experiment phases).
  void ResetIoAccounting();

  /// Persists the collection (heap file + live-set index) as checksummed v2
  /// snapshots (storage/snapshot.h); Load reconstructs it under fresh
  /// `options` (buffer pool and I/O accounting start empty). Round-trips
  /// all live and deleted state.
  ///
  /// Strict loads (default) fail with a typed status on the first integrity
  /// error: DataLoss for truncation, Corruption for checksum mismatches,
  /// NotSupported for version skew. With `load_options.salvage`, damage in
  /// the heap's pages section is tolerated — corrupt pages are quarantined,
  /// records living on them are dropped from the live index (counted in
  /// ssr_recovery_* metrics and `load_options.report`), and the store comes
  /// up serving the surviving records.
  Status SaveTo(std::ostream& out) const;
  static Result<SetStore> Load(std::istream& in,
                               SetStoreOptions options = SetStoreOptions(),
                               const SnapshotLoadOptions& load_options = {});

  // Moves happen only while singly-owned (Load plumbing, shard setup) —
  // never concurrently with readers or writers; the lock is not moved.
  SetStore(SetStore&& other) noexcept;
  SetStore& operator=(SetStore&& other) noexcept;
  ~SetStore() = default;

 private:
  // Guards file_/btree_/pool_/io_/next_sid_/live_bytes_: exclusive for
  // mutations and pool-touching reads, shared for ReadView fetches and
  // pure lookups. Declared first so it outlives every guarded member
  // during destruction.
  mutable std::shared_mutex mu_;
  SetStoreOptions options_;
  HeapFile file_;
  BPlusTree btree_;
  BufferPool pool_;
  IoCostModel io_;
  obs::Counter* sets_added_;      // ssr_store_sets_added_total
  obs::Counter* gets_;            // ssr_store_gets_total
  obs::Counter* scans_;           // ssr_store_scans_total
  obs::Counter* fetch_failures_;  // ssr_store_fetch_failures_total
  obs::Gauge* live_sets_;         // ssr_store_live_sets
  obs::Gauge* heap_pages_;        // ssr_store_heap_pages
  obs::Histogram* get_latency_hist_;  // ssr_store_get_latency_micros
  SetId next_sid_ = 0;
  std::uint64_t live_bytes_ = 0;
};

}  // namespace ssr

#endif  // SSR_STORAGE_SET_STORE_H_
