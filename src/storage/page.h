// Fixed-size page abstraction underlying the heap file. The paper's
// experiments count disk page accesses (random vs sequential); all storage
// in this library is organized in 4 KiB pages so those counts are
// well-defined.

#ifndef SSR_STORAGE_PAGE_H_
#define SSR_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace ssr {

/// Page size in bytes (4 KiB, the classic DBMS default).
inline constexpr std::size_t kPageSize = 4096;

/// Identifier of a page within a file.
using PageId = std::uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// A raw page of bytes with little-endian scalar accessors.
class Page {
 public:
  Page() : data_{} {}

  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }

  /// Reads a little-endian scalar at byte `offset`. Out-of-bounds offsets
  /// are assert-checked in debug builds (an overrun here means a corrupt
  /// slot directory or a logic bug, both worth dying loudly for in tests);
  /// release builds trust the caller.
  std::uint16_t ReadU16(std::size_t offset) const;
  std::uint32_t ReadU32(std::size_t offset) const;
  std::uint64_t ReadU64(std::size_t offset) const;

  /// Writes a little-endian scalar at byte `offset`. Bounds are
  /// assert-checked in debug builds.
  void WriteU16(std::size_t offset, std::uint16_t v);
  void WriteU32(std::size_t offset, std::uint32_t v);
  void WriteU64(std::size_t offset, std::uint64_t v);

  /// Copies `len` raw bytes in/out. Bounds are assert-checked in debug
  /// builds.
  void ReadBytes(std::size_t offset, void* out, std::size_t len) const;
  void WriteBytes(std::size_t offset, const void* src, std::size_t len);

 private:
  std::array<std::uint8_t, kPageSize> data_;
};

}  // namespace ssr

#endif  // SSR_STORAGE_PAGE_H_
