#include "storage/buffer_pool.h"

namespace ssr {

BufferPool::BufferPool(std::size_t capacity_pages)
    : capacity_(capacity_pages < 1 ? 1 : capacity_pages) {}

bool BufferPool::Access(PageId page_id, bool sequential, IoCostModel& io) {
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.misses;
  if (sequential) {
    io.ChargeSequentialRead();
  } else {
    io.ChargeRandomRead();
  }
  if (lru_.size() >= capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(page_id);
  index_[page_id] = lru_.begin();
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace ssr
