#include "storage/buffer_pool.h"

namespace ssr {

BufferPool::BufferPool(std::size_t capacity_pages, std::string metrics_scope)
    : capacity_(capacity_pages < 1 ? 1 : capacity_pages),
      metrics_scope_(metrics_scope.empty()
                         ? obs::MetricsRegistry::Default().NewScope("pool")
                         : std::move(metrics_scope)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  hits_ = registry.GetCounter("ssr_buffer_pool_hits_total", metrics_scope_);
  misses_ =
      registry.GetCounter("ssr_buffer_pool_misses_total", metrics_scope_);
  evictions_ =
      registry.GetCounter("ssr_buffer_pool_evictions_total", metrics_scope_);
}

bool BufferPool::Access(PageId page_id, bool sequential, IoCostModel& io) {
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    hits_->Increment();
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  misses_->Increment();
  if (sequential) {
    io.ChargeSequentialRead();
  } else {
    io.ChargeRandomRead();
  }
  if (lru_.size() >= capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim);
    evictions_->Increment();
  }
  lru_.push_front(page_id);
  index_[page_id] = lru_.begin();
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

void BufferPool::ResetStats() {
  hits_->Reset();
  misses_->Reset();
  evictions_->Reset();
}

}  // namespace ssr
