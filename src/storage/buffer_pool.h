// LRU buffer pool in front of the heap file. A page hit costs nothing; a
// miss charges the I/O cost model (random or sequential, as declared by the
// caller). The evaluation harness sizes the pool small relative to the
// collection so the paper's disk-bound regime is faithfully simulated.

#ifndef SSR_STORAGE_BUFFER_POOL_H_
#define SSR_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/heap_file.h"
#include "storage/io_cost_model.h"
#include "storage/page.h"

namespace ssr {

/// Buffer pool statistics.
struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Tracks which pages are resident; the heap file owns the bytes (memory-
/// backed), so "residency" is bookkeeping that drives cost accounting only.
class BufferPool {
 public:
  /// `capacity_pages` >= 1.
  explicit BufferPool(std::size_t capacity_pages);

  /// Declares an access to `page_id`. On a miss, charges `io` one read of
  /// the given kind and makes the page resident (possibly evicting the LRU
  /// page). Returns true on hit.
  bool Access(PageId page_id, bool sequential, IoCostModel& io);

  /// Drops all resident pages (e.g., between experiment phases).
  void Clear();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  std::size_t capacity() const { return capacity_; }
  std::size_t resident() const { return lru_.size(); }

 private:
  std::size_t capacity_;
  // Front = most recently used.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  BufferPoolStats stats_;
};

}  // namespace ssr

#endif  // SSR_STORAGE_BUFFER_POOL_H_
