// LRU buffer pool in front of the heap file. A page hit costs nothing; a
// miss charges the I/O cost model (random or sequential, as declared by the
// caller). The evaluation harness sizes the pool small relative to the
// collection so the paper's disk-bound regime is faithfully simulated.
//
// Hit/miss/eviction counts live in obs::MetricsRegistry instruments
// (ssr_buffer_pool_*_total under this pool's scope); BufferPoolStats is a
// snapshot view over them.

#ifndef SSR_STORAGE_BUFFER_POOL_H_
#define SSR_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "storage/heap_file.h"
#include "storage/io_cost_model.h"
#include "storage/page.h"

namespace ssr {

/// Buffer pool statistics (a snapshot of the pool's instruments).
struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Tracks which pages are resident; the heap file owns the bytes (memory-
/// backed), so "residency" is bookkeeping that drives cost accounting only.
class BufferPool {
 public:
  /// `capacity_pages` >= 1. `metrics_scope` names this pool's instruments
  /// in the default registry; empty allocates a unique "pool/N" scope so
  /// independent pools never share counters.
  explicit BufferPool(std::size_t capacity_pages,
                      std::string metrics_scope = "");

  /// Declares an access to `page_id`. On a miss, charges `io` one read of
  /// the given kind and makes the page resident (possibly evicting the LRU
  /// page). Returns true on hit.
  bool Access(PageId page_id, bool sequential, IoCostModel& io);

  /// Drops all resident pages (e.g., between experiment phases).
  void Clear();

  BufferPoolStats stats() const {
    return {hits_->value(), misses_->value(), evictions_->value()};
  }
  void ResetStats();

  std::size_t capacity() const { return capacity_; }
  std::size_t resident() const { return lru_.size(); }
  const std::string& metrics_scope() const { return metrics_scope_; }

 private:
  std::size_t capacity_;
  std::string metrics_scope_;
  // Front = most recently used.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
};

}  // namespace ssr

#endif  // SSR_STORAGE_BUFFER_POOL_H_
