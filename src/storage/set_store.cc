#include "storage/set_store.h"

#include <sstream>

#include "fault/fault_injector.h"
#include "util/serialize.h"
#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {

namespace {
SetStoreOptions ResolveMetricsScope(SetStoreOptions options) {
  if (options.metrics_scope.empty()) {
    options.metrics_scope = obs::MetricsRegistry::Default().NewScope("store");
  }
  return options;
}
}  // namespace

SetStore::SetStore(SetStoreOptions options)
    : options_(ResolveMetricsScope(std::move(options))),
      btree_(options_.btree_max_keys),
      pool_(options_.buffer_pool_pages, options_.metrics_scope),
      io_(options_.io, options_.metrics_scope) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string& scope = options_.metrics_scope;
  sets_added_ = registry.GetCounter("ssr_store_sets_added_total", scope);
  gets_ = registry.GetCounter("ssr_store_gets_total", scope);
  scans_ = registry.GetCounter("ssr_store_scans_total", scope);
  fetch_failures_ =
      registry.GetCounter("ssr_store_fetch_failures_total", scope);
  live_sets_ = registry.GetGauge("ssr_store_live_sets", scope);
  heap_pages_ = registry.GetGauge("ssr_store_heap_pages", scope);
  get_latency_hist_ = registry.GetHistogram("ssr_store_get_latency_micros",
                                            scope, obs::LatencyBoundsMicros());
}

SetStore::SetStore(SetStore&& other) noexcept
    : options_(std::move(other.options_)),
      file_(std::move(other.file_)),
      btree_(std::move(other.btree_)),
      pool_(std::move(other.pool_)),
      io_(std::move(other.io_)),
      sets_added_(other.sets_added_),
      gets_(other.gets_),
      scans_(other.scans_),
      fetch_failures_(other.fetch_failures_),
      live_sets_(other.live_sets_),
      heap_pages_(other.heap_pages_),
      get_latency_hist_(other.get_latency_hist_),
      next_sid_(other.next_sid_),
      live_bytes_(other.live_bytes_) {
  other.next_sid_ = 0;
  other.live_bytes_ = 0;
}

SetStore& SetStore::operator=(SetStore&& other) noexcept {
  if (this != &other) {
    options_ = std::move(other.options_);
    file_ = std::move(other.file_);
    btree_ = std::move(other.btree_);
    pool_ = std::move(other.pool_);
    io_ = std::move(other.io_);
    sets_added_ = other.sets_added_;
    gets_ = other.gets_;
    scans_ = other.scans_;
    fetch_failures_ = other.fetch_failures_;
    live_sets_ = other.live_sets_;
    heap_pages_ = other.heap_pages_;
    get_latency_hist_ = other.get_latency_hist_;
    next_sid_ = other.next_sid_;
    live_bytes_ = other.live_bytes_;
    other.next_sid_ = 0;
    other.live_bytes_ = 0;
  }
  return *this;
}

Result<SetId> SetStore::Add(const ElementSet& set) {
  if (!IsNormalizedSet(set)) {
    return Status::InvalidArgument("set must be sorted and duplicate-free");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Appends hit the device too ("store/add" site). Fault before the sid is
  // allocated so a failed Add leaves the store bit-identical.
  SSR_RETURN_IF_ERROR(
      fault::FaultInjector::Default().CheckStatus("store/add"));
  const SetId sid = next_sid_++;
  auto loc = file_.Append(sid, set);
  if (!loc.ok()) return loc.status();
  SSR_RETURN_IF_ERROR(btree_.Insert(sid, loc.value()));
  // Appends dirty the tail page(s); charge them as sequential writes.
  io_.ChargeWrite(1);
  live_bytes_ += HeapFile::RecordBytes(set.size());
  sets_added_->Increment();
  live_sets_->Set(static_cast<double>(btree_.size()));
  heap_pages_->Set(static_cast<double>(file_.num_pages()));
  return sid;
}

Result<ElementSet> SetStore::Get(SetId sid) {
  // Exclusive: the fetch mutates the shared pool's LRU state and the I/O
  // counters. Concurrent readers use ReadView (private pool, shared lock).
  std::unique_lock<std::shared_mutex> lock(mu_);
  gets_->Increment();
  Stopwatch watch;
  std::size_t nodes = 0;
  auto loc = btree_.Find(sid, &nodes);
  if (!loc.ok()) return loc.status();
  if (options_.charge_btree_io) {
    io_.ChargeRandomRead(nodes);
  }
  // The page fetch is where transient device faults land ("store/get"
  // site); retry those before letting the error escape to the query layer.
  auto result = fault::RetryWithPolicy(
      options_.get_retry, [&]() -> Result<ElementSet> {
        SSR_RETURN_IF_ERROR(
            fault::FaultInjector::Default().CheckStatus("store/get"));
        std::vector<PageId> touched;
        SetId stored_sid = kInvalidSetId;
        auto set = file_.Read(loc.value(), &stored_sid, &touched);
        if (!set.ok()) return set.status();
        if (stored_sid != sid) {
          return Status::Corruption("sid mismatch in heap record");
        }
        for (PageId pid : touched) {
          pool_.Access(pid, /*sequential=*/false, io_);
        }
        return set;
      });
  if (!result.ok()) fetch_failures_->Increment();
  get_latency_hist_->Observe(static_cast<double>(watch.ElapsedMicros()));
  return result;
}

SetStore::ReadView::ReadView(const SetStore& store,
                             std::size_t buffer_pool_pages)
    : store_(&store),
      pool_(buffer_pool_pages == 0 ? store.options_.buffer_pool_pages
                                   : buffer_pool_pages,
            obs::MetricsRegistry::Default().NewScope(
                store.options_.metrics_scope + "/view")),
      io_(store.options_.io, pool_.metrics_scope()) {}

Result<ElementSet> SetStore::ReadView::Get(SetId sid) {
  // Mirrors SetStore::Get, but every mutable touch lands on this view's
  // private pool_/io_; the shared structures (btree_, file_) are only
  // read, under the store's shared lock so writers are excluded.
  std::shared_lock<std::shared_mutex> lock(store_->mu_);
  store_->gets_->Increment();
  Stopwatch watch;
  std::size_t nodes = 0;
  auto loc = store_->btree_.Find(sid, &nodes);
  if (!loc.ok()) return loc.status();
  if (store_->options_.charge_btree_io) {
    io_.ChargeRandomRead(nodes);
  }
  auto result = fault::RetryWithPolicy(
      store_->options_.get_retry, [&]() -> Result<ElementSet> {
        SSR_RETURN_IF_ERROR(
            fault::FaultInjector::Default().CheckStatus("store/get"));
        std::vector<PageId> touched;
        SetId stored_sid = kInvalidSetId;
        auto set = store_->file_.Read(loc.value(), &stored_sid, &touched);
        if (!set.ok()) return set.status();
        if (stored_sid != sid) {
          return Status::Corruption("sid mismatch in heap record");
        }
        for (PageId pid : touched) {
          pool_.Access(pid, /*sequential=*/false, io_);
        }
        return set;
      });
  if (!result.ok()) store_->fetch_failures_->Increment();
  store_->get_latency_hist_->Observe(
      static_cast<double>(watch.ElapsedMicros()));
  return result;
}

Status SetStore::Delete(SetId sid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::size_t dummy = 0;
  auto loc = btree_.Find(sid, &dummy);
  if (!loc.ok()) return loc.status();
  SSR_RETURN_IF_ERROR(btree_.Erase(sid));
  live_sets_->Set(static_cast<double>(btree_.size()));
  return Status::OK();
}

namespace {

// Shared by SetStore::ScanAll and ReadView::ScanAll; only the charged cost
// model differs. A full-file scan touches every page once, sequentially.
// Charge pages as the record cursor crosses them rather than via the pool:
// sequential scans bypass the (small) pool in real systems to avoid cache
// pollution.
void ScanAllImpl(const HeapFile& file, const BPlusTree& btree, IoCostModel& io,
                 const std::function<bool(SetId, const ElementSet&)>& visitor) {
  PageId last_charged = kInvalidPageId;
  bool stopped = false;
  file.Scan([&](SetId sid, const ElementSet& set, const RecordLocator& loc) {
    if (stopped) return false;
    // Charge every page from the previous cursor position through this
    // record's last page.
    std::size_t span_pages = 1;
    if (loc.is_spanned()) {
      span_pages =
          (HeapFile::RecordBytes(set.size()) + kPageSize - 1) / kPageSize;
    }
    const PageId first = loc.page;
    const PageId last = loc.page + static_cast<PageId>(span_pages) - 1;
    if (last_charged == kInvalidPageId || first > last_charged) {
      io.ChargeSequentialRead(last - first + 1);
      last_charged = last;
    } else if (last > last_charged) {
      io.ChargeSequentialRead(last - last_charged);
      last_charged = last;
    }
    if (!btree.Contains(sid)) return true;  // deleted: skip, keep scanning
    if (!visitor(sid, set)) {
      stopped = true;
      return false;
    }
    return true;
  });
}

}  // namespace

void SetStore::ScanAll(
    const std::function<bool(SetId, const ElementSet&)>& visitor) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  scans_->Increment();
  ScanAllImpl(file_, btree_, io_, visitor);
}

void SetStore::ReadView::ScanAll(
    const std::function<bool(SetId, const ElementSet&)>& visitor) {
  std::shared_lock<std::shared_mutex> lock(store_->mu_);
  store_->scans_->Increment();
  ScanAllImpl(store_->file_, store_->btree_, io_, visitor);
}

double SetStore::AvgSetPages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (btree_.empty()) return 0.0;
  const double bytes_per_set =
      static_cast<double>(live_bytes_) / static_cast<double>(next_sid_);
  return bytes_per_set / static_cast<double>(kPageSize);
}

namespace {
constexpr std::string_view kSetStoreMagic = "SSRSTORE";
constexpr std::uint32_t kSetStoreVersion = 2;
}  // namespace

Status SetStore::SaveTo(std::ostream& out) const {
  // Store-level snapshot (meta + live index), then the heap file's own
  // snapshot. Two framed snapshots back to back: each is independently
  // checksummed and footer-pinned, and both read back sequentially.
  std::shared_lock<std::shared_mutex> lock(mu_);
  SnapshotWriter snapshot(out, kSetStoreMagic, kSetStoreVersion);

  BinaryWriter& meta = snapshot.BeginSection("meta");
  meta.WriteU32(next_sid_);
  meta.WriteU64(live_bytes_);
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  // Live sids (the B+-tree contents; locators are re-derivable from the
  // heap's record directory but are stored for integrity checking).
  std::vector<SetId> live;
  std::vector<RecordLocator> locators;
  btree_.ScanRange(0, next_sid_ == 0 ? 0 : next_sid_ - 1,
                   [&](SetId sid, const RecordLocator& loc) {
                     live.push_back(sid);
                     locators.push_back(loc);
                     return true;
                   });
  BinaryWriter& live_sec = snapshot.BeginSection("live");
  live_sec.WriteVector(live);
  live_sec.WriteVector(locators);
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  SSR_RETURN_IF_ERROR(snapshot.Finish());
  return file_.SaveTo(out);
}

Result<SetStore> SetStore::Load(std::istream& in, SetStoreOptions options,
                                const SnapshotLoadOptions& load_options) {
  SnapshotReader snapshot(in);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kSetStoreMagic, &version));
  if (version != kSetStoreVersion) {
    return Status::NotSupported("unknown store version");
  }

  // The store-level sections are small and irreplaceable: strict always.
  SetStore store(options);
  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    SSR_RETURN_IF_ERROR(meta.ReadU32(&store.next_sid_));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&store.live_bytes_));
  }
  std::vector<SetId> live;
  std::vector<RecordLocator> locators;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("live", &payload));
  {
    std::istringstream live_in(payload);
    BinaryReader live_reader(live_in);
    SSR_RETURN_IF_ERROR(live_reader.ReadVector(&live));
    SSR_RETURN_IF_ERROR(live_reader.ReadVector(&locators));
  }
  if (live.size() != locators.size()) {
    return Status::Corruption("live/locator size mismatch");
  }
  SSR_RETURN_IF_ERROR(snapshot.VerifyFooter());

  RecoveryReport heap_report;
  SnapshotLoadOptions heap_options = load_options;
  heap_options.report = &heap_report;
  auto file = HeapFile::LoadFrom(in, heap_options);
  if (!file.ok()) return file.status();
  store.file_ = std::move(file).value();

  std::size_t live_dropped = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i] >= store.next_sid_) {
      return Status::Corruption("live sid beyond next_sid");
    }
    if (heap_report.salvaged &&
        !store.file_.Read(locators[i], nullptr, nullptr).ok()) {
      // The record's page(s) were quarantined: drop it from the live index
      // so the store never serves a silently wrong answer for this sid.
      ++live_dropped;
      continue;
    }
    SSR_RETURN_IF_ERROR(store.btree_.Insert(live[i], locators[i]));
  }

  if (heap_report.salvaged) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    const std::string& scope = store.options_.metrics_scope;
    registry.GetCounter("ssr_recovery_salvage_loads_total", scope)
        ->Increment();
    registry.GetCounter("ssr_recovery_pages_quarantined_total", scope)
        ->Add(heap_report.pages_quarantined);
    registry.GetCounter("ssr_recovery_records_quarantined_total", scope)
        ->Add(live_dropped);
  }
  if (load_options.report != nullptr) {
    heap_report.records_quarantined = live_dropped;
    load_options.report->MergeFrom(heap_report);
  }

  store.live_sets_->Set(static_cast<double>(store.btree_.size()));
  store.heap_pages_->Set(static_cast<double>(store.file_.num_pages()));
  return store;
}

void SetStore::ResetIoAccounting() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pool_.Clear();
  pool_.ResetStats();
  io_.Reset();
}

}  // namespace ssr
