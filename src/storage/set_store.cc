#include "storage/set_store.h"

#include "util/serialize.h"
#include "util/set_ops.h"

namespace ssr {

namespace {
SetStoreOptions ResolveMetricsScope(SetStoreOptions options) {
  if (options.metrics_scope.empty()) {
    options.metrics_scope = obs::MetricsRegistry::Default().NewScope("store");
  }
  return options;
}
}  // namespace

SetStore::SetStore(SetStoreOptions options)
    : options_(ResolveMetricsScope(std::move(options))),
      btree_(options_.btree_max_keys),
      pool_(options_.buffer_pool_pages, options_.metrics_scope),
      io_(options_.io, options_.metrics_scope) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string& scope = options_.metrics_scope;
  sets_added_ = registry.GetCounter("ssr_store_sets_added_total", scope);
  gets_ = registry.GetCounter("ssr_store_gets_total", scope);
  scans_ = registry.GetCounter("ssr_store_scans_total", scope);
  live_sets_ = registry.GetGauge("ssr_store_live_sets", scope);
  heap_pages_ = registry.GetGauge("ssr_store_heap_pages", scope);
}

Result<SetId> SetStore::Add(const ElementSet& set) {
  if (!IsNormalizedSet(set)) {
    return Status::InvalidArgument("set must be sorted and duplicate-free");
  }
  const SetId sid = next_sid_++;
  auto loc = file_.Append(sid, set);
  if (!loc.ok()) return loc.status();
  SSR_RETURN_IF_ERROR(btree_.Insert(sid, loc.value()));
  // Appends dirty the tail page(s); charge them as sequential writes.
  io_.ChargeWrite(1);
  live_bytes_ += HeapFile::RecordBytes(set.size());
  sets_added_->Increment();
  live_sets_->Set(static_cast<double>(btree_.size()));
  heap_pages_->Set(static_cast<double>(file_.num_pages()));
  return sid;
}

Result<ElementSet> SetStore::Get(SetId sid) {
  gets_->Increment();
  std::size_t nodes = 0;
  auto loc = btree_.Find(sid, &nodes);
  if (!loc.ok()) return loc.status();
  if (options_.charge_btree_io) {
    io_.ChargeRandomRead(nodes);
  }
  std::vector<PageId> touched;
  SetId stored_sid = kInvalidSetId;
  auto set = file_.Read(loc.value(), &stored_sid, &touched);
  if (!set.ok()) return set.status();
  if (stored_sid != sid) {
    return Status::Corruption("sid mismatch in heap record");
  }
  for (PageId pid : touched) {
    pool_.Access(pid, /*sequential=*/false, io_);
  }
  return set;
}

Status SetStore::Delete(SetId sid) {
  std::size_t dummy = 0;
  auto loc = btree_.Find(sid, &dummy);
  if (!loc.ok()) return loc.status();
  SSR_RETURN_IF_ERROR(btree_.Erase(sid));
  live_sets_->Set(static_cast<double>(btree_.size()));
  return Status::OK();
}

void SetStore::ScanAll(
    const std::function<bool(SetId, const ElementSet&)>& visitor) {
  scans_->Increment();
  // A full-file scan touches every page once, sequentially. Charge pages as
  // the record cursor crosses them rather than via the pool: sequential
  // scans bypass the (small) pool in real systems to avoid cache pollution.
  PageId last_charged = kInvalidPageId;
  bool stopped = false;
  file_.Scan([&](SetId sid, const ElementSet& set, const RecordLocator& loc) {
    if (stopped) return false;
    // Charge every page from the previous cursor position through this
    // record's last page.
    std::size_t span_pages = 1;
    if (loc.is_spanned()) {
      span_pages =
          (HeapFile::RecordBytes(set.size()) + kPageSize - 1) / kPageSize;
    }
    const PageId first = loc.page;
    const PageId last = loc.page + static_cast<PageId>(span_pages) - 1;
    if (last_charged == kInvalidPageId || first > last_charged) {
      io_.ChargeSequentialRead(last - first + 1);
      last_charged = last;
    } else if (last > last_charged) {
      io_.ChargeSequentialRead(last - last_charged);
      last_charged = last;
    }
    if (!btree_.Contains(sid)) return true;  // deleted: skip, keep scanning
    if (!visitor(sid, set)) {
      stopped = true;
      return false;
    }
    return true;
  });
}

double SetStore::AvgSetPages() const {
  if (btree_.empty()) return 0.0;
  const double bytes_per_set =
      static_cast<double>(live_bytes_) / static_cast<double>(next_sid_);
  return bytes_per_set / static_cast<double>(kPageSize);
}

namespace {
constexpr std::uint32_t kSetStoreVersion = 1;
}  // namespace

Status SetStore::SaveTo(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.WriteString("SSRSTORE");
  writer.WriteU32(kSetStoreVersion);
  writer.WriteU32(next_sid_);
  writer.WriteU64(live_bytes_);
  // Live sids (the B+-tree contents; locators are re-derivable from the
  // heap's record directory but are stored for integrity checking).
  std::vector<SetId> live;
  std::vector<RecordLocator> locators;
  btree_.ScanRange(0, next_sid_ == 0 ? 0 : next_sid_ - 1,
                   [&](SetId sid, const RecordLocator& loc) {
                     live.push_back(sid);
                     locators.push_back(loc);
                     return true;
                   });
  writer.WriteVector(live);
  writer.WriteVector(locators);
  if (!writer.ok()) return Status::Internal("store header write failed");
  return file_.SaveTo(out);
}

Result<SetStore> SetStore::Load(std::istream& in, SetStoreOptions options) {
  BinaryReader reader(in);
  std::string magic;
  SSR_RETURN_IF_ERROR(reader.ReadString(&magic));
  if (magic != "SSRSTORE") return Status::Corruption("bad store magic");
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kSetStoreVersion) {
    return Status::NotSupported("unknown store version");
  }
  SetStore store(options);
  SSR_RETURN_IF_ERROR(reader.ReadU32(&store.next_sid_));
  SSR_RETURN_IF_ERROR(reader.ReadU64(&store.live_bytes_));
  std::vector<SetId> live;
  std::vector<RecordLocator> locators;
  SSR_RETURN_IF_ERROR(reader.ReadVector(&live));
  SSR_RETURN_IF_ERROR(reader.ReadVector(&locators));
  if (live.size() != locators.size()) {
    return Status::Corruption("live/locator size mismatch");
  }
  auto file = HeapFile::LoadFrom(in);
  if (!file.ok()) return file.status();
  store.file_ = std::move(file).value();
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i] >= store.next_sid_) {
      return Status::Corruption("live sid beyond next_sid");
    }
    SSR_RETURN_IF_ERROR(store.btree_.Insert(live[i], locators[i]));
  }
  store.live_sets_->Set(static_cast<double>(store.btree_.size()));
  store.heap_pages_->Set(static_cast<double>(store.file_.num_pages()));
  return store;
}

void SetStore::ResetIoAccounting() {
  pool_.Clear();
  pool_.ResetStats();
  io_.Reset();
}

}  // namespace ssr
