// Checksummed, versioned snapshot framing (format v2) shared by the
// storage and index persistence layers. A snapshot file is:
//
//   header:   magic string, u32 format version
//   sections: [name string, u64 payload_size, u32 crc32(payload), payload]*
//   footer:   "SSRFOOT", u32 section_count, u32 crc32(section crcs)
//
// Each section's payload is buffered in memory while written, so its CRC32
// (util/crc32.h) lands *before* the payload bytes and readers can verify
// integrity without a second pass. The footer pins the section count and a
// checksum-of-checksums, so truncation after a section boundary — which
// leaves every individual section intact — is still detected.
//
// Error taxonomy on load (the typed codes the recovery paths dispatch on):
//   - truncation (EOF mid-header/-section/-footer)  -> Status::DataLoss
//   - checksum mismatch / implausible length        -> Status::Corruption
//   - unknown format version                        -> Status::NotSupported
//
// All bytes cross the stream boundary through BinaryWriter/BinaryReader
// with the "snapshot/write" / "snapshot/read" fault sites, so the fault
// injector can tear, flip, or fail any individual write deterministically.

#ifndef SSR_STORAGE_SNAPSHOT_H_
#define SSR_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace ssr {

/// Fault-site names for snapshot byte traffic (armed by tests/CI).
inline constexpr std::string_view kSnapshotWriteFaultSite = "snapshot/write";
inline constexpr std::string_view kSnapshotReadFaultSite = "snapshot/read";

/// What a salvage load recovered and what it had to give up. Mirrored into
/// the obs registry (ssr_recovery_*) by the loading component.
struct RecoveryReport {
  std::size_t pages_total = 0;
  std::size_t pages_quarantined = 0;    // failed their CRC or were truncated
  std::size_t records_total = 0;
  std::size_t records_quarantined = 0;  // lived on a quarantined page
  std::size_t signatures_rebuilt = 0;   // index signatures re-embedded
  bool salvaged = false;                // a degraded load path was taken

  // WAL replay accounting (storage/recovery.h), mirrored into the
  // ssr_wal_* metrics by the recovery path that fills it.
  std::size_t wal_records_replayed = 0;  // applied past the checkpoint LSN
  std::size_t wal_records_skipped = 0;   // at/below the checkpoint LSN, or
                                         // already applied (idempotent)
  std::size_t wal_bytes_truncated = 0;   // torn-tail bytes dropped
  bool wal_tail_truncated = false;       // the log ended in a torn record
  std::size_t wal_shards_quarantined = 0;  // shards lost to mid-log damage
  double wal_recovery_seconds = 0.0;     // snapshot load + replay wall time

  void MergeFrom(const RecoveryReport& other) {
    pages_total += other.pages_total;
    pages_quarantined += other.pages_quarantined;
    records_total += other.records_total;
    records_quarantined += other.records_quarantined;
    signatures_rebuilt += other.signatures_rebuilt;
    salvaged = salvaged || other.salvaged;
    wal_records_replayed += other.wal_records_replayed;
    wal_records_skipped += other.wal_records_skipped;
    wal_bytes_truncated += other.wal_bytes_truncated;
    wal_tail_truncated = wal_tail_truncated || other.wal_tail_truncated;
    wal_shards_quarantined += other.wal_shards_quarantined;
    wal_recovery_seconds += other.wal_recovery_seconds;
  }
};

/// Load-time behavior under damage. Strict (default): the first integrity
/// failure aborts the load with a typed status. Salvage: intact sections
/// and heap pages are kept, damaged ones are quarantined and counted, and
/// derived structures are rebuilt from the survivors.
struct SnapshotLoadOptions {
  bool salvage = false;
  RecoveryReport* report = nullptr;  // filled when non-null
};

/// Writes a v2 snapshot: header, buffered checksummed sections, footer.
class SnapshotWriter {
 public:
  /// Writes the file header immediately.
  SnapshotWriter(std::ostream& out, std::string_view magic,
                 std::uint32_t version);

  /// Opens a section; returns the writer for its payload. Sections cannot
  /// nest — EndSection must be called before the next BeginSection.
  BinaryWriter& BeginSection(std::string_view name);

  /// Seals the open section: computes the payload CRC32 and flushes
  /// [name, size, crc, payload] to the underlying stream.
  Status EndSection();

  /// Writes the footer. No sections may be open.
  Status Finish();

  /// True iff every write so far reached the stream.
  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
  BinaryWriter file_writer_;          // fault site: snapshot/write
  std::ostringstream section_buf_;
  std::optional<BinaryWriter> section_writer_;  // set while a section is open
  std::string section_name_;
  std::vector<std::uint32_t> section_crcs_;
  bool finished_ = false;
};

/// Reads and verifies what SnapshotWriter wrote.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in);

  /// Verifies the magic and returns the format version (version policy —
  /// e.g. rejecting skew with NotSupported — belongs to the caller, which
  /// knows its own compatibility rules).
  Status ReadHeader(std::string_view expected_magic, std::uint32_t* version);

  /// Reads the next section, which must be named `expected_name`. On
  /// DataLoss (truncated payload) `*payload` holds the bytes that were
  /// present; on Corruption (CRC mismatch) it holds the corrupt bytes —
  /// salvage paths (heap-page recovery) inspect them, strict paths just
  /// propagate the status.
  Status ReadSection(std::string_view expected_name, std::string* payload);

  /// Reads the footer and verifies the section count and the
  /// checksum-of-checksums against the sections read so far.
  Status VerifyFooter();

 private:
  std::istream* in_;
  BinaryReader reader_;  // fault site: snapshot/read
  std::vector<std::uint32_t> section_crcs_;
};

}  // namespace ssr

#endif  // SSR_STORAGE_SNAPSHOT_H_
