#include "storage/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace ssr {

// Node layout. Internal nodes: keys.size() + 1 == children.size(); subtree
// children[i] holds keys < keys[i]; subtree children[i+1] holds keys >=
// keys[i] (separator keys are lower bounds of their right subtree and may be
// stale after deletions — they remain valid bounds). Leaves: keys/values are
// parallel arrays; `next` forms the leaf chain for range scans.
struct BPlusTree::Node {
  bool leaf = true;
  std::vector<SetId> keys;
  std::vector<RecordLocator> values;
  std::vector<Node*> children;
  Node* next = nullptr;
};

struct BPlusTree::InsertResult {
  Node* new_sibling = nullptr;  // non-null if the node split
  SetId separator = 0;          // key to insert into the parent
};

BPlusTree::BPlusTree(std::size_t max_keys)
    : max_keys_(max_keys < 3 ? 3 : max_keys) {
  root_ = new Node();
}

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : root_(other.root_), max_keys_(other.max_keys_), size_(other.size_) {
  other.root_ = new Node();
  other.size_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    root_ = other.root_;
    max_keys_ = other.max_keys_;
    size_ = other.size_;
    other.root_ = new Node();
    other.size_ = 0;
  }
  return *this;
}

void BPlusTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  for (Node* c : n->children) FreeTree(c);
  delete n;
}

namespace {

// Index of the child to descend into for `key`: first separator > key.
std::size_t ChildIndex(const std::vector<SetId>& keys, SetId key) {
  return static_cast<std::size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

// Position of `key` in a leaf, or keys.size() if absent.
std::size_t LeafFind(const std::vector<SetId>& keys, SetId key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it != keys.end() && *it == key) {
    return static_cast<std::size_t>(it - keys.begin());
  }
  return keys.size();
}

}  // namespace

BPlusTree::InsertResult BPlusTree::InsertInto(Node* n, SetId key,
                                              const RecordLocator& value,
                                              bool overwrite, Status* status) {
  InsertResult result;
  if (n->leaf) {
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    const std::size_t pos = static_cast<std::size_t>(it - n->keys.begin());
    if (it != n->keys.end() && *it == key) {
      if (!overwrite) {
        *status = Status::AlreadyExists("duplicate key " + std::to_string(key));
        return result;
      }
      n->values[pos] = value;
      return result;
    }
    n->keys.insert(it, key);
    n->values.insert(n->values.begin() + static_cast<std::ptrdiff_t>(pos),
                     value);
    ++size_;
    if (n->keys.size() <= max_keys_) return result;
    // Split the leaf: upper half moves to a new right sibling.
    const std::size_t mid = n->keys.size() / 2;
    Node* right = new Node();
    right->leaf = true;
    right->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                       n->keys.end());
    right->values.assign(n->values.begin() + static_cast<std::ptrdiff_t>(mid),
                         n->values.end());
    n->keys.resize(mid);
    n->values.resize(mid);
    right->next = n->next;
    n->next = right;
    result.new_sibling = right;
    result.separator = right->keys.front();
    return result;
  }
  const std::size_t ci = ChildIndex(n->keys, key);
  InsertResult child = InsertInto(n->children[ci], key, value, overwrite,
                                  status);
  if (child.new_sibling == nullptr) return result;
  n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(ci),
                 child.separator);
  n->children.insert(
      n->children.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
      child.new_sibling);
  if (n->keys.size() <= max_keys_) return result;
  // Split the internal node: the middle key moves up.
  const std::size_t mid = n->keys.size() / 2;
  Node* right = new Node();
  right->leaf = false;
  result.separator = n->keys[mid];
  right->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     n->keys.end());
  right->children.assign(
      n->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      n->children.end());
  n->keys.resize(mid);
  n->children.resize(mid + 1);
  result.new_sibling = right;
  return result;
}

Status BPlusTree::Insert(SetId key, const RecordLocator& value) {
  Status status;
  InsertResult top = InsertInto(root_, key, value, /*overwrite=*/false,
                                &status);
  if (!status.ok()) return status;
  if (top.new_sibling != nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(top.separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(top.new_sibling);
    root_ = new_root;
  }
  return Status::OK();
}

void BPlusTree::Upsert(SetId key, const RecordLocator& value) {
  Status status;
  InsertResult top = InsertInto(root_, key, value, /*overwrite=*/true,
                                &status);
  if (top.new_sibling != nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(top.separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(top.new_sibling);
    root_ = new_root;
  }
}

Result<RecordLocator> BPlusTree::Find(SetId key,
                                      std::size_t* nodes_visited) const {
  const Node* n = root_;
  while (true) {
    if (nodes_visited != nullptr) ++*nodes_visited;
    if (n->leaf) break;
    n = n->children[ChildIndex(n->keys, key)];
  }
  const std::size_t pos = LeafFind(n->keys, key);
  if (pos == n->keys.size()) {
    return Status::NotFound("key " + std::to_string(key) + " not in tree");
  }
  return n->values[pos];
}

void BPlusTree::RebalanceChild(Node* parent, std::size_t child_idx) {
  const std::size_t min_keys = max_keys_ / 2;
  Node* child = parent->children[child_idx];
  if (child->keys.size() >= min_keys) return;

  Node* left =
      child_idx > 0 ? parent->children[child_idx - 1] : nullptr;
  Node* right = child_idx + 1 < parent->children.size()
                    ? parent->children[child_idx + 1]
                    : nullptr;

  // Borrow from a sibling with spare keys.
  if (left != nullptr && left->keys.size() > min_keys) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[child_idx - 1] = child->keys.front();
    } else {
      // Rotate through the parent separator.
      child->keys.insert(child->keys.begin(), parent->keys[child_idx - 1]);
      child->children.insert(child->children.begin(), left->children.back());
      parent->keys[child_idx - 1] = left->keys.back();
      left->keys.pop_back();
      left->children.pop_back();
    }
    return;
  }
  if (right != nullptr && right->keys.size() > min_keys) {
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[child_idx] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[child_idx]);
      child->children.push_back(right->children.front());
      parent->keys[child_idx] = right->keys.front();
      right->keys.erase(right->keys.begin());
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge with a sibling. Normalize so we merge `mergee` into `survivor`
  // where survivor is the left node.
  std::size_t sep_idx;
  Node* survivor;
  Node* mergee;
  if (left != nullptr) {
    survivor = left;
    mergee = child;
    sep_idx = child_idx - 1;
  } else {
    survivor = child;
    mergee = right;
    sep_idx = child_idx;
  }
  if (survivor->leaf) {
    survivor->keys.insert(survivor->keys.end(), mergee->keys.begin(),
                          mergee->keys.end());
    survivor->values.insert(survivor->values.end(), mergee->values.begin(),
                            mergee->values.end());
    survivor->next = mergee->next;
  } else {
    survivor->keys.push_back(parent->keys[sep_idx]);
    survivor->keys.insert(survivor->keys.end(), mergee->keys.begin(),
                          mergee->keys.end());
    survivor->children.insert(survivor->children.end(),
                              mergee->children.begin(),
                              mergee->children.end());
  }
  parent->keys.erase(parent->keys.begin() +
                     static_cast<std::ptrdiff_t>(sep_idx));
  parent->children.erase(parent->children.begin() +
                         static_cast<std::ptrdiff_t>(sep_idx) + 1);
  delete mergee;
}

bool BPlusTree::EraseFrom(Node* n, SetId key) {
  if (n->leaf) {
    const std::size_t pos = LeafFind(n->keys, key);
    if (pos == n->keys.size()) return false;
    n->keys.erase(n->keys.begin() + static_cast<std::ptrdiff_t>(pos));
    n->values.erase(n->values.begin() + static_cast<std::ptrdiff_t>(pos));
    --size_;
    return true;
  }
  const std::size_t ci = ChildIndex(n->keys, key);
  if (!EraseFrom(n->children[ci], key)) return false;
  RebalanceChild(n, ci);
  return true;
}

Status BPlusTree::Erase(SetId key) {
  if (!EraseFrom(root_, key)) {
    return Status::NotFound("key " + std::to_string(key) + " not in tree");
  }
  // Shrink the root if it became a passthrough internal node.
  if (!root_->leaf && root_->keys.empty()) {
    Node* old = root_;
    root_ = root_->children.front();
    old->children.clear();
    delete old;
  }
  return Status::OK();
}

void BPlusTree::ScanRange(
    SetId lo, SetId hi,
    const std::function<bool(SetId, const RecordLocator&)>& visitor) const {
  // Descend to the leaf that may contain `lo`, then walk the leaf chain.
  const Node* n = root_;
  while (!n->leaf) n = n->children[ChildIndex(n->keys, lo)];
  for (const Node* leaf = n; leaf != nullptr; leaf = leaf->next) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < lo) continue;
      if (leaf->keys[i] > hi) return;
      if (!visitor(leaf->keys[i], leaf->values[i])) return;
    }
  }
}

std::size_t BPlusTree::height() const {
  std::size_t h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children.front();
    ++h;
  }
  return h;
}

std::size_t BPlusTree::CountNodes(const Node* n) const {
  std::size_t count = 1;
  for (const Node* c : n->children) count += CountNodes(c);
  return count;
}

std::size_t BPlusTree::node_count() const { return CountNodes(root_); }

Status BPlusTree::ValidateNode(const Node* n, std::size_t depth,
                               std::size_t leaf_depth, bool is_root,
                               SetId* min_key, SetId* max_key) const {
  const std::size_t min_keys = max_keys_ / 2;
  if (!std::is_sorted(n->keys.begin(), n->keys.end())) {
    return Status::Corruption("node keys not sorted");
  }
  if (n->keys.size() > max_keys_) {
    return Status::Corruption("node overflows max_keys");
  }
  if (n->leaf) {
    if (depth != leaf_depth) {
      return Status::Corruption("leaves at non-uniform depth");
    }
    if (!is_root && n->keys.size() < min_keys) {
      return Status::Corruption("leaf underflow");
    }
    if (n->keys.size() != n->values.size()) {
      return Status::Corruption("leaf keys/values size mismatch");
    }
    if (!n->keys.empty()) {
      *min_key = n->keys.front();
      *max_key = n->keys.back();
    }
    return Status::OK();
  }
  if (n->children.size() != n->keys.size() + 1) {
    return Status::Corruption("internal children/keys arity mismatch");
  }
  if (!is_root && n->keys.size() < min_keys) {
    return Status::Corruption("internal underflow");
  }
  if (is_root && n->keys.empty()) {
    return Status::Corruption("internal root with no keys");
  }
  SetId subtree_min = 0, subtree_max = 0;
  for (std::size_t i = 0; i < n->children.size(); ++i) {
    SetId cmin = 0, cmax = 0;
    SSR_RETURN_IF_ERROR(ValidateNode(n->children[i], depth + 1, leaf_depth,
                                     false, &cmin, &cmax));
    if (n->children[i]->keys.empty()) {
      return Status::Corruption("empty non-root node");
    }
    // Separator keys[i-1] must lower-bound subtree i; keys[i] must
    // strictly upper-bound it.
    if (i > 0 && cmin < n->keys[i - 1]) {
      return Status::Corruption("subtree violates left separator bound");
    }
    if (i < n->keys.size() && cmax >= n->keys[i]) {
      return Status::Corruption("subtree violates right separator bound");
    }
    if (i == 0) subtree_min = cmin;
    if (i == n->children.size() - 1) subtree_max = cmax;
  }
  *min_key = subtree_min;
  *max_key = subtree_max;
  return Status::OK();
}

Status BPlusTree::Validate() const {
  // Find leaf depth from the leftmost path.
  std::size_t leaf_depth = 0;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children.front();
    ++leaf_depth;
  }
  SetId min_key = 0, max_key = 0;
  SSR_RETURN_IF_ERROR(
      ValidateNode(root_, 0, leaf_depth, /*is_root=*/true, &min_key, &max_key));
  // Leaf chain must enumerate exactly size() keys in strictly increasing
  // order and start at the leftmost leaf.
  std::size_t count = 0;
  bool first = true;
  SetId prev = 0;
  for (const Node* leaf = n; leaf != nullptr; leaf = leaf->next) {
    for (SetId k : leaf->keys) {
      if (!first && k <= prev) {
        return Status::Corruption("leaf chain out of order");
      }
      prev = k;
      first = false;
      ++count;
    }
  }
  if (count != size_) {
    return Status::Corruption("leaf chain count " + std::to_string(count) +
                              " != size " + std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace ssr
