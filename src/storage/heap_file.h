// Heap file of set records over slotted pages. Records that fit in one page
// go into shared slotted pages; oversized records get a dedicated run of
// consecutive pages (TOAST-style spanning), so arbitrary set cardinalities
// are supported — the paper explicitly refuses to bound set sizes.
//
// Record wire format: u32 sid, u32 element_count, element_count * u64.

#ifndef SSR_STORAGE_HEAP_FILE_H_
#define SSR_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <vector>

#include "storage/page.h"
#include "storage/snapshot.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Where a record lives. slot == kSpannedSlot marks a spanned record whose
/// bytes start at `page` and continue through consecutive pages.
struct RecordLocator {
  PageId page = kInvalidPageId;
  std::uint16_t slot = 0;

  static constexpr std::uint16_t kSpannedSlot = 0xffff;
  bool is_spanned() const { return slot == kSpannedSlot; }
  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const RecordLocator&) const = default;
};

/// Append-only heap file (deletes are handled above, in SetStore, by
/// unlinking from the sid index; space is not reclaimed, as in a classic
/// heap file without vacuum).
class HeapFile {
 public:
  HeapFile() = default;

  /// Appends a record; returns its locator. Fails only on absurd sizes
  /// (> 2^32 pages).
  Result<RecordLocator> Append(SetId sid, const ElementSet& set);

  /// Reads the record at `locator`. `pages_touched`, if non-null, receives
  /// the ids of every page the read touched (the caller charges I/O through
  /// its buffer pool). Fails on invalid locators or corrupt slots.
  Result<ElementSet> Read(const RecordLocator& locator, SetId* sid_out,
                          std::vector<PageId>* pages_touched) const;

  /// Visits all records in file order (sequential). The visitor sees every
  /// record ever appended, including ones later deleted by SetStore; the
  /// caller filters. Returning false from the visitor stops the scan.
  void Scan(const std::function<bool(SetId, const ElementSet&,
                                     const RecordLocator&)>& visitor) const;

  /// Number of allocated pages.
  std::size_t num_pages() const { return pages_.size(); }

  /// Number of records appended.
  std::size_t num_records() const { return num_records_; }

  /// Direct page access for the buffer pool. `id` must be < num_pages().
  const Page& page(PageId id) const { return pages_[id]; }

  /// True iff a salvage load quarantined this page (its CRC failed or its
  /// bytes were truncated away). Reads touching a quarantined page return
  /// DataLoss; Scan skips their records.
  bool is_quarantined(PageId id) const {
    return id < quarantined_.size() && quarantined_[id];
  }
  std::size_t num_quarantined_pages() const { return num_quarantined_; }

  /// Writes the file as a checksummed v2 snapshot (storage/snapshot.h):
  /// sections "meta", "spanmap", "recdir", then "pages" with a per-page
  /// CRC32 ahead of each 4 KiB image, so a salvage load can keep intact
  /// pages even when the section as a whole is damaged.
  Status SaveTo(std::ostream& out) const;

  /// Reads a v2 snapshot. Strict mode fails on the first integrity error
  /// (DataLoss = truncation, Corruption = checksum mismatch, NotSupported =
  /// format version skew). With `options.salvage`, damage confined to the
  /// "pages" section or the footer is tolerated: pages failing their CRC
  /// (or truncated away) are zeroed and quarantined, everything else loads.
  static Result<HeapFile> LoadFrom(std::istream& in,
                                   const SnapshotLoadOptions& options = {});

  /// Serialized size in bytes of a record for a set of `n` elements.
  static std::size_t RecordBytes(std::size_t n) { return 8 + 8 * n; }

  /// Max record bytes that fit in a shared slotted page.
  static std::size_t MaxInlineRecordBytes();

 private:
  // Slotted page layout: [u16 slot_count][u16 free_offset][records...]
  // [... slot dir grows from page end: u16 record_offset per slot].
  static constexpr std::size_t kHeaderBytes = 4;

  Page& NewPage();
  // Returns the page currently open for small-record appends, or creates one.
  PageId CurrentSlottedPage(std::size_t need_bytes);

  std::vector<Page> pages_;
  // Pages used as spanned-record storage (not slotted). Parallel to pages_.
  std::vector<bool> is_span_page_;
  // Pages a salvage load gave up on. Parallel to pages_; empty when no
  // salvage ever ran (the common case costs one size() check per read).
  std::vector<bool> quarantined_;
  // Locator of every record in append order, driving Scan().
  std::vector<RecordLocator> record_dir_;
  PageId open_slotted_page_ = kInvalidPageId;
  std::size_t num_records_ = 0;
  std::size_t num_quarantined_ = 0;
};

}  // namespace ssr

#endif  // SSR_STORAGE_HEAP_FILE_H_
