// Checkpoint + WAL-replay crash recovery (the durability protocol over
// storage/wal.h). The whole-lifecycle contract extends the query-path one:
// the system is *never silently wrong* — recovery either reproduces every
// acknowledged mutation bit-identically or surfaces a typed error
// (DataLoss/Corruption), and under sharding an unrecoverable log costs
// exactly its own shard.
//
// Protocol:
//   1. Mutations append to the WAL (acknowledged once synced) before they
//      apply in memory (SetSimilarityIndex::AttachWal).
//   2. A checkpoint snapshots the store + index *with the stable LSN it
//      covers* (one "SSRDURA" v2 snapshot: meta, nested store, nested
//      index sections). File-based checkpoints go through AtomicSave, so
//      the previous checkpoint survives any mid-save crash.
//   3. After the checkpoint is durable the log is truncated: a fresh WAL
//      starting at checkpoint_lsn + 1. A crash *between* those two steps
//      is benign — replay skips records at or below the checkpoint LSN.
//   4. Recovery loads the checkpoint (strict or through the PR-2 salvage
//      ladder), replays WAL records past the checkpoint LSN idempotently,
//      truncates a torn tail as a clean end-of-log, and reports what it
//      did (RecoveryReport wal_* fields, mirrored to ssr_wal_* metrics).
//
// Sharded recovery runs the same ladder per shard: each shard owns a WAL
// (records carry *global* sids, appended by the sharded layer), and a
// shard whose log has mid-log damage is quarantined — degraded, skipped by
// queries under kPartialResults — while every other shard replays and the
// router keeps serving tagged partial answers.

#ifndef SSR_STORAGE_RECOVERY_H_
#define SSR_STORAGE_RECOVERY_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/set_similarity_index.h"
#include "shard/sharded_index.h"
#include "storage/set_store.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/result.h"

namespace ssr {

/// Knobs for reviving a checkpoint.
struct RecoverOptions {
  /// Options for the revived store(s) (buffer pool, I/O model, scopes).
  SetStoreOptions store;
  /// Strict vs salvage, and an optional external report to fill. The same
  /// options flow into the nested snapshot loads.
  SnapshotLoadOptions snapshot;
};

/// Writes a durable checkpoint of `index` (and its store) tied to
/// `stable_lsn`: the highest WAL LSN whose effects the snapshot contains.
/// The caller guarantees no mutation runs during the save and that
/// stable_lsn == the attached WAL's last_lsn (after a Sync).
Status WriteIndexCheckpoint(const SetSimilarityIndex& index,
                            std::uint64_t stable_lsn, std::ostream& out);

/// File-based WriteIndexCheckpoint through AtomicSave: a crash mid-save
/// leaves the previous checkpoint file intact.
Status WriteIndexCheckpointFile(const SetSimilarityIndex& index,
                                std::uint64_t stable_lsn,
                                const std::string& path);

/// A recovered single index. The store must outlive the index; both are
/// heap-held so the pair is movable as a unit.
struct RecoveredIndex {
  std::unique_ptr<SetStore> store;
  std::unique_ptr<SetSimilarityIndex> index;
  std::uint64_t checkpoint_lsn = 0;
  std::uint64_t recovered_lsn = 0;  // == checkpoint_lsn when no replay
  RecoveryReport report;
};

/// Recovers checkpoint + WAL into a live index. `wal` may be null (no log
/// survived — the checkpoint alone is the recovered state). Torn WAL tails
/// truncate cleanly; a log that starts past checkpoint_lsn + 1 is DataLoss
/// (acknowledged records are missing); mid-log damage is Corruption.
/// Replay is idempotent: records at or below the checkpoint LSN, and
/// records whose effect is already present, are skipped and counted.
Result<RecoveredIndex> RecoverIndex(std::istream& checkpoint,
                                    std::istream* wal,
                                    const RecoverOptions& options = {});

/// File-based RecoverIndex: a missing WAL file is treated as an empty log
/// (fresh checkpoint, nothing to replay); a missing checkpoint is NotFound.
Result<RecoveredIndex> RecoverIndexFromFiles(
    const std::string& checkpoint_path, const std::string& wal_path,
    const RecoverOptions& options = {});

/// Writes a durable checkpoint of a sharded index tied to the per-shard
/// stable LSNs (`stable_lsns[s]` for shard s's WAL; size must equal
/// num_shards).
Status WriteShardedCheckpoint(const shard::ShardedSetSimilarityIndex& index,
                              const std::vector<std::uint64_t>& stable_lsns,
                              std::ostream& out);

/// A recovered sharded index.
struct RecoveredShardedIndex {
  std::unique_ptr<shard::ShardedSetSimilarityIndex> index;
  std::vector<std::uint64_t> checkpoint_lsns;  // by shard
  std::vector<std::uint64_t> recovered_lsns;   // by shard
  /// Shards whose WAL was unrecoverable (mid-log damage) or whose
  /// checkpoint section was already quarantined by the salvage load. Each
  /// is degraded — the router keeps serving from the others.
  std::vector<std::uint32_t> quarantined_shards;
  RecoveryReport report;
};

/// Recovers a sharded checkpoint + per-shard WALs (`wals[s]` for shard s;
/// null entries mean "no log survived for that shard" and replay nothing).
/// Under salvage (options_.snapshot.salvage), per-shard damage — a corrupt
/// checkpoint section or mid-log WAL damage — quarantines that shard only;
/// strict mode propagates the first error.
Result<RecoveredShardedIndex> RecoverShardedIndex(
    std::istream& checkpoint, const std::vector<std::istream*>& wals,
    const shard::ShardedIndexOptions& index_options,
    const SnapshotLoadOptions& load_options = {});

}  // namespace ssr

#endif  // SSR_STORAGE_RECOVERY_H_
