#include "storage/recovery.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/atomic_file.h"
#include "util/stopwatch.h"

namespace ssr {

namespace {

constexpr std::string_view kCheckpointMagic = "SSRDURA";
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::string_view kShardedCheckpointMagic = "SSRSDURA";
constexpr std::uint32_t kShardedCheckpointVersion = 1;

struct WalMetrics {
  obs::Counter* recoveries;          // ssr_wal_recoveries_total
  obs::Counter* records_replayed;    // ssr_wal_records_replayed_total
  obs::Counter* records_skipped;     // ssr_wal_records_skipped_total
  obs::Counter* bytes_truncated;     // ssr_wal_bytes_truncated_total
  obs::Counter* shards_quarantined;  // ssr_wal_shards_quarantined_total
  obs::Gauge* recovery_seconds;      // ssr_wal_last_recovery_seconds
};

WalMetrics& Metrics() {
  static WalMetrics* m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    auto* metrics = new WalMetrics();
    metrics->recoveries = r.GetCounter("ssr_wal_recoveries_total");
    metrics->records_replayed =
        r.GetCounter("ssr_wal_records_replayed_total");
    metrics->records_skipped = r.GetCounter("ssr_wal_records_skipped_total");
    metrics->bytes_truncated = r.GetCounter("ssr_wal_bytes_truncated_total");
    metrics->shards_quarantined =
        r.GetCounter("ssr_wal_shards_quarantined_total");
    metrics->recovery_seconds = r.GetGauge("ssr_wal_last_recovery_seconds");
    return metrics;
  }();
  return *m;
}

void MirrorReport(const RecoveryReport& report) {
  WalMetrics& m = Metrics();
  m.recoveries->Increment();
  m.records_replayed->Add(report.wal_records_replayed);
  m.records_skipped->Add(report.wal_records_skipped);
  m.bytes_truncated->Add(report.wal_bytes_truncated);
  m.shards_quarantined->Add(report.wal_shards_quarantined);
  m.recovery_seconds->Set(report.wal_recovery_seconds);
}

/// Replays decoded records past `checkpoint_lsn` through one store+index
/// pair (the per-shard case goes through the sharded layer instead, which
/// owns the global-sid translation). Fills the wal_* replay counters of
/// `report` and `*recovered_lsn`.
Status ReplayRecords(const std::vector<WalRecord>& records,
                     std::uint64_t checkpoint_lsn, SetStore* store,
                     SetSimilarityIndex* index, RecoveryReport* report,
                     std::uint64_t* recovered_lsn) {
  *recovered_lsn = checkpoint_lsn;
  for (const WalRecord& record : records) {
    if (record.lsn <= checkpoint_lsn) {
      // The crash landed between checkpoint publish and log truncation:
      // the snapshot already contains this record's effect.
      ++report->wal_records_skipped;
      *recovered_lsn = record.lsn;
      continue;
    }
    switch (record.type) {
      case WalRecordType::kInsert: {
        if (store->Contains(record.sid)) {  // idempotent re-application
          ++report->wal_records_skipped;
          break;
        }
        SetId sid = kInvalidSetId;
        SSR_ASSIGN_OR_RETURN(sid, store->Add(record.set));
        // The dense allocator replays in log order, so the sid it hands
        // out must be the one the live system acknowledged.
        if (sid != record.sid) {
          return Status::Corruption("wal replay allocated unexpected sid");
        }
        SSR_RETURN_IF_ERROR(index->Insert(record.sid, record.set));
        ++report->wal_records_replayed;
        break;
      }
      case WalRecordType::kErase: {
        Status st = index->Erase(record.sid);
        if (st.IsNotFound()) {  // idempotent re-application
          ++report->wal_records_skipped;
          break;
        }
        SSR_RETURN_IF_ERROR(st);
        st = store->Delete(record.sid);
        if (!st.ok() && !st.IsNotFound()) return st;
        ++report->wal_records_replayed;
        break;
      }
      case WalRecordType::kMoveIn:
      case WalRecordType::kMoveOut:
        // Move records exist only in sharded deployments; a single-index
        // log carrying one is mismatched with its checkpoint.
        return Status::Corruption("rebalance move record in a single-index "
                                  "wal");
    }
    *recovered_lsn = record.lsn;
  }
  return Status::OK();
}

/// One shard's log, decoded but not yet applied. Sharded replay is
/// two-pass (decode everything, then apply) because a sid's lifetime can
/// span logs: a rebalance moves its records into another shard's log and a
/// later erase lands wherever the sid lives *now*, so per-log replay alone
/// cannot see that an old kInsert/kMoveIn is already dead.
struct DecodedShardWal {
  std::vector<WalRecord> records;
  WalReadStats stats;
};

/// Reads shard `s`'s WAL into `decoded`. Returns non-OK only for damage
/// the caller should translate into quarantine (salvage) or propagation
/// (strict). Stats are merged into the report at replay time, not here, so
/// a quarantined log contributes nothing.
Status DecodeShardWal(std::istream* wal, std::uint64_t checkpoint_lsn,
                      DecodedShardWal* decoded) {
  if (wal == nullptr) return Status::OK();
  SSR_RETURN_IF_ERROR(ReadWal(*wal, &decoded->records, &decoded->stats));
  if (decoded->stats.start_lsn > checkpoint_lsn + 1) {
    return Status::DataLoss("wal starts past the checkpoint lsn");
  }
  return Status::OK();
}

/// Replays shard `s`'s decoded WAL through the sharded index (records
/// carry global sids; routing is deterministic, so replay reproduces the
/// live placement). Rebalance records: kMoveIn — this shard is the move's
/// destination — relocates the sid via ApplyMoveIn (idempotent); kMoveOut
/// is advisory and skipped, so a sid whose kMoveIn never became durable
/// recovers fully at its source. `erased_in` maps sids to the shard whose
/// log holds their terminal kErase (global sids are never reused, so one
/// erase anywhere ends the sid for good): a kInsert/kMoveIn for such a sid
/// in a *different* shard's log is a stale copy the erase outlived — replay
/// order across logs must not resurrect it. Same-log records are exempt so
/// within-log insert-then-erase semantics are untouched.
Status ReplayShardRecords(
    std::uint32_t s, const DecodedShardWal& decoded,
    std::uint64_t checkpoint_lsn,
    const std::unordered_map<SetId, std::uint32_t>& erased_in,
    shard::ShardedSetSimilarityIndex* index, RecoveryReport* report,
    std::uint64_t* recovered_lsn) {
  *recovered_lsn = checkpoint_lsn;
  report->wal_bytes_truncated += decoded.stats.bytes_truncated;
  report->wal_tail_truncated |= decoded.stats.tail_truncated;
  for (const WalRecord& record : decoded.records) {
    if (record.lsn <= checkpoint_lsn) {
      ++report->wal_records_skipped;
      *recovered_lsn = record.lsn;
      continue;
    }
    Status st;
    switch (record.type) {
      case WalRecordType::kInsert:
      case WalRecordType::kMoveIn: {
        const auto tomb = erased_in.find(record.sid);
        if (tomb != erased_in.end() && tomb->second != s) {
          // Erased through another shard's log after this copy was written.
          st = Status::NotFound("sid erased in another shard's log");
          break;
        }
        st = record.type == WalRecordType::kInsert
                 ? index->Insert(record.sid, record.set)
                 : index->ApplyMoveIn(s, record.sid, record.peer_shard,
                                      record.set);
        break;
      }
      case WalRecordType::kErase:
        st = index->Erase(record.sid);
        break;
      case WalRecordType::kMoveOut:
        // Advisory only: the commit point is the destination's kMoveIn.
        st = Status::NotFound("advisory move-out record");
        break;
    }
    if (st.IsAlreadyExists() || st.IsNotFound()) {
      ++report->wal_records_skipped;  // idempotent / advisory / tombstoned
    } else if (!st.ok()) {
      return st;
    } else {
      ++report->wal_records_replayed;
    }
    *recovered_lsn = record.lsn;
  }
  return Status::OK();
}

}  // namespace

Status WriteIndexCheckpoint(const SetSimilarityIndex& index,
                            std::uint64_t stable_lsn, std::ostream& out) {
  obs::TraceSpan span("checkpoint_write");
  span.Tag("stable_lsn", stable_lsn);
  SnapshotWriter snapshot(out, kCheckpointMagic, kCheckpointVersion);
  {
    BinaryWriter& meta = snapshot.BeginSection("meta");
    meta.WriteU64(stable_lsn);
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  // Nested snapshots, each in its own checksummed section so the salvage
  // ladder can recover one even when the other is damaged.
  std::ostringstream store_out, index_out;
  SSR_RETURN_IF_ERROR(index.store().SaveTo(store_out));
  SSR_RETURN_IF_ERROR(index.SaveTo(index_out));
  const std::string store_bytes = std::move(store_out).str();
  const std::string index_bytes = std::move(index_out).str();
  {
    BinaryWriter& body = snapshot.BeginSection("store");
    body.WriteBytes(store_bytes.data(), store_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  {
    BinaryWriter& body = snapshot.BeginSection("index");
    body.WriteBytes(index_bytes.data(), index_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  return snapshot.Finish();
}

Status WriteIndexCheckpointFile(const SetSimilarityIndex& index,
                                std::uint64_t stable_lsn,
                                const std::string& path) {
  return AtomicSave(path, [&](std::ostream& out) {
    return WriteIndexCheckpoint(index, stable_lsn, out);
  });
}

Result<RecoveredIndex> RecoverIndex(std::istream& checkpoint,
                                    std::istream* wal,
                                    const RecoverOptions& options) {
  Stopwatch watch;
  obs::TraceSpan span("recover_index");
  RecoveredIndex out;

  SnapshotReader snapshot(checkpoint);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kCheckpointMagic, &version));
  if (version != kCheckpointVersion) {
    return Status::NotSupported("unknown checkpoint format version");
  }

  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    SSR_RETURN_IF_ERROR(meta.ReadU64(&out.checkpoint_lsn));
  }

  // The outer section statuses gate strict loads only: under salvage the
  // nested snapshots carry their own framing and CRCs, so the inner loads
  // get the payload bytes (ReadSection keeps them on damage) and run their
  // own ladder.
  std::string store_payload, index_payload;
  const Status store_st = snapshot.ReadSection("store", &store_payload);
  Status index_st = Status::OK();
  if (store_st.IsDataLoss()) {
    index_st = Status::DataLoss("checkpoint truncated before index section");
  } else {
    index_st = snapshot.ReadSection("index", &index_payload);
  }
  if (!options.snapshot.salvage) {
    SSR_RETURN_IF_ERROR(store_st);
    SSR_RETURN_IF_ERROR(index_st);
    SSR_RETURN_IF_ERROR(snapshot.VerifyFooter());
  }

  SnapshotLoadOptions inner = options.snapshot;
  inner.report = &out.report;
  {
    std::istringstream store_in(store_payload);
    auto store = SetStore::Load(store_in, options.store, inner);
    if (!store.ok()) return store.status();
    out.store = std::make_unique<SetStore>(std::move(store).value());
  }
  {
    std::istringstream index_in(index_payload);
    auto index = SetSimilarityIndex::Load(*out.store, index_in, inner);
    if (!index.ok()) return index.status();
    out.index =
        std::make_unique<SetSimilarityIndex>(std::move(index).value());
  }

  out.recovered_lsn = out.checkpoint_lsn;
  if (wal != nullptr) {
    std::vector<WalRecord> records;
    WalReadStats stats;
    SSR_RETURN_IF_ERROR(ReadWal(*wal, &records, &stats));
    if (stats.start_lsn > out.checkpoint_lsn + 1) {
      // Records between the checkpoint and this log's start are gone —
      // acknowledged writes would vanish silently if we proceeded.
      return Status::DataLoss("wal starts past the checkpoint lsn");
    }
    out.report.wal_bytes_truncated += stats.bytes_truncated;
    out.report.wal_tail_truncated |= stats.tail_truncated;
    SSR_RETURN_IF_ERROR(ReplayRecords(records, out.checkpoint_lsn,
                                      out.store.get(), out.index.get(),
                                      &out.report, &out.recovered_lsn));
  }

  out.report.wal_recovery_seconds = watch.ElapsedSeconds();
  MirrorReport(out.report);
  if (options.snapshot.report != nullptr) {
    options.snapshot.report->MergeFrom(out.report);
  }
  span.Tag("records_replayed",
           static_cast<std::uint64_t>(out.report.wal_records_replayed));
  span.Tag("recovered_lsn", out.recovered_lsn);
  return out;
}

Result<RecoveredIndex> RecoverIndexFromFiles(
    const std::string& checkpoint_path, const std::string& wal_path,
    const RecoverOptions& options) {
  std::ifstream checkpoint(checkpoint_path, std::ios::binary);
  if (!checkpoint.is_open()) {
    return Status::NotFound("checkpoint file not found: " + checkpoint_path);
  }
  std::ifstream wal(wal_path, std::ios::binary);
  std::istream* wal_stream = wal.is_open() ? &wal : nullptr;
  return RecoverIndex(checkpoint, wal_stream, options);
}

Status WriteShardedCheckpoint(const shard::ShardedSetSimilarityIndex& index,
                              const std::vector<std::uint64_t>& stable_lsns,
                              std::ostream& out) {
  if (stable_lsns.size() != index.num_shards()) {
    return Status::InvalidArgument(
        "one stable lsn per shard is required");
  }
  obs::TraceSpan span("sharded_checkpoint_write");
  SnapshotWriter snapshot(out, kShardedCheckpointMagic,
                          kShardedCheckpointVersion);
  {
    BinaryWriter& meta = snapshot.BeginSection("meta");
    meta.WriteU32(index.num_shards());
    for (std::uint64_t lsn : stable_lsns) meta.WriteU64(lsn);
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  std::ostringstream sharded_out;
  SSR_RETURN_IF_ERROR(index.SaveTo(sharded_out));
  const std::string sharded_bytes = std::move(sharded_out).str();
  {
    BinaryWriter& body = snapshot.BeginSection("sharded");
    body.WriteBytes(sharded_bytes.data(), sharded_bytes.size());
    SSR_RETURN_IF_ERROR(snapshot.EndSection());
  }
  return snapshot.Finish();
}

Result<RecoveredShardedIndex> RecoverShardedIndex(
    std::istream& checkpoint, const std::vector<std::istream*>& wals,
    const shard::ShardedIndexOptions& index_options,
    const SnapshotLoadOptions& load_options) {
  Stopwatch watch;
  obs::TraceSpan span("recover_sharded_index");
  RecoveredShardedIndex out;

  SnapshotReader snapshot(checkpoint);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(
      snapshot.ReadHeader(kShardedCheckpointMagic, &version));
  if (version != kShardedCheckpointVersion) {
    return Status::NotSupported("unknown sharded checkpoint version");
  }

  // The meta section is tiny and loads strictly: without the per-shard
  // LSNs there is no safe replay boundary for *any* shard.
  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  std::uint32_t num_shards = 0;
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    SSR_RETURN_IF_ERROR(meta.ReadU32(&num_shards));
    if (num_shards == 0 || num_shards > (1u << 20)) {
      return Status::Corruption("implausible sharded checkpoint meta");
    }
    out.checkpoint_lsns.resize(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      SSR_RETURN_IF_ERROR(meta.ReadU64(&out.checkpoint_lsns[s]));
    }
  }
  if (wals.size() != num_shards) {
    return Status::InvalidArgument("one wal stream per shard is required");
  }

  std::string sharded_payload;
  const Status sharded_st = snapshot.ReadSection("sharded", &sharded_payload);
  if (!load_options.salvage) {
    SSR_RETURN_IF_ERROR(sharded_st);
    SSR_RETURN_IF_ERROR(snapshot.VerifyFooter());
  }

  SnapshotLoadOptions inner = load_options;
  inner.report = nullptr;
  RecoveryReport inner_report;
  inner.report = &inner_report;
  {
    std::istringstream sharded_in(sharded_payload);
    auto loaded = shard::ShardedSetSimilarityIndex::Load(
        sharded_in, index_options, inner);
    if (!loaded.ok()) return loaded.status();
    out.index = std::make_unique<shard::ShardedSetSimilarityIndex>(
        std::move(loaded).value());
  }
  out.report.MergeFrom(inner_report);
  if (out.index->num_shards() != num_shards) {
    return Status::Corruption("checkpoint meta / sharded shard-count "
                              "mismatch");
  }

  // Pass 1: decode every healthy shard's log up front and index the erases
  // past each log's checkpoint cut. A sid whose records span logs (it was
  // rebalanced) can be erased through a *different* log than the one holding
  // its insert; shard-order replay alone would re-apply that stale copy
  // after the erase and resurrect the sid. Global sids are never reused, so
  // one erase anywhere is terminal — pass 2 suppresses dead cross-log
  // copies against this map.
  out.recovered_lsns.assign(num_shards, 0);
  std::vector<DecodedShardWal> decoded(num_shards);
  std::vector<char> replayable(num_shards, 1);
  std::unordered_map<SetId, std::uint32_t> erased_in;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    out.recovered_lsns[s] = out.checkpoint_lsns[s];
    if (out.index->shard_degraded(s)) {
      // The salvage load already lost this shard; its log has nowhere to
      // replay into. It stays quarantined — the router serves the rest.
      replayable[s] = 0;
      out.quarantined_shards.push_back(s);
      ++out.report.wal_shards_quarantined;
      continue;
    }
    Status st = DecodeShardWal(wals[s], out.checkpoint_lsns[s], &decoded[s]);
    if (!st.ok()) {
      if (!load_options.salvage) return st;
      // Mid-log damage (or a log that lost acknowledged records): this
      // shard's recovered state cannot be trusted past its checkpoint, so
      // quarantine it — and only it. Its erases are not trusted as
      // tombstones either.
      out.index->SetShardDegraded(s, true);
      replayable[s] = 0;
      out.quarantined_shards.push_back(s);
      ++out.report.wal_shards_quarantined;
      continue;
    }
    for (const WalRecord& record : decoded[s].records) {
      if (record.lsn > out.checkpoint_lsns[s] &&
          record.type == WalRecordType::kErase) {
        erased_in[record.sid] = s;
      }
    }
  }
  // Pass 2: replay in shard order with cross-log tombstone suppression.
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (!replayable[s]) continue;
    Status st = ReplayShardRecords(s, decoded[s], out.checkpoint_lsns[s],
                                   erased_in, out.index.get(), &out.report,
                                   &out.recovered_lsns[s]);
    if (!st.ok()) {
      if (!load_options.salvage) return st;
      out.index->SetShardDegraded(s, true);
      out.quarantined_shards.push_back(s);
      ++out.report.wal_shards_quarantined;
      out.recovered_lsns[s] = out.checkpoint_lsns[s];
    }
  }

  out.report.wal_recovery_seconds = watch.ElapsedSeconds();
  MirrorReport(out.report);
  if (load_options.report != nullptr) {
    load_options.report->MergeFrom(out.report);
  }
  span.Tag("shards_quarantined",
           static_cast<std::uint64_t>(out.quarantined_shards.size()));
  return out;
}

}  // namespace ssr
