// Simulated I/O cost accounting. The paper's response-time experiments
// (Figures 7a/7b) hinge on the random-vs-sequential access cost ratio
// rtn = ran/seq ≈ 8 (Section 6): the index performs O(l) random bucket
// accesses plus one random fetch per candidate set, while the sequential
// scan reads every page of the collection sequentially. We count both kinds
// of page access explicitly and convert to simulated time with a tunable
// cost model, making the paper's crossover analysis reproducible on any
// hardware.
//
// The counters are obs::MetricsRegistry instruments (ssr_io_*_total under
// this model's scope); IoStats is a snapshot view over them, so the
// harness, the exporters, and per-query deltas all read the same numbers.

#ifndef SSR_STORAGE_IO_COST_MODEL_H_
#define SSR_STORAGE_IO_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ssr {

/// Cost parameters. Defaults model a year-2000 disk shape: sequential page
/// read 100 microseconds, random read 8x that (the paper's measured ratio).
struct IoCostParams {
  double seq_page_micros = 100.0;
  double random_multiplier = 8.0;

  double random_page_micros() const {
    return seq_page_micros * random_multiplier;
  }
};

/// A snapshot of I/O counters; subtraction gives per-query deltas.
struct IoStats {
  std::uint64_t sequential_reads = 0;
  std::uint64_t random_reads = 0;
  std::uint64_t page_writes = 0;

  IoStats operator-(const IoStats& other) const {
    return {sequential_reads - other.sequential_reads,
            random_reads - other.random_reads,
            page_writes - other.page_writes};
  }
  IoStats& operator+=(const IoStats& other) {
    sequential_reads += other.sequential_reads;
    random_reads += other.random_reads;
    page_writes += other.page_writes;
    return *this;
  }

  /// Simulated elapsed time for these accesses under `params`. Writes are
  /// charged as sequential pages (append-mostly workload).
  double SimulatedMicros(const IoCostParams& params) const;
  double SimulatedSeconds(const IoCostParams& params) const {
    return SimulatedMicros(params) / 1e6;
  }
};

/// Mutable counter of page accesses. Storage components charge it; the
/// evaluation harness snapshots it around each query. `metrics_scope`
/// names this model's instruments in the default registry; empty allocates
/// a unique "io/N" scope.
class IoCostModel {
 public:
  explicit IoCostModel(IoCostParams params = IoCostParams(),
                       std::string metrics_scope = "");

  void ChargeSequentialRead(std::uint64_t pages = 1) {
    sequential_reads_->Add(pages);
  }
  void ChargeRandomRead(std::uint64_t pages = 1) {
    random_reads_->Add(pages);
  }
  void ChargeWrite(std::uint64_t pages = 1) { page_writes_->Add(pages); }

  /// Snapshot view over the registry instruments.
  IoStats stats() const {
    return {sequential_reads_->value(), random_reads_->value(),
            page_writes_->value()};
  }
  const IoCostParams& params() const { return params_; }
  void set_params(const IoCostParams& params) { params_ = params; }
  const std::string& metrics_scope() const { return metrics_scope_; }

  /// Resets all counters to zero.
  void Reset() {
    sequential_reads_->Reset();
    random_reads_->Reset();
    page_writes_->Reset();
  }

  double SimulatedMicros() const { return stats().SimulatedMicros(params_); }

 private:
  IoCostParams params_;
  std::string metrics_scope_;
  obs::Counter* sequential_reads_;
  obs::Counter* random_reads_;
  obs::Counter* page_writes_;
};

}  // namespace ssr

#endif  // SSR_STORAGE_IO_COST_MODEL_H_
