#include "storage/io_cost_model.h"

namespace ssr {

IoCostModel::IoCostModel(IoCostParams params, std::string metrics_scope)
    : params_(params),
      metrics_scope_(metrics_scope.empty()
                         ? obs::MetricsRegistry::Default().NewScope("io")
                         : std::move(metrics_scope)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  sequential_reads_ =
      registry.GetCounter("ssr_io_sequential_reads_total", metrics_scope_);
  random_reads_ =
      registry.GetCounter("ssr_io_random_reads_total", metrics_scope_);
  page_writes_ =
      registry.GetCounter("ssr_io_page_writes_total", metrics_scope_);
}

double IoStats::SimulatedMicros(const IoCostParams& params) const {
  return static_cast<double>(sequential_reads) * params.seq_page_micros +
         static_cast<double>(random_reads) * params.random_page_micros() +
         static_cast<double>(page_writes) * params.seq_page_micros;
}

}  // namespace ssr
