#include "storage/io_cost_model.h"

namespace ssr {

double IoStats::SimulatedMicros(const IoCostParams& params) const {
  return static_cast<double>(sequential_reads) * params.seq_page_micros +
         static_cast<double>(random_reads) * params.random_page_micros() +
         static_cast<double>(page_writes) * params.seq_page_micros;
}

}  // namespace ssr
