#include "storage/page.h"

#include <cassert>
#include <cstring>

namespace ssr {

std::uint16_t Page::ReadU16(std::size_t offset) const {
  assert(offset + 2 <= kPageSize);
  std::uint16_t v;
  std::memcpy(&v, data_.data() + offset, sizeof(v));
  return v;
}

std::uint32_t Page::ReadU32(std::size_t offset) const {
  assert(offset + 4 <= kPageSize);
  std::uint32_t v;
  std::memcpy(&v, data_.data() + offset, sizeof(v));
  return v;
}

std::uint64_t Page::ReadU64(std::size_t offset) const {
  assert(offset + 8 <= kPageSize);
  std::uint64_t v;
  std::memcpy(&v, data_.data() + offset, sizeof(v));
  return v;
}

void Page::WriteU16(std::size_t offset, std::uint16_t v) {
  assert(offset + 2 <= kPageSize);
  std::memcpy(data_.data() + offset, &v, sizeof(v));
}

void Page::WriteU32(std::size_t offset, std::uint32_t v) {
  assert(offset + 4 <= kPageSize);
  std::memcpy(data_.data() + offset, &v, sizeof(v));
}

void Page::WriteU64(std::size_t offset, std::uint64_t v) {
  assert(offset + 8 <= kPageSize);
  std::memcpy(data_.data() + offset, &v, sizeof(v));
}

void Page::ReadBytes(std::size_t offset, void* out, std::size_t len) const {
  assert(offset + len <= kPageSize);
  std::memcpy(out, data_.data() + offset, len);
}

void Page::WriteBytes(std::size_t offset, const void* src, std::size_t len) {
  assert(offset + len <= kPageSize);
  std::memcpy(data_.data() + offset, src, len);
}

}  // namespace ssr
