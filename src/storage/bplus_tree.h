// B+-tree mapping SetId -> RecordLocator: the "conventional data structure
// such as a B-tree supporting queries on set identifier" the paper uses to
// fetch candidate sets after the filter indices produce sids (Section 6).
//
// A full implementation with splits, borrow-from-sibling and merge on
// deletion, range scans, and an exhaustive structural-invariant validator
// used by the tests. Nodes live in memory; fanout is configurable so tests
// can force deep trees and exercise every rebalancing path.

#ifndef SSR_STORAGE_BPLUS_TREE_H_
#define SSR_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "storage/heap_file.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// B+-tree with SetId keys and RecordLocator values. Keys are unique.
class BPlusTree {
 public:
  /// `max_keys` is the maximum number of keys per node (leaf and internal),
  /// >= 3. The default is sized so a node fills roughly one 4 KiB page
  /// (4-byte key + 8-byte value/child per entry).
  explicit BPlusTree(std::size_t max_keys = 256);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts key -> value. Fails with AlreadyExists for duplicate keys.
  Status Insert(SetId key, const RecordLocator& value);

  /// Inserts or overwrites.
  void Upsert(SetId key, const RecordLocator& value);

  /// Finds the value of `key`, or NotFound. `nodes_visited`, if non-null,
  /// is incremented once per node on the search path (used by callers that
  /// charge I/O for a disk-resident index).
  Result<RecordLocator> Find(SetId key, std::size_t* nodes_visited = nullptr)
      const;

  /// True iff the key is present.
  bool Contains(SetId key) const { return Find(key).ok(); }

  /// Removes `key`, rebalancing as needed. Fails with NotFound if absent.
  Status Erase(SetId key);

  /// Visits all entries with lo <= key <= hi in key order. Returning false
  /// from the visitor stops the scan.
  void ScanRange(SetId lo, SetId hi,
                 const std::function<bool(SetId, const RecordLocator&)>&
                     visitor) const;

  /// Number of stored keys.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (1 = the root is a leaf). 0 only conceptually never: an
  /// empty tree has a single empty leaf root, height 1.
  std::size_t height() const;

  /// Total number of nodes.
  std::size_t node_count() const;

  /// Exhaustively checks structural invariants: key ordering, uniform leaf
  /// depth, node occupancy bounds, separator correctness, and leaf-chain
  /// consistency. Returns OK or a Corruption status describing the first
  /// violation. Intended for tests.
  Status Validate() const;

 private:
  struct Node;
  struct InsertResult;

  Node* root_ = nullptr;
  std::size_t max_keys_;
  std::size_t size_ = 0;

  void FreeTree(Node* n);
  InsertResult InsertInto(Node* n, SetId key, const RecordLocator& value,
                          bool overwrite, Status* status);
  bool EraseFrom(Node* n, SetId key);
  void RebalanceChild(Node* parent, std::size_t child_idx);
  Status ValidateNode(const Node* n, std::size_t depth, std::size_t leaf_depth,
                      bool is_root, SetId* min_key, SetId* max_key) const;
  std::size_t CountNodes(const Node* n) const;
};

}  // namespace ssr

#endif  // SSR_STORAGE_BPLUS_TREE_H_
