#include "storage/snapshot.h"

#include <cassert>

#include "util/crc32.h"

namespace ssr {

namespace {

constexpr std::string_view kFooterMagic = "SSRFOOT";

// The footer checksum covers the section CRCs as explicit little-endian
// bytes, so it is independent of host byte order.
std::uint32_t CrcOfCrcs(const std::vector<std::uint32_t>& crcs) {
  std::uint32_t crc = 0;
  for (std::uint32_t c : crcs) {
    std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(c >> 8),
        static_cast<std::uint8_t>(c >> 16), static_cast<std::uint8_t>(c >> 24)};
    crc = Crc32Update(crc, bytes, 4);
  }
  return crc;
}

}  // namespace

SnapshotWriter::SnapshotWriter(std::ostream& out, std::string_view magic,
                               std::uint32_t version)
    : out_(&out), file_writer_(out, kSnapshotWriteFaultSite) {
  file_writer_.WriteString(std::string(magic));
  file_writer_.WriteU32(version);
}

BinaryWriter& SnapshotWriter::BeginSection(std::string_view name) {
  assert(!section_writer_.has_value() && "sections cannot nest");
  assert(!finished_ && "snapshot already finished");
  section_name_ = std::string(name);
  section_buf_.str(std::string());
  section_buf_.clear();
  // The payload buffer is in-memory: faults apply at the stream boundary
  // (EndSection), after the CRC is computed — modeling on-disk corruption,
  // not in-memory corruption the checksum could never catch.
  section_writer_.emplace(section_buf_);
  return *section_writer_;
}

Status SnapshotWriter::EndSection() {
  assert(section_writer_.has_value() && "no open section");
  if (!section_writer_->ok()) {
    section_writer_.reset();
    return Status::Internal("section payload buffering failed");
  }
  section_writer_.reset();
  const std::string payload = section_buf_.str();
  const std::uint32_t crc = Crc32(payload);
  section_crcs_.push_back(crc);
  file_writer_.WriteString(section_name_);
  file_writer_.WriteU64(payload.size());
  file_writer_.WriteU32(crc);
  file_writer_.WriteBytes(payload.data(), payload.size());
  if (!file_writer_.ok()) {
    return Status::Unavailable("snapshot section write failed");
  }
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  assert(!section_writer_.has_value() && "finish with an open section");
  assert(!finished_ && "snapshot already finished");
  finished_ = true;
  file_writer_.WriteString(std::string(kFooterMagic));
  file_writer_.WriteU32(static_cast<std::uint32_t>(section_crcs_.size()));
  file_writer_.WriteU32(CrcOfCrcs(section_crcs_));
  out_->flush();
  if (!file_writer_.ok()) {
    return Status::Unavailable("snapshot footer write failed");
  }
  return Status::OK();
}

SnapshotReader::SnapshotReader(std::istream& in)
    : in_(&in), reader_(in, kSnapshotReadFaultSite) {}

Status SnapshotReader::ReadHeader(std::string_view expected_magic,
                                  std::uint32_t* version) {
  std::string magic;
  SSR_RETURN_IF_ERROR(reader_.ReadString(&magic));
  if (magic != expected_magic) {
    return Status::Corruption("bad snapshot magic");
  }
  return reader_.ReadU32(version);
}

Status SnapshotReader::ReadSection(std::string_view expected_name,
                                   std::string* payload) {
  payload->clear();
  std::string name;
  SSR_RETURN_IF_ERROR(reader_.ReadString(&name));
  if (name != expected_name) {
    return Status::Corruption("unexpected snapshot section '" + name +
                              "', wanted '" + std::string(expected_name) +
                              "'");
  }
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  SSR_RETURN_IF_ERROR(reader_.ReadU64(&size));
  SSR_RETURN_IF_ERROR(reader_.ReadU32(&crc));
  if (size > BinaryReader::kDefaultSanityLimit) {
    return Status::Corruption("section length implausible");
  }
  const std::uint64_t remaining = reader_.RemainingBytes();
  if (remaining != BinaryReader::kUnknownSize && size > remaining) {
    // The length prefix survived but the payload was cut short: typed as
    // truncation, with the surviving prefix kept for salvage paths.
    section_crcs_.push_back(crc);
    payload->resize(static_cast<std::size_t>(remaining));
    (void)reader_.ReadBytes(payload->data(), payload->size());
    return Status::DataLoss("section '" + std::string(expected_name) +
                            "' payload truncated");
  }
  section_crcs_.push_back(crc);
  payload->resize(static_cast<std::size_t>(size));
  const Status read = reader_.ReadBytes(payload->data(), payload->size());
  if (!read.ok()) {
    // Keep whatever bytes made it for salvage paths.
    payload->resize(static_cast<std::size_t>(in_->gcount()));
    return read;
  }
  if (Crc32(*payload) != crc) {
    return Status::Corruption("section '" + std::string(expected_name) +
                              "' checksum mismatch");
  }
  return Status::OK();
}

Status SnapshotReader::VerifyFooter() {
  std::string magic;
  SSR_RETURN_IF_ERROR(reader_.ReadString(&magic));
  if (magic != kFooterMagic) {
    return Status::Corruption("bad snapshot footer magic");
  }
  std::uint32_t count = 0, crc = 0;
  SSR_RETURN_IF_ERROR(reader_.ReadU32(&count));
  SSR_RETURN_IF_ERROR(reader_.ReadU32(&crc));
  if (count != section_crcs_.size()) {
    return Status::Corruption("footer section count mismatch");
  }
  if (crc != CrcOfCrcs(section_crcs_)) {
    return Status::Corruption("footer checksum mismatch");
  }
  return Status::OK();
}

}  // namespace ssr
