#include "storage/wal.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "fault/fault_injector.h"
#include "util/crc32.h"
#include "util/serialize.h"

namespace ssr {

namespace {

constexpr char kWalMagic[] = "SSRWAL";
constexpr std::size_t kWalMagicLen = 6;
constexpr std::uint32_t kWalVersion = 1;
// Magic + u32 version + u64 start_lsn.
constexpr std::size_t kWalHeaderLen = kWalMagicLen + 4 + 8;

// lsn (8) + type (1) + payload_size (4) + payload_crc (4).
constexpr std::size_t kRecordHeaderLen = 17;
// Fixed header + its CRC32.
constexpr std::size_t kRecordFixedLen = kRecordHeaderLen + 4;

// A single mutation payload can never plausibly reach this size; a larger
// length in a CRC-valid header still means the log is garbage.
constexpr std::uint64_t kPayloadSanityLimit = 1ULL << 30;  // 1 GiB

}  // namespace

WalWriter::WalWriter(std::ostream& out, std::uint64_t start_lsn,
                     WalOptions options)
    : out_(&out),
      options_(options),
      next_lsn_(start_lsn),
      synced_lsn_(start_lsn - 1) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  appends_ = registry.GetCounter("ssr_wal_appends_total");
  syncs_ = registry.GetCounter("ssr_wal_syncs_total");
  append_bytes_ = registry.GetCounter("ssr_wal_append_bytes_total");
  crash_points_ = registry.GetCounter("ssr_wal_crash_points_total");

  BinaryWriter writer(*out_, kWalAppendFaultSite);
  writer.WriteBytes(kWalMagic, kWalMagicLen);
  writer.WriteU32(kWalVersion);
  writer.WriteU64(start_lsn);
  bytes_written_ += kWalMagicLen + 4 + 8;
  if (!writer.ok()) crashed_ = true;
}

Result<std::uint64_t> WalWriter::AppendInsert(SetId sid,
                                              const ElementSet& set) {
  return Append(WalRecordType::kInsert, sid, &set);
}

Result<std::uint64_t> WalWriter::AppendErase(SetId sid) {
  return Append(WalRecordType::kErase, sid, nullptr);
}

Result<std::uint64_t> WalWriter::AppendMoveIn(SetId sid,
                                              std::uint32_t from_shard,
                                              const ElementSet& set) {
  return Append(WalRecordType::kMoveIn, sid, &set, from_shard);
}

Result<std::uint64_t> WalWriter::AppendMoveOut(SetId sid,
                                               std::uint32_t to_shard) {
  return Append(WalRecordType::kMoveOut, sid, nullptr, to_shard);
}

Result<std::uint64_t> WalWriter::Append(WalRecordType type, SetId sid,
                                        const ElementSet* set,
                                        std::uint32_t peer_shard) {
  if (crashed_) return Status::Unavailable("wal writer crashed");
  // The record-boundary crash site: a kCrashPoint fire here is the power
  // cut the crash harness schedules between two appends — the log keeps
  // exactly the records already written, this writer accepts nothing more.
  fault::FaultInjector& injector = fault::FaultInjector::Default();
  if (injector.enabled()) {
    const auto kind = injector.Check(kWalCrashFaultSite);
    if (kind.has_value() && *kind == fault::FaultKind::kCrashPoint) {
      crashed_ = true;
      crash_points_->Increment();
      return Status::Unavailable("wal crash point");
    }
  }

  // Payload first: its size and CRC live in the record header.
  std::ostringstream payload_buf;
  {
    BinaryWriter payload_writer(payload_buf);
    payload_writer.WriteU32(sid);
    if (type == WalRecordType::kMoveIn || type == WalRecordType::kMoveOut) {
      payload_writer.WriteU32(peer_shard);
    }
    if (set != nullptr) payload_writer.WriteVector(*set);
  }
  const std::string payload = payload_buf.str();

  std::ostringstream header_buf;
  {
    BinaryWriter header_writer(header_buf);
    header_writer.WriteU64(next_lsn_);
    header_writer.WriteU8(static_cast<std::uint8_t>(type));
    header_writer.WriteU32(static_cast<std::uint32_t>(payload.size()));
    header_writer.WriteU32(Crc32(payload));
  }
  const std::string header = header_buf.str();

  // One fault-checked write per field group, so torn-write schedules can
  // cut the frame at header / header-CRC / payload granularity; finer
  // byte-level tears are exercised by truncating the captured stream.
  BinaryWriter writer(*out_, kWalAppendFaultSite);
  writer.WriteBytes(header.data(), header.size());
  writer.WriteU32(Crc32(header));
  writer.WriteBytes(payload.data(), payload.size());
  if (!writer.ok()) {
    // The stream is gone (injected write error or real I/O failure); any
    // partial frame it holds is a torn tail for recovery to truncate.
    crashed_ = true;
    return Status::Unavailable("wal append failed");
  }

  const std::uint64_t lsn = next_lsn_++;
  bytes_written_ += kRecordFixedLen + payload.size();
  ++records_appended_;
  ++unsynced_appends_;
  appends_->Increment();
  append_bytes_->Add(kRecordFixedLen + payload.size());

  switch (options_.sync_policy) {
    case WalSyncPolicy::kEveryRecord:
      SSR_RETURN_IF_ERROR(Sync());
      break;
    case WalSyncPolicy::kEveryN:
      if (unsynced_appends_ >= options_.sync_every_n) {
        SSR_RETURN_IF_ERROR(Sync());
      }
      break;
    case WalSyncPolicy::kOnCheckpoint:
      break;
  }
  return lsn;
}

Status WalWriter::Sync() {
  if (crashed_) return Status::Unavailable("wal writer crashed");
  out_->flush();
  if (!out_->good()) {
    crashed_ = true;
    return Status::Unavailable("wal sync failed");
  }
  synced_lsn_ = last_lsn();
  unsynced_appends_ = 0;
  syncs_->Increment();
  return Status::OK();
}

Status ReadWal(std::istream& in, std::vector<WalRecord>* records,
               WalReadStats* stats, std::uint64_t expected_start_lsn) {
  records->clear();
  WalReadStats local;
  BinaryReader reader(in, kWalReadFaultSite);

  // A file header cut short is the torn tail of a log that crashed during
  // creation: the header is written before any Append can return, so no
  // record of this log was ever acknowledged and the log reads as empty.
  // The surviving bytes must still be a *prefix* of a real header (magic +
  // version; the start-LSN bytes are log-specific) — anything else is not
  // a crash artifact but garbage, and reads as Corruption.
  const std::uint64_t total = reader.RemainingBytes();
  if (total != BinaryReader::kUnknownSize && total < kWalHeaderLen) {
    std::string prefix(total, '\0');
    SSR_RETURN_IF_ERROR(reader.ReadBytes(prefix.data(), prefix.size()));
    std::string canonical(kWalMagic, kWalMagicLen);
    {
      std::ostringstream version_buf;
      BinaryWriter version_writer(version_buf);
      version_writer.WriteU32(kWalVersion);
      canonical += version_buf.str();
    }
    const std::size_t check = std::min(prefix.size(), canonical.size());
    if (std::memcmp(prefix.data(), canonical.data(), check) != 0) {
      return Status::Corruption("bad wal magic");
    }
    local.bytes_truncated = total;
    local.tail_truncated = true;
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  char magic[kWalMagicLen] = {};
  Status st = reader.ReadBytes(magic, kWalMagicLen);
  if (st.IsDataLoss()) {  // non-seekable stream: EOF inside the header
    local.tail_truncated = true;
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  SSR_RETURN_IF_ERROR(st);
  if (std::memcmp(magic, kWalMagic, kWalMagicLen) != 0) {
    return Status::Corruption("bad wal magic");
  }
  std::uint32_t version = 0;
  st = reader.ReadU32(&version);
  if (st.IsDataLoss()) {
    local.tail_truncated = true;
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  SSR_RETURN_IF_ERROR(st);
  if (version != kWalVersion) {
    return Status::NotSupported("unknown wal format version");
  }
  st = reader.ReadU64(&local.start_lsn);
  if (st.IsDataLoss()) {
    local.tail_truncated = true;
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }
  SSR_RETURN_IF_ERROR(st);
  if (expected_start_lsn != 0 && local.start_lsn != expected_start_lsn) {
    return Status::Corruption("wal start lsn does not match checkpoint");
  }

  for (;;) {
    const std::uint64_t remaining = reader.RemainingBytes();
    if (remaining == 0) break;  // clean end-of-log at a record boundary
    if (remaining != BinaryReader::kUnknownSize &&
        remaining < kRecordFixedLen) {
      // The crash cut the last frame inside its fixed header: drop it.
      local.bytes_truncated += remaining;
      local.tail_truncated = true;
      break;
    }

    char header[kRecordHeaderLen] = {};
    st = reader.ReadBytes(header, kRecordHeaderLen);
    if (st.IsDataLoss()) {  // non-seekable stream: EOF mid-header
      local.tail_truncated = true;
      break;
    }
    SSR_RETURN_IF_ERROR(st);
    std::uint32_t header_crc = 0;
    st = reader.ReadU32(&header_crc);
    if (st.IsDataLoss()) {
      local.tail_truncated = true;
      break;
    }
    SSR_RETURN_IF_ERROR(st);
    // A fully present header that fails its CRC is mid-log damage: a torn
    // append leaves a byte *prefix* (caught by the EOF checks above),
    // never a full-length frame with flipped bits.
    if (Crc32(header, kRecordHeaderLen) != header_crc) {
      return Status::Corruption("wal record header checksum mismatch");
    }

    WalRecord record;
    std::uint32_t payload_size = 0;
    std::uint32_t payload_crc = 0;
    std::uint8_t type_byte = 0;
    {
      std::istringstream header_stream(
          std::string(header, kRecordHeaderLen));
      BinaryReader header_reader(header_stream);
      SSR_RETURN_IF_ERROR(header_reader.ReadU64(&record.lsn));
      SSR_RETURN_IF_ERROR(header_reader.ReadU8(&type_byte));
      SSR_RETURN_IF_ERROR(header_reader.ReadU32(&payload_size));
      SSR_RETURN_IF_ERROR(header_reader.ReadU32(&payload_crc));
    }
    if (type_byte < static_cast<std::uint8_t>(WalRecordType::kInsert) ||
        type_byte > static_cast<std::uint8_t>(WalRecordType::kMoveOut)) {
      return Status::Corruption("unknown wal record type");
    }
    record.type = static_cast<WalRecordType>(type_byte);
    if (record.lsn != local.start_lsn + local.records_read) {
      return Status::Corruption("wal lsn out of sequence");
    }
    if (payload_size > kPayloadSanityLimit) {
      return Status::Corruption("wal payload length exceeds sanity limit");
    }

    const std::uint64_t after_header = reader.RemainingBytes();
    if (after_header != BinaryReader::kUnknownSize &&
        after_header < payload_size) {
      // Header intact, payload cut short: still the torn tail.
      local.bytes_truncated += kRecordFixedLen + after_header;
      local.tail_truncated = true;
      break;
    }
    std::string payload(payload_size, '\0');
    st = reader.ReadBytes(payload.data(), payload.size());
    if (st.IsDataLoss()) {
      local.tail_truncated = true;
      break;
    }
    SSR_RETURN_IF_ERROR(st);
    if (Crc32(payload) != payload_crc) {
      return Status::Corruption("wal record payload checksum mismatch");
    }

    {
      std::istringstream payload_stream{std::move(payload)};
      BinaryReader payload_reader(payload_stream);
      SSR_RETURN_IF_ERROR(payload_reader.ReadU32(&record.sid));
      if (record.type == WalRecordType::kMoveIn ||
          record.type == WalRecordType::kMoveOut) {
        SSR_RETURN_IF_ERROR(payload_reader.ReadU32(&record.peer_shard));
      }
      if (record.type == WalRecordType::kInsert ||
          record.type == WalRecordType::kMoveIn) {
        SSR_RETURN_IF_ERROR(payload_reader.ReadVector(&record.set));
      }
    }

    local.last_lsn = record.lsn;
    ++local.records_read;
    records->push_back(std::move(record));
  }

  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace ssr
