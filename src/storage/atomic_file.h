// Atomic file replacement for snapshot saves: write the new bytes to
// `<path>.tmp`, fsync them to stable storage, then rename(2) over the
// target. The rename is atomic on POSIX, so at every instant `path` holds
// either the complete old snapshot or the complete new one — a crash (or
// injected fault) mid-save can clobber at most the temp file, never the
// last good snapshot. Checkpointing (storage/recovery.h) writes every
// durable snapshot through this.
//
// The "file/atomic_save" fault site is consulted once per phase (write,
// sync, rename): kWriteError/kCrashPoint abort the save at that phase,
// leaving the target untouched — the mid-save-kill test pins that the old
// snapshot still loads.

#ifndef SSR_STORAGE_ATOMIC_FILE_H_
#define SSR_STORAGE_ATOMIC_FILE_H_

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ssr {

/// Fault site for the atomic-save phases.
inline constexpr std::string_view kAtomicSaveFaultSite = "file/atomic_save";

/// Atomically replaces `path` with whatever `write_fn` streams out.
/// `write_fn` writes the complete new contents to the ostream it is given
/// (a SaveTo, typically); any failure it returns — or any stream/IO/fault
/// failure around it — aborts the save with the target untouched (a stale
/// `<path>.tmp` may remain and is overwritten by the next attempt).
Status AtomicSave(const std::string& path,
                  const std::function<Status(std::ostream&)>& write_fn);

}  // namespace ssr

#endif  // SSR_STORAGE_ATOMIC_FILE_H_
