#include "storage/heap_file.h"

#include <cstring>

#include "util/serialize.h"

namespace ssr {

std::size_t HeapFile::MaxInlineRecordBytes() {
  // Header + at least one slot directory entry must fit alongside.
  return kPageSize - kHeaderBytes - 2;
}

Page& HeapFile::NewPage() {
  pages_.emplace_back();
  is_span_page_.push_back(false);
  return pages_.back();
}

PageId HeapFile::CurrentSlottedPage(std::size_t need_bytes) {
  if (open_slotted_page_ != kInvalidPageId) {
    const Page& p = pages_[open_slotted_page_];
    const std::uint16_t slot_count = p.ReadU16(0);
    const std::uint16_t free_offset = p.ReadU16(2);
    const std::size_t dir_bytes = 2 * (static_cast<std::size_t>(slot_count) + 1);
    if (free_offset + need_bytes + dir_bytes <= kPageSize) {
      return open_slotted_page_;
    }
  }
  Page& p = NewPage();
  p.WriteU16(0, 0);
  p.WriteU16(2, kHeaderBytes);
  open_slotted_page_ = static_cast<PageId>(pages_.size() - 1);
  return open_slotted_page_;
}

Result<RecordLocator> HeapFile::Append(SetId sid, const ElementSet& set) {
  const std::size_t bytes = RecordBytes(set.size());
  RecordLocator loc;
  if (bytes <= MaxInlineRecordBytes()) {
    const PageId pid = CurrentSlottedPage(bytes);
    Page& p = pages_[pid];
    const std::uint16_t slot = p.ReadU16(0);
    const std::uint16_t offset = p.ReadU16(2);
    p.WriteU32(offset, sid);
    p.WriteU32(offset + 4, static_cast<std::uint32_t>(set.size()));
    for (std::size_t i = 0; i < set.size(); ++i) {
      p.WriteU64(offset + 8 + 8 * i, set[i]);
    }
    p.WriteU16(kPageSize - 2 * (static_cast<std::size_t>(slot) + 1), offset);
    p.WriteU16(0, static_cast<std::uint16_t>(slot + 1));
    p.WriteU16(2, static_cast<std::uint16_t>(offset + bytes));
    loc = RecordLocator{pid, slot};
  } else {
    // Spanned record: serialize, then copy across dedicated pages.
    std::vector<std::uint8_t> buf(bytes);
    std::uint32_t sid32 = sid;
    std::uint32_t count32 = static_cast<std::uint32_t>(set.size());
    std::memcpy(buf.data(), &sid32, 4);
    std::memcpy(buf.data() + 4, &count32, 4);
    std::memcpy(buf.data() + 8, set.data(), 8 * set.size());
    const PageId first = static_cast<PageId>(pages_.size());
    std::size_t written = 0;
    while (written < bytes) {
      Page& p = NewPage();
      is_span_page_.back() = true;
      const std::size_t chunk =
          bytes - written < kPageSize ? bytes - written : kPageSize;
      p.WriteBytes(0, buf.data() + written, chunk);
      written += chunk;
    }
    // A span interrupts the open slotted page only logically; it can still
    // accept records (pages need not be physically contiguous with it).
    loc = RecordLocator{first, RecordLocator::kSpannedSlot};
  }
  ++num_records_;
  record_dir_.push_back(loc);
  return loc;
}

Result<ElementSet> HeapFile::Read(const RecordLocator& locator, SetId* sid_out,
                                  std::vector<PageId>* pages_touched) const {
  if (!locator.valid() || locator.page >= pages_.size()) {
    return Status::InvalidArgument("record locator out of range");
  }
  if (!locator.is_spanned()) {
    const Page& p = pages_[locator.page];
    if (is_span_page_[locator.page]) {
      return Status::Corruption("slotted locator points to span page");
    }
    const std::uint16_t slot_count = p.ReadU16(0);
    if (locator.slot >= slot_count) {
      return Status::NotFound("slot out of range");
    }
    if (pages_touched != nullptr) pages_touched->push_back(locator.page);
    const std::uint16_t offset =
        p.ReadU16(kPageSize - 2 * (static_cast<std::size_t>(locator.slot) + 1));
    const SetId sid = p.ReadU32(offset);
    const std::uint32_t count = p.ReadU32(offset + 4);
    if (offset + RecordBytes(count) > kPageSize) {
      return Status::Corruption("record overruns page");
    }
    ElementSet set(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      set[i] = p.ReadU64(offset + 8 + 8 * i);
    }
    if (sid_out != nullptr) *sid_out = sid;
    return set;
  }
  // Spanned record.
  if (!is_span_page_[locator.page]) {
    return Status::Corruption("spanned locator points to slotted page");
  }
  const Page& first = pages_[locator.page];
  const SetId sid = first.ReadU32(0);
  const std::uint32_t count = first.ReadU32(4);
  const std::size_t bytes = RecordBytes(count);
  const std::size_t num_span_pages = (bytes + kPageSize - 1) / kPageSize;
  if (locator.page + num_span_pages > pages_.size()) {
    return Status::Corruption("spanned record overruns file");
  }
  std::vector<std::uint8_t> buf(bytes);
  std::size_t read = 0;
  for (std::size_t i = 0; i < num_span_pages; ++i) {
    const PageId pid = locator.page + static_cast<PageId>(i);
    if (pages_touched != nullptr) pages_touched->push_back(pid);
    const std::size_t chunk =
        bytes - read < kPageSize ? bytes - read : kPageSize;
    pages_[pid].ReadBytes(0, buf.data() + read, chunk);
    read += chunk;
  }
  ElementSet set(count);
  std::memcpy(set.data(), buf.data() + 8, 8 * count);
  if (sid_out != nullptr) *sid_out = sid;
  return set;
}

namespace {
constexpr std::uint32_t kHeapFileVersion = 1;
}  // namespace

Status HeapFile::SaveTo(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.WriteString("SSRHEAP");
  writer.WriteU32(kHeapFileVersion);
  writer.WriteU64(pages_.size());
  for (const Page& p : pages_) {
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(kPageSize));
  }
  std::vector<std::uint8_t> span_bytes(is_span_page_.size());
  for (std::size_t i = 0; i < is_span_page_.size(); ++i) {
    span_bytes[i] = is_span_page_[i] ? 1 : 0;
  }
  writer.WriteVector(span_bytes);
  writer.WriteVector(record_dir_);
  writer.WriteU32(open_slotted_page_);
  writer.WriteU64(num_records_);
  if (!writer.ok()) return Status::Internal("heap file write failed");
  return Status::OK();
}

Result<HeapFile> HeapFile::LoadFrom(std::istream& in) {
  BinaryReader reader(in);
  std::string magic;
  SSR_RETURN_IF_ERROR(reader.ReadString(&magic));
  if (magic != "SSRHEAP") return Status::Corruption("bad heap file magic");
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kHeapFileVersion) {
    return Status::NotSupported("unknown heap file version");
  }
  HeapFile file;
  std::uint64_t num_pages = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU64(&num_pages));
  file.pages_.resize(num_pages);
  for (Page& p : file.pages_) {
    in.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(kPageSize));
    if (!in.good()) return Status::Corruption("truncated heap pages");
  }
  std::vector<std::uint8_t> span_bytes;
  SSR_RETURN_IF_ERROR(reader.ReadVector(&span_bytes));
  if (span_bytes.size() != file.pages_.size()) {
    return Status::Corruption("span bitmap size mismatch");
  }
  file.is_span_page_.assign(span_bytes.begin(), span_bytes.end());
  SSR_RETURN_IF_ERROR(reader.ReadVector(&file.record_dir_));
  std::uint32_t open_page = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU32(&open_page));
  file.open_slotted_page_ = open_page;
  std::uint64_t num_records = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU64(&num_records));
  file.num_records_ = static_cast<std::size_t>(num_records);
  return file;
}

void HeapFile::Scan(const std::function<bool(SetId, const ElementSet&,
                                             const RecordLocator&)>& visitor)
    const {
  for (const RecordLocator& loc : record_dir_) {
    SetId sid = kInvalidSetId;
    auto result = Read(loc, &sid, nullptr);
    if (!result.ok()) continue;  // skip corrupt entries defensively
    if (!visitor(sid, result.value(), loc)) return;
  }
}

}  // namespace ssr
