#include "storage/heap_file.h"

#include <cstring>
#include <sstream>

#include "util/crc32.h"
#include "util/serialize.h"

namespace ssr {

std::size_t HeapFile::MaxInlineRecordBytes() {
  // Header + at least one slot directory entry must fit alongside.
  return kPageSize - kHeaderBytes - 2;
}

Page& HeapFile::NewPage() {
  pages_.emplace_back();
  is_span_page_.push_back(false);
  return pages_.back();
}

PageId HeapFile::CurrentSlottedPage(std::size_t need_bytes) {
  if (open_slotted_page_ != kInvalidPageId &&
      !is_quarantined(open_slotted_page_)) {
    const Page& p = pages_[open_slotted_page_];
    const std::uint16_t slot_count = p.ReadU16(0);
    const std::uint16_t free_offset = p.ReadU16(2);
    const std::size_t dir_bytes = 2 * (static_cast<std::size_t>(slot_count) + 1);
    // free_offset < kHeaderBytes means the page header itself is damaged
    // (e.g. a zeroed quarantined page): never append into it.
    if (free_offset >= kHeaderBytes &&
        free_offset + need_bytes + dir_bytes <= kPageSize) {
      return open_slotted_page_;
    }
  }
  Page& p = NewPage();
  p.WriteU16(0, 0);
  p.WriteU16(2, kHeaderBytes);
  open_slotted_page_ = static_cast<PageId>(pages_.size() - 1);
  return open_slotted_page_;
}

Result<RecordLocator> HeapFile::Append(SetId sid, const ElementSet& set) {
  const std::size_t bytes = RecordBytes(set.size());
  RecordLocator loc;
  if (bytes <= MaxInlineRecordBytes()) {
    const PageId pid = CurrentSlottedPage(bytes);
    Page& p = pages_[pid];
    const std::uint16_t slot = p.ReadU16(0);
    const std::uint16_t offset = p.ReadU16(2);
    p.WriteU32(offset, sid);
    p.WriteU32(offset + 4, static_cast<std::uint32_t>(set.size()));
    for (std::size_t i = 0; i < set.size(); ++i) {
      p.WriteU64(offset + 8 + 8 * i, set[i]);
    }
    p.WriteU16(kPageSize - 2 * (static_cast<std::size_t>(slot) + 1), offset);
    p.WriteU16(0, static_cast<std::uint16_t>(slot + 1));
    p.WriteU16(2, static_cast<std::uint16_t>(offset + bytes));
    loc = RecordLocator{pid, slot};
  } else {
    // Spanned record: serialize, then copy across dedicated pages.
    std::vector<std::uint8_t> buf(bytes);
    std::uint32_t sid32 = sid;
    std::uint32_t count32 = static_cast<std::uint32_t>(set.size());
    std::memcpy(buf.data(), &sid32, 4);
    std::memcpy(buf.data() + 4, &count32, 4);
    std::memcpy(buf.data() + 8, set.data(), 8 * set.size());
    const PageId first = static_cast<PageId>(pages_.size());
    std::size_t written = 0;
    while (written < bytes) {
      Page& p = NewPage();
      is_span_page_.back() = true;
      const std::size_t chunk =
          bytes - written < kPageSize ? bytes - written : kPageSize;
      p.WriteBytes(0, buf.data() + written, chunk);
      written += chunk;
    }
    // A span interrupts the open slotted page only logically; it can still
    // accept records (pages need not be physically contiguous with it).
    loc = RecordLocator{first, RecordLocator::kSpannedSlot};
  }
  ++num_records_;
  record_dir_.push_back(loc);
  return loc;
}

Result<ElementSet> HeapFile::Read(const RecordLocator& locator, SetId* sid_out,
                                  std::vector<PageId>* pages_touched) const {
  if (!locator.valid() || locator.page >= pages_.size()) {
    return Status::InvalidArgument("record locator out of range");
  }
  if (!locator.is_spanned()) {
    if (is_quarantined(locator.page)) {
      return Status::DataLoss("record page quarantined by recovery");
    }
    const Page& p = pages_[locator.page];
    if (is_span_page_[locator.page]) {
      return Status::Corruption("slotted locator points to span page");
    }
    const std::uint16_t slot_count = p.ReadU16(0);
    if (locator.slot >= slot_count) {
      return Status::NotFound("slot out of range");
    }
    if (pages_touched != nullptr) pages_touched->push_back(locator.page);
    const std::uint16_t offset =
        p.ReadU16(kPageSize - 2 * (static_cast<std::size_t>(locator.slot) + 1));
    const SetId sid = p.ReadU32(offset);
    const std::uint32_t count = p.ReadU32(offset + 4);
    if (offset + RecordBytes(count) > kPageSize) {
      return Status::Corruption("record overruns page");
    }
    ElementSet set(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      set[i] = p.ReadU64(offset + 8 + 8 * i);
    }
    if (sid_out != nullptr) *sid_out = sid;
    return set;
  }
  // Spanned record.
  if (is_quarantined(locator.page)) {
    return Status::DataLoss("record page quarantined by recovery");
  }
  if (!is_span_page_[locator.page]) {
    return Status::Corruption("spanned locator points to slotted page");
  }
  const Page& first = pages_[locator.page];
  const SetId sid = first.ReadU32(0);
  const std::uint32_t count = first.ReadU32(4);
  const std::size_t bytes = RecordBytes(count);
  const std::size_t num_span_pages = (bytes + kPageSize - 1) / kPageSize;
  if (locator.page + num_span_pages > pages_.size()) {
    return Status::Corruption("spanned record overruns file");
  }
  for (std::size_t i = 0; i < num_span_pages; ++i) {
    if (is_quarantined(locator.page + static_cast<PageId>(i))) {
      return Status::DataLoss("spanned record crosses quarantined page");
    }
  }
  std::vector<std::uint8_t> buf(bytes);
  std::size_t read = 0;
  for (std::size_t i = 0; i < num_span_pages; ++i) {
    const PageId pid = locator.page + static_cast<PageId>(i);
    if (pages_touched != nullptr) pages_touched->push_back(pid);
    const std::size_t chunk =
        bytes - read < kPageSize ? bytes - read : kPageSize;
    pages_[pid].ReadBytes(0, buf.data() + read, chunk);
    read += chunk;
  }
  ElementSet set(count);
  std::memcpy(set.data(), buf.data() + 8, 8 * count);
  if (sid_out != nullptr) *sid_out = sid;
  return set;
}

namespace {

constexpr std::string_view kHeapFileMagic = "SSRHEAP";
constexpr std::uint32_t kHeapFileVersion = 2;
// A "pages" section entry: u32 CRC32 of the image, then the 4 KiB image.
constexpr std::size_t kPageEntryBytes = 4 + kPageSize;

std::uint32_t ReadLeU32(const char* p) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

Status HeapFile::SaveTo(std::ostream& out) const {
  SnapshotWriter snapshot(out, kHeapFileMagic, kHeapFileVersion);

  BinaryWriter& meta = snapshot.BeginSection("meta");
  meta.WriteU64(pages_.size());
  meta.WriteU32(open_slotted_page_);
  meta.WriteU64(num_records_);
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  BinaryWriter& spanmap = snapshot.BeginSection("spanmap");
  std::vector<std::uint8_t> span_bytes(is_span_page_.size());
  for (std::size_t i = 0; i < is_span_page_.size(); ++i) {
    span_bytes[i] = is_span_page_[i] ? 1 : 0;
  }
  spanmap.WriteVector(span_bytes);
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  BinaryWriter& recdir = snapshot.BeginSection("recdir");
  recdir.WriteVector(record_dir_);
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  // Pages last, each prefixed by its own CRC32: damage here leaves the
  // metadata sections intact and lets salvage keep every undamaged page.
  BinaryWriter& pages = snapshot.BeginSection("pages");
  for (const Page& p : pages_) {
    pages.WriteU32(Crc32(p.data(), kPageSize));
    pages.WriteBytes(p.data(), kPageSize);
  }
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  return snapshot.Finish();
}

Result<HeapFile> HeapFile::LoadFrom(std::istream& in,
                                    const SnapshotLoadOptions& options) {
  SnapshotReader snapshot(in);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kHeapFileMagic, &version));
  if (version != kHeapFileVersion) {
    return Status::NotSupported("unknown heap file version");
  }

  HeapFile file;
  std::string payload;

  // Metadata sections are always strict: without them there is nothing to
  // salvage against.
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  std::uint64_t num_pages = 0;
  std::uint32_t open_page = kInvalidPageId;
  std::uint64_t num_records = 0;
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    SSR_RETURN_IF_ERROR(meta.ReadU64(&num_pages));
    SSR_RETURN_IF_ERROR(meta.ReadU32(&open_page));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&num_records));
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("spanmap", &payload));
  std::vector<std::uint8_t> span_bytes;
  {
    std::istringstream span_in(payload);
    BinaryReader span(span_in);
    SSR_RETURN_IF_ERROR(span.ReadVector(&span_bytes));
  }
  if (span_bytes.size() != num_pages) {
    return Status::Corruption("span bitmap size mismatch");
  }
  file.is_span_page_.assign(span_bytes.begin(), span_bytes.end());

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("recdir", &payload));
  {
    std::istringstream dir_in(payload);
    BinaryReader dir(dir_in);
    SSR_RETURN_IF_ERROR(dir.ReadVector(&file.record_dir_));
  }
  if (file.record_dir_.size() != num_records) {
    return Status::Corruption("record directory size mismatch");
  }

  // Pages section: strict mode propagates the first integrity error;
  // salvage walks whatever bytes arrived and quarantines per page.
  const Status pages_status = snapshot.ReadSection("pages", &payload);
  const bool pages_damaged = !pages_status.ok();
  if (pages_damaged && !(options.salvage && (pages_status.IsDataLoss() ||
                                             pages_status.IsCorruption()))) {
    return pages_status;
  }
  if (!pages_damaged && payload.size() != num_pages * kPageEntryBytes) {
    return Status::Corruption("pages section size mismatch");
  }
  file.pages_.resize(static_cast<std::size_t>(num_pages));
  bool any_quarantined = false;
  for (std::size_t i = 0; i < num_pages; ++i) {
    const std::size_t off = i * kPageEntryBytes;
    bool intact = off + kPageEntryBytes <= payload.size();
    if (intact) {
      const std::uint32_t want = ReadLeU32(payload.data() + off);
      intact = Crc32(payload.data() + off + 4, kPageSize) == want;
    }
    if (intact) {
      file.pages_[i].WriteBytes(0, payload.data() + off + 4, kPageSize);
    } else {
      // Salvage only (strict mode returned above): zero and quarantine.
      if (file.quarantined_.empty()) file.quarantined_.resize(num_pages);
      file.quarantined_[i] = true;
      ++file.num_quarantined_;
      any_quarantined = true;
    }
  }

  const Status footer_status = snapshot.VerifyFooter();
  if (!footer_status.ok() && !options.salvage) return footer_status;

  file.open_slotted_page_ = open_page;
  file.num_records_ = static_cast<std::size_t>(num_records);
  // Never resume appends into a page whose contents were lost.
  if (file.open_slotted_page_ != kInvalidPageId &&
      (file.open_slotted_page_ >= file.pages_.size() ||
       file.is_quarantined(file.open_slotted_page_))) {
    file.open_slotted_page_ = kInvalidPageId;
  }

  if (options.report != nullptr) {
    RecoveryReport r;
    r.pages_total = file.pages_.size();
    r.pages_quarantined = file.num_quarantined_;
    r.records_total = file.record_dir_.size();
    if (any_quarantined) {
      for (const RecordLocator& loc : file.record_dir_) {
        if (!loc.valid() || loc.page >= file.pages_.size()) continue;
        if (file.Read(loc, nullptr, nullptr).ok()) continue;
        ++r.records_quarantined;
      }
    }
    r.salvaged = pages_damaged || !footer_status.ok();
    options.report->MergeFrom(r);
  }
  return file;
}

void HeapFile::Scan(const std::function<bool(SetId, const ElementSet&,
                                             const RecordLocator&)>& visitor)
    const {
  for (const RecordLocator& loc : record_dir_) {
    SetId sid = kInvalidSetId;
    auto result = Read(loc, &sid, nullptr);
    if (!result.ok()) continue;  // skip corrupt entries defensively
    if (!visitor(sid, result.value(), loc)) return;
  }
}

}  // namespace ssr
