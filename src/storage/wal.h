// Append-only write-ahead log for index mutations (the durability half of
// the ROADMAP's "live mutability" item). A WAL file is:
//
//   header:  "SSRWAL" magic, u32 format version, u64 start_lsn
//   records: [u64 lsn, u8 type, u32 payload_size, u32 payload_crc,
//             u32 header_crc, payload]*
//
// LSNs are dense and ascending from start_lsn; the header CRC covers the
// fixed fields, the payload CRC covers the payload bytes, so a reader can
// trust the frame geometry before allocating and can classify damage:
//
//   - EOF inside a frame (header, CRCs, or payload cut short)
//       -> a *torn tail*: the crash interrupted the last append. The torn
//          bytes are dropped, the log ends cleanly at the previous record,
//          and replay reports bytes_truncated — never an error. Crashes
//          produce byte *prefixes*, so a tear can only be at the tail.
//   - a fully present frame whose CRC or LSN sequence is wrong
//       -> Status::Corruption (mid-log damage: bit rot, not a crash).
//          Acknowledged writes may be unrecoverable; never replay past it.
//   - a file header cut short -> the log crashed during creation, before
//          any Append could return: it reads as an *empty* log (torn tail),
//          provided the surviving bytes are a prefix of a real header.
//   - a wrong magic -> Corruption; an unknown version -> NotSupported.
//
// All bytes cross the stream through BinaryWriter/BinaryReader with the
// "wal/append" / "wal/read" fault sites (torn writes, bit flips, I/O
// errors); the separate record-granular "wal/crash" site, armed with
// FaultKind::kCrashPoint, kills the writer *between* records — the crash
// harness uses it to stop the write path at every record boundary, and
// byte-granular tears are produced by truncating the captured log.
//
// Durability protocol (storage/recovery.h builds on this): Append returns
// the record's LSN once the bytes reached the stream; the mutation is
// *acknowledged* once its LSN is synced (synced_lsn() >= lsn), which the
// fsync policy controls — kEveryRecord syncs in Append, kEveryN amortizes,
// kOnCheckpoint leaves syncing to the checkpointer. Recovery guarantees
// every acknowledged mutation survives; unacknowledged tail records may
// survive (they were appended, just not yet synced), which is harmless:
// re-applying a mutation the caller never acknowledged is idempotent.

#ifndef SSR_STORAGE_WAL_H_
#define SSR_STORAGE_WAL_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/result.h"
#include "util/status.h"
#include "util/types.h"

namespace ssr {

/// Fault sites for WAL byte traffic and record-boundary crash points.
inline constexpr std::string_view kWalAppendFaultSite = "wal/append";
inline constexpr std::string_view kWalReadFaultSite = "wal/read";
inline constexpr std::string_view kWalCrashFaultSite = "wal/crash";

/// First LSN of a fresh (never-checkpointed) log.
inline constexpr std::uint64_t kWalFirstLsn = 1;

/// When appended records are made durable (synced). With an in-memory
/// stream (tests, the crash harness) "sync" is a flush; a file-backed
/// deployment maps it to fsync.
enum class WalSyncPolicy {
  kEveryRecord,   // sync inside every Append (the durable default)
  kEveryN,        // sync every sync_every_n appends (group commit)
  kOnCheckpoint,  // never sync in Append; the checkpointer calls Sync()
};

struct WalOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;
  std::uint64_t sync_every_n = 32;  // for kEveryN
};

/// Logical mutation kinds. Values are the on-disk u8 tags — append-only:
/// never renumber, only add.
enum class WalRecordType : std::uint8_t {
  kInsert = 1,  // payload: u32 sid, u64-length-prefixed element vector
  kErase = 2,   // payload: u32 sid
  // Online-rebalance move records (sharded indexes only; see
  // shard/sharded_index.h). A move writes kMoveOut to the *source* shard's
  // log (advisory: the sid is leaving toward peer_shard) and then kMoveIn
  // to the *destination* shard's log — the commit point. Crash recovery
  // applies kMoveIn idempotently and ignores kMoveOut, so a sid recovers
  // fully old (no kMoveIn durable) or fully new (kMoveIn durable), never
  // split.
  kMoveIn = 3,   // payload: u32 sid, u32 peer_shard (source), element vector
  kMoveOut = 4,  // payload: u32 sid, u32 peer_shard (destination)
};

/// One decoded mutation record.
struct WalRecord {
  std::uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  SetId sid = kInvalidSetId;
  std::uint32_t peer_shard = 0;  // kMoveIn: source; kMoveOut: destination
  ElementSet set;  // empty for kErase/kMoveOut
};

/// What ReadWal consumed and what it had to drop.
struct WalReadStats {
  std::uint64_t start_lsn = 0;       // from the file header
  std::uint64_t last_lsn = 0;        // 0 when the log holds no records
  std::uint64_t records_read = 0;
  std::uint64_t bytes_truncated = 0;  // torn-tail bytes dropped
  bool tail_truncated = false;
};

/// Appends mutation records to an open stream. Single-writer: the owning
/// index serializes mutations, so the WAL inherits that discipline and
/// needs no locking. After a crash point fires ("wal/crash" armed with
/// kCrashPoint) or the stream fails, the writer is dead: every further
/// Append/Sync returns Unavailable and no more bytes are written —
/// exactly a machine that lost power mid-run.
class WalWriter {
 public:
  /// Writes the file header immediately. `start_lsn` is the first LSN this
  /// log will assign (checkpoint_lsn + 1 after a truncation; kWalFirstLsn
  /// for a fresh log).
  WalWriter(std::ostream& out, std::uint64_t start_lsn,
            WalOptions options = WalOptions());

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one mutation; returns its LSN. The record is durable once
  /// synced_lsn() covers it (policy-dependent).
  Result<std::uint64_t> AppendInsert(SetId sid, const ElementSet& set);
  Result<std::uint64_t> AppendErase(SetId sid);

  /// Online-rebalance move records. AppendMoveIn goes to the destination
  /// shard's log and is the move's commit point; AppendMoveOut goes to the
  /// source shard's log before it (advisory). See WalRecordType.
  Result<std::uint64_t> AppendMoveIn(SetId sid, std::uint32_t from_shard,
                                     const ElementSet& set);
  Result<std::uint64_t> AppendMoveOut(SetId sid, std::uint32_t to_shard);

  /// Flushes appended records to stable storage (stream flush here; fsync
  /// in a file-backed deployment). Advances synced_lsn to last_lsn.
  Status Sync();

  /// LSN of the most recent append (start_lsn - 1 when none yet).
  std::uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// Highest LSN known durable under the sync policy.
  std::uint64_t synced_lsn() const { return synced_lsn_; }
  /// Total bytes this writer emitted (header + records).
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t records_appended() const { return records_appended_; }
  /// True once a crash point or stream failure killed the writer.
  bool crashed() const { return crashed_; }

 private:
  Result<std::uint64_t> Append(WalRecordType type, SetId sid,
                               const ElementSet* set,
                               std::uint32_t peer_shard = 0);

  std::ostream* out_;
  WalOptions options_;
  std::uint64_t next_lsn_;
  std::uint64_t synced_lsn_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t unsynced_appends_ = 0;
  bool crashed_ = false;
  obs::Counter* appends_;        // ssr_wal_appends_total
  obs::Counter* syncs_;          // ssr_wal_syncs_total
  obs::Counter* append_bytes_;   // ssr_wal_append_bytes_total
  obs::Counter* crash_points_;   // ssr_wal_crash_points_total
};

/// Reads a whole WAL stream: verifies the header, decodes records in LSN
/// order, truncates a torn tail cleanly (see the file comment for the
/// tail-vs-mid-log rules), and surfaces mid-log damage as a typed error.
/// On success `*records` holds every intact record and `*stats` (optional)
/// the read accounting. `expected_start_lsn` (0 = accept any) pins the
/// header's start LSN — recovery passes checkpoint_lsn + 1 so a
/// mismatched snapshot/log pair is caught as Corruption.
Status ReadWal(std::istream& in, std::vector<WalRecord>* records,
               WalReadStats* stats = nullptr,
               std::uint64_t expected_start_lsn = 0);

}  // namespace ssr

#endif  // SSR_STORAGE_WAL_H_
