#include "workload/datasets.h"

#include <cmath>
#include <string>

namespace ssr {

namespace {

std::size_t Scaled(std::size_t base, double scale, std::size_t min_value) {
  const double v = std::ceil(static_cast<double>(base) * scale);
  const std::size_t s = static_cast<std::size_t>(v);
  return s < min_value ? min_value : s;
}

}  // namespace

WeblogParams Set1Params(double scale) {
  WeblogParams p;
  // Event-site traffic: very hot head (medal pages), strong session
  // topicality, many near-duplicate visits during the games.
  p.num_sets = Scaled(200000, scale, 200);
  // URL universes grow sublinearly with traffic (hot content dominates);
  // scaling it linearly with the collection dilutes pairwise similarity
  // far below what real logs show.
  p.num_urls = Scaled(60000, scale < 1.0 ? scale * 0.4 : 1.0, 500);
  p.zipf_alpha = 1.1;
  p.num_profiles = Scaled(80, scale < 0.25 ? 0.5 : 1.0, 8);
  p.profile_urls = 900;
  p.profile_affinity = 0.85;
  // Log-uniform sizes averaging ~250 elements (~2 KB records): the paper's
  // Set1 is ~400 MB for 200,000 sets.
  p.min_set_size = 10;
  p.max_set_size = 1200;
  p.duplicate_rate = 0.08;
  p.duplicate_mutation = 0.12;
  // Event traffic is dominated by short hot-page visits (schedules, medal
  // tables); they make many sessions near-identical.
  p.casual_rate = 0.3;
  p.casual_max_size = 6;
  p.seed = 0x5e71aa00ULL;
  return p;
}

WeblogParams Set2Params(double scale) {
  WeblogParams p;
  // Corporate site: broader spread of interests, milder skew, larger sets
  // (the paper's Set2 is ~500MB for the same set count: bigger sets).
  p.num_sets = Scaled(200000, scale, 200);
  p.num_urls = Scaled(80000, scale < 1.0 ? scale * 0.4 : 1.0, 500);
  p.zipf_alpha = 0.8;
  p.num_profiles = Scaled(120, scale < 0.25 ? 0.5 : 1.0, 12);
  p.profile_urls = 1400;
  p.profile_affinity = 0.75;
  // ~310 elements (~2.5 KB records) on average: Set2 is ~500 MB for the
  // same set count.
  p.min_set_size = 12;
  p.max_set_size = 1500;
  p.duplicate_rate = 0.04;
  p.duplicate_mutation = 0.2;
  p.casual_rate = 0.18;
  p.casual_max_size = 8;
  p.seed = 0x5e72bb00ULL;
  return p;
}

SetCollection MakeDataset(const std::string& name, double scale) {
  if (name == "set2" || name == "Set2" || name == "SET2") {
    return GenerateWeblogCollection(Set2Params(scale));
  }
  return GenerateWeblogCollection(Set1Params(scale));
}

}  // namespace ssr
