// The paper's result-size buckets (Section 6): queries are classified by the
// size of the candidate sid list the index returns, as a fraction of the
// collection: <0.5%, 0.5-5%, 5-10%, 10-25%, 25-35%. Per-bucket averages of
// recall, precision, and response time are what Figures 6 and 7 report.

#ifndef SSR_WORKLOAD_BUCKETS_H_
#define SSR_WORKLOAD_BUCKETS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ssr {

/// One result-size bucket: (lo, hi] as fractions of the collection size.
struct ResultSizeBucket {
  double lo_fraction;
  double hi_fraction;
  std::string label;
};

/// The paper's five buckets.
std::vector<ResultSizeBucket> PaperResultSizeBuckets();

/// Index of the bucket `result_size/collection_size` falls in, or
/// buckets.size() if outside all of them.
std::size_t ClassifyResultSize(std::size_t result_size,
                               std::size_t collection_size,
                               const std::vector<ResultSizeBucket>& buckets);

}  // namespace ssr

#endif  // SSR_WORKLOAD_BUCKETS_H_
