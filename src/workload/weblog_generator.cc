#include "workload/weblog_generator.h"

#include <algorithm>
#include <cmath>

#include "util/set_ops.h"

namespace ssr {

namespace {

// Draws a set size log-uniformly in [lo, hi].
std::size_t DrawSetSize(Rng& rng, std::size_t lo, std::size_t hi) {
  if (lo < 1) lo = 1;
  if (hi < lo) hi = lo;
  const double log_lo = std::log(static_cast<double>(lo));
  const double log_hi = std::log(static_cast<double>(hi) + 1.0);
  const double v = std::exp(log_lo + rng.NextDouble() * (log_hi - log_lo));
  std::size_t size = static_cast<std::size_t>(v);
  if (size < lo) size = lo;
  if (size > hi) size = hi;
  return size;
}

}  // namespace

SetCollection GenerateWeblogCollection(const WeblogParams& params) {
  Rng rng(params.seed);
  const std::size_t universe = params.num_urls < 2 ? 2 : params.num_urls;

  // Profiles: each a random slice of the universe with its own Zipf skew.
  // Profile URL lists are sampled with replacement from the universe and
  // deduplicated — overlap across profiles is allowed (shared hot pages).
  const std::size_t num_profiles =
      params.num_profiles < 1 ? 1 : params.num_profiles;
  std::vector<std::vector<ElementId>> profiles(num_profiles);
  for (auto& profile : profiles) {
    profile.reserve(params.profile_urls);
    for (std::size_t i = 0; i < params.profile_urls; ++i) {
      profile.push_back(static_cast<ElementId>(rng.Uniform(universe)));
    }
    std::sort(profile.begin(), profile.end());
    profile.erase(std::unique(profile.begin(), profile.end()), profile.end());
    if (profile.empty()) profile.push_back(0);
  }
  // Popularity distributions. Within a profile, popularity is also skewed
  // (hot pages inside a topic), but milder than globally.
  ZipfDistribution global_zipf(universe, params.zipf_alpha);
  const double profile_alpha = params.zipf_alpha * 0.7;
  std::vector<ZipfDistribution> profile_zipfs;
  profile_zipfs.reserve(num_profiles);
  for (const auto& profile : profiles) {
    profile_zipfs.emplace_back(profile.size(), profile_alpha);
  }

  SetCollection sets;
  sets.reserve(params.num_sets);
  for (std::size_t n = 0; n < params.num_sets; ++n) {
    // Casual-visitor branch: a tiny session over the hottest pages. These
    // collide heavily with each other (identical and near-identical
    // sessions), like the short visits that dominate real HTTP logs.
    if (params.casual_rate > 0.0 && rng.Bernoulli(params.casual_rate)) {
      const std::size_t size =
          1 + rng.Uniform(params.casual_max_size < 1 ? 1
                                                     : params.casual_max_size);
      ElementSet casual;
      for (std::size_t i = 0; i < size; ++i) {
        casual.push_back(static_cast<ElementId>(global_zipf.Sample(rng)));
      }
      NormalizeSet(casual);
      if (casual.empty()) casual.push_back(0);
      sets.push_back(std::move(casual));
      continue;
    }
    // Near-duplicate branch: clone and mutate an earlier set.
    if (!sets.empty() && rng.Bernoulli(params.duplicate_rate)) {
      const ElementSet& base =
          sets[static_cast<std::size_t>(rng.Uniform(sets.size()))];
      ElementSet dup = base;
      const std::size_t mutations = static_cast<std::size_t>(
          std::ceil(params.duplicate_mutation *
                    static_cast<double>(base.size())));
      for (std::size_t i = 0; i < mutations && !dup.empty(); ++i) {
        // Replace a random element with a random global URL.
        dup[static_cast<std::size_t>(rng.Uniform(dup.size()))] =
            static_cast<ElementId>(global_zipf.Sample(rng));
      }
      NormalizeSet(dup);
      if (dup.empty()) dup.push_back(0);
      sets.push_back(std::move(dup));
      continue;
    }

    const std::size_t profile_idx =
        static_cast<std::size_t>(rng.Uniform(num_profiles));
    const std::vector<ElementId>& profile = profiles[profile_idx];
    const ZipfDistribution& profile_zipf = profile_zipfs[profile_idx];

    const std::size_t target =
        DrawSetSize(rng, params.min_set_size, params.max_set_size);
    ElementSet set;
    set.reserve(target + target / 4);
    // Oversample: duplicates collapse under normalization.
    std::size_t attempts = 0;
    while (set.size() < target && attempts < target * 8) {
      ++attempts;
      ElementId e;
      if (rng.Bernoulli(params.profile_affinity)) {
        e = profile[profile_zipf.Sample(rng)];
      } else {
        e = static_cast<ElementId>(global_zipf.Sample(rng));
      }
      set.push_back(e);
      if ((attempts & 0x1f) == 0) NormalizeSet(set);
    }
    NormalizeSet(set);
    if (set.empty()) set.push_back(0);
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace ssr
