#include "workload/query_generator.h"

#include <algorithm>

#include "util/mathutil.h"

namespace ssr {

QueryGenerator::QueryGenerator(const SetCollection& sets,
                               QueryGeneratorParams params)
    : sets_(&sets), params_(params), rng_(params.seed) {
  params_.min_width = Clamp(params_.min_width, 0.0, 1.0);
  params_.max_width = Clamp(params_.max_width, params_.min_width, 1.0);
}

RangeQuery QueryGenerator::Next() {
  RangeQuery q;
  q.query_sid = static_cast<SetId>(rng_.Uniform(sets_->size()));
  const double width =
      params_.min_width +
      rng_.NextDouble() * (params_.max_width - params_.min_width);
  const double start = rng_.NextDouble() * (1.0 - width);
  q.sigma1 = start;
  q.sigma2 = std::min(1.0, start + width);
  return q;
}

std::vector<RangeQuery> QueryGenerator::Batch(std::size_t count) {
  std::vector<RangeQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(Next());
  return out;
}

}  // namespace ssr
