// Synthetic web-log set collections. The paper's datasets (Set1: Nagano
// winter-Olympics HTTP logs; Set2: a corporate site's logs — 200,000 sets
// each, one set of requested URLs per client IP) are proprietary, so this
// generator synthesizes collections with the structural properties those
// logs exhibit and the paper relies on:
//   * Zipf-distributed URL popularity (heavy head of hot pages),
//   * topical browsing profiles (users within a profile share pages ->
//     a population of moderately similar pairs),
//   * near-duplicate sessions (mirrors/revisits -> pairs near similarity 1),
//   * arbitrary set cardinalities and an unbounded element universe,
// which together produce the "D_S drops sharply as similarity increases"
// shape the paper's Section 6 analysis depends on.

#ifndef SSR_WORKLOAD_WEBLOG_GENERATOR_H_
#define SSR_WORKLOAD_WEBLOG_GENERATOR_H_

#include <cstdint>

#include "util/random.h"
#include "util/types.h"

namespace ssr {

/// Generator parameters.
struct WeblogParams {
  /// Number of sets (client IPs) to synthesize.
  std::size_t num_sets = 10000;

  /// Size of the URL universe.
  std::size_t num_urls = 50000;

  /// Zipf exponent for global URL popularity.
  double zipf_alpha = 0.9;

  /// Number of topical browsing profiles.
  std::size_t num_profiles = 50;

  /// URLs per profile (each profile is a random subset of the universe with
  /// its own internal popularity skew).
  std::size_t profile_urls = 400;

  /// Probability that an element of a set is drawn from the user's profile
  /// rather than the global distribution.
  double profile_affinity = 0.8;

  /// Set sizes are drawn log-uniformly from [min_set_size, max_set_size].
  std::size_t min_set_size = 5;
  std::size_t max_set_size = 300;

  /// Probability that a new set is a mutated near-duplicate of a previously
  /// generated one (models mirrored pages / repeat visitors).
  double duplicate_rate = 0.05;

  /// Probability that a set is a "casual visitor" session: a very small set
  /// drawn from the hottest pages. Real HTTP logs are full of 1-5 page
  /// visits to the same hot content, which makes many sessions identical or
  /// near-identical — the population that gives high-similarity queries
  /// non-trivial answers. 0 disables.
  double casual_rate = 0.0;

  /// Maximum size of a casual session.
  std::size_t casual_max_size = 6;

  /// Fraction of elements resampled when creating a near-duplicate.
  double duplicate_mutation = 0.15;

  /// RNG seed; identical params + seed reproduce the collection exactly.
  std::uint64_t seed = 0x10adedb00c5ULL;
};

/// Generates the collection. Every set is normalized and non-empty.
SetCollection GenerateWeblogCollection(const WeblogParams& params);

}  // namespace ssr

#endif  // SSR_WORKLOAD_WEBLOG_GENERATOR_H_
