// The two benchmark datasets, parameterized to mimic the paper's Set1
// (Nagano winter-Olympics web logs: short-lived event traffic, very spiky
// popularity, strong topical sessions) and Set2 (corporate site logs:
// broader interest spread, larger sets). A scale factor shrinks both for
// laptop-speed experiments; scale = 1.0 reproduces the paper's 200,000-set
// size.

#ifndef SSR_WORKLOAD_DATASETS_H_
#define SSR_WORKLOAD_DATASETS_H_

#include <string>

#include "workload/weblog_generator.h"

namespace ssr {

/// Parameters mimicking the Nagano Olympics log ("Set1").
WeblogParams Set1Params(double scale = 0.1);

/// Parameters mimicking the corporate-site log ("Set2").
WeblogParams Set2Params(double scale = 0.1);

/// Generates a dataset by name ("set1" / "set2"); falls back to set1.
SetCollection MakeDataset(const std::string& name, double scale = 0.1);

}  // namespace ssr

#endif  // SSR_WORKLOAD_DATASETS_H_
