#include "workload/buckets.h"

namespace ssr {

std::vector<ResultSizeBucket> PaperResultSizeBuckets() {
  return {
      {0.0, 0.005, "<0.5%"},
      {0.005, 0.05, "0.5-5%"},
      {0.05, 0.10, "5-10%"},
      {0.10, 0.25, "10-25%"},
      {0.25, 0.35, "25-35%"},
  };
}

std::size_t ClassifyResultSize(std::size_t result_size,
                               std::size_t collection_size,
                               const std::vector<ResultSizeBucket>& buckets) {
  if (collection_size == 0) return buckets.size();
  const double fraction = static_cast<double>(result_size) /
                          static_cast<double>(collection_size);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const bool above_lo =
        i == 0 ? fraction >= buckets[i].lo_fraction
               : fraction > buckets[i].lo_fraction;
    if (above_lo && fraction <= buckets[i].hi_fraction) return i;
  }
  return buckets.size();
}

}  // namespace ssr
