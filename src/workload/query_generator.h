// Query workload generation (Section 6): query sets drawn at random from
// the collection itself, similarity-range bounds drawn at random — exactly
// the paper's procedure ("query sets are chosen at random from the set
// collection and the bounds for each similarity range ... at random as
// well").

#ifndef SSR_WORKLOAD_QUERY_GENERATOR_H_
#define SSR_WORKLOAD_QUERY_GENERATOR_H_

#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace ssr {

/// One range query.
struct RangeQuery {
  SetId query_sid = kInvalidSetId;  // which collection set is the query
  double sigma1 = 0.0;
  double sigma2 = 1.0;
};

/// Knobs for range generation.
struct QueryGeneratorParams {
  /// Minimum width of [σ1, σ2] (0-width ranges are degenerate).
  double min_width = 0.02;

  /// Maximum width; 1.0 allows full-range queries (the paper draws both
  /// bounds at random, so wide ranges are common).
  double max_width = 1.0;

  std::uint64_t seed = 0x9e7e1a70b5ULL;
};

/// Generates query workloads against a collection.
class QueryGenerator {
 public:
  QueryGenerator(const SetCollection& sets, QueryGeneratorParams params);

  /// One random query: uniform set, uniform range subject to width bounds.
  RangeQuery Next();

  /// A batch of `count` queries.
  std::vector<RangeQuery> Batch(std::size_t count);

 private:
  const SetCollection* sets_;
  QueryGeneratorParams params_;
  Rng rng_;
};

}  // namespace ssr

#endif  // SSR_WORKLOAD_QUERY_GENERATOR_H_
