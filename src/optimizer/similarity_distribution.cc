#include "optimizer/similarity_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"
#include "util/set_ops.h"

namespace ssr {

SimilarityHistogram::SimilarityHistogram(std::size_t num_bins)
    : bins_(num_bins < 1 ? 1 : num_bins, 0.0) {}

void SimilarityHistogram::Add(double s, double weight) {
  s = Clamp(s, 0.0, 1.0);
  std::size_t bin = static_cast<std::size_t>(s * static_cast<double>(bins_.size()));
  if (bin >= bins_.size()) bin = bins_.size() - 1;  // s == 1.0
  bins_[bin] += weight;
}

void SimilarityHistogram::Scale(double factor) {
  for (double& b : bins_) b *= factor;
}

double SimilarityHistogram::total_mass() const {
  double total = 0.0;
  for (double b : bins_) total += b;
  return total;
}

double SimilarityHistogram::MassInRange(double lo, double hi) const {
  lo = Clamp(lo, 0.0, 1.0);
  hi = Clamp(hi, 0.0, 1.0);
  if (hi <= lo) return 0.0;
  const double n = static_cast<double>(bins_.size());
  double mass = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double bin_lo = static_cast<double>(i) / n;
    const double bin_hi = static_cast<double>(i + 1) / n;
    const double overlap =
        std::min(hi, bin_hi) - std::max(lo, bin_lo);
    if (overlap <= 0.0) continue;
    mass += bins_[i] * overlap / (bin_hi - bin_lo);
  }
  return mass;
}

double SimilarityHistogram::Density(double s) const {
  s = Clamp(s, 0.0, 1.0);
  std::size_t bin = static_cast<std::size_t>(s * static_cast<double>(bins_.size()));
  if (bin >= bins_.size()) bin = bins_.size() - 1;
  // Mass per unit similarity: bin mass divided by bin width.
  return bins_[bin] * static_cast<double>(bins_.size());
}

double SimilarityHistogram::Quantile(double q) const {
  q = Clamp(q, 0.0, 1.0);
  const double total = total_mass();
  if (total <= 0.0) return q;  // degenerate: uniform fallback
  const double target = q * total;
  double acc = 0.0;
  const double n = static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (acc + bins_[i] >= target) {
      const double within =
          bins_[i] > 0.0 ? (target - acc) / bins_[i] : 0.0;
      return (static_cast<double>(i) + within) / n;
    }
    acc += bins_[i];
  }
  return 1.0;
}

SimilarityHistogram ComputeExactDistribution(const SetCollection& sets,
                                             std::size_t num_bins) {
  SimilarityHistogram hist(num_bins);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t j = i + 1; j < sets.size(); ++j) {
      hist.Add(Jaccard(sets[i], sets[j]));
    }
  }
  return hist;
}

SimilarityHistogram ComputeSampledDistribution(const SetCollection& sets,
                                               std::size_t sample_pairs,
                                               std::size_t num_bins,
                                               Rng& rng) {
  const std::size_t n = sets.size();
  const double total_pairs =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  if (n < 2 || total_pairs <= static_cast<double>(sample_pairs)) {
    return ComputeExactDistribution(sets, num_bins);
  }
  SimilarityHistogram hist(num_bins);
  for (std::size_t t = 0; t < sample_pairs; ++t) {
    const std::size_t i = static_cast<std::size_t>(rng.Uniform(n));
    std::size_t j = static_cast<std::size_t>(rng.Uniform(n - 1));
    if (j >= i) ++j;
    hist.Add(Jaccard(sets[i], sets[j]));
  }
  hist.Scale(total_pairs / static_cast<double>(sample_pairs));
  return hist;
}

}  // namespace ssr
