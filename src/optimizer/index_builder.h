// The Index Construction algorithm of Figure 4: grow the number of
// equidepth-placed filter indices while the expected worst-case recall
// stays above the user threshold T and the interval count stays below the
// Lemma 5 bound, allocating the hash-table budget greedily at every step.
// The result is the layout with the most intervals (best expected
// precision, Lemma 5) that still meets the recall target (Objective 2).

#ifndef SSR_OPTIMIZER_INDEX_BUILDER_H_
#define SSR_OPTIMIZER_INDEX_BUILDER_H_

#include <string>
#include <vector>

#include "core/index_layout.h"
#include "hamming/embedding.h"
#include "optimizer/similarity_distribution.h"
#include "util/result.h"

namespace ssr {

/// Inputs of the construction algorithm.
struct IndexBuilderOptions {
  /// Space bound b: total hash tables available.
  std::size_t table_budget = 500;

  /// Recall threshold T (Objective 2), applied to the expected recall over
  /// the uniform query workload (the paper's "average recall" objective).
  double recall_threshold = 0.9;

  /// The Lemma 5 precision parameter `a` (queries with expected answer of
  /// at least this fraction are considered); caps the interval count at
  /// T / (1 − a).
  double precision_answer_fraction = 0.9;

  /// Hard cap on filter points regardless of the Lemma 5 bound.
  std::size_t max_fis = 64;
};

/// One iteration of the construction loop, for diagnostics.
struct BuilderIteration {
  std::size_t num_fis = 0;
  double average_recall = 0.0;
  double average_precision = 0.0;
  double worst_case_recall = 0.0;
  double worst_case_precision = 0.0;
  bool accepted = false;
};

/// The chosen layout plus the decision trace.
struct BuiltLayout {
  IndexLayout layout;
  double predicted_recall = 0.0;
  double predicted_precision = 0.0;
  double predicted_worst_recall = 0.0;
  double predicted_worst_precision = 0.0;
  std::vector<BuilderIteration> trace;

  std::string ToString() const;
};

/// Runs the Figure 4 algorithm against a (possibly sampled, Lemma 1)
/// similarity distribution. Fails if even a single FI cannot meet the
/// budget (budget < 2: the dual point at δ needs two structures).
Result<BuiltLayout> ConstructIndexLayout(const SimilarityHistogram& hist,
                                         const Embedding& embedding,
                                         const IndexBuilderOptions& options);

}  // namespace ssr

#endif  // SSR_OPTIMIZER_INDEX_BUILDER_H_
