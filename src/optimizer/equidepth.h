// Equidepth decomposition of the similarity range (Definition 10): interval
// boundaries chosen as quantiles of D_S so each interval carries the same
// expected answer mass. Lemma 4: this placement optimizes expected worst-
// case precision. Also computes the Eq. 15 split point δ and assigns
// DFI/SFI kinds to the chosen points (Section 5.3).

#ifndef SSR_OPTIMIZER_EQUIDEPTH_H_
#define SSR_OPTIMIZER_EQUIDEPTH_H_

#include <vector>

#include "core/index_layout.h"
#include "optimizer/similarity_distribution.h"

namespace ssr {

/// The `num_intervals`-wise equidepth boundary points of Definition 10:
/// num_intervals + 1 values 0 = c_0 < c_1 < ... < c_k = 1 with equal D_S
/// mass between consecutive points. Degenerate (empty/point-mass)
/// distributions fall back to uniform spacing.
std::vector<double> EquidepthBoundaries(const SimilarityHistogram& hist,
                                        std::size_t num_intervals);

/// Places `num_fis` filter points at the equidepth quantiles j/(num_fis+1),
/// j = 1..num_fis (splitting [0, 1] into num_fis + 1 equal-mass intervals),
/// and assigns kinds per Section 5.3: DFIs at points below δ = MassMedian,
/// SFIs above, and both a DFI and an SFI at the point closest to δ (so the
/// layout may contain num_fis + 1 structures). Table counts are left at 1
/// per structure; the greedy allocator distributes the budget.
///
/// `coverage_blend` regularizes the placement for the paper's query model
/// (ranges uniform over [0, 1]): quantiles are taken against
/// D_S + blend·uniform, so a fraction of the points always covers
/// low-mass regions. Web-log similarity distributions concentrate nearly
/// all pair mass near zero; pure equidepth (blend = 0) then puts every FI
/// below ~0.2 and high-similarity queries degenerate to scanning everything
/// above the topmost point.
IndexLayout PlaceFilterIndices(const SimilarityHistogram& hist,
                               std::size_t num_fis,
                               double coverage_blend = 0.25);

}  // namespace ssr

#endif  // SSR_OPTIMIZER_EQUIDEPTH_H_
