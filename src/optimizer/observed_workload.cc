#include "optimizer/observed_workload.h"

#include <algorithm>

#include "optimizer/equidepth.h"

namespace ssr {

namespace {

/// Midpoint of bin i at the given resolution — lands in bin i under the
/// shared [i/bins, (i+1)/bins) convention, so Add(mid, w) puts the whole
/// weight where it was observed.
double BinMidpoint(std::size_t i, std::size_t bins) {
  return (static_cast<double>(i) + 0.5) / static_cast<double>(bins);
}

}  // namespace

SimilarityHistogram ObservedThresholdDistribution(
    const obs::WorkloadSnapshot& snapshot) {
  const std::size_t bins =
      std::max<std::size_t>(1, snapshot.threshold_bins);
  SimilarityHistogram hist(bins);
  for (std::size_t i = 0;
       i < snapshot.range_coverage.size() && i < bins; ++i) {
    if (snapshot.range_coverage[i] > 0.0) {
      hist.Add(BinMidpoint(i, bins), snapshot.range_coverage[i]);
    }
  }
  return hist;
}

SimilarityHistogram ObservedThresholdDistribution(const obs::QueryLog& log,
                                                  std::size_t num_bins) {
  const std::size_t bins = std::max<std::size_t>(1, num_bins);
  SimilarityHistogram hist(bins);
  const double width = 1.0 / static_cast<double>(bins);
  for (const obs::RecordedQuery& q : log.queries) {
    const double lo = std::clamp(q.sigma1, 0.0, 1.0);
    const double hi = std::clamp(q.sigma2, 0.0, 1.0);
    if (hi < lo) continue;
    if (hi == lo) {
      // Point query: unit mass in the bin holding σ (last bin closed).
      const std::size_t b = std::min(
          bins - 1, static_cast<std::size_t>(lo * static_cast<double>(bins)));
      hist.Add(BinMidpoint(b, bins), 1.0);
      continue;
    }
    const std::size_t first = std::min(
        bins - 1, static_cast<std::size_t>(lo * static_cast<double>(bins)));
    for (std::size_t b = first; b < bins; ++b) {
      const double bin_lo = static_cast<double>(b) * width;
      if (bin_lo >= hi) break;
      const double overlap =
          std::min(hi, bin_lo + width) - std::max(lo, bin_lo);
      if (overlap > 0.0) hist.Add(BinMidpoint(b, bins), overlap / width);
    }
  }
  return hist;
}

IndexLayout PlaceFilterIndicesFromWorkload(
    const obs::WorkloadSnapshot& snapshot, std::size_t num_fis,
    double coverage_blend) {
  return PlaceFilterIndices(ObservedThresholdDistribution(snapshot), num_fis,
                            coverage_blend);
}

}  // namespace ssr
