#include "optimizer/equidepth.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"

namespace ssr {

std::vector<double> EquidepthBoundaries(const SimilarityHistogram& hist,
                                        std::size_t num_intervals) {
  if (num_intervals < 1) num_intervals = 1;
  std::vector<double> bounds;
  bounds.reserve(num_intervals + 1);
  bounds.push_back(0.0);
  double prev = 0.0;
  for (std::size_t j = 1; j < num_intervals; ++j) {
    double c = hist.Quantile(static_cast<double>(j) /
                             static_cast<double>(num_intervals));
    // Enforce strict monotonicity even for spiky distributions.
    const double uniform = static_cast<double>(j) /
                           static_cast<double>(num_intervals);
    if (c <= prev) c = prev + (uniform - prev) * 0.5;
    c = Clamp(c, prev + 1e-9, 1.0 - 1e-9);
    bounds.push_back(c);
    prev = c;
  }
  bounds.push_back(1.0);
  return bounds;
}

IndexLayout PlaceFilterIndices(const SimilarityHistogram& hist,
                               std::size_t num_fis, double coverage_blend) {
  if (num_fis < 1) num_fis = 1;
  IndexLayout layout;
  layout.delta = Clamp(hist.MassMedian(), 1e-6, 1.0 - 1e-6);

  // Interior equidepth points (boundaries minus the virtual 0 and 1),
  // against the coverage-blended distribution.
  SimilarityHistogram blended = hist;
  coverage_blend = Clamp(coverage_blend, 0.0, 1.0);
  if (coverage_blend > 0.0 && hist.total_mass() > 0.0) {
    const double uniform_per_bin = hist.total_mass() * coverage_blend /
                                   static_cast<double>(hist.num_bins());
    const double n = static_cast<double>(hist.num_bins());
    for (std::size_t b = 0; b < hist.num_bins(); ++b) {
      blended.Add((static_cast<double>(b) + 0.5) / n, uniform_per_bin);
    }
  }
  const std::vector<double> bounds =
      EquidepthBoundaries(blended, num_fis + 1);
  std::vector<double> points(bounds.begin() + 1, bounds.end() - 1);

  // The point closest to δ hosts both a DFI and an SFI (Section 5.3).
  std::size_t closest = 0;
  double best = 2.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = std::fabs(points[i] - layout.delta);
    if (d < best) {
      best = d;
      closest = i;
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double s = points[i];
    if (i == closest) {
      layout.points.push_back({s, FilterKind::kDissimilarity, 1, 0});
      layout.points.push_back({s, FilterKind::kSimilarity, 1, 0});
      continue;
    }
    const FilterKind kind = s < layout.delta ? FilterKind::kDissimilarity
                                             : FilterKind::kSimilarity;
    layout.points.push_back({s, kind, 1, 0});
  }
  // Kinds must be partitioned (all DFIs below all SFIs); the dual point is
  // the only location with both. Placement above guarantees this as long as
  // the dual point separates the kinds; enforce by re-sorting defensively.
  std::stable_sort(layout.points.begin(), layout.points.end(),
                   [](const FilterPoint& a, const FilterPoint& b) {
                     if (a.similarity != b.similarity) {
                       return a.similarity < b.similarity;
                     }
                     return a.kind == FilterKind::kDissimilarity &&
                            b.kind == FilterKind::kSimilarity;
                   });
  return layout;
}

}  // namespace ssr
