#include "optimizer/greedy_allocator.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "optimizer/error_model.h"

namespace ssr {

namespace {

double PointError(const FilterPoint& p, std::size_t tables,
                  const SimilarityHistogram& hist, double rho) {
  FilterErrorModel model(p.kind, p.similarity, tables, rho, p.r);
  return model.NormalizedError(hist);
}

AllocationReport FinishReport(IndexLayout* layout,
                              std::vector<std::size_t> tables,
                              const SimilarityHistogram& hist, double rho) {
  AllocationReport report;
  report.tables = std::move(tables);
  report.errors.reserve(layout->points.size());
  for (std::size_t i = 0; i < layout->points.size(); ++i) {
    layout->points[i].tables = report.tables[i];
    const double err =
        PointError(layout->points[i], report.tables[i], hist, rho);
    report.errors.push_back(err);
    report.total_error += err;
    report.max_error = std::max(report.max_error, err);
  }
  return report;
}

// Scalar score of an allocation: workload-average recall (the paper's
// objective — "all queries equally likely ... uniformly distributed") with
// a small worst-interval term to break ties toward balanced layouts.
double Evaluate(const IndexLayout& layout, const SimilarityHistogram& hist,
                const Embedding& embedding) {
  LayoutErrorModel model(layout, embedding, hist);
  return model.WorkloadAverageRecall(/*grid=*/8) +
         0.05 * model.WorstCaseRecall();
}

}  // namespace

Result<AllocationReport> GreedyAllocateTables(IndexLayout* layout,
                                              std::size_t budget,
                                              const SimilarityHistogram& hist,
                                              const Embedding& embedding) {
  const std::size_t n = layout->points.size();
  if (n == 0) return Status::InvalidArgument("layout has no filter points");
  if (budget < n) {
    return Status::InvalidArgument(
        "budget smaller than the number of filter indices");
  }
  // Start every FI at one table; hand out the rest one at a time to the FI
  // whose extra table most improves (worst, mean) expected interval recall.
  // Each (point, table-count) pair gets its bits-per-table r tuned by
  // ChooseOptimalR; the tuned r is memoized and written into the layout so
  // the built index matches the model exactly.
  const double rho = embedding.distance_ratio();
  std::vector<std::unordered_map<std::size_t, std::size_t>> r_cache(n);
  const auto tuned_r = [&](std::size_t i, std::size_t l) {
    auto it = r_cache[i].find(l);
    if (it != r_cache[i].end()) return it->second;
    const std::size_t r = ChooseOptimalR(
        layout->points[i].kind, layout->points[i].similarity, l, rho, hist,
        embedding.hasher().params().num_hashes);
    r_cache[i].emplace(l, r);
    return r;
  };
  for (std::size_t i = 0; i < n; ++i) {
    layout->points[i].tables = 1;
    layout->points[i].r = tuned_r(i, 1);
  }
  // Chunked greedy: candidate increments of 1, 2, 4, ... tables, scored by
  // gain per table. Single-table steps get trapped on the plateaus of the
  // rounded-r error curve (an FI may need several more tables before its
  // tuned filter improves at all); chunks step over them.
  std::size_t remaining = budget - n;
  double current_score = Evaluate(*layout, hist, embedding);
  while (remaining > 0) {
    std::size_t best_fi = n;
    std::size_t best_chunk = 1;
    double best_rate = -std::numeric_limits<double>::infinity();
    double best_score = current_score;
    for (std::size_t i = 0; i < n; ++i) {
      FilterPoint saved = layout->points[i];
      for (std::size_t chunk = 1; chunk <= remaining; chunk *= 2) {
        layout->points[i].tables = saved.tables + chunk;
        layout->points[i].r = tuned_r(i, layout->points[i].tables);
        const double score = Evaluate(*layout, hist, embedding);
        const double rate =
            (score - current_score) / static_cast<double>(chunk);
        if (rate > best_rate) {
          best_rate = rate;
          best_fi = i;
          best_chunk = chunk;
          best_score = score;
        }
      }
      layout->points[i] = saved;
    }
    if (best_fi == n) break;  // defensive; cannot happen with n >= 1
    layout->points[best_fi].tables += best_chunk;
    layout->points[best_fi].r =
        tuned_r(best_fi, layout->points[best_fi].tables);
    current_score = best_score;
    remaining -= best_chunk;
  }
  std::vector<std::size_t> tables;
  tables.reserve(n);
  for (const auto& p : layout->points) tables.push_back(p.tables);
  return FinishReport(layout, std::move(tables), hist, rho);
}

Result<AllocationReport> GreedyAllocateTablesByError(
    IndexLayout* layout, std::size_t budget, const SimilarityHistogram& hist,
    double rho) {
  const std::size_t n = layout->points.size();
  if (n == 0) return Status::InvalidArgument("layout has no filter points");
  if (budget < n) {
    return Status::InvalidArgument(
        "budget smaller than the number of filter indices");
  }
  // The literal Figure 5 rule: each table goes to the FI whose normalized
  // expected error drops the most.
  std::vector<std::size_t> tables(n, 1);
  std::vector<double> current(n);
  for (std::size_t i = 0; i < n; ++i) {
    current[i] = PointError(layout->points[i], 1, hist, rho);
  }
  for (std::size_t step = n; step < budget; ++step) {
    std::size_t best = 0;
    double best_gain = -std::numeric_limits<double>::infinity();
    double best_next = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double next =
          PointError(layout->points[i], tables[i] + 1, hist, rho);
      const double gain = current[i] - next;
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
        best_next = next;
      }
    }
    tables[best] += 1;
    current[best] = best_next;
  }
  return FinishReport(layout, std::move(tables), hist, rho);
}

std::pair<double, double> RefineForPrecision(IndexLayout* layout,
                                             const SimilarityHistogram& hist,
                                             const Embedding& embedding,
                                             double recall_threshold) {
  const auto evaluate = [&] {
    LayoutErrorModel model(*layout, embedding, hist);
    return std::make_pair(model.WorkloadAverageRecall(),
                          model.WorkloadAveragePrecision());
  };
  auto [recall, precision] = evaluate();
  // Round-robin over FIs, bumping r one step at a time (multiplicatively
  // for large r so progress is budget-independent), while the recall
  // prediction stays at or above the threshold and precision improves.
  bool progressed = true;
  int rounds = 0;
  while (progressed && rounds < 32) {
    progressed = false;
    ++rounds;
    for (FilterPoint& point : layout->points) {
      if (point.r == 0) continue;  // canonical solve: leave untouched
      const std::size_t old_r = point.r;
      const std::size_t step = old_r >= 8 ? old_r / 8 : 1;
      point.r = old_r + step;
      const auto [new_recall, new_precision] = evaluate();
      if (new_recall >= recall_threshold &&
          new_precision > precision + 1e-9) {
        recall = new_recall;
        precision = new_precision;
        progressed = true;
      } else {
        point.r = old_r;
      }
    }
  }
  return {recall, precision};
}

Result<AllocationReport> UniformAllocateTables(IndexLayout* layout,
                                               std::size_t budget,
                                               const SimilarityHistogram& hist,
                                               double rho) {
  const std::size_t n = layout->points.size();
  if (n == 0) return Status::InvalidArgument("layout has no filter points");
  if (budget < n) {
    return Status::InvalidArgument(
        "budget smaller than the number of filter indices");
  }
  std::vector<std::size_t> tables(n, budget / n);
  for (std::size_t i = 0; i < budget % n; ++i) tables[i] += 1;
  return FinishReport(layout, std::move(tables), hist, rho);
}

}  // namespace ssr
