// Analytical error model of the filter indices (Definitions 6-9): expected
// false positives/negatives of a filter function against the similarity
// distribution D_S, and expected recall/precision of a composite layout for
// a query range. The greedy allocator and the index-construction loop
// optimize these quantities.
//
// All integrals are taken in set-similarity space; collision probabilities
// are evaluated after mapping through the embedding (Theorem 1):
//   SFI at σ*: collision(s) = p_{r,l}( φ(s) ),        φ(s) = 1 − (1−s)ρ
//   DFI at σ*: collision(s) = p_{r,l}( 1 − φ(s) )     (Theorem 2)

#ifndef SSR_OPTIMIZER_ERROR_MODEL_H_
#define SSR_OPTIMIZER_ERROR_MODEL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/filter_function.h"
#include "core/index_layout.h"
#include "hamming/embedding.h"
#include "optimizer/similarity_distribution.h"

namespace ssr {

/// The analytic model for one filter index at a layout point.
class FilterErrorModel {
 public:
  /// Builds the model for a filter of `kind` at set-similarity `sigma_star`
  /// with `tables` hash tables. `rho` is the embedding's distance ratio
  /// (1/2 for Hadamard). `r` = 0 solves r from the canonical turning-point
  /// condition p_{r,l}(s*) = 1/2; a nonzero `r` overrides it (the optimizer
  /// tunes r per point, see ChooseOptimalR). `signature_hashes` (k) models
  /// min-hash estimation noise: a set at similarity s presents a signature
  /// agreement distributed Binomial(k, s)/k, so the effective collision
  /// curve is the S-curve smoothed by that noise; 0 disables (idealized
  /// infinite-precision signatures).
  FilterErrorModel(FilterKind kind, double sigma_star, std::size_t tables,
                   double rho, std::size_t r = 0,
                   std::size_t signature_hashes = 0);

  /// Probability that a set at similarity s with the query lands in this
  /// filter's output.
  double Collision(double s) const;

  /// Definition 6: expected false positives against `hist` — mass on the
  /// wrong side of σ* that the filter nevertheless returns.
  double ExpectedFalsePositives(const SimilarityHistogram& hist) const;

  /// Definition 7: expected false negatives — mass on the right side of σ*
  /// that the filter misses.
  double ExpectedFalseNegatives(const SimilarityHistogram& hist) const;

  /// FP + FN: the total expected error in absolute pair counts.
  double ExpectedError(const SimilarityHistogram& hist) const {
    return ExpectedFalsePositives(hist) + ExpectedFalseNegatives(hist);
  }

  /// Mass-normalized error: FP as a fraction of the mass the filter should
  /// reject plus FN as a fraction of the mass it should return. Because
  /// recall/precision are ratios, this is the quantity whose equalization
  /// across FIs maximizes expected worst-case recall (Lemma 2) — absolute
  /// counts would let the mass-heavy low-similarity region dominate every
  /// allocation decision.
  double NormalizedError(const SimilarityHistogram& hist) const;

  const FilterFunction& filter() const { return filter_; }
  double sigma_star() const { return sigma_star_; }
  FilterKind kind() const { return kind_; }

 private:
  FilterKind kind_;
  double sigma_star_;
  double rho_;
  std::size_t signature_hashes_ = 0;
  FilterFunction filter_;
};

/// Picks the bits-per-table r that minimizes the filter's normalized error
/// against `hist` for a given table count, searching a multiplicative grid
/// around the canonical p = 1/2 solution. The canonical solve fixes the
/// turning point but rounds r to an integer, which makes error jagged in l
/// and starves low-similarity filters; tuning r directly smooths both.
std::size_t ChooseOptimalR(FilterKind kind, double sigma_star,
                           std::size_t tables, double rho,
                           const SimilarityHistogram& hist,
                           std::size_t signature_hashes = 0);

/// The analytic model for a whole layout (respects per-point r overrides).
class LayoutErrorModel {
 public:
  LayoutErrorModel(const IndexLayout& layout, const Embedding& embedding,
                   const SimilarityHistogram& hist);

  /// Probability that a set at similarity s appears among the candidates of
  /// a query range whose enclosing points are the layout points nearest
  /// [σ1, σ2] (the Section 4.3 plan, with independent FIs).
  double RetrievalProbability(double s, double sigma1, double sigma2) const;

  /// Definition 8: expected recall over the query range [σ1, σ2].
  double ExpectedRecall(double sigma1, double sigma2) const;

  /// Definition 9: expected precision over the query range [σ1, σ2]
  /// (candidate efficiency: answer mass / retrieved mass).
  double ExpectedPrecision(double sigma1, double sigma2) const;

  /// The decomposition intervals: consecutive ranges between the distinct
  /// filter points, including the virtual endpoints [0, first] and
  /// [last, 1]. The paper optimizes "the expected worst case of recall (or
  /// precision) over all similarity intervals"; these are those intervals —
  /// interval-aligned queries are answered by exactly the interval's edge
  /// FIs, so interval recall isolates those FIs' errors.
  std::vector<std::pair<double, double>> DecompositionIntervals() const;

  /// Expected worst-case recall: the minimum expected recall over the
  /// decomposition intervals. Note that for layouts whose adjacent points
  /// sit close together in embedded (Hamming) similarity, narrow intervals
  /// are intrinsically hard — the difference plan multiplies two nearly
  /// identical S-curves, capping recall near 1/4 — so this metric is a
  /// pessimistic diagnostic, not the construction's acceptance criterion.
  double WorstCaseRecall() const;

  /// Expected recall over the paper's uniform query workload ("all queries
  /// equally likely ... both in terms of set queries and similarity
  /// values"): the mean of ExpectedRecall over a grid of (σ1, σ2) ranges
  /// with σ1 < σ2, each range weighted by its expected answer mass (a
  /// query's recall counts per answer pair, matching the measured average
  /// over random queries). `grid` subdivides [0, 1].
  double WorkloadAverageRecall(std::size_t grid = 10) const;

  /// Same workload average for precision (candidate efficiency).
  double WorkloadAveragePrecision(std::size_t grid = 10) const;

  /// Expected worst-case precision over the decomposition intervals,
  /// ignoring intervals whose expected answer mass is below
  /// `min_answer_mass` (Lemmas 4/5 consider "queries with expected answer
  /// size at least a").
  double WorstCasePrecision(double min_answer_mass = 1.0) const;

 private:
  struct ModeledFi {
    FilterPoint point;
    FilterErrorModel model;
  };

  const SimilarityHistogram* hist_;
  double rho_;
  std::vector<ModeledFi> fis_;
};

}  // namespace ssr

#endif  // SSR_OPTIMIZER_ERROR_MODEL_H_
