// Adapter from captured workloads (obs/workload_observer.h snapshots and
// recorded query logs) to the optimizer's SimilarityHistogram, closing the
// observe → re-optimize loop: a deployment records where queries actually
// land on the similarity axis, and the §5 placement machinery re-derives an
// equidepth layout from that observed distribution instead of (or blended
// with) the data's pairwise-similarity distribution D_S.
//
// The observed histogram measures *query interval coverage*, not pair
// mass: each query adds the fractional overlap of its [σ1, σ2] range with
// every bin. Feeding it to PlaceFilterIndices puts filter points where the
// workload concentrates — equidepth in query mass rather than answer mass.
// Both are legitimate §5 objectives; coverage_blend keeps sparse regions
// covered either way.

#ifndef SSR_OPTIMIZER_OBSERVED_WORKLOAD_H_
#define SSR_OPTIMIZER_OBSERVED_WORKLOAD_H_

#include <cstddef>

#include "core/index_layout.h"
#include "obs/query_log.h"
#include "obs/workload_observer.h"
#include "optimizer/similarity_distribution.h"

namespace ssr {

/// The observer's fractional range-coverage bins as a SimilarityHistogram
/// (same bin convention on both sides: bin i covers [i/bins, (i+1)/bins),
/// last bin closed). Empty snapshots yield an all-zero histogram, which the
/// equidepth machinery treats as degenerate (uniform fallback).
SimilarityHistogram ObservedThresholdDistribution(
    const obs::WorkloadSnapshot& snapshot);

/// Rebuilds the same coverage histogram from a recorded query log at an
/// arbitrary resolution: each recorded query adds its [σ1, σ2] overlap with
/// every bin, in units of one bin width (a point query σ1 == σ2 adds 1 to
/// its bin). A log recorded with sample_every == 1 reproduces the live
/// observer's range_coverage exactly when `num_bins` matches.
SimilarityHistogram ObservedThresholdDistribution(const obs::QueryLog& log,
                                                  std::size_t num_bins);

/// PlaceFilterIndices against the observed workload distribution: filter
/// points at the equidepth quantiles of where queries actually probe, kinds
/// assigned by the snapshot's mass median per Section 5.3.
IndexLayout PlaceFilterIndicesFromWorkload(
    const obs::WorkloadSnapshot& snapshot, std::size_t num_fis,
    double coverage_blend = 0.25);

}  // namespace ssr

#endif  // SSR_OPTIMIZER_OBSERVED_WORKLOAD_H_
