// The similarity distribution function D_S(s) of Section 4.1/5: for every
// similarity value s, the number of set pairs in the collection that are
// s-similar. Represented as a histogram over [0, 1]. Computable exactly
// (all pairs) or approximately via one-pass pair sampling (Lemma 1).
// Everything the optimizer does — expected false positives/negatives,
// equidepth decomposition, the δ split of Eq. 15 — is an integral against
// this distribution.

#ifndef SSR_OPTIMIZER_SIMILARITY_DISTRIBUTION_H_
#define SSR_OPTIMIZER_SIMILARITY_DISTRIBUTION_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "util/random.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// Histogram of pairwise similarities. Bin i covers
/// [i/bins, (i+1)/bins) (last bin closed). Masses are pair counts, possibly
/// fractional after sample-based scaling.
class SimilarityHistogram {
 public:
  /// Creates an empty histogram with `num_bins` >= 1 bins.
  explicit SimilarityHistogram(std::size_t num_bins = 100);

  /// Adds `weight` pairs at similarity `s`.
  void Add(double s, double weight = 1.0);

  /// Scales all masses by `factor` (used by the sampling estimator).
  void Scale(double factor);

  std::size_t num_bins() const { return bins_.size(); }

  /// Mass of bin i.
  double bin_mass(std::size_t i) const { return bins_[i]; }

  /// Total mass (≈ number of pairs represented).
  double total_mass() const;

  /// Integral of D_S over [lo, hi] (linear interpolation within bins).
  double MassInRange(double lo, double hi) const;

  /// Density estimate D_S(s) (mass per unit similarity at s).
  double Density(double s) const;

  /// The q-quantile of the distribution: the smallest s with
  /// CDF(s) >= q, for q in [0, 1].
  double Quantile(double q) const;

  /// The paper's Eq. 15 split point δ: mass below equals mass above.
  double MassMedian() const { return Quantile(0.5); }

 private:
  std::vector<double> bins_;
};

/// Computes D_S exactly from all N(N−1)/2 pairs. O(N²) set comparisons —
/// intended for modest N or offline preprocessing.
SimilarityHistogram ComputeExactDistribution(const SetCollection& sets,
                                             std::size_t num_bins = 100);

/// Lemma 1: approximates D_S from `sample_pairs` uniformly sampled pairs
/// (one conceptual dataset pass: pair indices are drawn up front, then sets
/// are visited in order). The histogram is scaled so its total mass is
/// N(N−1)/2. Falls back to the exact computation when the sample budget
/// covers all pairs.
SimilarityHistogram ComputeSampledDistribution(const SetCollection& sets,
                                               std::size_t sample_pairs,
                                               std::size_t num_bins,
                                               Rng& rng);

}  // namespace ssr

#endif  // SSR_OPTIMIZER_SIMILARITY_DISTRIBUTION_H_
