// The Greedy algorithm of Figure 5: distribute a budget of b hash tables
// over the layout's filter indices one table at a time, always to the FI
// with the largest remaining expected error (false positives + false
// negatives, Definitions 6/7, normalized by the mass each filter is
// responsible for). Equalizing per-FI error is exactly the Lemma 2
// optimality condition, and Lemma 6 states the greedy allocation maximizes
// expected worst-case recall.

#ifndef SSR_OPTIMIZER_GREEDY_ALLOCATOR_H_
#define SSR_OPTIMIZER_GREEDY_ALLOCATOR_H_

#include <utility>
#include <vector>

#include "core/index_layout.h"
#include "hamming/embedding.h"
#include "optimizer/similarity_distribution.h"
#include "util/result.h"

namespace ssr {

/// Result of an allocation run.
struct AllocationReport {
  /// Tables per layout point, parallel to layout.points.
  std::vector<std::size_t> tables;

  /// Normalized expected error (FP rate + FN rate; see
  /// FilterErrorModel::NormalizedError) per point under the final
  /// allocation.
  std::vector<double> errors;

  /// Sum of per-point normalized errors.
  double total_error = 0.0;

  /// Largest per-point normalized error — the quantity greedy equalizes
  /// (Lemma 2: worst-case recall is maximized when FI errors are equal).
  double max_error = 0.0;
};

/// Allocates `budget` hash tables to the points of `layout` (each point
/// receives at least one), maximizing (worst, mean) expected recall over
/// the decomposition intervals — the Lemma 2 evaluation the Index
/// Construction loop accepts layouts by. Fails if budget < number of
/// points. On success, `layout->points[i].tables` is updated in place and
/// a report is returned.
Result<AllocationReport> GreedyAllocateTables(IndexLayout* layout,
                                              std::size_t budget,
                                              const SimilarityHistogram& hist,
                                              const Embedding& embedding);

/// The literal Figure 5 rule — each table to the FI whose normalized
/// expected error (Definitions 6/7) drops the most. Kept for the ablation
/// bench; the recall-driven variant above dominates it on worst-case
/// recall because per-FI error ignores how intervals combine two FIs.
Result<AllocationReport> GreedyAllocateTablesByError(
    IndexLayout* layout, std::size_t budget, const SimilarityHistogram& hist,
    double rho);

/// Baseline for the ablation bench: spreads the budget uniformly
/// (remainder to the lowest-index points). Same failure condition.
Result<AllocationReport> UniformAllocateTables(
    IndexLayout* layout, std::size_t budget,
    const SimilarityHistogram& hist, double rho);

/// Objective 2's precision pass: after the allocation meets the recall
/// threshold, sharpen each filter (increase its bits-per-table r) as far
/// as the predicted workload-average recall allows while staying at or
/// above `recall_threshold`. Sharper filters collide less with
/// out-of-range sets, directly cutting the candidate overhead that
/// precision measures. Returns the achieved (recall, precision)
/// prediction.
std::pair<double, double> RefineForPrecision(IndexLayout* layout,
                                             const SimilarityHistogram& hist,
                                             const Embedding& embedding,
                                             double recall_threshold);

}  // namespace ssr

#endif  // SSR_OPTIMIZER_GREEDY_ALLOCATOR_H_
