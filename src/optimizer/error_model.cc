#include "optimizer/error_model.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"

namespace ssr {

namespace {

/// ∫_{lo}^{hi} D(s)·f(s) ds approximated over histogram bins with partial
/// overlap weighting; f is evaluated at the center of each overlap.
template <typename F>
double IntegrateAgainstHist(const SimilarityHistogram& hist, double lo,
                            double hi, F&& f) {
  lo = Clamp(lo, 0.0, 1.0);
  hi = Clamp(hi, 0.0, 1.0);
  if (hi <= lo) return 0.0;
  const std::size_t n = hist.num_bins();
  const double width = 1.0 / static_cast<double>(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double bin_lo = static_cast<double>(i) * width;
    const double bin_hi = bin_lo + width;
    const double a = std::max(lo, bin_lo);
    const double b = std::min(hi, bin_hi);
    if (b <= a) continue;
    const double fraction = (b - a) / width;
    acc += hist.bin_mass(i) * fraction * f(0.5 * (a + b));
  }
  return acc;
}

}  // namespace

namespace {

FilterFunction SolveFilter(FilterKind kind, double sigma_star,
                           std::size_t tables, double rho, std::size_t r) {
  if (r != 0) return FilterFunction(r, tables);
  const double turning =
      kind == FilterKind::kSimilarity ? 1.0 - (1.0 - sigma_star) * rho
                                      : (1.0 - sigma_star) * rho;
  return FilterFunction::ForTurningPoint(turning, tables);
}

}  // namespace

FilterErrorModel::FilterErrorModel(FilterKind kind, double sigma_star,
                                   std::size_t tables, double rho,
                                   std::size_t r,
                                   std::size_t signature_hashes)
    : kind_(kind),
      sigma_star_(sigma_star),
      rho_(rho <= 0.0 ? 0.5 : rho),
      signature_hashes_(signature_hashes),
      filter_(SolveFilter(kind, sigma_star, tables, rho_, r)) {}

std::size_t ChooseOptimalR(FilterKind kind, double sigma_star,
                           std::size_t tables, double rho,
                           const SimilarityHistogram& hist,
                           std::size_t signature_hashes) {
  if (rho <= 0.0) rho = 0.5;
  const double turning = kind == FilterKind::kSimilarity
                             ? 1.0 - (1.0 - sigma_star) * rho
                             : (1.0 - sigma_star) * rho;
  const std::size_t r0 =
      FilterFunction::ForTurningPoint(turning, tables).r();
  std::size_t best_r = r0;
  double best_error =
      FilterErrorModel(kind, sigma_star, tables, rho, r0, signature_hashes)
          .NormalizedError(hist);
  for (double factor :
       {0.25, 0.35, 0.5, 0.7, 0.85, 1.2, 1.5, 2.0, 2.8, 4.0}) {
    std::size_t r = static_cast<std::size_t>(
        std::lround(static_cast<double>(r0) * factor));
    if (r < 1) r = 1;
    if (r == r0) continue;
    const double error =
        FilterErrorModel(kind, sigma_star, tables, rho, r, signature_hashes)
            .NormalizedError(hist);
    if (error < best_error) {
      best_error = error;
      best_r = r;
    }
  }
  return best_r;
}

double FilterErrorModel::Collision(double s) const {
  s = Clamp(s, 0.0, 1.0);
  const auto raw = [&](double agreement) {
    const double phi = 1.0 - (1.0 - agreement) * rho_;  // Theorem 1
    if (kind_ == FilterKind::kSimilarity) {
      return filter_.Collision(phi);
    }
    return filter_.Collision(1.0 - phi);  // Theorem 2: probe vs complement
  };
  if (signature_hashes_ == 0) return raw(s);
  // Min-hash noise: the observed agreement is Binomial(k, s)/k. Smooth the
  // collision curve with 3-point Gauss-Hermite quadrature over that noise
  // (sd = sqrt(s(1-s)/k)); nodes at s, s ± sd*sqrt(3), weights 2/3, 1/6,
  // 1/6.
  const double sd = std::sqrt(
      s * (1.0 - s) / static_cast<double>(signature_hashes_));
  if (sd <= 0.0) return raw(s);
  const double offset = sd * 1.7320508075688772;
  return (2.0 / 3.0) * raw(s) +
         (1.0 / 6.0) * raw(Clamp(s - offset, 0.0, 1.0)) +
         (1.0 / 6.0) * raw(Clamp(s + offset, 0.0, 1.0));
}

double FilterErrorModel::ExpectedFalsePositives(
    const SimilarityHistogram& hist) const {
  if (kind_ == FilterKind::kSimilarity) {
    return IntegrateAgainstHist(hist, 0.0, sigma_star_,
                                [&](double s) { return Collision(s); });
  }
  return IntegrateAgainstHist(hist, sigma_star_, 1.0,
                              [&](double s) { return Collision(s); });
}

double FilterErrorModel::ExpectedFalseNegatives(
    const SimilarityHistogram& hist) const {
  if (kind_ == FilterKind::kSimilarity) {
    return IntegrateAgainstHist(hist, sigma_star_, 1.0,
                                [&](double s) { return 1.0 - Collision(s); });
  }
  return IntegrateAgainstHist(hist, 0.0, sigma_star_,
                              [&](double s) { return 1.0 - Collision(s); });
}

double FilterErrorModel::NormalizedError(
    const SimilarityHistogram& hist) const {
  const double below = hist.MassInRange(0.0, sigma_star_);
  const double above = hist.MassInRange(sigma_star_, 1.0);
  const double fp = ExpectedFalsePositives(hist);
  const double fn = ExpectedFalseNegatives(hist);
  double error = 0.0;
  if (kind_ == FilterKind::kSimilarity) {
    if (below > 0.0) error += fp / below;
    if (above > 0.0) error += fn / above;
  } else {
    if (above > 0.0) error += fp / above;
    if (below > 0.0) error += fn / below;
  }
  return error;
}

LayoutErrorModel::LayoutErrorModel(const IndexLayout& layout,
                                   const Embedding& embedding,
                                   const SimilarityHistogram& hist)
    : hist_(&hist), rho_(embedding.distance_ratio()) {
  const std::size_t k = embedding.hasher().params().num_hashes;
  for (const FilterPoint& p : layout.points) {
    fis_.push_back(
        {p, FilterErrorModel(p.kind, p.similarity, p.tables, rho_, p.r, k)});
  }
}

double LayoutErrorModel::RetrievalProbability(double s, double sigma1,
                                              double sigma2) const {
  // Mirror SetSimilarityIndex::ComputeCandidates' plan selection.
  constexpr std::size_t kVirtual = static_cast<std::size_t>(-1);
  std::size_t lo_idx = kVirtual, up_idx = kVirtual;
  for (std::size_t i = 0; i < fis_.size(); ++i) {
    if (fis_[i].point.similarity <= sigma1) lo_idx = i;
  }
  for (std::size_t i = fis_.size(); i-- > 0;) {
    if (fis_[i].point.similarity >= sigma2) up_idx = i;
  }
  if (lo_idx != kVirtual && lo_idx == up_idx) {
    lo_idx = lo_idx == 0 ? kVirtual : lo_idx - 1;
  }
  const bool lo_virtual = lo_idx == kVirtual;
  const bool up_virtual = up_idx == kVirtual;
  if (lo_virtual && up_virtual) return 1.0;

  const auto collide = [&](std::size_t idx) {
    return fis_[idx].model.Collision(s);
  };
  const auto kind_of = [&](std::size_t idx) { return fis_[idx].point.kind; };
  bool has_dfi = false, has_sfi = false;
  std::size_t dfi_mid = kVirtual, sfi_mid = kVirtual;
  for (std::size_t i = 0; i < fis_.size(); ++i) {
    if (fis_[i].point.kind == FilterKind::kDissimilarity) {
      has_dfi = true;
      dfi_mid = i;
    } else {
      has_sfi = true;
      if (sfi_mid == kVirtual) sfi_mid = i;
    }
  }

  // DFI pair.
  if (!up_virtual && kind_of(up_idx) == FilterKind::kDissimilarity) {
    const double c_up = collide(up_idx);
    const double c_lo = lo_virtual ? 0.0 : collide(lo_idx);
    return c_up * (1.0 - c_lo);
  }
  // SFI pair.
  const bool lo_is_sfi =
      !lo_virtual && kind_of(lo_idx) == FilterKind::kSimilarity;
  if (lo_is_sfi || (lo_virtual && !up_virtual && !has_dfi)) {
    const double c_lo = lo_is_sfi ? collide(lo_idx) : 1.0;
    const double c_up = up_virtual ? 0.0 : collide(up_idx);
    return c_lo * (1.0 - c_up);
  }
  // Mixed.
  if (!has_sfi) {
    const double c_lo = lo_virtual ? 0.0 : collide(lo_idx);
    return 1.0 - c_lo;
  }
  double p_left = 0.0;
  if (has_dfi) {
    const double c_mid = collide(dfi_mid);
    const double c_lo =
        (!lo_virtual && lo_idx != dfi_mid) ? collide(lo_idx) : 0.0;
    p_left = c_mid * (1.0 - c_lo);
  }
  const double c_smid = collide(sfi_mid);
  const double c_up = (!up_virtual && up_idx != sfi_mid &&
                       kind_of(up_idx) == FilterKind::kSimilarity)
                          ? collide(up_idx)
                          : 0.0;
  const double p_right = c_smid * (1.0 - c_up);
  return 1.0 - (1.0 - p_left) * (1.0 - p_right);
}

double LayoutErrorModel::ExpectedRecall(double sigma1, double sigma2) const {
  const double answer = hist_->MassInRange(sigma1, sigma2);
  if (answer <= 0.0) return 1.0;
  const double retrieved_in_range = IntegrateAgainstHist(
      *hist_, sigma1, sigma2,
      [&](double s) { return RetrievalProbability(s, sigma1, sigma2); });
  return Clamp(retrieved_in_range / answer, 0.0, 1.0);
}

double LayoutErrorModel::ExpectedPrecision(double sigma1,
                                           double sigma2) const {
  const double in_range = IntegrateAgainstHist(
      *hist_, sigma1, sigma2,
      [&](double s) { return RetrievalProbability(s, sigma1, sigma2); });
  const double below = IntegrateAgainstHist(
      *hist_, 0.0, sigma1,
      [&](double s) { return RetrievalProbability(s, sigma1, sigma2); });
  const double above = IntegrateAgainstHist(
      *hist_, sigma2, 1.0,
      [&](double s) { return RetrievalProbability(s, sigma1, sigma2); });
  const double total = in_range + below + above;
  if (total <= 0.0) return 1.0;
  return Clamp(in_range / total, 0.0, 1.0);
}

std::vector<std::pair<double, double>> LayoutErrorModel::DecompositionIntervals()
    const {
  std::vector<std::pair<double, double>> ranges;
  std::vector<double> points;
  for (const auto& fi : fis_) points.push_back(fi.point.similarity);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  double prev = 0.0;
  for (double p : points) {
    if (p > prev) ranges.emplace_back(prev, p);
    prev = p;
  }
  if (prev < 1.0) ranges.emplace_back(prev, 1.0);
  return ranges;
}

double LayoutErrorModel::WorstCaseRecall() const {
  double worst = 1.0;
  for (const auto& [lo, hi] : DecompositionIntervals()) {
    worst = std::min(worst, ExpectedRecall(lo, hi));
  }
  return worst;
}

double LayoutErrorModel::WorkloadAverageRecall(std::size_t grid) const {
  // Grid endpoints are interior midpoints (i + 0.5)/grid: a range starting
  // exactly at 0 or ending exactly at 1 is answered by the trivial virtual
  // endpoint plan (no subtraction) and is far easier than the generic
  // ranges the workload actually asks, so including the exact endpoints
  // makes the average wildly optimistic.
  if (grid < 2) grid = 2;
  double weighted = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = i + 1; j < grid; ++j) {
      const double lo =
          (static_cast<double>(i) + 0.5) / static_cast<double>(grid);
      const double hi =
          (static_cast<double>(j) + 0.5) / static_cast<double>(grid);
      const double mass = hist_->MassInRange(lo, hi);
      if (mass <= 0.0) continue;
      weighted += mass * ExpectedRecall(lo, hi);
      weight += mass;
    }
  }
  return weight <= 0.0 ? 1.0 : weighted / weight;
}

double LayoutErrorModel::WorkloadAveragePrecision(std::size_t grid) const {
  if (grid < 2) grid = 2;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = i + 1; j < grid; ++j) {
      const double lo =
          (static_cast<double>(i) + 0.5) / static_cast<double>(grid);
      const double hi =
          (static_cast<double>(j) + 0.5) / static_cast<double>(grid);
      sum += ExpectedPrecision(lo, hi);
      ++count;
    }
  }
  return count == 0 ? 1.0 : sum / static_cast<double>(count);
}

double LayoutErrorModel::WorstCasePrecision(double min_answer_mass) const {
  double worst = 1.0;
  for (const auto& [lo, hi] : DecompositionIntervals()) {
    if (hist_->MassInRange(lo, hi) < min_answer_mass) continue;
    worst = std::min(worst, ExpectedPrecision(lo, hi));
  }
  return worst;
}

}  // namespace ssr
