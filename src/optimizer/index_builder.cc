#include "optimizer/index_builder.h"

#include <cmath>
#include <sstream>

#include "optimizer/equidepth.h"
#include "optimizer/error_model.h"
#include "optimizer/greedy_allocator.h"
#include "util/logging.h"
#include "util/mathutil.h"

namespace ssr {

std::string BuiltLayout::ToString() const {
  std::ostringstream out;
  out << layout.ToString() << "\npredicted workload-average recall "
      << predicted_recall << ", precision " << predicted_precision
      << "\npredicted worst-case interval recall " << predicted_worst_recall
      << ", precision " << predicted_worst_precision;
  return out.str();
}

Result<BuiltLayout> ConstructIndexLayout(const SimilarityHistogram& hist,
                                         const Embedding& embedding,
                                         const IndexBuilderOptions& options) {
  if (options.table_budget < 2) {
    return Status::InvalidArgument(
        "table budget must be >= 2 (the dual point at delta needs both an "
        "SFI and a DFI)");
  }
  if (options.recall_threshold <= 0.0 || options.recall_threshold > 1.0) {
    return Status::InvalidArgument("recall threshold must be in (0, 1]");
  }

  // Lemma 5 interval cap: m < T / (1 − a).
  std::size_t cap = options.max_fis;
  const double a = Clamp(options.precision_answer_fraction, 0.0, 0.999);
  const double lemma5 = options.recall_threshold / (1.0 - a);
  if (lemma5 < static_cast<double>(cap)) {
    cap = static_cast<std::size_t>(std::floor(lemma5));
  }
  if (cap < 1) cap = 1;

  BuiltLayout best;
  bool have_best = false;
  Result<BuiltLayout> first_failure =
      Status::Internal("index construction produced no layout");

  for (std::size_t i = 1; i <= cap; ++i) {
    IndexLayout candidate = PlaceFilterIndices(hist, i);
    if (candidate.total_tables() > options.table_budget ||
        candidate.points.size() > options.table_budget) {
      break;  // not enough tables for one per structure
    }
    auto allocation = GreedyAllocateTables(&candidate, options.table_budget,
                                           hist, embedding);
    if (!allocation.ok()) break;
    // Objective 2: with the recall threshold met, spend remaining recall
    // slack on precision by sharpening the filters.
    RefineForPrecision(&candidate, hist, embedding,
                       options.recall_threshold);
    LayoutErrorModel model(candidate, embedding, hist);
    BuilderIteration iter;
    iter.num_fis = i;
    iter.average_recall = model.WorkloadAverageRecall();
    iter.average_precision = model.WorkloadAveragePrecision();
    iter.worst_case_recall = model.WorstCaseRecall();
    iter.worst_case_precision = model.WorstCasePrecision();
    iter.accepted = iter.average_recall >= options.recall_threshold;
    SSR_LOG(kInfo) << "construction i=" << i << " avg recall="
                   << iter.average_recall << " avg precision="
                   << iter.average_precision
                   << (iter.accepted ? " (accepted)" : " (rejected)");
    if (iter.accepted) {
      best.layout = candidate;
      best.predicted_recall = iter.average_recall;
      best.predicted_precision = iter.average_precision;
      best.predicted_worst_recall = iter.worst_case_recall;
      best.predicted_worst_precision = iter.worst_case_precision;
      have_best = true;
    }
    best.trace.push_back(iter);
    if (!iter.accepted) break;  // Lemma 3: recall only degrades from here
  }

  if (!have_best) {
    return Status::FailedPrecondition(
        "no layout meets the recall threshold under the given budget; "
        "increase the budget or lower the threshold");
  }
  return best;
}

}  // namespace ssr
