#include "obs/profile.h"

#include "obs/json_writer.h"

namespace ssr {
namespace obs {

Profiler& Profiler::Default() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::Enable(PerfMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (group_ == nullptr) {
      group_ = std::make_unique<PerfCounterGroup>(mode);
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

PerfSource Profiler::source() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_ == nullptr ? PerfSource::kDisabled : group_->source();
}

PerfSample Profiler::ReadNow() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (group_ == nullptr) return PerfSample();
  return group_->Read();
}

void Profiler::Record(std::string_view name, const PerfSample& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(name), PhaseProfile()).first;
    it->second.name = std::string(name);
  }
  it->second.count += 1;
  it->second.totals.Accumulate(delta);
}

std::vector<PhaseProfile> Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseProfile> out;
  out.reserve(phases_.size());
  for (const auto& [name, profile] : phases_) out.push_back(profile);
  return out;
}

void Profiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
}

ProfileScope::ProfileScope(Profiler& profiler, std::string_view name) {
  if (!profiler.enabled()) return;
  profiler_ = &profiler;
  name_.assign(name);
  begin_ = profiler.ReadNow();
}

ProfileScope::~ProfileScope() {
  if (profiler_ == nullptr) return;
  profiler_->Record(name_, Delta(profiler_->ReadNow(), begin_));
}

void WriteProfileJson(JsonWriter& writer, const Profiler& profiler) {
  writer.BeginObject();
  writer.Key("source").String(PerfSourceName(profiler.source()));
  writer.Key("phases").BeginArray();
  for (const PhaseProfile& phase : profiler.Snapshot()) {
    writer.BeginObject();
    writer.Key("name").String(phase.name);
    writer.Key("count").UInt(phase.count);
    writer.Key("counters").BeginObject();
    for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
      const auto c = static_cast<PerfCounter>(i);
      if (!phase.totals.valid(c)) continue;
      writer.Key(PerfCounterName(c)).UInt(phase.totals.value(c));
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

}  // namespace obs
}  // namespace ssr
