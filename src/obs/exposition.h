// Prometheus exposition-format conformance: the metric-name grammar, the
// # HELP registry (every metric this codebase registers must have a help
// string — the conformance test fails on any instrument that slips in
// without one), and a validator for rendered exposition text. The
// validator is what the benchrunner's `introspection` suite and the CI
// smoke job run against a live `/metrics` scrape, so a malformed family is
// a hard failure long before a real Prometheus server would notice.

#ifndef SSR_OBS_EXPOSITION_H_
#define SSR_OBS_EXPOSITION_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ssr {
namespace obs {

/// True iff `name` matches the exposition grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
bool IsValidMetricName(std::string_view name);

/// The registered help string for a metric name, or nullptr when the name
/// is unknown. Exporters emit `# HELP` from this table; the conformance
/// test requires a non-null entry for every instrument in the registry.
const char* MetricHelp(std::string_view name);

/// Every (name, help) pair in the table, name-sorted. Exposed so tests can
/// check the table itself conforms (valid names, non-empty help).
struct MetricHelpEntry {
  std::string_view name;
  std::string_view help;
};
const std::vector<MetricHelpEntry>& MetricHelpTable();

/// One conformance violation found in exposition text.
struct ExpositionIssue {
  std::size_t line = 0;  // 1-based; 0 for document-level issues
  std::string message;
};

/// Validates Prometheus text exposition (format 0.0.4). Checks, per line:
/// comment syntax, metric-name grammar, label syntax, parseable sample
/// values; and per family: a # TYPE before the first sample, no duplicate
/// series, and histogram invariants (cumulative buckets non-decreasing,
/// an `le="+Inf"` bucket present and equal to `_count`, `_sum`/`_count`
/// present). Returns every violation found; empty means conformant.
std::vector<ExpositionIssue> ValidateExposition(std::string_view text);

/// Convenience: formats the issues one per line ("line N: message"), or ""
/// when the input conforms.
std::string FormatIssues(const std::vector<ExpositionIssue>& issues);

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_EXPOSITION_H_
