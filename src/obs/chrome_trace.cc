#include "obs/chrome_trace.h"

#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <string_view>

#include "obs/json_writer.h"

namespace ssr {
namespace obs {

namespace {

constexpr std::uint32_t kPid = 1;

// Chrome-trace tids are 1-based; worker w renders as tid w + 1, giving one
// track per exec worker (the main thread is worker 0 -> tid 1).
std::uint32_t WorkerTid(std::uint32_t worker) { return worker + 1; }

void WriteCommonEventFields(JsonWriter& writer, std::string_view name,
                            const char* phase, double ts, std::uint32_t tid) {
  writer.Key("name").String(name);
  writer.Key("ph").String(phase);
  writer.Key("pid").UInt(kPid);
  writer.Key("tid").UInt(tid);
  writer.Key("ts").Double(ts);
}

}  // namespace

void WriteChromeTraceJson(JsonWriter& writer,
                          const std::vector<SpanRecord>& spans) {
  writer.BeginObject();
  writer.Key("displayTimeUnit").String("ms");
  writer.Key("otherData").BeginObject();
  writer.Key("generator").String("ssr");
  writer.EndObject();
  writer.Key("traceEvents").BeginArray();

  // Process/thread naming metadata so the tracks read "ssr / query" (the
  // main thread) and "ssr / worker N" (exec pool threads).
  writer.BeginObject();
  WriteCommonEventFields(writer, "process_name", "M", 0.0, WorkerTid(0));
  writer.Key("args").BeginObject().Key("name").String("ssr").EndObject();
  writer.EndObject();
  std::set<std::uint32_t> workers{0};
  for (const SpanRecord& span : spans) workers.insert(span.worker);
  for (std::uint32_t worker : workers) {
    const std::string track =
        worker == 0 ? "query" : "worker " + std::to_string(worker);
    writer.BeginObject();
    WriteCommonEventFields(writer, "thread_name", "M", 0.0,
                           WorkerTid(worker));
    writer.Key("args").BeginObject().Key("name").String(track).EndObject();
    writer.EndObject();
  }

  for (const SpanRecord& span : spans) {
    // The slice itself: a complete ("X") event.
    writer.BeginObject();
    WriteCommonEventFields(writer, span.name, "X", span.start_micros,
                           WorkerTid(span.worker));
    writer.Key("dur").Double(span.duration_micros);
    writer.Key("cat").String("span");
    writer.Key("args").BeginObject();
    writer.Key("span_id").UInt(span.id);
    if (span.parent_id != 0) {
      writer.Key("parent_id").UInt(span.parent_id);
    }
    for (const auto& [key, value] : span.tags) {
      writer.Key(key).String(value);
    }
    for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
      const auto c = static_cast<PerfCounter>(i);
      if (!span.counters.valid(c)) continue;
      writer.Key(PerfCounterName(c)).UInt(span.counters.value(c));
    }
    writer.EndObject();
    writer.EndObject();

    // One counter ("C") event per measured counter, timestamped at the
    // span's start: each counter gets its own track plotting the per-span
    // delta over the run.
    for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
      const auto c = static_cast<PerfCounter>(i);
      if (!span.counters.valid(c)) continue;
      writer.BeginObject();
      WriteCommonEventFields(writer, PerfCounterName(c), "C",
                             span.start_micros, WorkerTid(span.worker));
      writer.Key("args").BeginObject();
      writer.Key("value").UInt(span.counters.value(c));
      writer.EndObject();
      writer.EndObject();
    }

    // Tags named "counter.<track>" also plot as counter tracks, the
    // convention the workload observability layer uses to chart sample
    // rates and observed recall over a run (shadow_oracle.cc). Tags whose
    // value does not parse as a number are left as plain span args only.
    for (const auto& [key, value] : span.tags) {
      constexpr std::string_view kCounterPrefix = "counter.";
      const std::string_view key_view(key);
      if (key_view.size() <= kCounterPrefix.size() ||
          key_view.substr(0, kCounterPrefix.size()) != kCounterPrefix) {
        continue;
      }
      const char* begin = value.c_str();
      char* end = nullptr;
      const double numeric = std::strtod(begin, &end);
      if (end == begin || end == nullptr || *end != '\0') continue;
      writer.BeginObject();
      WriteCommonEventFields(writer, key_view.substr(kCounterPrefix.size()),
                             "C", span.start_micros, WorkerTid(span.worker));
      writer.Key("args").BeginObject();
      writer.Key("value").Double(numeric);
      writer.EndObject();
      writer.EndObject();
    }
  }

  writer.EndArray();
  writer.EndObject();
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  JsonWriter writer;
  WriteChromeTraceJson(writer, spans);
  return writer.str();
}

std::string ChromeTraceJson(const Tracer& tracer) {
  return ChromeTraceJson(tracer.Snapshot());
}

bool WriteChromeTraceFile(const std::string& path, const Tracer& tracer,
                          std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    if (error != nullptr) *error = "cannot open trace file: " + path;
    return false;
  }
  out << ChromeTraceJson(tracer) << "\n";
  if (!out.good()) {
    if (error != nullptr) *error = "trace write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace ssr
