// Shadow-oracle recall estimation: re-executes a deterministic 1-in-N
// sample of answered queries through the exact sequential-scan oracle (the
// same ground truth tests/difftest holds the index against) and publishes
// the observed recall and precision, overall and per lower-threshold
// bucket:
//
//   ssr_shadow_offered_total   counter,   scope
//   ssr_shadow_sampled_total   counter,   scope
//   ssr_workload_sample_rate   gauge,     scope (1 / sample_every)
//   ssr_observed_recall        histogram, scope and scope/bucket/<b>
//   ssr_observed_precision     histogram, scope and scope/bucket/<b>
//
// Sampling math: with per-query recall r_i, the estimator reports the mean
// of r_i over the sampled subset. Decimation by arrival order is
// independent of query content, so the sampled mean is an unbiased
// estimate of the full-stream mean with standard error
// sqrt(Var(r)/n_sampled) — for recall in [0, 1] that is at most
// 1/(2*sqrt(n)), i.e. ±0.05 already at n = 100 sampled queries per bucket.
//
// Recall is answer-level: |answer ∩ truth| / |truth| (1 when truth is
// empty). Precision is *candidate*-level: |answer ∩ truth| / candidates —
// verified answers contain no false positives by construction (every sid
// is checked with exact Jaccard), so the interesting precision is how much
// of the candidate set the filters let through, the paper's fig. 7 notion.
//
// The oracle scans through a private SetStore::ReadView, so shadow reads
// never pollute the live path's buffer pool or I/O accounting. Offer takes
// a mutex around the scan; callers only invoke it off the hot path (serial
// queries or the post-batch sample pass).

#ifndef SSR_OBS_SHADOW_ORACLE_H_
#define SSR_OBS_SHADOW_ORACLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/set_store.h"
#include "util/types.h"

namespace ssr {
namespace obs {

struct ShadowOracleOptions {
  /// Verify every `sample_every`-th offered query (first one included).
  std::uint64_t sample_every = 64;

  /// Per-bucket resolution: bucket b covers σ1 in [b/buckets, (b+1)/buckets)
  /// (last bucket closed), aligned with the workload observer's threshold
  /// bins when the counts match.
  std::size_t threshold_buckets = 10;

  /// Buffer-pool pages for the oracle's private ReadView; 0 = the store's
  /// configured capacity.
  std::size_t view_buffer_pool_pages = 0;

  /// Instrument scope; empty allocates a unique "shadow/N" scope.
  std::string metrics_scope;
};

/// Per-bucket running aggregate of the estimator.
struct ShadowBucketStats {
  std::uint64_t sampled = 0;
  double recall_sum = 0.0;
  double precision_sum = 0.0;
  double MeanRecall() const {
    return sampled == 0 ? 0.0 : recall_sum / static_cast<double>(sampled);
  }
  double MeanPrecision() const {
    return sampled == 0 ? 0.0 : precision_sum / static_cast<double>(sampled);
  }
};

class ShadowOracleEstimator {
 public:
  /// The store must outlive the estimator and must not be mutated while an
  /// Offer is in flight (the usual immutable-index query contract).
  explicit ShadowOracleEstimator(const SetStore& store,
                                 ShadowOracleOptions options = {});

  /// Offers one answered query; runs the oracle on every sample_every-th
  /// call. Returns true when this query was shadow-verified. Thread-safe
  /// (mutex; the scan dominates the hold time).
  bool Offer(const ElementSet& query, double sigma1, double sigma2,
             const std::vector<SetId>& answer_sids, std::size_t candidates);

  std::uint64_t offered() const;
  std::uint64_t sampled() const;
  ShadowBucketStats overall() const;
  /// Stats for σ1 bucket `b`; zeroed stats for untouched buckets.
  ShadowBucketStats bucket(std::size_t b) const;
  std::size_t num_buckets() const { return options_.threshold_buckets; }
  const std::string& metrics_scope() const { return options_.metrics_scope; }
  double sample_rate() const {
    return 1.0 / static_cast<double>(options_.sample_every);
  }

 private:
  std::size_t BucketOf(double sigma1) const;

  ShadowOracleOptions options_;
  mutable std::mutex mu_;
  SetStore::ReadView view_;
  std::uint64_t offered_ = 0;
  std::uint64_t sampled_ = 0;
  ShadowBucketStats overall_;
  std::vector<ShadowBucketStats> buckets_;

  Counter* offered_total_;
  Counter* sampled_total_;
  Gauge* sample_rate_gauge_;
  Histogram* recall_hist_;
  Histogram* precision_hist_;
  std::vector<Histogram*> bucket_recall_;
  std::vector<Histogram*> bucket_precision_;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_SHADOW_ORACLE_H_
