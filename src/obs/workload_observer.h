// Live workload capture: a low-overhead, thread-safe, mergeable observer
// that samples the query stream into (a) a threshold histogram whose bins
// follow the optimizer's SimilarityHistogram convention (bin i covers
// [i/bins, (i+1)/bins), last bin closed) so captured distributions feed the
// §5 allocator directly, (b) a query set-size histogram, (c) per-FI
// probe/hit/selectivity counters, and (d) per-shard load counters with a
// derived skew gauge.
//
// Concurrency model mirrors QueryStats: the serial query path records into
// one observer directly (relaxed atomics), while concurrent executors give
// every worker a private unscoped observer and MergeFrom them after the
// batch — so the hot path never contends and merged totals are exact.
//
// A scoped observer (non-empty metrics_scope) additionally mirrors every
// count into obs::MetricsRegistry::Default() instruments, which the
// existing Prometheus/JSON exporters render with no further wiring:
//   ssr_workload_queries_total            counter, scope
//   ssr_workload_sigma1 / _sigma2        histogram, scope (threshold bins)
//   ssr_workload_range_coverage          gauge,   scope/bin/<i> ([σ1, σ2]
//                                         interval-coverage mass per bin)
//   ssr_workload_query_set_size          histogram, scope
//   ssr_workload_fi_probes_total          counter, scope/fi/<i>
//   ssr_workload_fi_bucket_accesses_total counter, scope/fi/<i>
//   ssr_workload_fi_sids_total            counter, scope/fi/<i>
//   ssr_workload_fi_failed_probes_total   counter, scope/fi/<i>
//   ssr_workload_fi_selectivity           gauge,   scope/fi/<i>
//   ssr_workload_shard_queries_total      counter, scope/shard/<s>
//   ssr_workload_shard_results_total      counter, scope/shard/<s>
//   ssr_workload_shard_load_share         gauge,   scope/shard/<s>
//   ssr_workload_shard_skew               gauge,   scope
//
// Beyond counting, an observer is the attachment point for the two sampled
// side channels: a ShadowOracleEstimator (obs/shadow_oracle.h) and a
// QueryLogRecorder (obs/query_log.h). OfferSample feeds both; they apply
// their own 1-in-N decimation under their own locks, off the hot path.

#ifndef SSR_OBS_WORKLOAD_OBSERVER_H_
#define SSR_OBS_WORKLOAD_OBSERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/types.h"

namespace ssr {
namespace obs {

class ShadowOracleEstimator;
class QueryLogRecorder;

struct WorkloadObserverOptions {
  /// Threshold-histogram resolution. Matches the default bin count the
  /// optimizer's equidepth machinery works at well enough for layout
  /// placement; bin i covers [i/bins, (i+1)/bins), the last bin closed.
  std::size_t threshold_bins = 20;

  /// Per-FI counter slots (probes beyond this index are dropped; size it to
  /// the index's num_filter_indices + 1 for the mixed-plan extra FI).
  std::size_t max_fis = 16;

  /// Per-shard counter slots; 0 for unsharded deployments.
  std::size_t num_shards = 0;

  /// Non-empty: mirror counts into the default registry under this scope.
  /// Empty: pure in-memory counters (the per-worker merge sources).
  std::string metrics_scope;
};

/// Plain-value snapshot of everything an observer has counted. The
/// optimizer adapter (optimizer/observed_workload.h) consumes this.
struct WorkloadSnapshot {
  std::size_t threshold_bins = 0;
  std::uint64_t queries = 0;
  std::vector<std::uint64_t> sigma1_bins;   // lower-threshold histogram
  std::vector<std::uint64_t> sigma2_bins;   // upper-threshold histogram
  /// Fractional interval-coverage mass per bin: each query adds the overlap
  /// of [σ1, σ2] with the bin, in units of one bin width. A point query
  /// (σ1 == σ2) adds a full unit to its bin.
  std::vector<double> range_coverage;
  std::vector<double> set_size_bounds;      // histogram bucket upper bounds
  std::vector<std::uint64_t> set_size_bins; // one extra overflow bucket

  struct FiCounters {
    std::uint64_t probes = 0;
    std::uint64_t failed_probes = 0;
    std::uint64_t bucket_accesses = 0;
    std::uint64_t sids = 0;  // candidate sids the FI's probes produced
    /// Average sids per probe (0 when never probed).
    double selectivity() const {
      return probes == 0 ? 0.0
                         : static_cast<double>(sids) /
                               static_cast<double>(probes);
    }
  };
  std::vector<FiCounters> fis;

  struct ShardCounters {
    std::uint64_t queries = 0;
    std::uint64_t results = 0;
  };
  std::vector<ShardCounters> shards;

  /// Load skew: (max shard query share) x num_shards. 1.0 = perfectly
  /// balanced, num_shards = every query answered by one shard. 0 when no
  /// shard traffic was recorded.
  double ShardSkew() const;
};

class WorkloadObserver {
 public:
  explicit WorkloadObserver(WorkloadObserverOptions options = {});
  WorkloadObserver(const WorkloadObserver&) = delete;
  WorkloadObserver& operator=(const WorkloadObserver&) = delete;

  /// Counts one query's thresholds and set size. Thread-safe, relaxed
  /// atomics only.
  void CountQuery(double sigma1, double sigma2, std::size_t query_size);

  /// Counts one FI probe: `accesses` hash-table bucket accesses yielding
  /// `sids` candidate sids. Probes at fi >= max_fis are dropped (counted
  /// in dropped_fi_probes). Thread-safe.
  void CountFiProbe(std::size_t fi, std::uint64_t accesses,
                    std::uint64_t sids, bool failed);

  /// Counts one shard's contribution to a scattered query. Thread-safe.
  void CountShardAnswer(std::uint32_t shard, std::uint64_t results);

  /// Folds `other`'s counts into this observer (and into this observer's
  /// registry instruments when scoped). `other` must have the same
  /// threshold_bins / max_fis / num_shards shape. Call after the workers
  /// finish; not safe concurrently with records into `other`.
  void MergeFrom(const WorkloadObserver& other);

  /// Recomputes the derived gauges (per-FI selectivity, per-shard load
  /// share, skew) from current totals. Scoped observers only; cheap enough
  /// to call once per query or batch.
  void UpdateGauges();

  /// Hands one answered query to the attached sampled side channels (the
  /// shadow oracle and the query-log recorder). Decimation and locking are
  /// theirs; unattached channels make this a no-op. `candidates` is the
  /// pre-verification candidate count (the denominator of the estimator's
  /// precision).
  void OfferSample(const ElementSet& query, double sigma1, double sigma2,
                   const std::vector<SetId>& result_sids,
                   std::size_t candidates);

  void set_shadow_oracle(ShadowOracleEstimator* estimator) {
    shadow_oracle_ = estimator;
  }
  void set_recorder(QueryLogRecorder* recorder) { recorder_ = recorder; }
  ShadowOracleEstimator* shadow_oracle() const { return shadow_oracle_; }
  QueryLogRecorder* recorder() const { return recorder_; }

  /// Plain-value copy of all counts (relaxed reads; exact once writers are
  /// quiescent).
  WorkloadSnapshot Snapshot() const;

  std::uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_fi_probes() const {
    return dropped_fi_probes_.load(std::memory_order_relaxed);
  }
  const WorkloadObserverOptions& options() const { return options_; }

 private:
  /// The SimilarityHistogram bin of a threshold: floor(s * bins), the last
  /// bin closed so s == 1.0 lands in bins - 1.
  std::size_t ThresholdBin(double s) const;

  WorkloadObserverOptions options_;
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> dropped_fi_probes_{0};
  std::vector<std::atomic<std::uint64_t>> sigma1_bins_;
  std::vector<std::atomic<std::uint64_t>> sigma2_bins_;
  /// Fixed-point interval-coverage mass (units of 1/kCoverageScale bins) —
  /// atomics cannot hold doubles cheaply, and coverage increments are
  /// fractional bin overlaps.
  std::vector<std::atomic<std::uint64_t>> range_coverage_fp_;
  std::vector<double> set_size_bounds_;
  std::vector<std::atomic<std::uint64_t>> set_size_bins_;

  struct FiSlots {
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> failed_probes{0};
    std::atomic<std::uint64_t> bucket_accesses{0};
    std::atomic<std::uint64_t> sids{0};
  };
  std::vector<FiSlots> fi_slots_;

  struct ShardSlots {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> results{0};
  };
  std::vector<ShardSlots> shard_slots_;

  ShadowOracleEstimator* shadow_oracle_ = nullptr;  // not owned
  QueryLogRecorder* recorder_ = nullptr;            // not owned

  // Registry mirrors; all null for unscoped observers.
  Counter* queries_total_ = nullptr;
  Histogram* sigma1_hist_ = nullptr;
  Histogram* sigma2_hist_ = nullptr;
  Histogram* set_size_hist_ = nullptr;
  std::vector<Gauge*> coverage_gauges_;  // one per threshold bin
  struct FiInstruments {
    Counter* probes = nullptr;
    Counter* failed_probes = nullptr;
    Counter* bucket_accesses = nullptr;
    Counter* sids = nullptr;
    Gauge* selectivity = nullptr;
  };
  std::vector<FiInstruments> fi_instruments_;
  struct ShardInstruments {
    Counter* queries = nullptr;
    Counter* results = nullptr;
    Gauge* load_share = nullptr;
  };
  std::vector<ShardInstruments> shard_instruments_;
  Gauge* shard_skew_ = nullptr;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_WORKLOAD_OBSERVER_H_
