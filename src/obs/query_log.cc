#include "obs/query_log.h"

#include <sstream>
#include <utility>

#include "storage/snapshot.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace ssr {
namespace obs {

namespace {
constexpr std::string_view kQueryLogMagic = "SSRQLOG";
constexpr std::uint32_t kQueryLogVersion = 1;
// A recorded query set of this many elements is damage, not data — the
// stores cap sets far below this.
constexpr std::uint64_t kMaxQueryElements = 1ULL << 24;
}  // namespace

std::uint64_t QueryAnswerDigest(const std::vector<SetId>& sids) {
  std::uint64_t h = SplitMix64(sids.size());
  for (SetId sid : sids) h = HashCombine(h, sid);
  return h;
}

Status QueryLog::SaveTo(std::ostream& out) const {
  SnapshotWriter snapshot(out, kQueryLogMagic, /*version=*/2);

  BinaryWriter& meta = snapshot.BeginSection("meta");
  meta.WriteU32(kQueryLogVersion);
  meta.WriteU64(sample_every);
  meta.WriteU64(offered);
  meta.WriteU64(queries.size());
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  BinaryWriter& body = snapshot.BeginSection("queries");
  for (const RecordedQuery& q : queries) {
    body.WriteDouble(q.sigma1);
    body.WriteDouble(q.sigma2);
    body.WriteU32(q.result_count);
    body.WriteU64(q.result_digest);
    body.WriteVector(q.query);
  }
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  return snapshot.Finish();
}

Result<QueryLog> QueryLog::Load(std::istream& in) {
  SnapshotReader snapshot(in);
  std::uint32_t snapshot_version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kQueryLogMagic, &snapshot_version));
  if (snapshot_version != 2) {
    return Status::NotSupported("unknown query-log snapshot version");
  }

  QueryLog log;
  std::string payload;
  std::uint64_t recorded = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("meta", &payload));
  {
    std::istringstream meta_in(payload);
    BinaryReader meta(meta_in);
    std::uint32_t log_version = 0;
    SSR_RETURN_IF_ERROR(meta.ReadU32(&log_version));
    if (log_version != kQueryLogVersion) {
      return Status::NotSupported("unknown query-log version");
    }
    SSR_RETURN_IF_ERROR(meta.ReadU64(&log.sample_every));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&log.offered));
    SSR_RETURN_IF_ERROR(meta.ReadU64(&recorded));
    if (log.sample_every == 0) {
      return Status::Corruption("query log sample_every is zero");
    }
    if (recorded > log.offered) {
      return Status::Corruption("query log records more than it offered");
    }
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("queries", &payload));
  {
    std::istringstream body_in(payload);
    BinaryReader body(body_in);
    log.queries.reserve(static_cast<std::size_t>(recorded));
    for (std::uint64_t i = 0; i < recorded; ++i) {
      RecordedQuery q;
      SSR_RETURN_IF_ERROR(body.ReadDouble(&q.sigma1));
      SSR_RETURN_IF_ERROR(body.ReadDouble(&q.sigma2));
      SSR_RETURN_IF_ERROR(body.ReadU32(&q.result_count));
      SSR_RETURN_IF_ERROR(body.ReadU64(&q.result_digest));
      SSR_RETURN_IF_ERROR(body.ReadVector(&q.query));
      if (!(q.sigma1 >= 0.0 && q.sigma1 <= q.sigma2 && q.sigma2 <= 1.0)) {
        return Status::Corruption("recorded query range out of [0, 1]");
      }
      if (q.query.size() > kMaxQueryElements) {
        return Status::Corruption("recorded query set implausibly large");
      }
      log.queries.push_back(std::move(q));
    }
    if (body.RemainingBytes() != 0) {
      return Status::Corruption("query log has trailing bytes");
    }
  }

  SSR_RETURN_IF_ERROR(snapshot.VerifyFooter());
  return log;
}

QueryLogRecorder::QueryLogRecorder(std::uint64_t sample_every) {
  log_.sample_every = sample_every == 0 ? 1 : sample_every;
}

bool QueryLogRecorder::Offer(const ElementSet& query, double sigma1,
                             double sigma2,
                             const std::vector<SetId>& result_sids) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool record = log_.offered % log_.sample_every == 0;
  ++log_.offered;
  if (!record) return false;
  RecordedQuery q;
  q.query = query;
  q.sigma1 = sigma1;
  q.sigma2 = sigma2;
  q.result_count = static_cast<std::uint32_t>(result_sids.size());
  q.result_digest = QueryAnswerDigest(result_sids);
  log_.queries.push_back(std::move(q));
  return true;
}

QueryLog QueryLogRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

QueryLog QueryLogRecorder::TakeLog() {
  std::lock_guard<std::mutex> lock(mu_);
  QueryLog out = std::move(log_);
  log_ = QueryLog{};
  log_.sample_every = out.sample_every;
  return out;
}

std::uint64_t QueryLogRecorder::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.offered;
}

std::uint64_t QueryLogRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.queries.size();
}

}  // namespace obs
}  // namespace ssr
