#include "obs/slo.h"

#include <algorithm>

namespace ssr {
namespace obs {

SloTracker::SloTracker(std::vector<double> bounds, SloConfig config)
    : config_([&config] {
        if (!(config.availability_target > 0.0) ||
            config.availability_target >= 1.0) {
          config.availability_target = 0.999;
        }
        if (!(config.interval_seconds > 0.0)) config.interval_seconds = 5.0;
        if (config.num_windows == 0) config.num_windows = 720;
        return config;
      }()),
      latency_(std::move(bounds), config_.interval_seconds,
               config_.num_windows),
      total_(config_.interval_seconds, config_.num_windows),
      errors_(config_.interval_seconds, config_.num_windows) {}

void SloTracker::Tick(const Histogram* latency_source,
                      const Counter* total_source,
                      const Counter* error_source, double now_seconds) {
  if (latency_source != nullptr) {
    latency_.CaptureDelta(*latency_source, now_seconds);
  }
  if (total_source != nullptr) {
    total_.CaptureDelta(*total_source, now_seconds);
  }
  if (error_source != nullptr) {
    errors_.CaptureDelta(*error_source, now_seconds);
  }
}

void SloTracker::ObserveLatency(double micros, double now_seconds) {
  latency_.Observe(micros, now_seconds);
}

void SloTracker::RecordOutcomes(std::uint64_t total, std::uint64_t errors,
                                double now_seconds) {
  total_.Add(total, now_seconds);
  errors_.Add(std::min(errors, total), now_seconds);
}

SloWindowReport SloTracker::Report(double horizon_seconds,
                                   double now_seconds) {
  SloWindowReport report;
  report.horizon_seconds = horizon_seconds;

  const SlidingHistogram::Snapshot snap =
      latency_.Over(horizon_seconds, now_seconds);
  report.covered_seconds = snap.covered_seconds;
  report.latency_count = snap.count;
  report.p50_micros = latency_.Quantile(0.50, horizon_seconds, now_seconds);
  report.p99_micros = latency_.Quantile(0.99, horizon_seconds, now_seconds);
  report.p50_ok = config_.p50_target_micros <= 0.0 || snap.count == 0 ||
                  report.p50_micros <= config_.p50_target_micros;
  report.p99_ok = config_.p99_target_micros <= 0.0 || snap.count == 0 ||
                  report.p99_micros <= config_.p99_target_micros;

  report.total = total_.Over(horizon_seconds, now_seconds);
  report.errors =
      std::min(errors_.Over(horizon_seconds, now_seconds), report.total);
  if (report.total > 0) {
    const double error_ratio = static_cast<double>(report.errors) /
                               static_cast<double>(report.total);
    report.availability = 1.0 - error_ratio;
    const double budget = 1.0 - config_.availability_target;
    report.burn_rate = error_ratio / budget;
    report.availability_ok =
        report.availability >= config_.availability_target;
  }
  return report;
}

std::vector<SloWindowReport> SloTracker::CanonicalReports(
    double now_seconds) {
  return {Report(kSloWindowMinute, now_seconds),
          Report(kSloWindowFiveMinutes, now_seconds),
          Report(kSloWindowHour, now_seconds)};
}

}  // namespace obs
}  // namespace ssr
