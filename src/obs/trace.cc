#include "obs/trace.h"

#include <cstdio>

#include "obs/profile.h"

namespace ssr {
namespace obs {

namespace {
// The innermost open span on this thread; spans opened while another span
// is live nest under it. A single stack is shared across tracer instances
// (in practice one tracer is active at a time; tests that use private
// tracers nest correctly as long as they don't interleave two tracers on
// one thread).
thread_local TraceSpan* t_current_span = nullptr;

// Worker identity for trace tracks; 0 everywhere except exec pool threads.
thread_local std::uint32_t t_worker_id = 0;
}  // namespace

std::uint32_t CurrentWorkerId() { return t_worker_id; }

void SetCurrentWorkerId(std::uint32_t worker) { t_worker_id = worker; }

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::MicrosSinceEpoch() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
}

void Tracer::Record(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    next_slot_ = ring_.size() % capacity_;
  } else {
    ring_[next_slot_] = std::move(record);
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_slot_ points at the oldest record once the ring is full.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
    }
  }
  return out;
}

TraceSpan::TraceSpan(Tracer& tracer, std::string_view name) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  record_.id = tracer.NextSpanId();
  record_.worker = t_worker_id;
  record_.name.assign(name);
  parent_ = t_current_span;
  if (parent_ != nullptr && parent_->active()) {
    record_.parent_id = parent_->record_.id;
    record_.depth = parent_->record_.depth + 1;
  }
  Profiler& profiler = Profiler::Default();
  if (profiler.enabled()) {
    profiled_ = true;
    counters_at_open_ = profiler.ReadNow();
  }
  opened_at_ = std::chrono::steady_clock::now();
  record_.start_micros = tracer.MicrosSinceEpoch();
  t_current_span = this;
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  record_.duration_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - opened_at_)
          .count();
  if (profiled_) {
    Profiler& profiler = Profiler::Default();
    record_.counters = Delta(profiler.ReadNow(), counters_at_open_);
    profiler.Record(record_.name, record_.counters);
  }
  t_current_span = parent_;
  tracer_->Record(std::move(record_));
}

void TraceSpan::Tag(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.tags.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::Tag(std::string_view key, std::uint64_t value) {
  Tag(key, std::string_view(std::to_string(value)));
}

void TraceSpan::Tag(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  Tag(key, std::string_view(buf));
}

}  // namespace obs
}  // namespace ssr
