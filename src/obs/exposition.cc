#include "obs/exposition.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

namespace ssr {
namespace obs {

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStart(c) || (c >= '0' && c <= '9'); }

// (name, help) for every metric the system registers, name-sorted. The
// conformance test walks the live registry against this table, so adding
// an instrument without a row here fails tests — by design.
const MetricHelpEntry kHelpTable[] = {
    {"ssr_buffer_pool_evictions_total",
     "Pages evicted from the buffer pool."},
    {"ssr_buffer_pool_hits_total", "Buffer pool page lookups served from "
     "memory."},
    {"ssr_buffer_pool_misses_total",
     "Buffer pool page lookups that required a disk read."},
    {"ssr_degraded_queries_total",
     "Queries answered in degraded mode (partial results)."},
    {"ssr_dfi_probes_total", "Probes against dynamic frequency indices."},
    {"ssr_exec_batch_queries_total",
     "Queries executed through the batch executor."},
    {"ssr_exec_batches_total", "Batches executed by the batch executor."},
    {"ssr_fault_hits_total", "Fault-injection sites evaluated."},
    {"ssr_fault_injected_total", "Faults injected by the fault harness."},
    {"ssr_fault_latency_injected_total",
     "Artificial latency delays injected by the fault harness."},
    {"ssr_hash_bucket_probes_total",
     "Bucket probes against in-memory hash tables."},
    {"ssr_hash_sids_scanned_total",
     "Set ids scanned while probing hash-table buckets."},
    {"ssr_health_verdict",
     "Current health verdict (0 healthy, 1 degraded, 2 unhealthy)."},
    {"ssr_index_bucket_accesses_total",
     "Signature-bucket accesses during index probes."},
    {"ssr_index_bucket_pages_total",
     "Bucket pages touched during index probes."},
    {"ssr_index_candidates_per_query",
     "Candidate sets examined per query before verification."},
    {"ssr_index_fetch_failures_total",
     "Candidate set fetches that failed during verification."},
    {"ssr_index_live_sets", "Sets currently indexed."},
    {"ssr_index_probe_failures_total", "Index probes that failed."},
    {"ssr_index_queries_total", "Similarity queries served by the index."},
    {"ssr_index_query_latency_micros",
     "End-to-end index query latency in microseconds."},
    {"ssr_index_results_total", "Result sets returned by index queries."},
    {"ssr_index_seqscan_fallbacks_total",
     "Queries that fell back to a sequential scan."},
    {"ssr_index_sets_fetched_total",
     "Candidate sets fetched from storage for verification."},
    {"ssr_index_sids_scanned_total",
     "Set ids scanned across index probes."},
    {"ssr_io_page_writes_total", "Pages written by the storage layer."},
    {"ssr_io_random_reads_total",
     "Random (non-sequential) page reads issued."},
    {"ssr_io_sequential_reads_total", "Sequential page reads issued."},
    {"ssr_observed_precision",
     "Observed precision estimated by the shadow oracle."},
    {"ssr_observed_recall",
     "Observed recall estimated by the shadow oracle."},
    {"ssr_recovery_pages_quarantined_total",
     "Pages quarantined by salvage recovery."},
    {"ssr_recovery_records_quarantined_total",
     "Records quarantined by salvage recovery."},
    {"ssr_recovery_salvage_loads_total",
     "Snapshot loads that ran in salvage mode."},
    {"ssr_recovery_signatures_rebuilt_total",
     "Signatures rebuilt during salvage recovery."},
    {"ssr_retry_attempts_total", "Operations attempted under retry policy."},
    {"ssr_retry_exhausted_total",
     "Operations that exhausted their retry budget."},
    {"ssr_retry_recoveries_total",
     "Operations that succeeded after at least one retry."},
    {"ssr_router_batch_queries_total",
     "Queries routed as part of a batch."},
    {"ssr_router_batches_total", "Batches routed across shards."},
    {"ssr_router_partial_answers_total",
     "Routed queries answered with one or more shards missing."},
    {"ssr_router_queries_total", "Queries routed across shards."},
    {"ssr_router_query_latency_micros",
     "End-to-end routed query latency in microseconds."},
    {"ssr_router_shard_latency_micros",
     "Per-shard query latency in microseconds."},
    {"ssr_server_connections_rejected_total",
     "Introspection connections rejected because the handler pool was "
     "full."},
    {"ssr_server_requests_total",
     "HTTP requests served by the introspection server."},
    {"ssr_sfi_probes_total", "Probes against static frequency indices."},
    {"ssr_shadow_offered_total",
     "Queries offered to the shadow oracle sampler."},
    {"ssr_shadow_sampled_total",
     "Queries the shadow oracle actually re-executed."},
    {"ssr_sharded_shards_skipped_total",
     "Shards skipped (degraded or filtered) during fan-out."},
    {"ssr_slo_availability", "Windowed availability estimate."},
    {"ssr_slo_burn_rate", "Windowed error-budget burn rate."},
    {"ssr_slo_p50_micros",
     "Windowed p50 latency estimate in microseconds."},
    {"ssr_slo_p99_micros",
     "Windowed p99 latency estimate in microseconds."},
    {"ssr_store_fetch_failures_total", "Set fetches that failed."},
    {"ssr_store_get_latency_micros",
     "Set-store point lookup latency in microseconds."},
    {"ssr_store_gets_total", "Point lookups against the set store."},
    {"ssr_store_heap_pages", "Heap pages owned by the set store."},
    {"ssr_store_live_sets", "Sets currently stored."},
    {"ssr_store_scans_total", "Full scans over the set store."},
    {"ssr_store_sets_added_total", "Sets added to the set store."},
    {"ssr_wal_append_bytes_total", "Bytes appended to the WAL."},
    {"ssr_wal_appends_total", "Records appended to the WAL."},
    {"ssr_wal_bytes_truncated_total",
     "Bytes truncated from WAL tails during recovery."},
    {"ssr_wal_crash_points_total",
     "Crash points triggered by the WAL crash harness."},
    {"ssr_wal_last_recovery_seconds",
     "Wall-clock duration of the last WAL recovery."},
    {"ssr_wal_records_replayed_total",
     "WAL records replayed during recovery."},
    {"ssr_wal_records_skipped_total",
     "WAL records skipped (corrupt or stale) during recovery."},
    {"ssr_wal_recoveries_total", "WAL recoveries performed."},
    {"ssr_wal_shards_quarantined_total",
     "Shards quarantined during WAL-coupled salvage recovery."},
    {"ssr_wal_syncs_total", "WAL sync (fsync) operations."},
    {"ssr_workload_fi_bucket_accesses_total",
     "Frequency-index bucket accesses observed by the workload plane."},
    {"ssr_workload_fi_failed_probes_total",
     "Failed frequency-index probes observed by the workload plane."},
    {"ssr_workload_fi_probes_total",
     "Frequency-index probes observed by the workload plane."},
    {"ssr_workload_fi_selectivity",
     "Observed frequency-index probe selectivity."},
    {"ssr_workload_fi_sids_total",
     "Set ids produced by frequency-index probes."},
    {"ssr_workload_queries_total",
     "Queries captured by the workload observer."},
    {"ssr_workload_query_set_size",
     "Distribution of captured query set sizes."},
    {"ssr_workload_range_coverage",
     "Fraction of the threshold range covered per bin."},
    {"ssr_workload_sample_rate",
     "Shadow-oracle sampling rate currently in effect."},
    {"ssr_workload_shard_load_share",
     "Per-shard share of routed query load."},
    {"ssr_workload_shard_queries_total",
     "Queries observed per shard by the workload plane."},
    {"ssr_workload_shard_results_total",
     "Results observed per shard by the workload plane."},
    {"ssr_workload_shard_skew",
     "Load skew (max/mean share) across shards."},
    {"ssr_workload_sigma1",
     "Distribution of captured sigma1 thresholds."},
    {"ssr_workload_sigma2",
     "Distribution of captured sigma2 thresholds."},
};

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || !IsNameStart(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), IsNameChar);
}

const char* MetricHelp(std::string_view name) {
  const auto it = std::lower_bound(
      std::begin(kHelpTable), std::end(kHelpTable), name,
      [](const MetricHelpEntry& e, std::string_view n) { return e.name < n; });
  if (it == std::end(kHelpTable) || it->name != name) return nullptr;
  return it->help.data();
}

const std::vector<MetricHelpEntry>& MetricHelpTable() {
  static const std::vector<MetricHelpEntry> table(std::begin(kHelpTable),
                                                  std::end(kHelpTable));
  return table;
}

namespace {

struct FamilyInfo {
  std::string type;
  bool saw_help = false;
};

struct HistogramSeries {
  std::size_t first_line = 0;
  std::vector<std::pair<double, std::uint64_t>> buckets;  // appearance order
  bool has_inf = false;
  double inf_count = 0.0;
  bool has_sum = false;
  bool has_count = false;
  double count = 0.0;
};

struct ParsedSample {
  bool ok = false;
  std::string name;
  std::string canonical_labels;  // sorted key="value" join
  std::string le;                // value of the `le` label, if present
  bool has_le = false;
  std::string labels_minus_le;   // canonical labels without `le`
  double value = 0.0;
};

bool ParseValue(std::string_view token, double* out) {
  if (token.empty()) return false;
  std::string buf(token);
  // strtod understands "Inf"/"NaN" spellings including the exposition
  // format's "+Inf".
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

ParsedSample ParseSample(std::string_view line,
                         std::vector<ExpositionIssue>* issues,
                         std::size_t line_no) {
  ParsedSample sample;
  std::size_t pos = 0;
  while (pos < line.size() && IsNameChar(line[pos])) ++pos;
  sample.name = std::string(line.substr(0, pos));
  if (!IsValidMetricName(sample.name)) {
    issues->push_back({line_no, "invalid metric name in sample: '" +
                                    std::string(line.substr(0, pos)) + "'"});
    return sample;
  }

  std::map<std::string, std::string> labels;
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t name_start = pos;
      while (pos < line.size() && IsNameChar(line[pos])) ++pos;
      const std::string label_name(line.substr(name_start, pos - name_start));
      if (label_name.empty() || !IsNameStart(label_name[0]) ||
          pos >= line.size() || line[pos] != '=') {
        issues->push_back({line_no, "malformed label in sample"});
        return sample;
      }
      ++pos;  // '='
      if (pos >= line.size() || line[pos] != '"') {
        issues->push_back({line_no, "label value must be quoted"});
        return sample;
      }
      ++pos;  // opening quote
      std::string value;
      bool closed = false;
      while (pos < line.size()) {
        const char c = line[pos];
        if (c == '\\') {
          if (pos + 1 >= line.size()) break;
          const char esc = line[pos + 1];
          if (esc == '\\' || esc == '"') {
            value += esc;
          } else if (esc == 'n') {
            value += '\n';
          } else {
            issues->push_back(
                {line_no, "invalid escape in label value"});
            return sample;
          }
          pos += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++pos;
          break;
        }
        value += c;
        ++pos;
      }
      if (!closed) {
        issues->push_back({line_no, "unterminated label value"});
        return sample;
      }
      if (!labels.emplace(label_name, value).second) {
        issues->push_back({line_no, "duplicate label '" + label_name + "'"});
        return sample;
      }
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      issues->push_back({line_no, "unterminated label set"});
      return sample;
    }
    ++pos;  // '}'
  }

  if (pos >= line.size() || line[pos] != ' ') {
    issues->push_back({line_no, "expected space before sample value"});
    return sample;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  std::size_t value_end = pos;
  while (value_end < line.size() && line[value_end] != ' ') ++value_end;
  if (!ParseValue(line.substr(pos, value_end - pos), &sample.value)) {
    issues->push_back({line_no, "unparseable sample value: '" +
                                    std::string(line.substr(pos)) + "'"});
    return sample;
  }
  // Optional trailing timestamp (integer milliseconds).
  while (value_end < line.size() && line[value_end] == ' ') ++value_end;
  if (value_end < line.size()) {
    double ts = 0.0;
    if (!ParseValue(line.substr(value_end), &ts)) {
      issues->push_back({line_no, "trailing garbage after sample value"});
      return sample;
    }
  }

  for (const auto& [k, v] : labels) {
    const std::string rendered = k + "=\"" + v + "\"";
    if (!sample.canonical_labels.empty()) sample.canonical_labels += ',';
    sample.canonical_labels += rendered;
    if (k == "le") {
      sample.has_le = true;
      sample.le = v;
    } else {
      if (!sample.labels_minus_le.empty()) sample.labels_minus_le += ',';
      sample.labels_minus_le += rendered;
    }
  }
  sample.ok = true;
  return sample;
}

/// Strips a histogram sample suffix: returns the base family name when
/// `name` ends with `_bucket`/`_sum`/`_count` AND that base was TYPE'd as
/// a histogram; otherwise returns `name` itself.
std::string HistogramBase(const std::string& name,
                          const std::map<std::string, FamilyInfo>& families,
                          std::string* suffix) {
  static const std::pair<const char*, const char*> kSuffixes[] = {
      {"_bucket", "bucket"}, {"_sum", "sum"}, {"_count", "count"}};
  for (const auto& [text, kind] : kSuffixes) {
    const std::string_view sv(text);
    if (name.size() > sv.size() &&
        name.compare(name.size() - sv.size(), sv.size(), sv) == 0) {
      const std::string base = name.substr(0, name.size() - sv.size());
      const auto it = families.find(base);
      if (it != families.end() && it->second.type == "histogram") {
        *suffix = kind;
        return base;
      }
    }
  }
  suffix->clear();
  return name;
}

}  // namespace

std::vector<ExpositionIssue> ValidateExposition(std::string_view text) {
  std::vector<ExpositionIssue> issues;
  if (!text.empty() && text.back() != '\n') {
    issues.push_back({0, "exposition must end with a newline"});
  }

  std::map<std::string, FamilyInfo> families;
  std::map<std::pair<std::string, std::string>, HistogramSeries> histograms;
  std::set<std::string> seen_series;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type" / free-form comment.
      if (line.size() < 2 || line[1] != ' ') continue;
      const std::string_view rest = line.substr(2);
      const bool is_help = rest.rfind("HELP ", 0) == 0;
      const bool is_type = rest.rfind("TYPE ", 0) == 0;
      if (!is_help && !is_type) continue;
      const std::string_view body = rest.substr(5);
      const std::size_t space = body.find(' ');
      const std::string name(body.substr(0, space));
      if (!IsValidMetricName(name)) {
        issues.push_back(
            {line_no, "invalid metric name in comment: '" + name + "'"});
        continue;
      }
      if (is_help) {
        FamilyInfo& fam = families[name];
        if (fam.saw_help) {
          issues.push_back({line_no, "duplicate # HELP for '" + name + "'"});
        }
        fam.saw_help = true;
        continue;
      }
      if (space == std::string_view::npos) {
        issues.push_back({line_no, "# TYPE missing type for '" + name + "'"});
        continue;
      }
      const std::string type(body.substr(space + 1));
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        issues.push_back({line_no, "unknown type '" + type + "' for '" +
                                       name + "'"});
        continue;
      }
      FamilyInfo& fam = families[name];
      if (!fam.type.empty()) {
        issues.push_back({line_no, "duplicate # TYPE for '" + name + "'"});
      }
      fam.type = type;
      continue;
    }

    const ParsedSample sample = ParseSample(line, &issues, line_no);
    if (!sample.ok) continue;

    std::string suffix;
    const std::string base = HistogramBase(sample.name, families, &suffix);
    if (suffix.empty()) {
      const auto it = families.find(sample.name);
      if (it == families.end() || it->second.type.empty()) {
        issues.push_back(
            {line_no, "sample for '" + sample.name + "' has no # TYPE"});
      }
    }

    const std::string series_key =
        sample.name + "{" + sample.canonical_labels + "}";
    if (!seen_series.insert(series_key).second) {
      issues.push_back({line_no, "duplicate series " + series_key});
    }

    if (!suffix.empty()) {
      HistogramSeries& hs =
          histograms[std::make_pair(base, sample.labels_minus_le)];
      if (hs.first_line == 0) hs.first_line = line_no;
      if (suffix == "bucket") {
        if (!sample.has_le) {
          issues.push_back(
              {line_no, "_bucket sample missing 'le' label for " + base});
        } else if (sample.le == "+Inf") {
          hs.has_inf = true;
          hs.inf_count = sample.value;
        } else {
          double le = 0.0;
          if (!ParseValue(sample.le, &le)) {
            issues.push_back(
                {line_no, "unparseable le value '" + sample.le + "'"});
          } else {
            hs.buckets.emplace_back(
                le, static_cast<std::uint64_t>(sample.value));
          }
        }
      } else if (suffix == "sum") {
        hs.has_sum = true;
      } else {
        hs.has_count = true;
        hs.count = sample.value;
      }
    }
  }

  for (const auto& [key, hs] : histograms) {
    const std::string where =
        key.second.empty() ? key.first : key.first + "{" + key.second + "}";
    double last_le = -1.0;
    std::uint64_t last_count = 0;
    bool ordered = true;
    bool monotone = true;
    for (const auto& [le, count] : hs.buckets) {
      if (le <= last_le) ordered = false;
      if (count < last_count) monotone = false;
      last_le = le;
      last_count = count;
    }
    if (!ordered) {
      issues.push_back(
          {hs.first_line, "histogram " + where + " le values not ascending"});
    }
    if (!monotone) {
      issues.push_back({hs.first_line, "histogram " + where +
                                           " cumulative buckets decrease"});
    }
    if (!hs.has_inf) {
      issues.push_back(
          {hs.first_line, "histogram " + where + " missing le=\"+Inf\""});
    } else if (!hs.buckets.empty() &&
               hs.inf_count < static_cast<double>(last_count)) {
      issues.push_back({hs.first_line, "histogram " + where +
                                           " +Inf bucket below last bucket"});
    }
    if (!hs.has_sum) {
      issues.push_back({hs.first_line, "histogram " + where + " missing _sum"});
    }
    if (!hs.has_count) {
      issues.push_back(
          {hs.first_line, "histogram " + where + " missing _count"});
    } else if (hs.has_inf && hs.inf_count != hs.count) {
      issues.push_back({hs.first_line,
                        "histogram " + where + " _count disagrees with " +
                            "le=\"+Inf\" (torn family)"});
    }
  }

  return issues;
}

std::string FormatIssues(const std::vector<ExpositionIssue>& issues) {
  std::string out;
  for (const ExpositionIssue& issue : issues) {
    out += "line ";
    out += std::to_string(issue.line);
    out += ": ";
    out += issue.message;
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace ssr
