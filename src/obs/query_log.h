// Workload record/replay: a versioned, CRC-checksummed binary query log.
// Recording captures a (possibly 1-in-N decimated) sample of the live query
// stream — the query set, its [σ1, σ2] range, and a digest of the answer it
// received — so a captured workload can later be replayed bit-for-bit: the
// replay reruns every recorded query and checks its answer digest against
// the recorded one (the bench replay suite and the record→replay tests hold
// this as an invariant).
//
// On-disk format (storage/snapshot.h v2 framing, magic "SSRQLOG"):
//
//   section "meta":    u32 log version (kQueryLogVersion)
//                      u64 sample_every, u64 offered, u64 recorded
//   section "queries": per query — f64 σ1, f64 σ2, u32 result_count,
//                      u64 result_digest, u64-length-prefixed ElementId[]
//
// Every byte crosses BinaryWriter/BinaryReader through the snapshot fault
// sites, so the torn-write/bit-flip/truncation fault matrices apply to the
// log exactly as they do to store and index snapshots. Damage surfaces as
// the usual typed statuses: truncation = DataLoss, CRC/length damage =
// Corruption, version skew = NotSupported.

#ifndef SSR_OBS_QUERY_LOG_H_
#define SSR_OBS_QUERY_LOG_H_

#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/result.h"
#include "util/status.h"
#include "util/types.h"

namespace ssr {
namespace obs {

/// Order-sensitive digest of a query answer (the sorted result sids). Two
/// answers digest equal iff they are element-for-element identical, which
/// is the replay suite's bit-identity check.
std::uint64_t QueryAnswerDigest(const std::vector<SetId>& sids);

/// One recorded query.
struct RecordedQuery {
  ElementSet query;
  double sigma1 = 0.0;
  double sigma2 = 1.0;
  std::uint32_t result_count = 0;
  std::uint64_t result_digest = 0;  // QueryAnswerDigest of the live answer

  bool operator==(const RecordedQuery& other) const {
    return query == other.query && sigma1 == other.sigma1 &&
           sigma2 == other.sigma2 && result_count == other.result_count &&
           result_digest == other.result_digest;
  }
};

/// A captured workload: the recorded queries plus the sampling metadata
/// needed to scale replay measurements back to the live rate.
struct QueryLog {
  std::uint64_t sample_every = 1;  // 1-in-N recording rate
  std::uint64_t offered = 0;       // live queries seen by the recorder
  std::vector<RecordedQuery> queries;

  Status SaveTo(std::ostream& out) const;
  static Result<QueryLog> Load(std::istream& in);
};

/// Thread-safe sampled recorder: every `sample_every`-th offered query
/// (counted by arrival order, first query included) is appended to the log.
/// Offer is mutex-guarded — recording copies the query set, which is far
/// too heavy for relaxed atomics, and the observer only calls it off the
/// hot path (serial queries, or the post-batch sample pass).
class QueryLogRecorder {
 public:
  explicit QueryLogRecorder(std::uint64_t sample_every = 1);

  /// Returns true when this query was recorded.
  bool Offer(const ElementSet& query, double sigma1, double sigma2,
             const std::vector<SetId>& result_sids);

  /// Snapshot of the log so far (copies under the lock).
  QueryLog Snapshot() const;

  /// Moves the log out and resets the recorder.
  QueryLog TakeLog();

  std::uint64_t offered() const;
  std::uint64_t recorded() const;

 private:
  mutable std::mutex mu_;
  QueryLog log_;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_QUERY_LOG_H_
