// Per-phase counter profiling on top of the tracer. When the profiler is
// enabled, every TraceSpan additionally reads the perf counter group at
// open and close, attaches the delta to the span record (rendered by the
// Chrome-trace exporter as slice args and counter tracks), and accumulates
// it here under the span's name — so a bench run ends with one aggregate
// counter profile per query phase (embed / plan / probe_fi / verify /
// scan), exported into the BENCH_*.json trajectory points.
//
// Like the tracer, the profiler is off by default: a disabled profiler
// costs one relaxed atomic load per span. Enabling it opens the perf
// counter group (walking the availability ladder in obs/perf_counters.h)
// on the enabling thread; the group is bound to that thread, so counter
// deltas are only meaningful for spans it opens — spans from exec worker
// threads (parallel build, batch executor) still record wall time and a
// worker id, but their per-worker cost accounting comes from
// exec::JobStats, not from here. ProfileScope profiles a region that is
// not a trace span (e.g. a microbench loop).

#ifndef SSR_OBS_PROFILE_H_
#define SSR_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/perf_counters.h"

namespace ssr {
namespace obs {

class JsonWriter;

/// Aggregated counters for one region name.
struct PhaseProfile {
  std::string name;
  std::uint64_t count = 0;  // regions closed under this name
  PerfSample totals;        // summed counter deltas
};

/// Process-wide profile aggregator.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The profiler the tracer hook and bench binaries use. Never destroyed.
  static Profiler& Default();

  /// Enabling opens the counter group (honoring SSR_PERF_COUNTERS and
  /// `mode`) if it is not open yet; disabling stops sampling but keeps
  /// accumulated phases until Clear().
  void Enable(PerfMode mode = PerfModeFromEnv());
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The ladder rung the open group landed on (kDisabled before the first
  /// Enable()).
  PerfSource source() const;

  /// Current cumulative counter reading (empty sample when disabled).
  PerfSample ReadNow() const;

  /// Accumulates a measured delta under `name`.
  void Record(std::string_view name, const PerfSample& delta);

  /// All phases, sorted by name.
  std::vector<PhaseProfile> Snapshot() const;

  /// Drops accumulated phases (the counter group stays open).
  void Clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::unique_ptr<PerfCounterGroup> group_;
  std::map<std::string, PhaseProfile, std::less<>> phases_;
};

/// RAII counter measurement for a named region outside the tracer. No-op
/// when the profiler is disabled at construction.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name)
      : ProfileScope(Profiler::Default(), name) {}
  ProfileScope(Profiler& profiler, std::string_view name);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_ = nullptr;  // null when profiling was off
  std::string name_;
  PerfSample begin_;
};

/// Appends the profiler state as a JSON value:
///   {"source": "hardware|software|rusage|disabled",
///    "phases": [{"name", "count", "counters": {"cycles": ..., ...}}, ...]}
void WriteProfileJson(JsonWriter& writer, const Profiler& profiler);

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_PROFILE_H_
