#include "obs/workload_observer.h"

#include <algorithm>
#include <cmath>

#include "obs/query_log.h"
#include "obs/shadow_oracle.h"

namespace ssr {
namespace obs {

namespace {

/// Fixed-point scale for fractional range-coverage mass. 2^20 keeps ~6
/// decimal digits of the bin-overlap fraction while leaving 44 bits of
/// headroom for query volume.
constexpr double kCoverageScale = 1048576.0;

std::uint64_t RelaxedLoad(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

void RelaxedAdd(std::atomic<std::uint64_t>& a, std::uint64_t n) {
  if (n != 0) a.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

double WorkloadSnapshot::ShardSkew() const {
  std::uint64_t total = 0, max_queries = 0;
  for (const ShardCounters& s : shards) {
    total += s.queries;
    max_queries = std::max(max_queries, s.queries);
  }
  if (total == 0 || shards.empty()) return 0.0;
  return static_cast<double>(max_queries) / static_cast<double>(total) *
         static_cast<double>(shards.size());
}

WorkloadObserver::WorkloadObserver(WorkloadObserverOptions options)
    : options_(std::move(options)),
      sigma1_bins_(std::max<std::size_t>(options_.threshold_bins, 1)),
      sigma2_bins_(sigma1_bins_.size()),
      range_coverage_fp_(sigma1_bins_.size()),
      set_size_bounds_(ExponentialBounds(1.0, 2.0, 16)),
      set_size_bins_(set_size_bounds_.size() + 1),
      fi_slots_(options_.max_fis),
      shard_slots_(options_.num_shards) {
  options_.threshold_bins = sigma1_bins_.size();
  if (options_.metrics_scope.empty()) return;

  MetricsRegistry& registry = MetricsRegistry::Default();
  const std::string& scope = options_.metrics_scope;
  // Threshold histogram bounds follow the bins: bound i is the upper edge
  // (i+1)/bins of SimilarityHistogram bin i, so AddBucket(bin) and the
  // exported bucket layout agree by construction.
  std::vector<double> threshold_bounds;
  threshold_bounds.reserve(options_.threshold_bins);
  for (std::size_t i = 0; i < options_.threshold_bins; ++i) {
    threshold_bounds.push_back(static_cast<double>(i + 1) /
                               static_cast<double>(options_.threshold_bins));
  }
  queries_total_ = registry.GetCounter("ssr_workload_queries_total", scope);
  sigma1_hist_ =
      registry.GetHistogram("ssr_workload_sigma1", scope, threshold_bounds);
  sigma2_hist_ =
      registry.GetHistogram("ssr_workload_sigma2", scope, threshold_bounds);
  set_size_hist_ = registry.GetHistogram("ssr_workload_query_set_size", scope,
                                         set_size_bounds_);
  coverage_gauges_.reserve(options_.threshold_bins);
  for (std::size_t b = 0; b < options_.threshold_bins; ++b) {
    coverage_gauges_.push_back(registry.GetGauge(
        "ssr_workload_range_coverage", scope + "/bin/" + std::to_string(b)));
  }
  fi_instruments_.resize(fi_slots_.size());
  for (std::size_t i = 0; i < fi_slots_.size(); ++i) {
    const std::string fi_scope = scope + "/fi/" + std::to_string(i);
    fi_instruments_[i].probes =
        registry.GetCounter("ssr_workload_fi_probes_total", fi_scope);
    fi_instruments_[i].failed_probes =
        registry.GetCounter("ssr_workload_fi_failed_probes_total", fi_scope);
    fi_instruments_[i].bucket_accesses =
        registry.GetCounter("ssr_workload_fi_bucket_accesses_total", fi_scope);
    fi_instruments_[i].sids =
        registry.GetCounter("ssr_workload_fi_sids_total", fi_scope);
    fi_instruments_[i].selectivity =
        registry.GetGauge("ssr_workload_fi_selectivity", fi_scope);
  }
  shard_instruments_.resize(shard_slots_.size());
  for (std::size_t s = 0; s < shard_slots_.size(); ++s) {
    const std::string shard_scope = scope + "/shard/" + std::to_string(s);
    shard_instruments_[s].queries =
        registry.GetCounter("ssr_workload_shard_queries_total", shard_scope);
    shard_instruments_[s].results =
        registry.GetCounter("ssr_workload_shard_results_total", shard_scope);
    shard_instruments_[s].load_share =
        registry.GetGauge("ssr_workload_shard_load_share", shard_scope);
  }
  if (!shard_slots_.empty()) {
    shard_skew_ = registry.GetGauge("ssr_workload_shard_skew", scope);
  }
}

std::size_t WorkloadObserver::ThresholdBin(double s) const {
  const std::size_t bins = options_.threshold_bins;
  if (s <= 0.0) return 0;
  if (s >= 1.0) return bins - 1;  // last bin closed, as in the optimizer
  const std::size_t bin = static_cast<std::size_t>(
      s * static_cast<double>(bins));
  return std::min(bin, bins - 1);
}

void WorkloadObserver::CountQuery(double sigma1, double sigma2,
                                  std::size_t query_size) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t b1 = ThresholdBin(sigma1);
  const std::size_t b2 = ThresholdBin(sigma2);
  sigma1_bins_[b1].fetch_add(1, std::memory_order_relaxed);
  sigma2_bins_[b2].fetch_add(1, std::memory_order_relaxed);

  // Interval coverage: the overlap of [σ1, σ2] with each bin, in bin-width
  // units (fixed point). A query covering a whole bin contributes 1.0 to
  // it; edge bins contribute their fractions. A point query (σ1 == σ2) has
  // no width but did probe somewhere — it contributes a full unit to its
  // bin, matching the query-log adapter's convention.
  const double bins = static_cast<double>(options_.threshold_bins);
  if (sigma2 <= sigma1) {
    RelaxedAdd(range_coverage_fp_[b1],
               static_cast<std::uint64_t>(kCoverageScale));
  } else {
    for (std::size_t b = b1; b <= b2; ++b) {
      const double lo = std::max(sigma1, static_cast<double>(b) / bins);
      const double hi = std::min(sigma2, static_cast<double>(b + 1) / bins);
      const double overlap = std::max(0.0, hi - lo) * bins;
      RelaxedAdd(range_coverage_fp_[b],
                 static_cast<std::uint64_t>(overlap * kCoverageScale + 0.5));
    }
  }

  const double size = static_cast<double>(query_size);
  const std::size_t size_bin = static_cast<std::size_t>(
      std::lower_bound(set_size_bounds_.begin(), set_size_bounds_.end(),
                       size) -
      set_size_bounds_.begin());
  set_size_bins_[size_bin].fetch_add(1, std::memory_order_relaxed);

  if (queries_total_ != nullptr) {
    queries_total_->Increment();
    sigma1_hist_->AddBucket(b1, 1, sigma1);
    sigma2_hist_->AddBucket(b2, 1, sigma2);
    set_size_hist_->AddBucket(size_bin, 1, size);
  }
}

void WorkloadObserver::CountFiProbe(std::size_t fi, std::uint64_t accesses,
                                    std::uint64_t sids, bool failed) {
  if (fi >= fi_slots_.size()) {
    dropped_fi_probes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FiSlots& slots = fi_slots_[fi];
  slots.probes.fetch_add(1, std::memory_order_relaxed);
  if (failed) slots.failed_probes.fetch_add(1, std::memory_order_relaxed);
  RelaxedAdd(slots.bucket_accesses, accesses);
  RelaxedAdd(slots.sids, sids);
  if (!fi_instruments_.empty()) {
    FiInstruments& ins = fi_instruments_[fi];
    ins.probes->Increment();
    if (failed) ins.failed_probes->Increment();
    ins.bucket_accesses->Add(accesses);
    ins.sids->Add(sids);
  }
}

void WorkloadObserver::CountShardAnswer(std::uint32_t shard,
                                        std::uint64_t results) {
  if (shard >= shard_slots_.size()) return;
  ShardSlots& slots = shard_slots_[shard];
  slots.queries.fetch_add(1, std::memory_order_relaxed);
  RelaxedAdd(slots.results, results);
  if (!shard_instruments_.empty()) {
    shard_instruments_[shard].queries->Increment();
    shard_instruments_[shard].results->Add(results);
  }
}

void WorkloadObserver::MergeFrom(const WorkloadObserver& other) {
  const std::size_t bins =
      std::min(sigma1_bins_.size(), other.sigma1_bins_.size());
  std::uint64_t merged_queries = RelaxedLoad(other.queries_);
  RelaxedAdd(queries_, merged_queries);
  if (queries_total_ != nullptr) queries_total_->Add(merged_queries);
  for (std::size_t b = 0; b < bins; ++b) {
    const std::uint64_t s1 = RelaxedLoad(other.sigma1_bins_[b]);
    const std::uint64_t s2 = RelaxedLoad(other.sigma2_bins_[b]);
    const std::uint64_t cov = RelaxedLoad(other.range_coverage_fp_[b]);
    RelaxedAdd(sigma1_bins_[b], s1);
    RelaxedAdd(sigma2_bins_[b], s2);
    RelaxedAdd(range_coverage_fp_[b], cov);
    if (sigma1_hist_ != nullptr) {
      // Bucket sums are approximated at the bin midpoint: the merge source
      // keeps counts, not raw values, and exporters consume the bucket
      // shape, not the sum.
      const double mid = (static_cast<double>(b) + 0.5) /
                         static_cast<double>(options_.threshold_bins);
      sigma1_hist_->AddBucket(b, s1, mid * static_cast<double>(s1));
      sigma2_hist_->AddBucket(b, s2, mid * static_cast<double>(s2));
    }
  }
  const std::size_t size_bins =
      std::min(set_size_bins_.size(), other.set_size_bins_.size());
  for (std::size_t b = 0; b < size_bins; ++b) {
    const std::uint64_t n = RelaxedLoad(other.set_size_bins_[b]);
    RelaxedAdd(set_size_bins_[b], n);
    if (set_size_hist_ != nullptr && n > 0) {
      const double bound = b < set_size_bounds_.size()
                               ? set_size_bounds_[b]
                               : set_size_bounds_.back() * 2.0;
      set_size_hist_->AddBucket(b, n, bound * static_cast<double>(n));
    }
  }
  RelaxedAdd(dropped_fi_probes_, RelaxedLoad(other.dropped_fi_probes_));
  const std::size_t fis = std::min(fi_slots_.size(), other.fi_slots_.size());
  for (std::size_t i = 0; i < fis; ++i) {
    const std::uint64_t probes = RelaxedLoad(other.fi_slots_[i].probes);
    const std::uint64_t failed =
        RelaxedLoad(other.fi_slots_[i].failed_probes);
    const std::uint64_t accesses =
        RelaxedLoad(other.fi_slots_[i].bucket_accesses);
    const std::uint64_t sids = RelaxedLoad(other.fi_slots_[i].sids);
    RelaxedAdd(fi_slots_[i].probes, probes);
    RelaxedAdd(fi_slots_[i].failed_probes, failed);
    RelaxedAdd(fi_slots_[i].bucket_accesses, accesses);
    RelaxedAdd(fi_slots_[i].sids, sids);
    if (!fi_instruments_.empty()) {
      fi_instruments_[i].probes->Add(probes);
      fi_instruments_[i].failed_probes->Add(failed);
      fi_instruments_[i].bucket_accesses->Add(accesses);
      fi_instruments_[i].sids->Add(sids);
    }
  }
  const std::size_t shards =
      std::min(shard_slots_.size(), other.shard_slots_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    const std::uint64_t q = RelaxedLoad(other.shard_slots_[s].queries);
    const std::uint64_t r = RelaxedLoad(other.shard_slots_[s].results);
    RelaxedAdd(shard_slots_[s].queries, q);
    RelaxedAdd(shard_slots_[s].results, r);
    if (!shard_instruments_.empty()) {
      shard_instruments_[s].queries->Add(q);
      shard_instruments_[s].results->Add(r);
    }
  }
}

void WorkloadObserver::UpdateGauges() {
  if (options_.metrics_scope.empty()) return;
  for (std::size_t b = 0; b < coverage_gauges_.size(); ++b) {
    coverage_gauges_[b]->Set(
        static_cast<double>(RelaxedLoad(range_coverage_fp_[b])) /
        kCoverageScale);
  }
  for (std::size_t i = 0; i < fi_slots_.size(); ++i) {
    const std::uint64_t probes = RelaxedLoad(fi_slots_[i].probes);
    const std::uint64_t sids = RelaxedLoad(fi_slots_[i].sids);
    fi_instruments_[i].selectivity->Set(
        probes == 0 ? 0.0
                    : static_cast<double>(sids) / static_cast<double>(probes));
  }
  if (shard_slots_.empty()) return;
  std::uint64_t total = 0, max_queries = 0;
  for (const ShardSlots& s : shard_slots_) {
    const std::uint64_t q = RelaxedLoad(s.queries);
    total += q;
    max_queries = std::max(max_queries, q);
  }
  for (std::size_t s = 0; s < shard_slots_.size(); ++s) {
    shard_instruments_[s].load_share->Set(
        total == 0 ? 0.0
                   : static_cast<double>(RelaxedLoad(
                         shard_slots_[s].queries)) /
                         static_cast<double>(total));
  }
  shard_skew_->Set(total == 0
                       ? 0.0
                       : static_cast<double>(max_queries) /
                             static_cast<double>(total) *
                             static_cast<double>(shard_slots_.size()));
}

void WorkloadObserver::OfferSample(const ElementSet& query, double sigma1,
                                   double sigma2,
                                   const std::vector<SetId>& result_sids,
                                   std::size_t candidates) {
  if (shadow_oracle_ != nullptr) {
    shadow_oracle_->Offer(query, sigma1, sigma2, result_sids, candidates);
  }
  if (recorder_ != nullptr) {
    recorder_->Offer(query, sigma1, sigma2, result_sids);
  }
}

WorkloadSnapshot WorkloadObserver::Snapshot() const {
  WorkloadSnapshot snap;
  snap.threshold_bins = options_.threshold_bins;
  snap.queries = RelaxedLoad(queries_);
  snap.sigma1_bins.reserve(sigma1_bins_.size());
  snap.sigma2_bins.reserve(sigma2_bins_.size());
  snap.range_coverage.reserve(range_coverage_fp_.size());
  for (std::size_t b = 0; b < sigma1_bins_.size(); ++b) {
    snap.sigma1_bins.push_back(RelaxedLoad(sigma1_bins_[b]));
    snap.sigma2_bins.push_back(RelaxedLoad(sigma2_bins_[b]));
    snap.range_coverage.push_back(
        static_cast<double>(RelaxedLoad(range_coverage_fp_[b])) /
        kCoverageScale);
  }
  snap.set_size_bounds = set_size_bounds_;
  snap.set_size_bins.reserve(set_size_bins_.size());
  for (const auto& bin : set_size_bins_) {
    snap.set_size_bins.push_back(RelaxedLoad(bin));
  }
  snap.fis.reserve(fi_slots_.size());
  for (const FiSlots& slots : fi_slots_) {
    WorkloadSnapshot::FiCounters fi;
    fi.probes = RelaxedLoad(slots.probes);
    fi.failed_probes = RelaxedLoad(slots.failed_probes);
    fi.bucket_accesses = RelaxedLoad(slots.bucket_accesses);
    fi.sids = RelaxedLoad(slots.sids);
    snap.fis.push_back(fi);
  }
  snap.shards.reserve(shard_slots_.size());
  for (const ShardSlots& slots : shard_slots_) {
    WorkloadSnapshot::ShardCounters sh;
    sh.queries = RelaxedLoad(slots.queries);
    sh.results = RelaxedLoad(slots.results);
    snap.shards.push_back(sh);
  }
  return snap;
}

}  // namespace obs
}  // namespace ssr
