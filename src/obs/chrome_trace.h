// Chrome-trace / Perfetto JSON exporter: renders the tracer's ring (and
// per-span perf-counter deltas as counter tracks) into the Trace Event
// Format that chrome://tracing and ui.perfetto.dev load directly. Every
// bench binary exposes it behind --trace=<path>.
//
// Spans become "X" (complete) events — nesting falls out of timestamp
// containment per thread, which matches the tracer's parent/child
// invariant. A span's tags and counter deltas render as slice args (click
// a slice to see them); counter deltas additionally render as "C" counter
// events at the span's start, one track per counter name, so cache-miss /
// branch-miss traffic is visible as a curve over the run.

#ifndef SSR_OBS_CHROME_TRACE_H_
#define SSR_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace ssr {
namespace obs {

class JsonWriter;

/// Appends the full trace document ({"displayTimeUnit", "otherData",
/// "traceEvents": [...]}) for `spans` (tracer ring order, i.e. completion
/// order; Chrome sorts by timestamp itself).
void WriteChromeTraceJson(JsonWriter& writer,
                          const std::vector<SpanRecord>& spans);

/// The trace document as a standalone JSON string.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);
std::string ChromeTraceJson(const Tracer& tracer);

/// Writes ChromeTraceJson(tracer) to `path`. Returns false and fills
/// `*error` (when non-null) on I/O failure.
bool WriteChromeTraceFile(const std::string& path, const Tracer& tracer,
                          std::string* error = nullptr);

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_CHROME_TRACE_H_
