#include "obs/export.h"

#include <cmath>
#include <cstdio>

#include "obs/exposition.h"

namespace ssr {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// `name{scope="..."}` or bare `name` for the process scope. Instrument
/// names are chosen by this codebase and already match the Prometheus
/// grammar; only the scope (a free-form string) needs escaping.
std::string SeriesRef(const std::string& name, const std::string& scope,
                      const std::string& extra_label = "") {
  std::string out = name;
  if (scope.empty() && extra_label.empty()) return out;
  out += '{';
  bool first = true;
  if (!scope.empty()) {
    out += "scope=\"";
    for (const char c : scope) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    first = false;
  }
  if (!extra_label.empty()) {
    if (!first) out += ',';
    out += extra_label;
  }
  out += '}';
  return out;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  std::string out;
  std::string last_typed_name;
  for (const MetricsRegistry::Entry& e : registry.Entries()) {
    const char* type = e.counter != nullptr
                           ? "counter"
                           : (e.gauge != nullptr ? "gauge" : "histogram");
    if (e.name != last_typed_name) {
      if (const char* help = MetricHelp(e.name)) {
        out += "# HELP " + e.name + " ";
        // Escape per the exposition format: backslash and newline.
        for (const char* c = help; *c != '\0'; ++c) {
          if (*c == '\\') {
            out += "\\\\";
          } else if (*c == '\n') {
            out += "\\n";
          } else {
            out += *c;
          }
        }
        out += '\n';
      }
      out += "# TYPE " + e.name + " " + type + "\n";
      last_typed_name = e.name;
    }
    if (e.counter != nullptr) {
      out += SeriesRef(e.name, e.scope) + " " +
             std::to_string(e.counter->value()) + "\n";
    } else if (e.gauge != nullptr) {
      out += SeriesRef(e.name, e.scope) + " " +
             FormatDouble(e.gauge->value()) + "\n";
    } else {
      // Read every bucket exactly once, then derive the cumulative series
      // AND `_count` from those same reads. Using Histogram::count() here
      // would race its relaxed bucket adds and tear the family (a `+Inf`
      // bucket that disagrees with `_count`), which Prometheus — and our
      // conformance validator — reject.
      const Histogram& h = *e.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.bucket_count(i);
        out += SeriesRef(e.name + "_bucket", e.scope,
                         "le=\"" + FormatDouble(h.bounds()[i]) + "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      cumulative += h.bucket_count(h.bounds().size());
      out += SeriesRef(e.name + "_bucket", e.scope, "le=\"+Inf\"") + " " +
             std::to_string(cumulative) + "\n";
      out += SeriesRef(e.name + "_sum", e.scope) + " " +
             FormatDouble(h.sum()) + "\n";
      out += SeriesRef(e.name + "_count", e.scope) + " " +
             std::to_string(cumulative) + "\n";
    }
  }
  return out;
}

void WriteMetricsJson(JsonWriter& writer, const MetricsRegistry& registry) {
  const std::vector<MetricsRegistry::Entry> entries = registry.Entries();
  writer.BeginObject();
  writer.Key("counters").BeginArray();
  for (const auto& e : entries) {
    if (e.counter == nullptr) continue;
    writer.BeginObject();
    writer.Key("name").String(e.name);
    writer.Key("scope").String(e.scope);
    writer.Key("value").UInt(e.counter->value());
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("gauges").BeginArray();
  for (const auto& e : entries) {
    if (e.gauge == nullptr) continue;
    writer.BeginObject();
    writer.Key("name").String(e.name);
    writer.Key("scope").String(e.scope);
    writer.Key("value").Double(e.gauge->value());
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("histograms").BeginArray();
  for (const auto& e : entries) {
    if (e.histogram == nullptr) continue;
    const Histogram& h = *e.histogram;
    writer.BeginObject();
    writer.Key("name").String(e.name);
    writer.Key("scope").String(e.scope);
    writer.Key("count").UInt(h.count());
    writer.Key("sum").Double(h.sum());
    writer.Key("buckets").BeginArray();
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      writer.BeginObject();
      if (i < h.bounds().size()) {
        writer.Key("le").Double(h.bounds()[i]);
      } else {
        writer.Key("le").String("+Inf");
      }
      writer.Key("count").UInt(h.bucket_count(i));
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteTraceJson(JsonWriter& writer, const Tracer& tracer) {
  writer.BeginArray();
  for (const SpanRecord& span : tracer.Snapshot()) {
    writer.BeginObject();
    writer.Key("id").UInt(span.id);
    writer.Key("parent_id").UInt(span.parent_id);
    writer.Key("depth").UInt(span.depth);
    writer.Key("name").String(span.name);
    writer.Key("start_us").Double(span.start_micros);
    writer.Key("duration_us").Double(span.duration_micros);
    writer.Key("tags").BeginObject();
    for (const auto& [key, value] : span.tags) {
      writer.Key(key).String(value);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
}

std::string MetricsJson(const MetricsRegistry& registry) {
  JsonWriter writer;
  WriteMetricsJson(writer, registry);
  return writer.str();
}

std::string TraceJson(const Tracer& tracer) {
  JsonWriter writer;
  WriteTraceJson(writer, tracer);
  return writer.str();
}

}  // namespace obs
}  // namespace ssr
