// System health model: folds shard quarantine state, SLO burn, WAL sync
// lag, and shadow-oracle recall drift into one typed verdict with reasons.
// This is the single source of truth /healthz serves — the ladder is
//
//   Healthy   — every signal inside its threshold
//   Degraded  — serving, but something needs attention: a quarantined
//               shard (partial answers), slow-window SLO burn, WAL sync
//               lag past the warning bound, or observed recall drifting
//               below target
//   Unhealthy — correctness or durability is in question: a majority of
//               shards are out, the fast-window burn rate is at page
//               level, or WAL lag passed the critical bound
//
// Evaluation is a pure function over a HealthInputs snapshot so tests can
// pin every rung without standing up the components; the introspection
// server assembles HealthInputs from its registered sources on each scrape.

#ifndef SSR_OBS_HEALTH_H_
#define SSR_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo.h"

namespace ssr {
namespace obs {

enum class HealthVerdict { kHealthy = 0, kDegraded = 1, kUnhealthy = 2 };

const char* HealthVerdictName(HealthVerdict v);

/// One triggered rule. `code` is a stable machine-readable identifier
/// (e.g. "shard_quarantine", "slo_burn_fast"); `detail` is for humans.
struct HealthReason {
  std::string code;
  std::string detail;
  HealthVerdict severity = HealthVerdict::kDegraded;
};

/// A point-in-time snapshot of every signal the model folds. Fields with
/// a paired `has_*` flag are optional; absent signals trigger no rules.
struct HealthInputs {
  // Shard plane.
  std::size_t shards_total = 0;
  std::size_t shards_degraded = 0;

  // SLO plane (typically the 1m report for fast burn, 1h for slow).
  bool has_slo = false;
  SloWindowReport slo_fast;  // short horizon: paging signal
  SloWindowReport slo_slow;  // long horizon: ticket signal

  // Durability plane.
  bool has_wal = false;
  std::uint64_t wal_last_lsn = 0;
  std::uint64_t wal_synced_lsn = 0;

  // Quality plane (shadow-oracle observed recall, when enough samples).
  bool has_recall = false;
  double observed_recall = 1.0;
};

struct HealthThresholds {
  /// Fast-window burn rate at/above which the system is Unhealthy (the
  /// classic 1h page threshold for a three-nines target) and the slow
  /// burn at/above which it is Degraded.
  double burn_rate_unhealthy = 14.4;
  double burn_rate_degraded = 1.0;

  /// Unsynced WAL records (last_lsn - synced_lsn) tolerated before the
  /// durability rules fire.
  std::uint64_t wal_lag_degraded = 1024;
  std::uint64_t wal_lag_unhealthy = 65536;

  /// Observed recall below this is Degraded (the paper's tunable
  /// quality/performance trade-off makes recall a first-class SLO here).
  double recall_floor = 0.80;

  /// Fraction of shards degraded at/above which Degraded escalates to
  /// Unhealthy (strictly more than half by default).
  double shard_unhealthy_fraction = 0.5;
};

struct HealthReport {
  HealthVerdict verdict = HealthVerdict::kHealthy;
  std::vector<HealthReason> reasons;  // empty iff Healthy
};

/// Applies the ladder to one snapshot. The verdict is the maximum severity
/// across triggered rules; every triggered rule is reported.
HealthReport EvaluateHealth(const HealthInputs& inputs,
                            const HealthThresholds& thresholds);

/// Thin stateful wrapper for callers that configure thresholds once.
class HealthModel {
 public:
  HealthModel() = default;
  explicit HealthModel(HealthThresholds thresholds)
      : thresholds_(thresholds) {}

  HealthReport Evaluate(const HealthInputs& inputs) const {
    return EvaluateHealth(inputs, thresholds_);
  }

  const HealthThresholds& thresholds() const { return thresholds_; }

 private:
  HealthThresholds thresholds_;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_HEALTH_H_
