// Windowed SLO tracking on top of obs/sliding_histogram.h. An SloTracker
// owns one latency SlidingHistogram plus total/error SlidingCounters and
// answers, for any horizon up to the ring span, "what were p50/p99, what
// was availability, and how fast is the error budget burning?". The
// canonical horizons are 1m / 5m / 1h (the ring defaults to 5s x 720
// windows, exactly one hour).
//
// Burn rate follows the SRE convention: the ratio of the observed error
// rate to the rate the availability target budgets for. A burn rate of 1.0
// consumes the budget exactly as fast as it accrues; 14.4 (Google's classic
// 1h page threshold for a 99.9% target) exhausts a 30-day budget in ~2
// days. With zero traffic in the window, availability reports 1.0 and the
// burn rate 0 — no data is not an outage.
//
// Feeding: Tick() delta-captures cumulative registry instruments (see
// sliding_histogram.h for why that keeps the hot path untouched); tests and
// components without registry instruments can feed ObserveLatency() /
// RecordOutcomes() directly. Time is an explicit now_seconds everywhere.

#ifndef SSR_OBS_SLO_H_
#define SSR_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sliding_histogram.h"

namespace ssr {
namespace obs {

/// The three canonical reporting horizons, in seconds.
inline constexpr double kSloWindowMinute = 60.0;
inline constexpr double kSloWindowFiveMinutes = 300.0;
inline constexpr double kSloWindowHour = 3600.0;

struct SloConfig {
  /// Latency objectives, in microseconds. A window whose estimated
  /// quantile exceeds the target is "out of SLO" for that quantile.
  double p50_target_micros = 0.0;  // 0 disables the p50 objective
  double p99_target_micros = 0.0;  // 0 disables the p99 objective

  /// Availability objective in (0, 1), e.g. 0.999. The error budget is
  /// 1 - availability_target.
  double availability_target = 0.999;

  /// Ring geometry. Defaults cover one hour at 5-second resolution.
  double interval_seconds = 5.0;
  std::size_t num_windows = 720;
};

/// Everything known about one horizon, computed in a single pass.
struct SloWindowReport {
  double horizon_seconds = 0.0;
  double covered_seconds = 0.0;  // may be < horizon early in a run

  std::uint64_t latency_count = 0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  bool p50_ok = true;  // vs. target; true when the objective is disabled
  bool p99_ok = true;

  std::uint64_t total = 0;
  std::uint64_t errors = 0;
  double availability = 1.0;  // 1.0 when total == 0
  double burn_rate = 0.0;     // error ratio / error budget
  bool availability_ok = true;
};

class SloTracker {
 public:
  /// `bounds` are the latency histogram bucket bounds (use
  /// LatencyBoundsMicros() to delta-capture the repo's standard
  /// *_latency_micros instruments).
  SloTracker(std::vector<double> bounds, SloConfig config);

  /// One periodic capture: credits the growth of the cumulative latency
  /// histogram and the total/error counters to the current window. Null
  /// sources are skipped, so a tracker can watch latency only.
  void Tick(const Histogram* latency_source, const Counter* total_source,
            const Counter* error_source, double now_seconds);

  /// Direct feeds (tests, components without registry instruments).
  void ObserveLatency(double micros, double now_seconds);
  void RecordOutcomes(std::uint64_t total, std::uint64_t errors,
                      double now_seconds);

  /// The full report for one horizon.
  SloWindowReport Report(double horizon_seconds, double now_seconds);

  /// Reports for the three canonical horizons (1m, 5m, 1h), in that order.
  std::vector<SloWindowReport> CanonicalReports(double now_seconds);

  const SloConfig& config() const { return config_; }

 private:
  const SloConfig config_;
  SlidingHistogram latency_;
  SlidingCounter total_;
  SlidingCounter errors_;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_SLO_H_
