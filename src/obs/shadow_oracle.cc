#include "obs/shadow_oracle.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/set_ops.h"

namespace ssr {
namespace obs {

namespace {

/// Bounds for recall/precision histograms: 0.1-wide buckets over [0, 1].
std::vector<double> RatioBounds() {
  std::vector<double> bounds;
  bounds.reserve(10);
  for (int i = 1; i <= 10; ++i) bounds.push_back(0.1 * i);
  return bounds;
}

ShadowOracleOptions ResolveShadowScope(ShadowOracleOptions options) {
  if (options.sample_every == 0) options.sample_every = 1;
  if (options.threshold_buckets == 0) options.threshold_buckets = 1;
  if (options.metrics_scope.empty()) {
    options.metrics_scope = MetricsRegistry::Default().NewScope("shadow");
  }
  return options;
}

}  // namespace

ShadowOracleEstimator::ShadowOracleEstimator(const SetStore& store,
                                             ShadowOracleOptions options)
    : options_(ResolveShadowScope(std::move(options))),
      view_(store, options_.view_buffer_pool_pages),
      buckets_(options_.threshold_buckets) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  const std::string& scope = options_.metrics_scope;
  offered_total_ = registry.GetCounter("ssr_shadow_offered_total", scope);
  sampled_total_ = registry.GetCounter("ssr_shadow_sampled_total", scope);
  sample_rate_gauge_ = registry.GetGauge("ssr_workload_sample_rate", scope);
  sample_rate_gauge_->Set(sample_rate());
  recall_hist_ = registry.GetHistogram("ssr_observed_recall", scope,
                                       RatioBounds());
  precision_hist_ = registry.GetHistogram("ssr_observed_precision", scope,
                                          RatioBounds());
  bucket_recall_.reserve(buckets_.size());
  bucket_precision_.reserve(buckets_.size());
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::string bucket_scope = scope + "/bucket/" + std::to_string(b);
    bucket_recall_.push_back(registry.GetHistogram(
        "ssr_observed_recall", bucket_scope, RatioBounds()));
    bucket_precision_.push_back(registry.GetHistogram(
        "ssr_observed_precision", bucket_scope, RatioBounds()));
  }
}

std::size_t ShadowOracleEstimator::BucketOf(double sigma1) const {
  const std::size_t buckets = options_.threshold_buckets;
  if (sigma1 <= 0.0) return 0;
  if (sigma1 >= 1.0) return buckets - 1;
  return std::min(
      static_cast<std::size_t>(sigma1 * static_cast<double>(buckets)),
      buckets - 1);
}

bool ShadowOracleEstimator::Offer(const ElementSet& query, double sigma1,
                                  double sigma2,
                                  const std::vector<SetId>& answer_sids,
                                  std::size_t candidates) {
  std::lock_guard<std::mutex> lock(mu_);
  offered_total_->Increment();
  const bool sample = offered_ % options_.sample_every == 0;
  ++offered_;
  if (!sample) return false;

  TraceSpan span("shadow_oracle");
  // The same exact-Jaccard acceptance band the index's verification uses,
  // so the oracle never disagrees with verification on boundary ties.
  constexpr double kEps = 1e-12;
  std::vector<SetId> truth;
  view_.ScanAll([&](SetId sid, const ElementSet& set) {
    const double sim = Jaccard(set, query);
    if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) truth.push_back(sid);
    return true;
  });

  // Both sides are ascending (scan order / merged answer order).
  std::vector<SetId> hits;
  hits.reserve(std::min(truth.size(), answer_sids.size()));
  std::set_intersection(answer_sids.begin(), answer_sids.end(), truth.begin(),
                        truth.end(), std::back_inserter(hits));
  const double recall =
      truth.empty() ? 1.0
                    : static_cast<double>(hits.size()) /
                          static_cast<double>(truth.size());
  const double precision =
      candidates == 0 ? 1.0
                      : static_cast<double>(hits.size()) /
                            static_cast<double>(candidates);

  ++sampled_;
  sampled_total_->Increment();
  overall_.sampled += 1;
  overall_.recall_sum += recall;
  overall_.precision_sum += precision;
  const std::size_t b = BucketOf(sigma1);
  buckets_[b].sampled += 1;
  buckets_[b].recall_sum += recall;
  buckets_[b].precision_sum += precision;
  recall_hist_->Observe(recall);
  precision_hist_->Observe(precision);
  bucket_recall_[b]->Observe(recall);
  bucket_precision_[b]->Observe(precision);

  span.Tag("bucket", static_cast<std::uint64_t>(b));
  span.Tag("truth", static_cast<std::uint64_t>(truth.size()));
  // "counter."-prefixed numeric tags additionally render as Chrome-trace
  // counter tracks (obs/chrome_trace.h), so estimator activity plots
  // alongside the phase spans.
  span.Tag("counter.ssr_observed_recall", recall);
  span.Tag("counter.ssr_observed_precision", precision);
  span.Tag("counter.ssr_workload_sample_rate", sample_rate());
  return true;
}

std::uint64_t ShadowOracleEstimator::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

std::uint64_t ShadowOracleEstimator::sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

ShadowBucketStats ShadowOracleEstimator::overall() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overall_;
}

ShadowBucketStats ShadowOracleEstimator::bucket(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (b >= buckets_.size()) return ShadowBucketStats{};
  return buckets_[b];
}

}  // namespace obs
}  // namespace ssr
