// Query tracing: RAII spans that record nested phase timings (embed ->
// probe per-FI -> set algebra -> fetch/verify) into a fixed-capacity ring
// buffer, with per-span key=value tags (plan kind, lo/up points, candidate
// counts). Tracing is off by default: a disabled tracer turns TraceSpan
// construction into a single relaxed atomic load, keeping the hot query
// path unperturbed. The evaluation harness and bench binaries enable it and
// export the ring via the JSON exporter into BENCH_*.json artifacts.
//
// Spans land in the ring in *completion* order (children before parents,
// since a child's destructor runs first); consumers reconstruct the tree
// from parent_id/depth.

#ifndef SSR_OBS_TRACE_H_
#define SSR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/perf_counters.h"

namespace ssr {
namespace obs {

/// The worker id of the calling thread: 0 for the main thread (and any
/// thread that never set one), 1..N-1 for exec::ThreadPool workers. Spans
/// record it at open; the Chrome-trace exporter renders one track per
/// worker id.
std::uint32_t CurrentWorkerId();

/// Publishes the calling thread's worker id (thread-local). Called by
/// exec::ThreadPool when a pool thread starts; everything else leaves the
/// default of 0.
void SetCurrentWorkerId(std::uint32_t worker);

/// A completed span as stored in the ring buffer.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint32_t depth = 0;      // 0 = root
  std::uint32_t worker = 0;     // CurrentWorkerId() of the opening thread
  std::string name;
  double start_micros = 0.0;     // relative to the tracer's epoch
  double duration_micros = 0.0;  // wall time from open to close
  std::vector<std::pair<std::string, std::string>> tags;
  /// Perf-counter delta over the span's lifetime; empty unless the profiler
  /// (obs/profile.h) was enabled while the span was open.
  PerfSample counters;
};

class TraceSpan;

/// Fixed-capacity ring buffer of completed spans.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer the built-in components report to. Disabled until
  /// a harness or bench turns it on. Never destroyed.
  static Tracer& Default();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans (the span-id sequence keeps advancing).
  void Clear();

  /// Completed spans, oldest first. At most capacity() entries; earlier
  /// spans are overwritten once the ring wraps.
  std::vector<SpanRecord> Snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded, including ones the ring has overwritten.
  std::uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }

 private:
  friend class TraceSpan;

  std::uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  double MicrosSinceEpoch() const;
  void Record(SpanRecord&& record);

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint64_t> total_recorded_{0};

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // capacity_ slots once full
  std::size_t next_slot_ = 0;     // ring_ write cursor
};

/// RAII phase span. Opens on construction (nesting under the thread's
/// current span), records into the tracer's ring on destruction. When the
/// tracer is disabled at construction time, every method is a no-op.
class TraceSpan {
 public:
  /// Opens a span on the default tracer.
  explicit TraceSpan(std::string_view name)
      : TraceSpan(Tracer::Default(), name) {}
  TraceSpan(Tracer& tracer, std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Tag(std::string_view key, std::string_view value);
  void Tag(std::string_view key, const char* value) {
    Tag(key, std::string_view(value));
  }
  void Tag(std::string_view key, std::uint64_t value);
  void Tag(std::string_view key, double value);

  /// False when the tracer was disabled at construction.
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was off at construction
  SpanRecord record_;
  std::chrono::steady_clock::time_point opened_at_;
  TraceSpan* parent_ = nullptr;  // enclosing span on this thread
  bool profiled_ = false;        // profiler was enabled at open
  PerfSample counters_at_open_;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_TRACE_H_
