// Exporters for the observability subsystem: Prometheus text exposition
// (for scraping / golden tests) and JSON (embedded in the BENCH_*.json run
// artifacts by the eval harness and bench binaries). Both render a
// deterministic (name, scope)-sorted view of a MetricsRegistry; the trace
// exporter dumps the ring buffer oldest-first.

#ifndef SSR_OBS_EXPORT_H_
#define SSR_OBS_EXPORT_H_

#include <string>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ssr {
namespace obs {

/// Prometheus text exposition format, version 0.0.4:
///   # HELP ssr_index_queries_total Similarity queries served by the index.
///   # TYPE ssr_index_queries_total counter
///   ssr_index_queries_total{scope="index/0"} 42
/// Instruments in the empty scope render without a label set. Histograms
/// emit cumulative `_bucket{le="..."}` series plus `_sum` and `_count`;
/// `_count` is derived from the same single pass of bucket reads as the
/// `+Inf` bucket so each family is internally consistent even while the
/// instrument is being mutated. `# HELP` comes from the table in
/// obs/exposition.h.
std::string PrometheusText(const MetricsRegistry& registry);

/// Appends the registry as a JSON value:
///   {"counters": [{"name","scope","value"}, ...],
///    "gauges": [...],
///    "histograms": [{"name","scope","count","sum",
///                    "buckets":[{"le","count"}, ...]}]}
/// The histogram bucket counts are per-bucket (not cumulative); "le" of the
/// overflow bucket renders as "+Inf".
void WriteMetricsJson(JsonWriter& writer, const MetricsRegistry& registry);

/// Appends the tracer's ring as a JSON array of spans, oldest first:
///   [{"id","parent_id","depth","name","start_us","duration_us",
///     "tags":{...}}, ...]
void WriteTraceJson(JsonWriter& writer, const Tracer& tracer);

/// Convenience: the registry rendered as a standalone JSON document.
std::string MetricsJson(const MetricsRegistry& registry);

/// Convenience: the trace ring rendered as a standalone JSON document.
std::string TraceJson(const Tracer& tracer);

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_EXPORT_H_
