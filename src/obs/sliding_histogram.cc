#include "obs/sliding_histogram.h"

#include <algorithm>
#include <cmath>

namespace ssr {
namespace obs {

namespace {

/// Windows needed to cover `horizon` at `interval` width, at least 1,
/// clamped to the ring size.
std::size_t WindowsFor(double horizon, double interval, std::size_t ring) {
  if (!(horizon > 0.0)) return 1;
  const double needed = std::ceil(horizon / interval);
  if (needed >= static_cast<double>(ring)) return ring;
  return std::max<std::size_t>(1, static_cast<std::size_t>(needed));
}

}  // namespace

SlidingHistogram::SlidingHistogram(std::vector<double> bounds,
                                   double interval_seconds,
                                   std::size_t num_windows)
    : bounds_([&bounds] {
        std::sort(bounds.begin(), bounds.end());
        return std::move(bounds);
      }()),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0),
      windows_(std::max<std::size_t>(1, num_windows),
               std::vector<std::uint64_t>(bounds_.size() + 1, 0)) {}

void SlidingHistogram::AdvanceLocked(double now_seconds) {
  if (!started_) {
    started_ = true;
    window_start_ = now_seconds;
    windows_elapsed_ = 1;
    return;
  }
  if (now_seconds < window_start_) return;  // non-monotonic caller; absorb
  double boundary = window_start_ + interval_seconds_;
  std::size_t steps = 0;
  while (now_seconds >= boundary && steps < windows_.size()) {
    cursor_ = (cursor_ + 1) % windows_.size();
    std::fill(windows_[cursor_].begin(), windows_[cursor_].end(), 0);
    window_start_ = boundary;
    boundary += interval_seconds_;
    ++windows_elapsed_;
    ++steps;
  }
  if (now_seconds >= boundary) {
    // The clock skipped further than the whole ring: every slot is stale.
    for (auto& w : windows_) std::fill(w.begin(), w.end(), 0);
    const double skipped =
        std::floor((now_seconds - window_start_) / interval_seconds_);
    window_start_ += skipped * interval_seconds_;
    windows_elapsed_ += static_cast<std::uint64_t>(skipped);
  }
}

void SlidingHistogram::Observe(double v, double now_seconds) {
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  AddBucket(idx, 1, now_seconds);
}

void SlidingHistogram::AddBucket(std::size_t i, std::uint64_t n,
                                 double now_seconds) {
  if (i > bounds_.size() || n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_seconds);
  windows_[cursor_][i] += n;
}

void SlidingHistogram::CaptureDelta(const Histogram& source,
                                    double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_seconds);
  if (capture_source_ != &source) {
    if (source.bounds() != bounds_) return;  // shape mismatch: ignore source
    capture_source_ = &source;
    capture_last_.assign(bounds_.size() + 1, 0);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      capture_last_[i] = source.bucket_count(i);
    }
    return;  // cursor established; nothing credited
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t cur = source.bucket_count(i);
    if (cur >= capture_last_[i]) {
      windows_[cursor_][i] += cur - capture_last_[i];
    }
    // cur < last means the source was Reset between captures; re-sync.
    capture_last_[i] = cur;
  }
}

SlidingHistogram::Snapshot SlidingHistogram::Over(double horizon_seconds,
                                                  double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_seconds);
  Snapshot snap;
  snap.counts.assign(bounds_.size() + 1, 0);
  const std::size_t k =
      WindowsFor(horizon_seconds, interval_seconds_, windows_.size());
  const std::size_t live = static_cast<std::size_t>(
      std::min<std::uint64_t>(windows_elapsed_, k));
  for (std::size_t back = 0; back < live; ++back) {
    const std::size_t w =
        (cursor_ + windows_.size() - back) % windows_.size();
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      snap.counts[i] += windows_[w][i];
      snap.count += windows_[w][i];
    }
  }
  if (live > 0) {
    snap.covered_seconds = static_cast<double>(live - 1) * interval_seconds_ +
                           (now_seconds - window_start_);
  }
  return snap;
}

double SlidingHistogram::Quantile(double q, double horizon_seconds,
                                  double now_seconds) {
  const Snapshot snap = Over(horizon_seconds, now_seconds);
  if (snap.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(snap.counts[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac = (rank - cumulative) / in_bucket;
      return lower + frac * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

SlidingCounter::SlidingCounter(double interval_seconds,
                               std::size_t num_windows)
    : interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0),
      windows_(std::max<std::size_t>(1, num_windows), 0) {}

void SlidingCounter::AdvanceLocked(double now_seconds) {
  if (!started_) {
    started_ = true;
    window_start_ = now_seconds;
    return;
  }
  if (now_seconds < window_start_) return;
  double boundary = window_start_ + interval_seconds_;
  std::size_t steps = 0;
  while (now_seconds >= boundary && steps < windows_.size()) {
    cursor_ = (cursor_ + 1) % windows_.size();
    windows_[cursor_] = 0;
    window_start_ = boundary;
    boundary += interval_seconds_;
    ++steps;
  }
  if (now_seconds >= boundary) {
    std::fill(windows_.begin(), windows_.end(), 0);
    const double skipped =
        std::floor((now_seconds - window_start_) / interval_seconds_);
    window_start_ += skipped * interval_seconds_;
  }
}

void SlidingCounter::Add(std::uint64_t n, double now_seconds) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_seconds);
  windows_[cursor_] += n;
}

void SlidingCounter::CaptureDelta(const Counter& source, double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_seconds);
  const std::uint64_t cur = source.value();
  if (capture_source_ != &source) {
    capture_source_ = &source;
  } else if (cur >= capture_last_) {
    windows_[cursor_] += cur - capture_last_;
  }
  capture_last_ = cur;
}

std::uint64_t SlidingCounter::Over(double horizon_seconds,
                                   double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now_seconds);
  const std::size_t k =
      WindowsFor(horizon_seconds, interval_seconds_, windows_.size());
  std::uint64_t total = 0;
  for (std::size_t back = 0; back < k; ++back) {
    total += windows_[(cursor_ + windows_.size() - back) % windows_.size()];
  }
  return total;
}

}  // namespace obs
}  // namespace ssr
