#include "obs/perf_counters.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>
#endif

namespace ssr {
namespace obs {

namespace {

constexpr std::string_view kCounterNames[kNumPerfCounters] = {
    "cycles",        "instructions", "cache_references",
    "cache_misses",  "branch_misses", "task_clock_ns",
    "page_faults",   "context_switches",
};

}  // namespace

std::string_view PerfCounterName(PerfCounter counter) {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

void PerfSample::Accumulate(const PerfSample& other) {
  for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
    if ((other.valid_mask >> i) & 1u) {
      values[i] += other.values[i];
      valid_mask |= 1u << i;
    }
  }
}

PerfSample Delta(const PerfSample& end, const PerfSample& begin) {
  PerfSample delta;
  for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
    if (((end.valid_mask >> i) & 1u) && ((begin.valid_mask >> i) & 1u)) {
      const std::uint64_t e = end.values[i];
      const std::uint64_t b = begin.values[i];
      delta.Set(static_cast<PerfCounter>(i), e > b ? e - b : 0);
    }
  }
  return delta;
}

std::string_view PerfSourceName(PerfSource source) {
  switch (source) {
    case PerfSource::kHardware:
      return "hardware";
    case PerfSource::kSoftware:
      return "software";
    case PerfSource::kRusage:
      return "rusage";
    case PerfSource::kDisabled:
      return "disabled";
  }
  return "disabled";
}

PerfMode PerfModeFromEnv() {
  const char* env = std::getenv("SSR_PERF_COUNTERS");
  if (env == nullptr) return PerfMode::kAuto;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "disabled") == 0) {
    return PerfMode::kDisabled;
  }
  if (std::strcmp(env, "rusage") == 0) return PerfMode::kRusage;
  if (std::strcmp(env, "software") == 0) return PerfMode::kSoftware;
  return PerfMode::kAuto;
}

#if defined(__linux__)

namespace {

int OpenPerfEvent(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  // User-space only: keeps the events usable under perf_event_paranoid=2
  // (the common unprivileged default) and measures the code we control.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Thread-local measurement of the calling thread on any CPU.
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0);
  return static_cast<int>(fd);
}

struct EventSpec {
  PerfCounter slot;
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kHardwareEvents[] = {
    {PerfCounter::kCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PerfCounter::kInstructions, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_INSTRUCTIONS},
    {PerfCounter::kCacheReferences, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_REFERENCES},
    {PerfCounter::kCacheMisses, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_MISSES},
    {PerfCounter::kBranchMisses, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_MISSES},
};

constexpr EventSpec kSoftwareEvents[] = {
    {PerfCounter::kTaskClockNs, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PerfCounter::kPageFaults, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_PAGE_FAULTS},
    {PerfCounter::kContextSwitches, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_CONTEXT_SWITCHES},
};

std::uint64_t ThreadCpuNanos() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t RusagePageFaults() {
  rusage usage;
#if defined(RUSAGE_THREAD)
  if (getrusage(RUSAGE_THREAD, &usage) != 0) return 0;
#else
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#endif
  return static_cast<std::uint64_t>(usage.ru_minflt) +
         static_cast<std::uint64_t>(usage.ru_majflt);
}

}  // namespace

PerfCounterGroup::PerfCounterGroup(PerfMode mode) {
  fds_.fill(-1);
  if (mode == PerfMode::kDisabled) return;

  bool any_software = false;
  if (mode == PerfMode::kAuto || mode == PerfMode::kSoftware) {
    for (const EventSpec& spec : kSoftwareEvents) {
      const int fd = OpenPerfEvent(spec.type, spec.config);
      if (fd >= 0) {
        fds_[static_cast<std::size_t>(spec.slot)] = fd;
        any_software = true;
      }
    }
  }
  bool any_hardware = false;
  if (mode == PerfMode::kAuto) {
    for (const EventSpec& spec : kHardwareEvents) {
      const int fd = OpenPerfEvent(spec.type, spec.config);
      if (fd >= 0) {
        fds_[static_cast<std::size_t>(spec.slot)] = fd;
        any_hardware = true;
      }
    }
  }
  // kRusage needs no setup: reads go straight to clock_gettime/getrusage.
  source_ = any_hardware  ? PerfSource::kHardware
            : any_software ? PerfSource::kSoftware
                           : PerfSource::kRusage;
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

PerfSample PerfCounterGroup::Read() const {
  PerfSample sample;
  if (source_ == PerfSource::kDisabled) return sample;
  for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
    const int fd = fds_[i];
    if (fd < 0) continue;
    std::uint64_t value = 0;
    if (read(fd, &value, sizeof(value)) == sizeof(value)) {
      sample.Set(static_cast<PerfCounter>(i), value);
    }
  }
  // Software rungs without a perf task-clock/page-fault event fall back to
  // the portable sources so those two slots are populated on every rung.
  if (!sample.valid(PerfCounter::kTaskClockNs)) {
    sample.Set(PerfCounter::kTaskClockNs, ThreadCpuNanos());
  }
  if (!sample.valid(PerfCounter::kPageFaults)) {
    sample.Set(PerfCounter::kPageFaults, RusagePageFaults());
  }
  return sample;
}

#else  // !defined(__linux__)

PerfCounterGroup::PerfCounterGroup(PerfMode mode) {
  fds_.fill(-1);
  (void)mode;
}

PerfCounterGroup::~PerfCounterGroup() = default;

PerfSample PerfCounterGroup::Read() const { return PerfSample(); }

#endif  // defined(__linux__)

}  // namespace obs
}  // namespace ssr
