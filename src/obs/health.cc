#include "obs/health.h"

#include <algorithm>
#include <cstdio>

namespace ssr {
namespace obs {

namespace {

std::string FormatRatio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return std::string(buf);
}

void AddReason(HealthReport* report, HealthVerdict severity,
               std::string code, std::string detail) {
  HealthReason reason;
  reason.code = std::move(code);
  reason.detail = std::move(detail);
  reason.severity = severity;
  if (static_cast<int>(severity) > static_cast<int>(report->verdict)) {
    report->verdict = severity;
  }
  report->reasons.push_back(std::move(reason));
}

}  // namespace

const char* HealthVerdictName(HealthVerdict v) {
  switch (v) {
    case HealthVerdict::kHealthy:
      return "healthy";
    case HealthVerdict::kDegraded:
      return "degraded";
    case HealthVerdict::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

HealthReport EvaluateHealth(const HealthInputs& inputs,
                            const HealthThresholds& thresholds) {
  HealthReport report;

  // Shard plane: any quarantined/degraded shard means partial answers;
  // losing more than the configured fraction means the index can no longer
  // claim representative results.
  if (inputs.shards_total > 0 && inputs.shards_degraded > 0) {
    const double fraction = static_cast<double>(inputs.shards_degraded) /
                            static_cast<double>(inputs.shards_total);
    std::string detail;
    detail += std::to_string(inputs.shards_degraded);
    detail += " of ";
    detail += std::to_string(inputs.shards_total);
    detail += " shards quarantined/degraded";
    const HealthVerdict severity =
        fraction > thresholds.shard_unhealthy_fraction
            ? HealthVerdict::kUnhealthy
            : HealthVerdict::kDegraded;
    AddReason(&report, severity, "shard_quarantine", std::move(detail));
  }

  // SLO plane: the fast window pages, the slow window files a ticket.
  if (inputs.has_slo) {
    if (inputs.slo_fast.burn_rate >= thresholds.burn_rate_unhealthy) {
      std::string detail = "fast-window error-budget burn rate ";
      detail += FormatRatio(inputs.slo_fast.burn_rate);
      detail += " >= ";
      detail += FormatRatio(thresholds.burn_rate_unhealthy);
      AddReason(&report, HealthVerdict::kUnhealthy, "slo_burn_fast",
                std::move(detail));
    }
    if (inputs.slo_slow.burn_rate >= thresholds.burn_rate_degraded &&
        inputs.slo_slow.burn_rate < thresholds.burn_rate_unhealthy) {
      std::string detail = "slow-window error-budget burn rate ";
      detail += FormatRatio(inputs.slo_slow.burn_rate);
      detail += " >= ";
      detail += FormatRatio(thresholds.burn_rate_degraded);
      AddReason(&report, HealthVerdict::kDegraded, "slo_burn_slow",
                std::move(detail));
    }
    if (!inputs.slo_fast.p99_ok) {
      std::string detail = "p99 latency ";
      detail += FormatRatio(inputs.slo_fast.p99_micros);
      detail += "us over target";
      AddReason(&report, HealthVerdict::kDegraded, "slo_latency_p99",
                std::move(detail));
    }
  }

  // Durability plane: records appended but not yet synced are records a
  // crash would lose.
  if (inputs.has_wal && inputs.wal_last_lsn > inputs.wal_synced_lsn) {
    const std::uint64_t lag = inputs.wal_last_lsn - inputs.wal_synced_lsn;
    if (lag >= thresholds.wal_lag_degraded) {
      std::string detail = "WAL sync lag ";
      detail += std::to_string(lag);
      detail += " records (last_lsn ";
      detail += std::to_string(inputs.wal_last_lsn);
      detail += ", synced_lsn ";
      detail += std::to_string(inputs.wal_synced_lsn);
      detail += ")";
      const HealthVerdict severity = lag >= thresholds.wal_lag_unhealthy
                                         ? HealthVerdict::kUnhealthy
                                         : HealthVerdict::kDegraded;
      AddReason(&report, severity, "wal_sync_lag", std::move(detail));
    }
  }

  // Quality plane: the shadow oracle's observed recall drifting under the
  // floor means the tunable index is no longer honoring its quality knob.
  if (inputs.has_recall &&
      inputs.observed_recall < thresholds.recall_floor) {
    std::string detail = "observed recall ";
    detail += FormatRatio(inputs.observed_recall);
    detail += " below floor ";
    detail += FormatRatio(thresholds.recall_floor);
    AddReason(&report, HealthVerdict::kDegraded, "recall_drift",
              std::move(detail));
  }

  return report;
}

}  // namespace obs
}  // namespace ssr
