// Windowed aggregation over the cumulative instruments in obs/metrics.h.
// Registry counters and histograms only ever go up, which is exactly right
// for a Prometheus scrape and exactly wrong for a live question like "what
// was the p99 over the last minute?". SlidingHistogram and SlidingCounter
// answer that: a ring of fixed-width time windows (N windows of `interval`
// seconds each) whose oldest slots decay as the clock advances, so a
// quantile or a rate over any horizon up to N*interval is one pass over
// the ring.
//
// Two feeding modes:
//   - Observe()/Add(): direct observations, binned like obs::Histogram
//     (bucket i counts v <= bounds[i], one overflow bucket above).
//   - CaptureDelta(): diff a *cumulative* source instrument against the
//     last capture and credit the delta to the current window. This is how
//     the SLO layer stays off the hot path entirely: queries keep feeding
//     the registry histograms they already feed (one relaxed atomic add),
//     and a periodic tick — the introspection server's, or a scrape —
//     folds the growth into the windows. A source Reset() (the repo's
//     between-phases idiom) re-syncs the cursor instead of producing a
//     bogus negative delta.
//
// Time is always an explicit `now_seconds` parameter (any monotonic clock;
// tests drive a manual one). All methods take the instance mutex — these
// are tick/scrape-path structures, never hot-path ones.

#ifndef SSR_OBS_SLIDING_HISTOGRAM_H_
#define SSR_OBS_SLIDING_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace ssr {
namespace obs {

/// A ring of time windows over histogram buckets. Construction fixes the
/// bucket bounds (sorted ascending, one implicit overflow bucket) and the
/// ring geometry; the horizon a query can cover is num_windows * interval.
class SlidingHistogram {
 public:
  SlidingHistogram(std::vector<double> bounds, double interval_seconds,
                   std::size_t num_windows);

  /// Records one observation into the window containing `now_seconds`.
  void Observe(double v, double now_seconds);

  /// Records `n` pre-binned observations into bucket `i` (the overflow
  /// bucket when i == bounds().size()) of the current window.
  void AddBucket(std::size_t i, std::uint64_t n, double now_seconds);

  /// Credits the source histogram's growth since the last CaptureDelta to
  /// the current window. The source's bounds must equal this instance's
  /// bounds (checked once; mismatched sources are ignored). The first
  /// capture establishes the cursor without crediting anything — a tracker
  /// attached mid-run must not claim the entire past as "this window".
  void CaptureDelta(const Histogram& source, double now_seconds);

  /// Merged counts over the most recent windows covering `horizon_seconds`
  /// (clamped to the ring's full span), after rotating up to `now_seconds`.
  struct Snapshot {
    std::vector<std::uint64_t> counts;  // bounds().size() + 1 buckets
    std::uint64_t count = 0;            // sum over counts
    double covered_seconds = 0.0;       // window span actually merged
  };
  Snapshot Over(double horizon_seconds, double now_seconds);

  /// Quantile estimate (q in [0, 1]) over the merged horizon, linearly
  /// interpolated inside the selected bucket; observations in the overflow
  /// bucket report the last finite bound. Returns 0 when the horizon holds
  /// no observations.
  double Quantile(double q, double horizon_seconds, double now_seconds);

  const std::vector<double>& bounds() const { return bounds_; }
  double interval_seconds() const { return interval_seconds_; }
  std::size_t num_windows() const { return windows_.size(); }

 private:
  /// Rotates the ring so the cursor window contains `now_seconds`,
  /// zeroing every slot the clock skipped. Caller holds mu_.
  void AdvanceLocked(double now_seconds);

  const std::vector<double> bounds_;
  const double interval_seconds_;

  mutable std::mutex mu_;
  std::vector<std::vector<std::uint64_t>> windows_;  // [window][bucket]
  std::size_t cursor_ = 0;           // windows_ slot containing "now"
  double window_start_ = 0.0;        // start time of the cursor window
  bool started_ = false;             // window_start_ is meaningful
  std::uint64_t windows_elapsed_ = 0;  // windows ever opened (for coverage)

  // CaptureDelta cursor over the (single) cumulative source.
  const Histogram* capture_source_ = nullptr;
  std::vector<std::uint64_t> capture_last_;  // per-bucket counts last seen
};

/// A ring of time windows over one cumulative counter: the windowed-rate
/// companion to SlidingHistogram (availability windows diff two of these).
class SlidingCounter {
 public:
  SlidingCounter(double interval_seconds, std::size_t num_windows);

  /// Adds `n` events to the window containing `now_seconds`.
  void Add(std::uint64_t n, double now_seconds);

  /// Credits the counter's growth since the last capture to the current
  /// window (first capture only establishes the cursor; a source Reset
  /// re-syncs it).
  void CaptureDelta(const Counter& source, double now_seconds);

  /// Total events in the most recent windows covering `horizon_seconds`.
  std::uint64_t Over(double horizon_seconds, double now_seconds);

  double interval_seconds() const { return interval_seconds_; }
  std::size_t num_windows() const { return windows_.size(); }

 private:
  void AdvanceLocked(double now_seconds);

  const double interval_seconds_;

  mutable std::mutex mu_;
  std::vector<std::uint64_t> windows_;
  std::size_t cursor_ = 0;
  double window_start_ = 0.0;
  bool started_ = false;

  const Counter* capture_source_ = nullptr;
  std::uint64_t capture_last_ = 0;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_SLIDING_HISTOGRAM_H_
