// Hardware/software performance counters for scoped regions. The profiler
// (obs/profile.h) attaches these to trace spans so every query phase gets a
// counter profile (cycles, instructions, cache misses, ...), which is what
// lets perf work argue in terms of memory traffic rather than wall time.
//
// Availability ladder (best rung that works is picked at open time):
//   kHardware: perf_event_open hardware events (cycles, instructions,
//              cache-references/misses, branch-misses) plus the software
//              events below. Needs a kernel with perf and a permissive
//              perf_event_paranoid; commonly denied in containers/CI.
//   kSoftware: perf_event_open software events only (task-clock,
//              page-faults, context-switches). Works under stricter
//              paranoid settings since it measures only the calling thread.
//   kRusage:   no perf_event_open at all: task-clock from the thread CPU
//              clock, page-faults from getrusage. Always available on any
//              POSIX system; this is the rung CI containers land on.
//   kDisabled: counters force-disabled (SSR_PERF_COUNTERS=off) or a
//              non-Linux build; reads return empty samples.
//
// The environment variable SSR_PERF_COUNTERS caps the ladder:
//   "off"      -> kDisabled
//   "rusage"   -> at most kRusage
//   "software" -> at most kSoftware
//   anything else / unset -> full ladder ("auto").

#ifndef SSR_OBS_PERF_COUNTERS_H_
#define SSR_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ssr {
namespace obs {

/// Counter slots. Hardware slots may be invalid on lower ladder rungs;
/// kTaskClockNs and kPageFaults are valid on every rung except kDisabled.
enum class PerfCounter : std::size_t {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kTaskClockNs,
  kPageFaults,
  kContextSwitches,
  kCount,
};

constexpr std::size_t kNumPerfCounters =
    static_cast<std::size_t>(PerfCounter::kCount);

/// Stable export name ("cycles", "cache_misses", ...).
std::string_view PerfCounterName(PerfCounter counter);

/// One reading (or delta between two readings) of every available counter.
struct PerfSample {
  std::array<std::uint64_t, kNumPerfCounters> values{};
  std::uint32_t valid_mask = 0;  // bit i set when counter i was measured

  bool valid(PerfCounter c) const {
    return (valid_mask >> static_cast<std::size_t>(c)) & 1u;
  }
  std::uint64_t value(PerfCounter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  void Set(PerfCounter c, std::uint64_t v) {
    values[static_cast<std::size_t>(c)] = v;
    valid_mask |= 1u << static_cast<std::size_t>(c);
  }
  bool empty() const { return valid_mask == 0; }

  /// Accumulates `other` into this sample (union of valid sets).
  void Accumulate(const PerfSample& other);
};

/// end - begin per counter, clamped at zero (counters are monotonic, but a
/// multiplexed perf event can jitter); only counters valid in both samples
/// survive.
PerfSample Delta(const PerfSample& end, const PerfSample& begin);

/// The ladder rung a PerfCounterGroup landed on.
enum class PerfSource {
  kDisabled = 0,
  kRusage,
  kSoftware,
  kHardware,
};

std::string_view PerfSourceName(PerfSource source);

/// Requested cap on the ladder.
enum class PerfMode {
  kAuto = 0,   // best available rung
  kSoftware,   // at most perf software events
  kRusage,     // no perf_event_open
  kDisabled,   // no counters at all
};

/// The cap requested via SSR_PERF_COUNTERS (see header comment).
PerfMode PerfModeFromEnv();

/// A set of open counters for the calling thread. Opens file descriptors at
/// construction (walking down the ladder from the requested cap), closes
/// them at destruction. Reads are cheap (one read(2) per open hardware/
/// software counter, or two syscalls on the rusage rung). Not thread-safe;
/// readings cover the thread that constructed the group.
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(PerfMode mode = PerfMode::kAuto);
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// The rung the constructor landed on.
  PerfSource source() const { return source_; }

  /// Current cumulative reading of every available counter.
  PerfSample Read() const;

 private:
  PerfSource source_ = PerfSource::kDisabled;
  std::array<int, kNumPerfCounters> fds_;  // -1 = not open
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_PERF_COUNTERS_H_
