#include "obs/metrics.h"

#include <algorithm>

namespace ssr {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; everything above the last
  // bound lands in the overflow bucket.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(sum_, v);
}

void Histogram::AddBucket(std::size_t i, std::uint64_t n, double sum_delta) {
  if (i >= counts_.size() || n == 0) return;
  counts_[i].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  internal::AtomicAddDouble(sum_, sum_delta);
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> ExponentialBoundsCovering(double lo, double hi,
                                              double factor) {
  std::vector<double> bounds;
  if (!(lo > 0.0) || !(factor > 1.0)) return bounds;
  double v = lo;
  bounds.push_back(v);
  while (v < hi) {
    v *= factor;
    bounds.push_back(v);
  }
  return bounds;
}

std::vector<double> LatencyBoundsMicros() {
  return ExponentialBoundsCovering(1.0, 1e7, 4.0);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view scope) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = instruments_[{std::string(name), std::string(scope)}];
  if (slot.gauge != nullptr || slot.histogram != nullptr) return nullptr;
  if (slot.counter == nullptr) {
    slot.counter = std::unique_ptr<Counter>(new Counter());
  }
  return slot.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view scope) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = instruments_[{std::string(name), std::string(scope)}];
  if (slot.counter != nullptr || slot.histogram != nullptr) return nullptr;
  if (slot.gauge == nullptr) {
    slot.gauge = std::unique_ptr<Gauge>(new Gauge());
  }
  return slot.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view scope,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = instruments_[{std::string(name), std::string(scope)}];
  if (slot.counter != nullptr || slot.gauge != nullptr) return nullptr;
  if (slot.histogram == nullptr) {
    slot.histogram =
        std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  }
  return slot.histogram.get();
}

std::string MetricsRegistry::NewScope(std::string_view prefix) {
  const std::uint64_t id =
      next_scope_id_.fetch_add(1, std::memory_order_relaxed);
  return std::string(prefix) + "/" + std::to_string(id);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, slot] : instruments_) {
    if (slot.counter) slot.counter->Reset();
    if (slot.gauge) slot.gauge->Reset();
    if (slot.histogram) slot.histogram->Reset();
  }
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(instruments_.size());
  for (const auto& [key, slot] : instruments_) {
    Entry entry;
    entry.name = key.first;
    entry.scope = key.second;
    entry.counter = slot.counter.get();
    entry.gauge = slot.gauge.get();
    entry.histogram = slot.histogram.get();
    out.push_back(std::move(entry));
  }
  // std::map keys are already (name, scope)-sorted.
  return out;
}

}  // namespace obs
}  // namespace ssr
