// Minimal streaming JSON emitter for the observability exporters and the
// benchmark run artifacts (BENCH_*.json). No external dependencies; handles
// string escaping, comma placement, and non-finite doubles (emitted as
// null, since JSON has no NaN/Inf).

#ifndef SSR_OBS_JSON_WRITER_H_
#define SSR_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ssr {
namespace obs {

/// Push-style JSON builder. Calls must nest correctly (Begin/End pairs,
/// Key before every value inside an object); misuse is the caller's bug and
/// produces malformed output rather than crashing.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next call must emit its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices a pre-rendered JSON value verbatim (e.g. a nested report built
  /// by another writer). The caller guarantees `json` is valid JSON.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

  /// Escapes `value` per RFC 8259 (quotes, backslash, control chars).
  static std::string Escape(std::string_view value);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once the first element was written
  // (so the next element needs a leading comma).
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_JSON_WRITER_H_
