// Lock-cheap metrics instruments and their registry. Instruments are
// created once (mutex-guarded) and updated on hot paths with relaxed
// atomics only, so a counter bump costs one uncontended atomic add. The
// registry owns every instrument it hands out (pointers are stable for the
// registry's lifetime), which lets movable components — stores, indices,
// buffer pools — hold plain pointers and keeps per-query statistics structs
// (`QueryStats`, `IoStats`, `BufferPoolStats`) as *views* over the same
// instruments instead of parallel bookkeeping.
//
// Scoping: an instrument is identified by (name, scope). The empty scope is
// the process-wide namespace (e.g. hash-table probe totals); components
// that need isolated per-instance counters allocate a unique scope via
// `NewScope("store")` -> "store/0", "store/1", ... Exporters render the
// scope as a Prometheus label.

#ifndef SSR_OBS_METRICS_H_
#define SSR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ssr {
namespace obs {

namespace internal {
/// Relaxed compare-exchange add for pre-C++20-style atomic doubles.
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace internal

/// Monotonic event counter.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter. Used by the repo's "reset accounting between
  /// experiment phases" idiom; a live Prometheus deployment would never
  /// reset, but this system's exporters snapshot per run.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument (e.g. live set count, resident pages).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { internal::AtomicAddDouble(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// v <= bounds[i] (and > bounds[i-1]); one implicit overflow bucket counts
/// v > bounds.back(). Bounds are fixed at creation and sorted ascending.
class Histogram {
 public:
  void Observe(double v);

  /// Adds `n` pre-binned observations directly to bucket `i` (the overflow
  /// bucket when `i == bounds().size()`), contributing `sum_delta` to the
  /// running sum. This is the merge path for components that keep their own
  /// per-thread bins (e.g. the workload observer) and fold them into a
  /// registry histogram in one pass instead of replaying every observation.
  void AddBucket(std::size_t i, std::uint64_t n, double sum_delta);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Common exponential bucket boundaries: {start, start*factor, ...}, n
/// bounds total.
std::vector<double> ExponentialBounds(double start, double factor,
                                      std::size_t n);

/// Exponential bounds covering [lo, hi]: {lo, lo*factor, ...} extended
/// until a bound reaches hi (the last bound is >= hi). Requires lo > 0 and
/// factor > 1; the bucket count follows from the span, so callers state
/// the measured range instead of hand-rolling bucket lists.
std::vector<double> ExponentialBoundsCovering(double lo, double hi,
                                              double factor);

/// The repo's standard latency buckets in microseconds: factor-4
/// exponential bounds covering 1 us .. 10 s. Every *_latency_micros
/// histogram uses these so latency profiles are comparable across
/// components.
std::vector<double> LatencyBoundsMicros();

/// Owns named instruments; lookup-or-create is mutex-guarded, updates are
/// lock-free. Instrument pointers remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in component reports to. Never
  /// destroyed (intentionally leaked) so instruments outlive any static
  /// component teardown order.
  static MetricsRegistry& Default();

  /// Returns the instrument registered under (name, scope), creating it on
  /// first use. The returned pointer is stable. Re-requesting an existing
  /// name with a different instrument kind returns nullptr (a programming
  /// error surfaced loudly in tests rather than via UB).
  Counter* GetCounter(std::string_view name, std::string_view scope = "");
  Gauge* GetGauge(std::string_view name, std::string_view scope = "");
  /// `bounds` applies on first creation only; later lookups return the
  /// existing histogram regardless of bounds.
  Histogram* GetHistogram(std::string_view name, std::string_view scope,
                          std::vector<double> bounds);

  /// Allocates a process-unique scope string "prefix/N" for per-instance
  /// instrument isolation.
  std::string NewScope(std::string_view prefix);

  /// Zeroes every registered instrument (between experiment phases).
  void ResetAll();

  /// A snapshot row for exporters; exactly one instrument pointer is set.
  struct Entry {
    std::string name;
    std::string scope;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// All instruments, sorted by (name, scope) for deterministic export.
  std::vector<Entry> Entries() const;

 private:
  struct Slot {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Slot> instruments_;
  std::atomic<std::uint64_t> next_scope_id_{0};
};

}  // namespace obs
}  // namespace ssr

#endif  // SSR_OBS_METRICS_H_
