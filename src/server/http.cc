#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace ssr {
namespace server {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

bool RequestHeadComplete(std::string_view text) {
  return text.find("\r\n\r\n") != std::string_view::npos ||
         text.find("\n\n") != std::string_view::npos;
}

bool ParseRequest(std::string_view text, HttpRequest* out) {
  *out = HttpRequest();
  std::size_t pos = 0;
  auto next_line = [&](std::string_view* line) {
    if (pos >= text.size()) return false;
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) return false;
    *line = StripCr(text.substr(pos, end - pos));
    pos = end + 1;
    return true;
  };

  std::string_view request_line;
  if (!next_line(&request_line)) return false;
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  out->method = std::string(request_line.substr(0, sp1));
  out->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out->version = std::string(request_line.substr(sp2 + 1));
  if (out->version.rfind("HTTP/", 0) != 0) return false;
  if (out->target.empty() || out->target[0] != '/') return false;

  const std::size_t q = out->target.find('?');
  out->path = out->target.substr(0, q);
  if (q != std::string::npos) {
    std::string_view params(out->target);
    params.remove_prefix(q + 1);
    while (!params.empty()) {
      std::size_t amp = params.find('&');
      const std::string_view pair = params.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out->query[std::string(pair)] = "";
      } else {
        out->query[std::string(pair.substr(0, eq))] =
            std::string(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      params.remove_prefix(amp + 1);
    }
  }

  std::string_view line;
  while (next_line(&line)) {
    if (line.empty()) return true;  // blank line: end of head
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    out->headers[ToLower(line.substr(0, colon))] = std::string(value);
  }
  return false;  // head never terminated
}

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpGetResult HttpGet(const std::string& host, std::uint16_t port,
                      const std::string& path, double timeout_seconds) {
  HttpGetResult result;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }

  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_seconds);
  tv.tv_usec = static_cast<long>((timeout_seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    result.error = "inet_pton: invalid address '" + host + "'";
    ::close(fd);
    return result;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    result.error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return result;
  }

  std::string request = "GET ";
  request += path;
  request += " HTTP/1.1\r\nHost: ";
  request += host;
  request += "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      result.error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return result;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      result.error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return result;
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    result.error = "malformed response (no header terminator)";
    return result;
  }
  const std::string_view head(raw.data(), head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.rfind("HTTP/", 0) != 0) {
    result.error = "malformed status line";
    return result;
  }
  result.status = std::atoi(std::string(status_line.substr(sp + 1)).c_str());

  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    result.headers[ToLower(line.substr(0, colon))] = std::string(value);
  }

  result.body = raw.substr(head_end + 4);
  result.ok = true;
  return result;
}

}  // namespace server
}  // namespace ssr
