#include "server/introspection_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/json_writer.h"

namespace ssr {
namespace server {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

/// The scope label each canonical horizon's gauges live under.
const char* WindowScope(double horizon) {
  if (horizon == obs::kSloWindowMinute) return "slo/1m";
  if (horizon == obs::kSloWindowFiveMinutes) return "slo/5m";
  return "slo/1h";
}

void WriteSloWindow(obs::JsonWriter& w, const char* name,
                    const obs::SloWindowReport& r) {
  w.Key(name).BeginObject();
  w.Key("horizon_seconds").Double(r.horizon_seconds);
  w.Key("covered_seconds").Double(r.covered_seconds);
  w.Key("latency_count").UInt(r.latency_count);
  w.Key("p50_micros").Double(r.p50_micros);
  w.Key("p99_micros").Double(r.p99_micros);
  w.Key("p50_ok").Bool(r.p50_ok);
  w.Key("p99_ok").Bool(r.p99_ok);
  w.Key("total").UInt(r.total);
  w.Key("errors").UInt(r.errors);
  w.Key("availability").Double(r.availability);
  w.Key("burn_rate").Double(r.burn_rate);
  w.Key("availability_ok").Bool(r.availability_ok);
  w.EndObject();
}

void WriteHealthReport(obs::JsonWriter& w, const obs::HealthReport& report) {
  w.Key("status").String(obs::HealthVerdictName(report.verdict));
  w.Key("reasons").BeginArray();
  for (const obs::HealthReason& reason : report.reasons) {
    w.BeginObject();
    w.Key("code").String(reason.code);
    w.Key("severity").String(obs::HealthVerdictName(reason.severity));
    w.Key("detail").String(reason.detail);
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectionServerOptions options,
                                         obs::MetricsRegistry* registry,
                                         obs::Tracer* tracer)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Default()),
      tracer_(tracer != nullptr ? tracer : &obs::Tracer::Default()),
      epoch_(std::chrono::steady_clock::now()),
      slo_(obs::LatencyBoundsMicros(), options_.slo),
      health_(options_.health),
      requests_total_(registry_->GetCounter("ssr_server_requests_total")),
      rejected_total_(
          registry_->GetCounter("ssr_server_connections_rejected_total")) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

double IntrospectionServer::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void IntrospectionServer::SetSources(const StatusSources& sources) {
  std::lock_guard<std::mutex> lock(sources_mu_);
  sources_ = sources;
}

StatusSources IntrospectionServer::SourcesSnapshot() const {
  std::lock_guard<std::mutex> lock(sources_mu_);
  return sources_;
}

Status IntrospectionServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  // Wake accept() periodically so Stop() is never blocked on a quiet port.
  timeval accept_tv{};
  accept_tv.tv_usec = 200 * 1000;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVTIMEO, &accept_tv,
               sizeof(accept_tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind: " + err);
  }
  if (::listen(listen_fd_, static_cast<int>(options_.max_connections)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  const std::size_t handlers = std::max<std::size_t>(1,
                                                     options_.handler_threads);
  handler_threads_.reserve(handlers);
  for (std::size_t i = 0; i < handlers; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.tick_interval_seconds > 0.0) {
    tick_thread_ = std::thread([this] { TickLoop(); });
  }
  return Status::OK();
}

void IntrospectionServer::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  if (tick_thread_.joinable()) tick_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
    in_flight_ = 0;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void IntrospectionServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // timeout (EAGAIN) or shutdown race
    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_fds_.size() + in_flight_ < options_.max_connections) {
        pending_fds_.push_back(fd);
        accepted = true;
      }
    }
    if (accepted) {
      queue_cv_.notify_one();
      continue;
    }
    // Over the connection bound: answer 503 inline and move on. The write
    // is best-effort — a peer that already went away changes nothing.
    rejected_total_->Increment();
    HttpResponse busy;
    busy.status = 503;
    busy.body = "introspection server at connection capacity\n";
    const std::string wire = SerializeResponse(busy);
    (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
}

void IntrospectionServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !pending_fds_.empty();
      });
      if (pending_fds_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = pending_fds_.front();
      pending_fds_.pop_front();
      ++in_flight_;
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
    }
  }
}

void IntrospectionServer::ServeConnection(int fd) {
  timeval tv{};
  tv.tv_sec = static_cast<long>(options_.read_timeout_seconds);
  tv.tv_usec = static_cast<long>(
      (options_.read_timeout_seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string raw;
  char buf[2048];
  while (raw.size() < kMaxRequestBytes && !RequestHeadComplete(raw)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout, error, or peer close
    raw.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  HttpRequest request;
  bool head_only = false;
  if (!RequestHeadComplete(raw) || !ParseRequest(raw, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    head_only = request.method == "HEAD";
    response = Handle(request);
  }

  std::string wire = SerializeResponse(response);
  if (head_only) {
    wire.resize(wire.find("\r\n\r\n") + 4);
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

void IntrospectionServer::TickLoop() {
  double last_tick = NowSeconds();
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double now = NowSeconds();
    if (now - last_tick < options_.tick_interval_seconds) continue;
    last_tick = now;
    Tick(now);
  }
}

void IntrospectionServer::Tick(double now_seconds) {
  const StatusSources sources = SourcesSnapshot();
  slo_.Tick(sources.slo_latency, sources.slo_total, sources.slo_errors,
            now_seconds);

  for (const obs::SloWindowReport& r : slo_.CanonicalReports(now_seconds)) {
    const char* scope = WindowScope(r.horizon_seconds);
    registry_->GetGauge("ssr_slo_p50_micros", scope)->Set(r.p50_micros);
    registry_->GetGauge("ssr_slo_p99_micros", scope)->Set(r.p99_micros);
    registry_->GetGauge("ssr_slo_availability", scope)->Set(r.availability);
    registry_->GetGauge("ssr_slo_burn_rate", scope)->Set(r.burn_rate);
  }
  const obs::HealthReport report =
      health_.Evaluate(BuildHealthInputs(sources, now_seconds));
  registry_->GetGauge("ssr_health_verdict")
      ->Set(static_cast<double>(report.verdict));
}

obs::HealthInputs IntrospectionServer::BuildHealthInputs(
    const StatusSources& sources, double now_seconds) {
  obs::HealthInputs inputs;
  if (sources.sharded_index != nullptr) {
    inputs.shards_total = sources.sharded_index->num_shards();
    for (std::uint32_t s = 0; s < sources.sharded_index->num_shards(); ++s) {
      if (sources.sharded_index->shard_degraded(s)) ++inputs.shards_degraded;
    }
  }
  inputs.has_slo = true;
  inputs.slo_fast = slo_.Report(obs::kSloWindowMinute, now_seconds);
  inputs.slo_slow = slo_.Report(obs::kSloWindowHour, now_seconds);
  if (sources.wal != nullptr) {
    inputs.has_wal = true;
    inputs.wal_last_lsn = sources.wal->last_lsn();
    inputs.wal_synced_lsn = sources.wal->synced_lsn();
  }
  if (sources.shadow_oracle != nullptr &&
      sources.shadow_oracle->sampled() > 0) {
    inputs.has_recall = true;
    inputs.observed_recall = sources.shadow_oracle->overall().MeanRecall();
  }
  return inputs;
}

obs::HealthReport IntrospectionServer::Health(double now_seconds) {
  return health_.Evaluate(
      BuildHealthInputs(SourcesSnapshot(), now_seconds));
}

HttpResponse IntrospectionServer::Handle(const HttpRequest& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  requests_total_->Increment();
  if (request.path == "/metrics") return HandleMetrics();
  if (request.path == "/healthz") return HandleHealthz();
  if (request.path == "/statusz") return HandleStatusz();
  if (request.path == "/tracez") return HandleTracez(request);
  if (request.path == "/varz") return HandleVarz();

  HttpResponse response;
  response.status = 404;
  response.content_type = "application/json";
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("error").String("no such endpoint: " + request.path);
  w.Key("endpoints").BeginArray();
  for (const char* e : {"/metrics", "/healthz", "/statusz", "/tracez",
                        "/varz"}) {
    w.String(e);
  }
  w.EndArray();
  w.EndObject();
  response.body = w.str();
  return response;
}

HttpResponse IntrospectionServer::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::PrometheusText(*registry_);
  return response;
}

HttpResponse IntrospectionServer::HandleHealthz() {
  const obs::HealthReport report = Health(NowSeconds());
  HttpResponse response;
  // Degraded still serves traffic (partial answers), so it stays 200 for
  // load-balancer checks; only Unhealthy turns the endpoint red.
  response.status =
      report.verdict == obs::HealthVerdict::kUnhealthy ? 503 : 200;
  response.content_type = "application/json";
  obs::JsonWriter w;
  w.BeginObject();
  WriteHealthReport(w, report);
  w.EndObject();
  response.body = w.str();
  return response;
}

HttpResponse IntrospectionServer::HandleStatusz() {
  const double now = NowSeconds();
  const StatusSources sources = SourcesSnapshot();

  HttpResponse response;
  response.content_type = "application/json";
  obs::JsonWriter w;
  w.BeginObject();

  w.Key("server").BeginObject();
  w.Key("uptime_seconds").Double(now);
  w.Key("port").UInt(port_);
  w.Key("requests_served").UInt(requests_served());
  w.EndObject();

  w.Key("health").BeginObject();
  WriteHealthReport(w, health_.Evaluate(BuildHealthInputs(sources, now)));
  w.EndObject();

  w.Key("slo").BeginObject();
  const std::vector<obs::SloWindowReport> reports =
      slo_.CanonicalReports(now);
  WriteSloWindow(w, "1m", reports[0]);
  WriteSloWindow(w, "5m", reports[1]);
  WriteSloWindow(w, "1h", reports[2]);
  w.EndObject();

  if (sources.sharded_index != nullptr) {
    const shard::ShardedSetSimilarityIndex& index = *sources.sharded_index;
    w.Key("shards").BeginObject();
    w.Key("total").UInt(index.num_shards());
    w.Key("live_sets").UInt(index.num_live_sets());
    w.Key("states").BeginArray();
    for (std::uint32_t s = 0; s < index.num_shards(); ++s) {
      w.BeginObject();
      w.Key("shard").UInt(s);
      w.Key("degraded").Bool(index.shard_degraded(s));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (sources.wal != nullptr) {
    const WalWriter& wal = *sources.wal;
    w.Key("wal").BeginObject();
    w.Key("last_lsn").UInt(wal.last_lsn());
    w.Key("synced_lsn").UInt(wal.synced_lsn());
    w.Key("sync_lag_records").UInt(wal.last_lsn() - wal.synced_lsn());
    w.EndObject();
  }

  if (sources.last_recovery != nullptr) {
    const RecoveryReport& r = *sources.last_recovery;
    w.Key("last_recovery").BeginObject();
    w.Key("salvaged").Bool(r.salvaged);
    w.Key("pages_quarantined").UInt(r.pages_quarantined);
    w.Key("records_quarantined").UInt(r.records_quarantined);
    w.Key("wal_records_replayed").UInt(r.wal_records_replayed);
    w.Key("wal_records_skipped").UInt(r.wal_records_skipped);
    w.Key("wal_bytes_truncated").UInt(r.wal_bytes_truncated);
    w.Key("wal_tail_truncated").Bool(r.wal_tail_truncated);
    w.Key("wal_shards_quarantined").UInt(r.wal_shards_quarantined);
    w.Key("recovery_seconds").Double(r.wal_recovery_seconds);
    w.EndObject();
  }

  if (sources.thread_pool != nullptr) {
    const exec::ThreadPool& pool = *sources.thread_pool;
    w.Key("thread_pool").BeginObject();
    w.Key("workers").UInt(pool.size());
    w.Key("jobs_run").UInt(pool.jobs_run());
    w.Key("busy").Bool(pool.busy());
    w.EndObject();
  }

  if (sources.buffer_pool != nullptr) {
    const BufferPool& pool = *sources.buffer_pool;
    const BufferPoolStats stats = pool.stats();
    w.Key("buffer_pool").BeginObject();
    w.Key("capacity_pages").UInt(pool.capacity());
    w.Key("resident_pages").UInt(pool.resident());
    w.Key("hits").UInt(stats.hits);
    w.Key("misses").UInt(stats.misses);
    w.Key("evictions").UInt(stats.evictions);
    w.Key("hit_rate").Double(stats.hit_rate());
    w.EndObject();
  }

  if (sources.shadow_oracle != nullptr) {
    const obs::ShadowOracleEstimator& shadow = *sources.shadow_oracle;
    const obs::ShadowBucketStats overall = shadow.overall();
    w.Key("shadow_oracle").BeginObject();
    w.Key("offered").UInt(shadow.offered());
    w.Key("sampled").UInt(shadow.sampled());
    w.Key("observed_recall").Double(overall.MeanRecall());
    w.Key("observed_precision").Double(overall.MeanPrecision());
    w.EndObject();
  }

  w.EndObject();
  response.body = w.str();
  return response;
}

HttpResponse IntrospectionServer::HandleTracez(const HttpRequest& request) {
  std::size_t limit = options_.tracez_limit;
  const auto it = request.query.find("limit");
  if (it != request.query.end()) {
    const long parsed = std::atol(it->second.c_str());
    if (parsed > 0) {
      limit = std::min<std::size_t>(static_cast<std::size_t>(parsed),
                                    options_.tracez_limit);
    }
  }

  std::vector<obs::SpanRecord> spans = tracer_->Snapshot();
  const std::size_t start = spans.size() > limit ? spans.size() - limit : 0;

  HttpResponse response;
  response.content_type = "application/json";
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(tracer_->enabled());
  w.Key("capacity").UInt(tracer_->capacity());
  w.Key("total_recorded").UInt(tracer_->total_recorded());
  w.Key("spans").BeginArray();
  for (std::size_t i = start; i < spans.size(); ++i) {
    const obs::SpanRecord& span = spans[i];
    w.BeginObject();
    w.Key("id").UInt(span.id);
    w.Key("parent_id").UInt(span.parent_id);
    w.Key("depth").UInt(span.depth);
    w.Key("worker").UInt(span.worker);
    w.Key("name").String(span.name);
    w.Key("start_us").Double(span.start_micros);
    w.Key("duration_us").Double(span.duration_micros);
    w.Key("tags").BeginObject();
    for (const auto& [key, value] : span.tags) {
      w.Key(key).String(value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response.body = w.str();
  return response;
}

HttpResponse IntrospectionServer::HandleVarz() {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = obs::MetricsJson(*registry_);
  return response;
}

}  // namespace server
}  // namespace ssr
