// Minimal HTTP/1.1 plumbing for the introspection server: request parsing,
// response serialization, and a tiny blocking GET client (tests, the
// benchrunner's self-scrape, CI smoke checks). Deliberately not a general
// HTTP stack — GET/HEAD only, no keep-alive, no chunked encoding, bodies
// ignored on requests. That is exactly the surface a localhost scrape
// endpoint needs, and nothing a dependency would buy us here.

#ifndef SSR_SERVER_HTTP_H_
#define SSR_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ssr {
namespace server {

struct HttpRequest {
  std::string method;   // "GET", "HEAD", ...
  std::string target;   // the raw request target, e.g. "/metrics?x=1"
  std::string path;     // target up to '?'
  std::string version;  // "HTTP/1.1"
  /// Query parameters from the target, URL-decoding *not* applied (the
  /// introspection endpoints take simple numeric/word values only).
  std::map<std::string, std::string> query;
  /// Header names lowercased.
  std::map<std::string, std::string> headers;
};

/// Parses a full request head ("METHOD target HTTP/x.y\r\n" + header lines
/// + blank line). Returns false on any syntax violation. `text` may
/// contain bytes past the blank line; they are ignored.
bool ParseRequest(std::string_view text, HttpRequest* out);

/// True once `text` contains the complete request head (the CRLFCRLF or
/// LFLF terminator) — the read loop's "stop reading" predicate.
bool RequestHeadComplete(std::string_view text);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// The canonical reason phrase ("OK", "Not Found", ...) for the handful of
/// status codes the server emits; "Unknown" otherwise.
const char* StatusReason(int status);

/// Serializes status line + Content-Type/Content-Length/Connection: close
/// headers + body.
std::string SerializeResponse(const HttpResponse& response);

/// Outcome of a blocking HttpGet. `ok` means a well-formed response came
/// back (whatever its status); transport failures set `error`.
struct HttpGetResult {
  bool ok = false;
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;  // names lowercased
  std::string error;
};

/// Blocking GET http://<host>:<port><path> with a total deadline. Host is
/// a numeric IPv4 address ("127.0.0.1") — this client only ever talks to
/// the local introspection endpoint.
HttpGetResult HttpGet(const std::string& host, std::uint16_t port,
                      const std::string& path, double timeout_seconds = 5.0);

}  // namespace server
}  // namespace ssr

#endif  // SSR_SERVER_HTTP_H_
