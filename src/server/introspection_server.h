// The live introspection plane: a small, dependency-free, thread-based
// HTTP/1.1 endpoint bound to localhost that makes a running process
// observable while it runs — the scaffolding the ROADMAP's network front
// end (admission control, SLO gating) will stand on.
//
// Endpoints:
//   /metrics  Prometheus text exposition of the metrics registry. Each
//             histogram family is rendered from a single pass of bucket
//             reads, so a scrape taken mid-mutation is internally
//             consistent (validated by obs::ValidateExposition in tests).
//   /healthz  The HealthModel verdict as JSON. HTTP 200 while the system
//             is healthy or degraded-but-serving, 503 when unhealthy.
//   /statusz  Full system state as JSON: health + SLO windows (1m/5m/1h
//             p50/p99, availability, burn rate), per-shard degraded flags,
//             WAL last_lsn/synced_lsn + last recovery report, thread-pool
//             and buffer-pool occupancy, shadow-oracle observed recall.
//   /tracez   The last-N completed spans from the trace ring as JSON
//             (?limit=N, capped at the configured maximum).
//   /varz     Raw registry dump (counters/gauges/histograms) as JSON.
//
// Concurrency model: one accept thread and a fixed pool of handler
// threads; connections beyond the queue bound get an immediate 503. A
// periodic tick thread delta-captures the configured cumulative SLO
// instruments into the windowed tracker and republishes the ssr_slo_* /
// ssr_health_verdict gauges — the hot query path never takes a lock for
// any of this beyond the relaxed registry adds it already performs.
//
// Every data source is optional (SetSources): absent planes simply drop
// out of /statusz and trigger no health rules, so a serial bench can run
// the server with nothing but the registry attached.

#ifndef SSR_SERVER_INTROSPECTION_SERVER_H_
#define SSR_SERVER_INTROSPECTION_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/shadow_oracle.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "server/http.h"
#include "shard/sharded_index.h"
#include "storage/buffer_pool.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/status.h"

namespace ssr {
namespace server {

struct IntrospectionServerOptions {
  /// Bind address; the introspection plane is localhost-only by design.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;

  /// Handler threads and the accept queue bound. Connections arriving
  /// while `max_connections` are queued or in flight are answered 503.
  std::size_t handler_threads = 2;
  std::size_t max_connections = 8;

  /// Per-connection socket read timeout.
  double read_timeout_seconds = 2.0;

  /// Tick-thread period for SLO delta capture and gauge republication;
  /// <= 0 disables the tick thread (Tick() can still be driven manually,
  /// which is what the tests do).
  double tick_interval_seconds = 1.0;

  /// Default and hard cap for the span count /tracez returns.
  std::size_t tracez_limit = 256;

  /// SLO objectives and ring geometry for the windowed tracker.
  obs::SloConfig slo;
  /// Health-verdict thresholds.
  obs::HealthThresholds health;
};

/// Optional live-state sources for /statusz and the health model. All
/// pointers are borrowed and must outlive the server (or be cleared with
/// another SetSources call first).
struct StatusSources {
  const shard::ShardedSetSimilarityIndex* sharded_index = nullptr;
  const WalWriter* wal = nullptr;
  const RecoveryReport* last_recovery = nullptr;
  const exec::ThreadPool* thread_pool = nullptr;
  const BufferPool* buffer_pool = nullptr;
  const obs::ShadowOracleEstimator* shadow_oracle = nullptr;

  /// Cumulative instruments the SLO windows delta-capture on each tick:
  /// a latency histogram (bounds must be obs::LatencyBoundsMicros() to
  /// match the tracker) and total/error counters for availability. Any of
  /// them may be null.
  const obs::Histogram* slo_latency = nullptr;
  const obs::Counter* slo_total = nullptr;
  const obs::Counter* slo_errors = nullptr;
};

class IntrospectionServer {
 public:
  /// `registry`/`tracer` default to the process-wide instances.
  explicit IntrospectionServer(IntrospectionServerOptions options = {},
                               obs::MetricsRegistry* registry = nullptr,
                               obs::Tracer* tracer = nullptr);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Binds, listens, and starts the accept/handler/tick threads. Fails if
  /// already running or the port cannot be bound.
  Status Start();

  /// Stops all threads and closes the socket. Idempotent; the destructor
  /// calls it.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves option port 0 to the actual ephemeral port).
  /// Meaningful only while running.
  std::uint16_t port() const { return port_; }

  /// Replaces the live-state sources (thread-safe; takes effect on the
  /// next scrape/tick).
  void SetSources(const StatusSources& sources);

  /// One SLO capture + gauge republication at `now_seconds` (the tick
  /// thread calls this with the server's monotonic clock; tests drive it
  /// with a manual clock).
  void Tick(double now_seconds);

  /// Evaluates the health model against the current sources and SLO
  /// windows. This is exactly what /healthz serves.
  obs::HealthReport Health(double now_seconds);

  /// Dispatches one parsed request to the endpoint handlers. Exposed so
  /// tests can exercise rendering without a socket.
  HttpResponse Handle(const HttpRequest& request);

  /// Seconds on the server's monotonic clock (zero at construction) — the
  /// time base the tick thread feeds to Tick().
  double NowSeconds() const;

  /// Requests served since Start (all endpoints, including 404s).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  const IntrospectionServerOptions& options() const { return options_; }
  obs::SloTracker& slo_tracker() { return slo_; }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void TickLoop();
  void ServeConnection(int fd);

  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz();
  HttpResponse HandleStatusz();
  HttpResponse HandleTracez(const HttpRequest& request);
  HttpResponse HandleVarz();

  /// Snapshot of the sources under sources_mu_.
  StatusSources SourcesSnapshot() const;
  /// Builds the health-model inputs from a sources snapshot + SLO windows.
  obs::HealthInputs BuildHealthInputs(const StatusSources& sources,
                                      double now_seconds);

  const IntrospectionServerOptions options_;
  obs::MetricsRegistry* const registry_;
  obs::Tracer* const tracer_;
  const std::chrono::steady_clock::time_point epoch_;

  obs::SloTracker slo_;
  obs::HealthModel health_;

  mutable std::mutex sources_mu_;
  StatusSources sources_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
  std::thread tick_thread_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
  std::size_t in_flight_ = 0;  // connections being served right now

  std::atomic<std::uint64_t> requests_served_{0};
  obs::Counter* requests_total_;
  obs::Counter* rejected_total_;
};

}  // namespace server
}  // namespace ssr

#endif  // SSR_SERVER_INTROSPECTION_SERVER_H_
