// Random bit sampling from the embedded Hamming space (Section 4.1): each
// hash table of a filter index is keyed on r bit positions chosen at random
// from the D = m*k positions of H^{mk}.
//
// A sampled position is a pair (signature coordinate, codeword bit), so the
// r-bit key of a vector is computed directly from its min-hash signature via
// Code::Bit — the D-dimensional vector is never materialized.

#ifndef SSR_CORE_BIT_SAMPLER_H_
#define SSR_CORE_BIT_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "hamming/bitvector.h"
#include "hamming/embedding.h"
#include "minhash/signature.h"
#include "util/random.h"

namespace ssr {

/// One sampled bit position of the embedded space.
struct BitPosition {
  std::uint32_t coordinate;  // which min-hash value (0 <= . < k)
  std::uint32_t code_pos;    // which bit of its codeword (0 <= . < m)

  bool operator==(const BitPosition&) const = default;
};

/// An immutable sample of r bit positions with key-extraction routines.
class BitSampler {
 public:
  /// Samples `r` distinct positions from the embedding's D positions.
  /// If r > D the sample is drawn with replacement (degenerate but legal).
  BitSampler(const Embedding& embedding, std::size_t r, Rng& rng);

  /// Constructs from explicit positions (tests).
  BitSampler(const Embedding& embedding, std::vector<BitPosition> positions);

  std::size_t r() const { return positions_.size(); }
  const std::vector<BitPosition>& positions() const { return positions_; }

  /// The r sampled bits of the embedded vector of `sig`, packed LSB-first.
  /// If `complemented`, every bit is flipped — this implements querying with
  /// the complement vector q̄_b (Theorem 2 / DFI) without materializing it.
  BitVector ExtractKey(const Signature& sig, bool complemented = false) const;

  /// 64-bit hash of the extracted key (the value the hash table buckets
  /// on). Exactly equal keys always produce equal hashes.
  std::uint64_t ExtractKeyHash(const Signature& sig,
                               bool complemented = false) const;

 private:
  const Embedding* embedding_;  // not owned; outlives the sampler
  std::vector<BitPosition> positions_;
  // Hadamard codes compute Bit(u, p) = parity(u & p); extraction inlines
  // that as std::popcount instead of paying a virtual Code::Bit call per
  // sampled position (the hot probe path). Identical keys and hashes.
  bool hadamard_fast_path_ = false;
};

}  // namespace ssr

#endif  // SSR_CORE_BIT_SAMPLER_H_
