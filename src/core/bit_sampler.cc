#include "core/bit_sampler.h"

#include <bit>

#include "util/hash.h"

namespace ssr {

BitSampler::BitSampler(const Embedding& embedding, std::size_t r, Rng& rng)
    : embedding_(&embedding),
      hadamard_fast_path_(embedding.params().code_kind ==
                          CodeKind::kHadamard) {
  const std::size_t dim = embedding.dimension();
  const unsigned m = embedding.code().codeword_bits();
  positions_.reserve(r);
  if (r <= dim) {
    for (std::uint64_t global : rng.SampleWithoutReplacement(dim, r)) {
      positions_.push_back(
          {static_cast<std::uint32_t>(global / m),
           static_cast<std::uint32_t>(global % m)});
    }
  } else {
    for (std::size_t i = 0; i < r; ++i) {
      const std::uint64_t global = rng.Uniform(dim);
      positions_.push_back(
          {static_cast<std::uint32_t>(global / m),
           static_cast<std::uint32_t>(global % m)});
    }
  }
}

BitSampler::BitSampler(const Embedding& embedding,
                       std::vector<BitPosition> positions)
    : embedding_(&embedding),
      positions_(std::move(positions)),
      hadamard_fast_path_(embedding.params().code_kind ==
                          CodeKind::kHadamard) {}

BitVector BitSampler::ExtractKey(const Signature& sig,
                                 bool complemented) const {
  BitVector key(positions_.size());
  const Code& code = embedding_->code();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const BitPosition& p = positions_[i];
    bool bit = code.Bit(sig[p.coordinate], p.code_pos);
    if (complemented) bit = !bit;
    if (bit) key.Set(i, true);
  }
  return key;
}

std::uint64_t BitSampler::ExtractKeyHash(const Signature& sig,
                                         bool complemented) const {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  std::uint64_t word = 0;
  unsigned filled = 0;
  if (hadamard_fast_path_) {
    // Hadamard bit p of message u is parity(u & p): a popcount, no virtual
    // dispatch. Bit-for-bit the generic loop below under HadamardCode.
    for (const BitPosition& p : positions_) {
      std::uint64_t bit = static_cast<std::uint64_t>(std::popcount(
                              static_cast<std::uint32_t>(sig[p.coordinate]) &
                              p.code_pos)) &
                          1ULL;
      if (complemented) bit ^= 1ULL;
      word = (word << 1) | bit;
      if (++filled == 64) {
        h = HashCombine(h, word);
        word = 0;
        filled = 0;
      }
    }
  } else {
    const Code& code = embedding_->code();
    for (const BitPosition& p : positions_) {
      bool bit = code.Bit(sig[p.coordinate], p.code_pos);
      if (complemented) bit = !bit;
      word = (word << 1) | static_cast<std::uint64_t>(bit);
      if (++filled == 64) {
        h = HashCombine(h, word);
        word = 0;
        filled = 0;
      }
    }
  }
  if (filled != 0) h = HashCombine(h, word | (1ULL << filled));
  return h;
}

}  // namespace ssr
