#include "core/filter_function.h"

#include <cassert>
#include <cmath>

#include "util/mathutil.h"

namespace ssr {

FilterFunction::FilterFunction(std::size_t r, std::size_t l)
    : r_(r < 1 ? 1 : r), l_(l < 1 ? 1 : l) {}

FilterFunction FilterFunction::ForTurningPoint(double s_star, std::size_t l) {
  s_star = Clamp(s_star, 1e-6, 1.0 - 1e-6);
  if (l < 1) l = 1;
  // p(s*) = 1/2  <=>  (1 - s*^r)^l = 1/2  <=>  s*^r = 1 - 2^{-1/l}.
  const double target = 1.0 - std::pow(2.0, -1.0 / static_cast<double>(l));
  const double r_exact = std::log(target) / std::log(s_star);
  std::size_t r = static_cast<std::size_t>(std::lround(r_exact));
  if (r < 1) r = 1;
  return FilterFunction(r, l);
}

std::size_t FilterFunction::TablesForTurningPoint(double s_star,
                                                  std::size_t r) {
  s_star = Clamp(s_star, 1e-6, 1.0 - 1e-6);
  if (r < 1) r = 1;
  const double sr = std::pow(s_star, static_cast<double>(r));
  if (sr >= 1.0) return 1;
  const double l_exact = std::log(0.5) / std::log(1.0 - sr);
  const std::size_t l = static_cast<std::size_t>(std::ceil(l_exact));
  return l < 1 ? 1 : l;
}

double FilterFunction::Collision(double s) const {
  s = Clamp(s, 0.0, 1.0);
  const double sr = std::pow(s, static_cast<double>(r_));
  return 1.0 - std::pow(1.0 - sr, static_cast<double>(l_));
}

double FilterFunction::TurningPoint() const {
  const double target = 1.0 - std::pow(2.0, -1.0 / static_cast<double>(l_));
  return std::pow(target, 1.0 / static_cast<double>(r_));
}

double FilterFunction::Slope(double s) const {
  s = Clamp(s, 1e-12, 1.0);
  const double sr = std::pow(s, static_cast<double>(r_));
  const double inner = Clamp(1.0 - sr, 0.0, 1.0);
  // d/ds [1 - (1 - s^r)^l] = l (1 - s^r)^{l-1} r s^{r-1}.
  return static_cast<double>(l_) *
         std::pow(inner, static_cast<double>(l_) - 1.0) *
         static_cast<double>(r_) * std::pow(s, static_cast<double>(r_) - 1.0);
}

double FilterFunction::InverseCollision(double p) const {
  p = Clamp(p, 1e-12, 1.0 - 1e-12);
  // p = 1 - (1 - s^r)^l  =>  s = (1 - (1-p)^{1/l})^{1/r}.
  const double sr = 1.0 - std::pow(1.0 - p, 1.0 / static_cast<double>(l_));
  return std::pow(sr, 1.0 / static_cast<double>(r_));
}

double FilterFunction::TransitionWidth(double low, double high) const {
  assert(low < high);
  return InverseCollision(high) - InverseCollision(low);
}

}  // namespace ssr
