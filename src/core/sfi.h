// Similarity Filter Index SFI(s*) — Section 4.1. A bank of l hash tables,
// each keyed on r randomly sampled bits of the embedded vectors. Two vectors
// with Hamming similarity s collide in at least one table with probability
// p_{r,l}(s) = 1 − (1 − s^r)^l, an S-curve turning at s*. SimVector(q)
// returns the union of the l probed buckets: with high probability, the sids
// of all vectors at least s*-similar to q.

#ifndef SSR_CORE_SFI_H_
#define SSR_CORE_SFI_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/bit_sampler.h"
#include "core/filter_function.h"
#include "core/hash_table.h"
#include "hamming/embedding.h"
#include "minhash/signature.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// SFI construction parameters.
struct SfiParams {
  /// Turning point s* in Hamming-similarity space (the composite index
  /// converts from set-similarity space via Theorem 1 before building).
  double s_star = 0.9;

  /// Number of hash tables l (the unit of the space budget).
  std::size_t l = 10;

  /// Bits sampled per table. 0 = solve from (s_star, l) via
  /// p_{r,l}(s*) = 1/2.
  std::size_t r = 0;

  /// Buckets per table. 0 = sized to the expected number of sets.
  std::size_t num_buckets = 0;

  /// Seed for the bit-position samples.
  std::uint64_t seed = 0x5f1ca7b1e5ULL;
};

/// Probe-side statistics of one SimVector call.
struct SfiProbeStats {
  std::size_t bucket_accesses = 0;  // == l
  std::size_t bucket_pages = 0;     // pages read if tables are disk-resident
  std::size_t sids_scanned = 0;     // total bucket entries before dedup
  std::size_t tables_failed = 0;    // tables lost to injected faults
                                    // ("sfi/probe_table" site): the union is
                                    // then a subset of the true SimVector
};

/// The Similarity Filter Index primitive.
class SimilarityFilterIndex {
 public:
  /// Creates an empty SFI over `embedding` expecting ~`expected_sets`
  /// entries (drives default bucket count). Fails on parameter errors.
  static Result<SimilarityFilterIndex> Create(const Embedding& embedding,
                                              const SfiParams& params,
                                              std::size_t expected_sets);

  /// Inserts a set's signature under `sid` into all l tables.
  void Insert(SetId sid, const Signature& sig);

  /// Inserts `sid` into table `table_idx` only. The parallel builder shards
  /// tables across workers: each worker calls this for its disjoint slice of
  /// table indices, walking sids in the same (ascending) order as the serial
  /// build, so bucket contents come out identical without any locking.
  /// Callers must follow up with NoteBulkEntries() exactly once per sid.
  void InsertIntoTable(std::size_t table_idx, SetId sid, const Signature& sig) {
    tables_[table_idx].Insert(samplers_[table_idx].ExtractKeyHash(sig), sid);
  }

  /// Accounts `count` sets inserted via InsertIntoTable (size bookkeeping
  /// that Insert() does implicitly).
  void NoteBulkEntries(std::size_t count) {
    num_entries_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Switches every table to copy-on-write mutations with epoch-deferred
  /// reclamation (see SidHashTable::SetEpochManager). Call once after the
  /// bulk build, before the first concurrent reader.
  void SetEpochManager(exec::EpochManager* manager) {
    for (SidHashTable& table : tables_) table.SetEpochManager(manager);
  }

  /// Removes `sid` (signature must match the inserted one). Returns the
  /// number of tables it was removed from (== l if present).
  std::size_t Erase(SetId sid, const Signature& sig);

  /// SimVector(s*, q): the union of the l probed buckets, sorted and
  /// deduplicated. If `complemented`, probes with the complement of the
  /// query's embedded vector (the DFI path, Theorem 2).
  std::vector<SetId> SimVector(const Signature& query,
                               bool complemented = false,
                               SfiProbeStats* stats = nullptr) const;

  /// Allocation-free SimVector: clears `*out` and fills it with the sorted,
  /// deduplicated union. Reusing one scratch vector across the l tables, all
  /// FIs of a query, and successive queries drops the per-probe allocation
  /// churn to zero once the vector's capacity has warmed up.
  void SimVectorInto(const Signature& query, bool complemented,
                     SfiProbeStats* stats, std::vector<SetId>* out) const;

  /// The analytical filter function of this instance.
  const FilterFunction& filter() const { return filter_; }

  const SfiParams& params() const { return params_; }
  std::size_t l() const { return tables_.size(); }
  std::size_t r() const { return filter_.r(); }
  std::size_t size() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  // Moves happen only while singly-owned (Create/Result plumbing); the
  // relaxed transfer of the atomic entry count is exact there.
  SimilarityFilterIndex(SimilarityFilterIndex&& other) noexcept
      : embedding_(other.embedding_),
        params_(other.params_),
        filter_(std::move(other.filter_)),
        samplers_(std::move(other.samplers_)),
        tables_(std::move(other.tables_)),
        num_entries_(other.num_entries_.load(std::memory_order_relaxed)) {}
  SimilarityFilterIndex& operator=(SimilarityFilterIndex&& other) noexcept {
    embedding_ = other.embedding_;
    params_ = other.params_;
    filter_ = std::move(other.filter_);
    samplers_ = std::move(other.samplers_);
    tables_ = std::move(other.tables_);
    num_entries_.store(other.num_entries_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// How many sids fit in one bucket page (for I/O accounting of
  /// disk-resident tables; "sid_count" in Section 4.1).
  static std::size_t SidsPerPage();

  /// Order-sensitive digest over all l tables' contents; equal digests mean
  /// identical bucket layouts (used to verify parallel/serial build parity).
  std::uint64_t ContentDigest() const;

 private:
  SimilarityFilterIndex(const Embedding& embedding, SfiParams params,
                        FilterFunction filter, std::size_t num_buckets,
                        std::uint64_t seed);

  const Embedding* embedding_;  // not owned; outlives the index
  SfiParams params_;
  FilterFunction filter_;
  std::vector<BitSampler> samplers_;
  std::vector<SidHashTable> tables_;
  std::atomic<std::size_t> num_entries_{0};
};

}  // namespace ssr

#endif  // SSR_CORE_SFI_H_
