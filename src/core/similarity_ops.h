// Set-mining operations built on the range-query primitive — the paper's
// introduction positions range similarity retrieval as "a primitive for
// effective similarity based query processing on sets ... a basis for the
// development of efficient set mining algorithms such as clustering
// algorithms ... as well as join algorithms". This module provides two such
// algorithms:
//
//   * SimilaritySelfJoin: all pairs of indexed sets with similarity >= t,
//     one index probe per set instead of the O(N^2) nested loop.
//   * TopKSimilar: the k most similar sets to a query, found by probing
//     descending similarity ranges until k verified answers accumulate.

#ifndef SSR_CORE_SIMILARITY_OPS_H_
#define SSR_CORE_SIMILARITY_OPS_H_

#include <tuple>
#include <vector>

#include "core/set_similarity_index.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

/// One joined pair (a < b) with its exact similarity.
struct SimilarPair {
  SetId a = kInvalidSetId;
  SetId b = kInvalidSetId;
  double similarity = 0.0;

  bool operator==(const SimilarPair&) const = default;
};

/// Statistics of a join run.
struct JoinStats {
  std::size_t probes = 0;           // index queries issued
  std::size_t candidate_pairs = 0;  // pairs fetched before verification
  std::size_t result_pairs = 0;
};

/// All pairs of live sets with sim >= `threshold` (0 < threshold <= 1),
/// sorted by (a, b). Approximate with the index's recall; every returned
/// pair is exact (verified). One Query per live set.
Result<std::vector<SimilarPair>> SimilaritySelfJoin(SetSimilarityIndex& index,
                                                    double threshold,
                                                    JoinStats* stats = nullptr);

/// One ranked answer of a top-k query.
struct RankedSet {
  SetId sid = kInvalidSetId;
  double similarity = 0.0;
};

/// The `k` sets most similar to `query`, descending by exact similarity
/// (ties by sid). Probes ranges [t, prev_t) for a descending threshold
/// ladder until k answers accumulate or the floor is reached.
/// `exclude_sid`, if valid, drops that sid from the result (self-queries).
/// `floor` bounds the search: sets below it are never returned.
Result<std::vector<RankedSet>> TopKSimilar(SetSimilarityIndex& index,
                                           const ElementSet& query,
                                           std::size_t k,
                                           SetId exclude_sid = kInvalidSetId,
                                           double floor = 0.05);

}  // namespace ssr

#endif  // SSR_CORE_SIMILARITY_OPS_H_
