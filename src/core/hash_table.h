// The hash-table primitive of the filter indices (Section 4.1): buckets of
// set identifiers keyed by the hash of an r-bit sampled key. Bucket accesses
// are counted — each probe of a disk-resident table costs one random page
// read in the paper's cost model, and SFI answers a query with O(l) bucket
// accesses.

#ifndef SSR_CORE_HASH_TABLE_H_
#define SSR_CORE_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace ssr {

/// A bucketed hash table of sids. The number of buckets is fixed at build
/// time (power of two). Distinct r-bit keys that land in the same bucket
/// are disambiguated by a 16-bit key fingerprint stored with each entry, so
/// a probe returns (apart from a 2^-16 residual) only sids inserted under
/// the same key — bucket-index collisions otherwise flood every probe with
/// one random sid per table.
class SidHashTable {
 public:
  /// One stored entry: the key fingerprint plus the set identifier.
  struct Entry {
    std::uint16_t fingerprint;
    SetId sid;
  };

  /// `num_buckets` is rounded up to a power of two (>= 1).
  explicit SidHashTable(std::size_t num_buckets);

  // The atomic counter is not movable by default; moves happen only while
  // the table is singly-owned (vector growth, SFI construction), so a
  // relaxed value transfer is exact.
  SidHashTable(SidHashTable&& other) noexcept
      : buckets_(std::move(other.buckets_)),
        mask_(other.mask_),
        size_(other.size_),
        bucket_accesses_(
            other.bucket_accesses_.load(std::memory_order_relaxed)) {}
  SidHashTable& operator=(SidHashTable&& other) noexcept {
    buckets_ = std::move(other.buckets_);
    mask_ = other.mask_;
    size_ = other.size_;
    bucket_accesses_.store(
        other.bucket_accesses_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// Inserts `sid` under `key_hash`.
  void Insert(std::uint64_t key_hash, SetId sid);

  /// Removes one occurrence of `sid` inserted under `key_hash`.
  /// Returns true if found.
  bool Erase(std::uint64_t key_hash, SetId sid);

  /// Appends the sids stored under `key_hash` to `out` and returns the
  /// physical size of the bucket scanned (the I/O-relevant quantity: a
  /// disk-resident probe reads the whole bucket before filtering). Also
  /// bumps the bucket-access counter.
  std::size_t Probe(std::uint64_t key_hash, std::vector<SetId>* out) const;

  std::size_t num_buckets() const { return buckets_.size(); }
  std::size_t size() const { return size_; }

  /// Number of Probe() calls since construction/reset (one bucket access
  /// each; the paper charges one random I/O per access for disk-resident
  /// tables). Relaxed-atomic so concurrent readers (the batch executor
  /// probes an immutable index from many workers) never race.
  std::uint64_t bucket_accesses() const {
    return bucket_accesses_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const {
    bucket_accesses_.store(0, std::memory_order_relaxed);
  }

  /// Occupancy diagnostics: size of the largest bucket.
  std::size_t max_bucket_size() const;

  /// Order-sensitive hash of the full table contents (bucket layout,
  /// fingerprints, sids). Two tables digest equal iff every bucket holds the
  /// same entries in the same order — the property the parallel builder must
  /// reproduce to be bit-identical with the serial build.
  std::uint64_t ContentDigest() const;

 private:
  std::size_t BucketIndex(std::uint64_t key_hash) const {
    return key_hash & mask_;
  }
  static std::uint16_t Fingerprint(std::uint64_t key_hash) {
    return static_cast<std::uint16_t>(key_hash >> 48);
  }

  std::vector<std::vector<Entry>> buckets_;
  std::size_t mask_;
  std::size_t size_ = 0;
  mutable std::atomic<std::uint64_t> bucket_accesses_{0};
};

}  // namespace ssr

#endif  // SSR_CORE_HASH_TABLE_H_
