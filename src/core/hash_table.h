// The hash-table primitive of the filter indices (Section 4.1): buckets of
// set identifiers keyed by the hash of an r-bit sampled key. Bucket accesses
// are counted — each probe of a disk-resident table costs one random page
// read in the paper's cost model, and SFI answers a query with O(l) bucket
// accesses.
//
// Concurrency model (PR 10): each bucket is published through an atomic
// pointer (null = empty). In the default single-writer build mode mutations
// edit the bucket vector in place, exactly as before. After
// SetEpochManager() the table switches to copy-on-write: Insert/Erase build
// a replacement bucket, swap the pointer, and retire the old vector through
// the epoch manager — so readers probing under an exec::EpochGuard are
// wait-free and never observe a bucket mid-edit.

#ifndef SSR_CORE_HASH_TABLE_H_
#define SSR_CORE_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/epoch.h"
#include "util/types.h"

namespace ssr {

/// A bucketed hash table of sids. The number of buckets is fixed at build
/// time (power of two). Distinct r-bit keys that land in the same bucket
/// are disambiguated by a 16-bit key fingerprint stored with each entry, so
/// a probe returns (apart from a 2^-16 residual) only sids inserted under
/// the same key — bucket-index collisions otherwise flood every probe with
/// one random sid per table.
class SidHashTable {
 public:
  /// One stored entry: the key fingerprint plus the set identifier.
  struct Entry {
    std::uint16_t fingerprint;
    SetId sid;
  };

  using Bucket = std::vector<Entry>;

  /// `num_buckets` is rounded up to a power of two (>= 1).
  explicit SidHashTable(std::size_t num_buckets);
  ~SidHashTable();

  // Moves happen only while the table is singly-owned (vector growth, SFI
  // construction), so relaxed value transfers of the atomics are exact.
  SidHashTable(SidHashTable&& other) noexcept;
  SidHashTable& operator=(SidHashTable&& other) noexcept;

  /// Switches mutations to copy-on-write with epoch-deferred reclamation.
  /// Call once, before the first concurrent reader; earlier mutations (the
  /// bulk build) stay in-place.
  void SetEpochManager(exec::EpochManager* manager) { manager_ = manager; }

  /// Inserts `sid` under `key_hash`.
  void Insert(std::uint64_t key_hash, SetId sid);

  /// Removes one occurrence of `sid` inserted under `key_hash`.
  /// Returns true if found.
  bool Erase(std::uint64_t key_hash, SetId sid);

  /// Appends the sids stored under `key_hash` to `out` and returns the
  /// physical size of the bucket scanned (the I/O-relevant quantity: a
  /// disk-resident probe reads the whole bucket before filtering). Also
  /// bumps the bucket-access counter. Safe to call concurrently with
  /// COW-mode mutations when the caller holds an exec::EpochGuard.
  std::size_t Probe(std::uint64_t key_hash, std::vector<SetId>* out) const;

  std::size_t num_buckets() const { return num_buckets_; }
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Number of Probe() calls since construction/reset (one bucket access
  /// each; the paper charges one random I/O per access for disk-resident
  /// tables). Relaxed-atomic so concurrent readers (the batch executor
  /// probes an immutable index from many workers) never race.
  std::uint64_t bucket_accesses() const {
    return bucket_accesses_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const {
    bucket_accesses_.store(0, std::memory_order_relaxed);
  }

  /// Occupancy diagnostics: size of the largest bucket.
  std::size_t max_bucket_size() const;

  /// Order-sensitive hash of the full table contents (bucket layout,
  /// fingerprints, sids). Two tables digest equal iff every bucket holds the
  /// same entries in the same order — the property the parallel builder must
  /// reproduce to be bit-identical with the serial build.
  std::uint64_t ContentDigest() const;

 private:
  std::size_t BucketIndex(std::uint64_t key_hash) const {
    return key_hash & mask_;
  }
  static std::uint16_t Fingerprint(std::uint64_t key_hash) {
    return static_cast<std::uint16_t>(key_hash >> 48);
  }

  /// Reader-side bucket load; null means empty.
  const Bucket* LoadBucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_seq_cst);
  }

  /// Swaps bucket `i` to `replacement` (ownership transferred; null =
  /// empty) and disposes of the old bucket — inline in build mode, via
  /// epoch retire in COW mode.
  void PublishBucket(std::size_t i, Bucket* replacement);

  std::unique_ptr<std::atomic<Bucket*>[]> buckets_;
  std::size_t num_buckets_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
  exec::EpochManager* manager_ = nullptr;
  mutable std::atomic<std::uint64_t> bucket_accesses_{0};
};

}  // namespace ssr

#endif  // SSR_CORE_HASH_TABLE_H_
