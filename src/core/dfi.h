// Dissimilarity Filter Index DFI(s*) — Section 4.2. By Theorem 2, a vector
// is at most s*-similar to q iff it is at least (1−s*)-similar to the bit
// complement q̄. So DFI(s*) is an SFI with turning point 1−s* whose probes
// complement the query's sampled bits. DissimVector(q) returns, with high
// probability, the sids of all vectors at most s*-similar to q.

#ifndef SSR_CORE_DFI_H_
#define SSR_CORE_DFI_H_

#include <vector>

#include "core/sfi.h"

namespace ssr {

/// The Dissimilarity Filter Index primitive.
class DissimilarityFilterIndex {
 public:
  /// Creates a DFI with dissimilarity threshold `params.s_star` (in Hamming-
  /// similarity space): retrieves vectors with S_H <= s_star. Internally
  /// builds SFI(1 − s_star).
  static Result<DissimilarityFilterIndex> Create(const Embedding& embedding,
                                                 const SfiParams& params,
                                                 std::size_t expected_sets);

  /// Inserts a data vector (NOT complemented; only queries are).
  void Insert(SetId sid, const Signature& sig) { sfi_.Insert(sid, sig); }

  /// Per-table insert for the sharded parallel builder (see
  /// SimilarityFilterIndex::InsertIntoTable).
  void InsertIntoTable(std::size_t table_idx, SetId sid, const Signature& sig) {
    sfi_.InsertIntoTable(table_idx, sid, sig);
  }
  void NoteBulkEntries(std::size_t count) { sfi_.NoteBulkEntries(count); }

  /// Removes `sid`.
  std::size_t Erase(SetId sid, const Signature& sig) {
    return sfi_.Erase(sid, sig);
  }

  /// Copy-on-write mode with epoch-deferred reclamation (see
  /// SimilarityFilterIndex::SetEpochManager).
  void SetEpochManager(exec::EpochManager* manager) {
    sfi_.SetEpochManager(manager);
  }

  /// DissimVector(s*, q): sids of vectors at most s*-similar to the query.
  std::vector<SetId> DissimVector(const Signature& query,
                                  SfiProbeStats* stats = nullptr) const {
    return sfi_.SimVector(query, /*complemented=*/true, stats);
  }

  /// Allocation-free DissimVector (see SimilarityFilterIndex::SimVectorInto).
  void DissimVectorInto(const Signature& query, SfiProbeStats* stats,
                        std::vector<SetId>* out) const {
    sfi_.SimVectorInto(query, /*complemented=*/true, stats, out);
  }

  /// Content digest of the underlying SFI's tables.
  std::uint64_t ContentDigest() const { return sfi_.ContentDigest(); }

  /// The dissimilarity threshold s* this DFI was created for.
  double s_star() const { return s_star_; }

  /// The underlying SFI (turning point 1 − s*).
  const SimilarityFilterIndex& sfi() const { return sfi_; }

  std::size_t l() const { return sfi_.l(); }
  std::size_t size() const { return sfi_.size(); }

 private:
  DissimilarityFilterIndex(double s_star, SimilarityFilterIndex sfi)
      : s_star_(s_star), sfi_(std::move(sfi)) {}

  double s_star_;
  SimilarityFilterIndex sfi_;
};

}  // namespace ssr

#endif  // SSR_CORE_DFI_H_
