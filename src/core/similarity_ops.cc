#include "core/similarity_ops.h"

#include <algorithm>

#include "util/set_ops.h"

namespace ssr {

Result<std::vector<SimilarPair>> SimilaritySelfJoin(SetSimilarityIndex& index,
                                                    double threshold,
                                                    JoinStats* stats) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("join threshold must be in (0, 1]");
  }
  std::vector<SimilarPair> pairs;
  JoinStats local;
  SetStore& store = index.store();
  // Snapshot live sids first: probing mutates nothing, but iteration order
  // should not depend on bucket internals.
  std::vector<SetId> sids;
  store.ScanAll([&](SetId sid, const ElementSet&) {
    sids.push_back(sid);
    return true;
  });
  for (SetId sid : sids) {
    auto set = store.Get(sid);
    if (!set.ok()) continue;  // deleted concurrently
    auto result = index.Query(set.value(), threshold, 1.0);
    if (!result.ok()) return result.status();
    ++local.probes;
    local.candidate_pairs += result->stats.candidates;
    for (SetId other : result->sids) {
      if (other <= sid) continue;  // emit each unordered pair once
      auto other_set = store.Get(other);
      if (!other_set.ok()) continue;
      pairs.push_back(
          {sid, other, Jaccard(set.value(), other_set.value())});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const SimilarPair& x, const SimilarPair& y) {
              return std::tie(x.a, x.b) < std::tie(y.a, y.b);
            });
  local.result_pairs = pairs.size();
  if (stats != nullptr) *stats = local;
  return pairs;
}

Result<std::vector<RankedSet>> TopKSimilar(SetSimilarityIndex& index,
                                           const ElementSet& query,
                                           std::size_t k, SetId exclude_sid,
                                           double floor) {
  if (k == 0) return std::vector<RankedSet>();
  if (floor < 0.0 || floor >= 1.0) {
    return Status::InvalidArgument("floor must be in [0, 1)");
  }
  std::vector<RankedSet> ranked;
  std::vector<bool> seen;
  double upper = 1.0;
  // Descending threshold ladder; each rung only re-probes the band
  // [lower, upper) so already-found answers are not refetched.
  const double ladder[] = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2,
                           0.1, 0.05, 0.0};
  for (double lower : ladder) {
    if (upper <= floor) break;
    if (lower < floor) lower = floor;
    auto result = index.Query(query, lower, upper);
    if (!result.ok()) return result.status();
    SetStore& store = index.store();
    for (SetId sid : result->sids) {
      if (sid == exclude_sid) continue;
      if (sid < seen.size() && seen[sid]) continue;
      if (sid >= seen.size()) seen.resize(sid + 1, false);
      seen[sid] = true;
      auto set = store.Get(sid);
      if (!set.ok()) continue;
      ranked.push_back({sid, Jaccard(set.value(), query)});
    }
    if (ranked.size() >= k) break;
    upper = lower;
    if (lower <= floor) break;
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedSet& x, const RankedSet& y) {
              if (x.similarity != y.similarity) {
                return x.similarity > y.similarity;
              }
              return x.sid < y.sid;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace ssr
