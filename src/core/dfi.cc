#include "core/dfi.h"

namespace ssr {

Result<DissimilarityFilterIndex> DissimilarityFilterIndex::Create(
    const Embedding& embedding, const SfiParams& params,
    std::size_t expected_sets) {
  if (params.s_star <= 0.0 || params.s_star >= 1.0) {
    return Status::InvalidArgument("DFI s_star must be in (0, 1)");
  }
  SfiParams inner = params;
  inner.s_star = 1.0 - params.s_star;  // Theorem 2
  auto sfi = SimilarityFilterIndex::Create(embedding, inner, expected_sets);
  if (!sfi.ok()) return sfi.status();
  return DissimilarityFilterIndex(params.s_star, std::move(sfi).value());
}

}  // namespace ssr
