// Index layout: the k+1 points of Section 4.3 — where the filter indices
// sit on the set-similarity range [0,1], what kind each is (DFI below the
// mass-median δ of Eq. 15, SFI above, both at the point closest to δ), and
// how many hash tables each gets. Produced by the optimizer (Section 5) or
// specified manually.

#ifndef SSR_CORE_INDEX_LAYOUT_H_
#define SSR_CORE_INDEX_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ssr {

/// The kind of a filter index (Section 4).
enum class FilterKind {
  kSimilarity,     // SFI: retrieves sids at least σ-similar
  kDissimilarity,  // DFI: retrieves sids at most σ-similar
};

/// One filter index of the composite scheme.
struct FilterPoint {
  /// Location σ in set-similarity space, in (0, 1).
  double similarity = 0.5;

  /// SFI or DFI.
  FilterKind kind = FilterKind::kSimilarity;

  /// Number of hash tables l allocated to this FI (the space unit).
  std::size_t tables = 10;

  /// Bits per table; 0 = solve from (turning point, tables).
  std::size_t r = 0;
};

/// The complete layout. Points are sorted by (similarity, kind) with all
/// DFIs at or below every SFI location; at one location (nearest δ) both a
/// DFI and an SFI may coexist.
struct IndexLayout {
  std::vector<FilterPoint> points;

  /// The Eq. 15 split: DFIs serve [0, δ], SFIs serve [δ, 1].
  double delta = 0.5;

  /// Sum of tables over all points (the consumed space budget).
  std::size_t total_tables() const;

  /// Checks ordering, ranges, kind partitioning (no SFI strictly below a
  /// DFI), and positive table counts.
  Status Validate() const;

  /// Convenience: n SFIs at the given similarities, `tables_each` tables
  /// each (the paper's "first attempt" layout, Section 4.1).
  static IndexLayout UniformSfi(const std::vector<double>& similarities,
                                std::size_t tables_each);

  /// Human-readable one-line-per-FI description.
  std::string ToString() const;
};

}  // namespace ssr

#endif  // SSR_CORE_INDEX_LAYOUT_H_
