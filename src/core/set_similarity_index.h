// The composite tunable index of Section 4.3: filter indices (SFIs and DFIs)
// at the layout's points over [0,1], a query planner implementing the four
// lo/up enclosing cases, and a verification step that fetches candidate sets
// from the SetStore and removes false positives with exact Jaccard.

#ifndef SSR_CORE_SET_SIMILARITY_INDEX_H_
#define SSR_CORE_SET_SIMILARITY_INDEX_H_

#include <atomic>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/dfi.h"
#include "exec/atomic_slot_array.h"
#include "exec/epoch.h"
#include "core/index_layout.h"
#include "core/sfi.h"
#include "fault/retry.h"
#include "hamming/embedding.h"
#include "obs/metrics.h"
#include "storage/set_store.h"
#include "storage/snapshot.h"
#include "util/stopwatch.h"
#include "util/result.h"
#include "util/types.h"

namespace ssr {

namespace obs {
class WorkloadObserver;
}  // namespace obs

class WalWriter;

/// How a query behaves when filter probes or candidate fetches keep
/// failing after retries. Whatever the mode, a query never silently
/// returns a wrong answer: it errors, or returns results tagged degraded.
enum class DegradeMode {
  /// Propagate Unavailable to the caller on any degradation.
  kFailFast,
  /// Return whatever survived, tagged degraded in QueryStats (results may
  /// be incomplete but every returned sid is verified correct).
  kPartialResults,
  /// Fall back to verifying the full collection (sequential-scan cost):
  /// exact results, tagged degraded. The default.
  kSequentialFallback,
};

/// Composite index construction options.
struct IndexOptions {
  /// The set -> Hamming embedding (min-hash + ECC) parameters.
  EmbeddingParams embedding;

  /// Buckets per hash table; 0 = sized to the collection.
  std::size_t buckets_per_table = 0;

  /// Master seed for all per-table bit samples.
  std::uint64_t seed = 0xc0a1e5ce0db5ULL;

  /// Charge one random page read per bucket page probed (disk-resident
  /// tables, the paper's model).
  bool charge_bucket_io = true;

  /// Scope for this index's instruments (ssr_index_*) in
  /// obs::MetricsRegistry::Default(). Empty allocates a unique "index/N"
  /// scope. Runtime-only: not persisted by SaveTo/Load.
  std::string metrics_scope;

  /// Worker threads for Build: 1 = serial (the default), 0 = resolve from
  /// the SSR_THREADS environment variable, falling back to the hardware
  /// concurrency (exec::ResolveThreadCount). Any thread count produces a
  /// bit-identical index — signing is sharded by sid slot and table inserts
  /// are sharded by table, both walking sids in ascending order, which is
  /// exactly the serial insertion order. Runtime-only.
  std::size_t num_threads = 1;

  /// Behavior when probes/fetches ultimately fail. Runtime-only.
  DegradeMode degrade = DegradeMode::kSequentialFallback;

  /// Retry policy for transient failures at the "index/probe_fi" fault
  /// site. Runtime-only.
  fault::RetryPolicy probe_retry;
};

/// Which of the Section 4.3 cases answered a query.
enum class QueryPlanKind {
  kDfiPair,         // lo, up both on the DFI side
  kSfiPair,         // lo, up both on the SFI side
  kMixed,           // lo on DFI side, up on SFI side (uses both δ FIs)
  kFullCollection,  // [0, 1]: every live set, no probing needed
};

/// Stable lowercase name for a plan kind ("dfi_pair", "sfi_pair", "mixed",
/// "full_collection") — used in trace tags and JSON reports.
const char* QueryPlanKindName(QueryPlanKind kind);

/// Per-query execution statistics. The counting fields (bucket_accesses,
/// bucket_pages, sids_scanned, sets_fetched) are accumulated directly on
/// the query path, and the same amounts are added to the index's registry
/// instruments — so QueryStats and the exporters agree, and concurrent
/// queries (the batch executor) never see each other's counts. The io
/// field is the delta of whichever I/O model served the query: the store's
/// (serial Query) or the worker's private ReadView (QueryThrough).
struct QueryStats {
  QueryPlanKind plan = QueryPlanKind::kSfiPair;
  double lo_point = 0.0;  // enclosing layout point below σ1 (0 = virtual)
  double up_point = 1.0;  // enclosing layout point above σ2 (1 = virtual)
  std::size_t candidates = 0;       // |A| before verification
  std::size_t results = 0;          // answer size after verification
  std::size_t bucket_accesses = 0;  // hash-table probes (l per FI probed)
  std::size_t bucket_pages = 0;     // pages those probes cost
  std::size_t sids_scanned = 0;     // bucket entries read before dedup
  std::size_t sets_fetched = 0;     // candidate sets fetched for verification
  IoStats io;                       // store I/O delta for this query
  double io_seconds = 0.0;          // simulated I/O time
  double cpu_seconds = 0.0;         // measured CPU time

  /// True iff the query executed on a degraded path (a probe or fetch
  /// ultimately failed and the DegradeMode recovered). Under
  /// kSequentialFallback the results are still exact; under
  /// kPartialResults they may be incomplete but are never wrong.
  bool degraded = false;
  std::size_t probe_failures = 0;  // FI probes that failed after retries
  std::size_t fetch_failures = 0;  // candidate fetches that failed
  std::size_t retry_attempts = 0;  // FI probe re-issues (fault/retry.h)
  double retry_backoff_micros = 0.0;  // total backoff those retries slept

  /// One entry per FI probe this query issued, in probe order — the raw
  /// material for per-FI workload accounting (obs::WorkloadObserver). The
  /// batch executor and query router feed their observers from these, so a
  /// query's per-FI attribution survives the trip through worker threads
  /// exactly like its scalar counters. In sharded merged stats, entries
  /// with the same fi index are accumulated across shards.
  struct FiProbeStat {
    std::uint32_t fi = 0;                // index into the layout's FIs
    std::uint64_t bucket_accesses = 0;   // hash-table probes
    std::uint64_t sids = 0;              // candidate sids the probe yielded
    bool failed = false;                 // failed outright or lost tables
  };
  std::vector<FiProbeStat> fi_probes;
};

/// A verified query answer: sids whose exact Jaccard similarity with the
/// query lies in [σ1, σ2].
struct QueryResult {
  std::vector<SetId> sids;
  QueryStats stats;
};

/// Build-time statistics: wall time plus the per-worker CPU accounting of
/// the two parallel phases (signing, table inserts). makespan_seconds is
/// the modeled parallel build time — the serial portions at wall-clock cost
/// plus, for each parallel phase, the busiest worker's CPU time. On a
/// machine with fewer cores than workers the wall clock cannot show the
/// speedup, but the makespan (like the simulated I/O model) still can.
struct BuildStats {
  std::size_t threads = 1;
  std::size_t sets_indexed = 0;
  double wall_seconds = 0.0;
  double sign_cpu_seconds = 0.0;       // summed across workers
  double insert_cpu_seconds = 0.0;     // summed across workers
  double sign_makespan_seconds = 0.0;  // busiest worker, sign phase
  double insert_makespan_seconds = 0.0;  // busiest worker, insert phase
  double makespan_seconds = 0.0;       // modeled end-to-end build time
};

/// The composite set-similarity range index.
class SetSimilarityIndex {
 public:
  /// Builds the index over every live set in `store`. The layout must
  /// validate OK and have at least one point. I/O accounting in `store` is
  /// reset after the build so query measurements start clean.
  static Result<SetSimilarityIndex> Build(SetStore& store,
                                          const IndexLayout& layout,
                                          const IndexOptions& options);

  /// Answers (q, [σ1, σ2]): probes the enclosing filter indices, applies
  /// the Section 4.3 set algebra, verifies candidates against the store.
  /// Requires 0 <= σ1 <= σ2 <= 1. Const: the only state a query touches is
  /// registry instruments (relaxed atomics) and the store's buffer pool —
  /// which is why *concurrent* queries must use QueryThrough instead.
  Result<QueryResult> Query(const ElementSet& query, double sigma1,
                            double sigma2) const;

  /// Like Query but skips verification: returns the raw candidate sids
  /// (useful for measuring filter quality and for the paper's result-size
  /// bucketing, which classifies queries by candidate count).
  Result<QueryResult> QueryCandidates(const ElementSet& query, double sigma1,
                                      double sigma2) const;

  /// Thread-safe Query variant for the batch executor: candidate fetches
  /// and I/O accounting go through `view` (one per worker), so any number
  /// of threads may call this concurrently. Without EnableConcurrentWrites
  /// the index must not be mutated during reads; with it, Insert/Erase may
  /// run concurrently (readers pin an epoch and observe consistent
  /// copy-on-write snapshots). `scratch` (optional) is the probe-union
  /// reuse buffer — pass the same vector across a worker's queries to
  /// eliminate per-probe allocation churn. Answers are identical to
  /// Query's.
  Result<QueryResult> QueryThrough(SetStore::ReadView& view,
                                   const ElementSet& query, double sigma1,
                                   double sigma2,
                                   std::vector<SetId>* scratch = nullptr) const;

  /// Dynamic maintenance (Section 4.3 notes hash indices are fully
  /// dynamic): registers a set already added to the store under `sid`.
  Status Insert(SetId sid, const ElementSet& set);

  /// Unregisters a deleted set from all filter indices.
  Status Erase(SetId sid);

  /// Switches the index to live-mutability mode: all further Insert/Erase
  /// calls publish copy-on-write replacements of the touched hash-table
  /// buckets and signature slots, retiring the old versions through
  /// `manager` (nullptr = the process-wide exec::EpochManager::Default()),
  /// and every query pins an epoch for its whole lifetime. Call once after
  /// Build/Load, before the first concurrent reader or writer. Mutations
  /// are serialized internally (one writer at a time); reads never block.
  /// The manager must outlive the index.
  void EnableConcurrentWrites(exec::EpochManager* manager = nullptr);

  /// The epoch manager attached by EnableConcurrentWrites (nullptr before).
  exec::EpochManager* epoch_manager() const { return epoch_manager_; }

  const IndexLayout& layout() const { return layout_; }
  const Embedding& embedding() const { return *embedding_; }
  std::size_t num_filter_indices() const { return fis_.size(); }
  std::size_t num_live_sets() const {
    return num_live_.load(std::memory_order_relaxed);
  }
  SetStore& store() { return *store_; }
  const SetStore& store() const { return *store_; }

  /// Statistics of the most recent Build (thread count, per-phase CPU,
  /// modeled makespan).
  const BuildStats& build_stats() const { return build_stats_; }

  /// Order-sensitive digest over every filter index's hash-table contents
  /// and all live signatures. Two builds of the same collection digest
  /// equal iff they produced bit-identical indexes — the parallel-build
  /// determinism contract is verified against this.
  std::uint64_t ContentDigest() const;

  /// The scope this index's instruments are registered under.
  const std::string& metrics_scope() const { return options_.metrics_scope; }

  /// Attaches a workload observer to the *serial* query path: every
  /// successful Query/QueryCandidates counts its thresholds, set size, and
  /// FI probes, and completed Query answers are offered to the observer's
  /// sampled side channels (shadow oracle, query-log recorder). Concurrent
  /// paths (QueryThrough) deliberately do not record — the batch executor
  /// and query router own per-worker observers and feed them from
  /// QueryStats, so queries are never double counted. Runtime-only state:
  /// not persisted, not moved into snapshots. Pass nullptr to detach. The
  /// observer must outlive the index or be detached first.
  void AttachWorkloadObserver(obs::WorkloadObserver* observer) {
    workload_observer_ = observer;
  }
  obs::WorkloadObserver* workload_observer() const {
    return workload_observer_;
  }

  /// Attaches a write-ahead log (storage/wal.h) to the mutation path:
  /// Insert/Erase append their record — *after* precondition checks, so
  /// no-op mutations are never logged — before any in-memory state
  /// changes. A failed append fails the mutation with nothing applied;
  /// there is no state in which memory is ahead of the log. Runtime-only,
  /// like the workload observer: not persisted, pass nullptr to detach,
  /// and the writer must outlive the index or be detached first.
  void AttachWal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }

  /// The signature stored for `sid` (for tests; empty optional if dead).
  std::optional<Signature> signature(SetId sid) const;

  /// Persists the index (options, layout, signatures) as a checksummed v2
  /// snapshot (storage/snapshot.h). The SetStore is persisted separately
  /// (SetStore::SaveTo); Load attaches the deserialized index to `store`,
  /// rebuilding the hash tables from the saved signatures without touching
  /// set data — construction is deterministic under the saved seeds, so the
  /// loaded index answers queries identically to the saved one.
  ///
  /// Strict loads fail with a typed status on the first integrity error.
  /// With `load_options.salvage`, a damaged "signatures" section is
  /// tolerated: the signatures are re-embedded from the store's surviving
  /// records instead (counted as signatures_rebuilt in the report), and
  /// saved signatures whose sid no longer exists in the (possibly salvaged)
  /// store are dropped.
  Status SaveTo(std::ostream& out) const;
  static Result<SetSimilarityIndex> Load(
      SetStore& store, std::istream& in,
      const SnapshotLoadOptions& load_options = {});

  // Moves happen only while singly-owned (Build/Load Result plumbing, shard
  // vectors during setup) — never concurrently with readers or writers.
  SetSimilarityIndex(SetSimilarityIndex&& other) noexcept;
  SetSimilarityIndex& operator=(SetSimilarityIndex&& other) noexcept;
  ~SetSimilarityIndex();

 private:
  struct BuiltFi {
    FilterPoint point;
    std::unique_ptr<SimilarityFilterIndex> sfi;   // set iff kind == SFI
    std::unique_ptr<DissimilarityFilterIndex> dfi;  // set iff kind == DFI
  };

  SetSimilarityIndex(SetStore& store, IndexLayout layout,
                     IndexOptions options, Embedding embedding);

  /// Creates the (empty) filter-index structures for the layout.
  Status CreateFilterIndices();

  /// CreateFilterIndices + embed-and-insert every live set in the store,
  /// using options_.num_threads workers (sign phase sharded by sid slot,
  /// insert phase sharded by hash table). Bit-identical for any thread
  /// count. Fills build_stats_.
  Status BuildFilterIndices();

  /// Registers a precomputed signature under `sid` (shared by Insert and
  /// Load). Takes the writer lock.
  Status InsertSignature(SetId sid, Signature sig);

  /// InsertSignature body; caller holds writer_mu_.
  Status InsertSignatureLocked(SetId sid, Signature sig);

  /// Union of the probed buckets for the FI at index `fi_idx`, written into
  /// `*out` (cleared first; reuse one vector across probes to avoid
  /// allocation). Accumulates probe counts into `*stats` and mirrors them
  /// into the per-index instruments; charges bucket I/O to `io`. Transient
  /// faults at the "index/probe_fi" site are retried under
  /// options_.probe_retry; ultimate failure surfaces as Unavailable.
  /// `*partial` is set when the probe succeeded but lost tables to faults
  /// (the union is then a subset of the true answer).
  Status ProbeFi(std::size_t fi_idx, const Signature& query, bool* partial,
                 QueryStats* stats, IoCostModel& io,
                 std::vector<SetId>* out) const;

  /// Shared implementation of Query and QueryThrough. `view` == nullptr is
  /// the serial path (store fetches, store I/O delta); non-null is the
  /// concurrent path (view fetches, view I/O delta). `scratch` may be null.
  Result<QueryResult> QueryImpl(const ElementSet& query, double sigma1,
                                double sigma2, SetStore::ReadView* view,
                                std::vector<SetId>* scratch) const;

  /// Fills the timing fields of `stats` from the query stopwatch and the
  /// accumulated I/O delta.
  void FinishStats(const Stopwatch& watch, QueryStats* stats) const;

  /// All currently live sids, sorted.
  std::vector<SetId> LiveSids() const;

  /// True iff the layout contains at least one DFI.
  bool HasDfi() const;

  /// Computes the candidate set A for [σ1, σ2] per Section 4.3. Probe
  /// failures degrade soundly: a failed/partial *subtractive* probe skips
  /// its subtraction (the result stays a superset, still exact after
  /// verification); a failed/partial *additive* probe may lose true
  /// candidates, which is reported via `*additive_loss` so the caller can
  /// apply the configured DegradeMode. Both paths tag stats->degraded.
  std::vector<SetId> ComputeCandidates(const Signature& query, double sigma1,
                                       double sigma2, QueryStats* stats,
                                       bool* additive_loss, IoCostModel& io,
                                       std::vector<SetId>* scratch) const;

  /// Deletes every live signature slot and resets the logical capacity
  /// (shared by the destructor and move-assignment).
  void FreeSignatures();

  SetStore* store_;  // not owned
  IndexLayout layout_;
  IndexOptions options_;
  std::unique_ptr<Embedding> embedding_;
  std::vector<BuiltFi> fis_;
  // Signature per sid, heap-allocated and published through an atomic slot
  // (nullptr = dead/never-seen). In live-mutability mode a replaced or
  // erased signature is retired through epoch_manager_ so pinned readers
  // finish against the version they observed. capacity_ is the logical
  // high-water mark (max sid + 1 ever registered) — readers iterate
  // [0, capacity_) and rely on Get() returning nullptr past the end.
  exec::AtomicSlotArray<const Signature*> signatures_{nullptr};
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> num_live_{0};
  // Serializes Insert/Erase (and the WAL append that precedes each apply).
  // Readers never take it.
  std::mutex writer_mu_;
  exec::EpochManager* epoch_manager_ = nullptr;  // not owned; set once
  BuildStats build_stats_;
  obs::WorkloadObserver* workload_observer_ = nullptr;  // not owned
  WalWriter* wal_ = nullptr;                            // not owned
  // Registry instruments under options_.metrics_scope. The hot path updates
  // these; QueryStats fields are deltas over them.
  obs::Counter* queries_;          // ssr_index_queries_total
  obs::Counter* bucket_accesses_;  // ssr_index_bucket_accesses_total
  obs::Counter* bucket_pages_;     // ssr_index_bucket_pages_total
  obs::Counter* sids_scanned_;     // ssr_index_sids_scanned_total
  obs::Counter* sets_fetched_;     // ssr_index_sets_fetched_total
  obs::Counter* results_;          // ssr_index_results_total
  obs::Counter* probe_failures_;   // ssr_index_probe_failures_total
  obs::Counter* fetch_failures_;   // ssr_index_fetch_failures_total
  obs::Counter* degraded_queries_;  // ssr_degraded_queries_total
  obs::Counter* seqscan_fallbacks_;  // ssr_index_seqscan_fallbacks_total
  obs::Gauge* live_sets_;          // ssr_index_live_sets
  obs::Histogram* candidates_hist_;  // ssr_index_candidates_per_query
  obs::Histogram* latency_hist_;  // ssr_index_query_latency_micros
};

}  // namespace ssr

#endif  // SSR_CORE_SET_SIMILARITY_INDEX_H_
