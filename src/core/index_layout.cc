#include "core/index_layout.h"

#include <cmath>
#include <sstream>

namespace ssr {

std::size_t IndexLayout::total_tables() const {
  std::size_t total = 0;
  for (const auto& p : points) total += p.tables;
  return total;
}

Status IndexLayout::Validate() const {
  double prev_sim = -1.0;
  bool seen_sfi = false;
  for (const auto& p : points) {
    if (p.similarity <= 0.0 || p.similarity >= 1.0) {
      return Status::InvalidArgument(
          "filter point similarity must be in (0, 1)");
    }
    if (p.similarity < prev_sim) {
      return Status::InvalidArgument("filter points must be sorted");
    }
    if (p.similarity == prev_sim && p.kind == FilterKind::kDissimilarity &&
        seen_sfi) {
      return Status::InvalidArgument(
          "at a shared location the DFI must precede the SFI");
    }
    if (p.kind == FilterKind::kDissimilarity && seen_sfi &&
        p.similarity > prev_sim) {
      return Status::InvalidArgument("DFI above an SFI location");
    }
    if (p.tables < 1) {
      return Status::InvalidArgument("filter point with zero tables");
    }
    if (p.kind == FilterKind::kSimilarity) seen_sfi = true;
    prev_sim = p.similarity;
  }
  if (delta < 0.0 || delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1]");
  }
  return Status::OK();
}

IndexLayout IndexLayout::UniformSfi(const std::vector<double>& similarities,
                                    std::size_t tables_each) {
  IndexLayout layout;
  layout.delta = 0.0;  // no DFIs
  for (double s : similarities) {
    layout.points.push_back(
        {s, FilterKind::kSimilarity, tables_each, /*r=*/0});
  }
  return layout;
}

std::string IndexLayout::ToString() const {
  std::ostringstream out;
  out << "IndexLayout(delta=" << delta << ")";
  for (const auto& p : points) {
    out << "\n  " << (p.kind == FilterKind::kSimilarity ? "SFI" : "DFI")
        << "(" << p.similarity << ") l=" << p.tables;
    if (p.r != 0) out << " r=" << p.r;
  }
  return out.str();
}

}  // namespace ssr
