#include "core/set_similarity_index.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <sstream>

#include "exec/thread_pool.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "obs/workload_observer.h"
#include "storage/wal.h"
#include "util/hash.h"
#include "util/serialize.h"
#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {

namespace {

std::vector<SetId> SortedDifference(const std::vector<SetId>& a,
                                    const std::vector<SetId>& b) {
  std::vector<SetId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<SetId> SortedUnion(const std::vector<SetId>& a,
                               const std::vector<SetId>& b) {
  std::vector<SetId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

IndexOptions ResolveIndexMetricsScope(IndexOptions options) {
  if (options.metrics_scope.empty()) {
    options.metrics_scope = obs::MetricsRegistry::Default().NewScope("index");
  }
  return options;
}

}  // namespace

const char* QueryPlanKindName(QueryPlanKind kind) {
  switch (kind) {
    case QueryPlanKind::kDfiPair:
      return "dfi_pair";
    case QueryPlanKind::kSfiPair:
      return "sfi_pair";
    case QueryPlanKind::kMixed:
      return "mixed";
    case QueryPlanKind::kFullCollection:
      return "full_collection";
  }
  return "unknown";
}

Result<SetSimilarityIndex> SetSimilarityIndex::Build(
    SetStore& store, const IndexLayout& layout, const IndexOptions& options) {
  SSR_RETURN_IF_ERROR(layout.Validate());
  if (layout.points.empty()) {
    return Status::InvalidArgument("layout must have at least one FI");
  }
  auto embedding = Embedding::Create(options.embedding);
  if (!embedding.ok()) return embedding.status();
  SetSimilarityIndex index(store, layout, options,
                           std::move(embedding).value());
  SSR_RETURN_IF_ERROR(index.BuildFilterIndices());
  // Preprocessing I/O (the full-collection scan) must not pollute the
  // per-query measurements.
  store.ResetIoAccounting();
  return index;
}

SetSimilarityIndex::SetSimilarityIndex(SetStore& store, IndexLayout layout,
                                       IndexOptions options,
                                       Embedding embedding)
    : store_(&store),
      layout_(std::move(layout)),
      options_(ResolveIndexMetricsScope(std::move(options))),
      embedding_(std::make_unique<Embedding>(std::move(embedding))) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string& scope = options_.metrics_scope;
  queries_ = registry.GetCounter("ssr_index_queries_total", scope);
  bucket_accesses_ =
      registry.GetCounter("ssr_index_bucket_accesses_total", scope);
  bucket_pages_ = registry.GetCounter("ssr_index_bucket_pages_total", scope);
  sids_scanned_ = registry.GetCounter("ssr_index_sids_scanned_total", scope);
  sets_fetched_ = registry.GetCounter("ssr_index_sets_fetched_total", scope);
  results_ = registry.GetCounter("ssr_index_results_total", scope);
  probe_failures_ =
      registry.GetCounter("ssr_index_probe_failures_total", scope);
  fetch_failures_ =
      registry.GetCounter("ssr_index_fetch_failures_total", scope);
  degraded_queries_ = registry.GetCounter("ssr_degraded_queries_total", scope);
  seqscan_fallbacks_ =
      registry.GetCounter("ssr_index_seqscan_fallbacks_total", scope);
  live_sets_ = registry.GetGauge("ssr_index_live_sets", scope);
  candidates_hist_ = registry.GetHistogram(
      "ssr_index_candidates_per_query", scope,
      obs::ExponentialBounds(1.0, 4.0, 10));
  latency_hist_ = registry.GetHistogram("ssr_index_query_latency_micros",
                                        scope, obs::LatencyBoundsMicros());
}

void SetSimilarityIndex::FreeSignatures() {
  // Singly-owned teardown (destructor / move-assignment target): no reader
  // can hold a pin into this index anymore, so the live signatures are
  // freed inline. Versions retired earlier through the epoch manager are
  // its responsibility, not ours.
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  for (std::size_t sid = 0; sid < cap; ++sid) {
    delete signatures_.Get(sid);
  }
  capacity_.store(0, std::memory_order_relaxed);
  num_live_.store(0, std::memory_order_relaxed);
}

SetSimilarityIndex::~SetSimilarityIndex() { FreeSignatures(); }

SetSimilarityIndex::SetSimilarityIndex(SetSimilarityIndex&& other) noexcept
    : store_(other.store_),
      layout_(std::move(other.layout_)),
      options_(std::move(other.options_)),
      embedding_(std::move(other.embedding_)),
      fis_(std::move(other.fis_)),
      signatures_(std::move(other.signatures_)),
      capacity_(other.capacity_.load(std::memory_order_relaxed)),
      num_live_(other.num_live_.load(std::memory_order_relaxed)),
      epoch_manager_(other.epoch_manager_),
      build_stats_(other.build_stats_),
      workload_observer_(other.workload_observer_),
      wal_(other.wal_),
      queries_(other.queries_),
      bucket_accesses_(other.bucket_accesses_),
      bucket_pages_(other.bucket_pages_),
      sids_scanned_(other.sids_scanned_),
      sets_fetched_(other.sets_fetched_),
      results_(other.results_),
      probe_failures_(other.probe_failures_),
      fetch_failures_(other.fetch_failures_),
      degraded_queries_(other.degraded_queries_),
      seqscan_fallbacks_(other.seqscan_fallbacks_),
      live_sets_(other.live_sets_),
      candidates_hist_(other.candidates_hist_),
      latency_hist_(other.latency_hist_) {
  other.capacity_.store(0, std::memory_order_relaxed);
  other.num_live_.store(0, std::memory_order_relaxed);
}

SetSimilarityIndex& SetSimilarityIndex::operator=(
    SetSimilarityIndex&& other) noexcept {
  if (this != &other) {
    FreeSignatures();
    store_ = other.store_;
    layout_ = std::move(other.layout_);
    options_ = std::move(other.options_);
    embedding_ = std::move(other.embedding_);
    fis_ = std::move(other.fis_);
    signatures_ = std::move(other.signatures_);
    capacity_.store(other.capacity_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    num_live_.store(other.num_live_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    epoch_manager_ = other.epoch_manager_;
    build_stats_ = other.build_stats_;
    workload_observer_ = other.workload_observer_;
    wal_ = other.wal_;
    queries_ = other.queries_;
    bucket_accesses_ = other.bucket_accesses_;
    bucket_pages_ = other.bucket_pages_;
    sids_scanned_ = other.sids_scanned_;
    sets_fetched_ = other.sets_fetched_;
    results_ = other.results_;
    probe_failures_ = other.probe_failures_;
    fetch_failures_ = other.fetch_failures_;
    degraded_queries_ = other.degraded_queries_;
    seqscan_fallbacks_ = other.seqscan_fallbacks_;
    live_sets_ = other.live_sets_;
    candidates_hist_ = other.candidates_hist_;
    latency_hist_ = other.latency_hist_;
    other.capacity_.store(0, std::memory_order_relaxed);
    other.num_live_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

void SetSimilarityIndex::EnableConcurrentWrites(exec::EpochManager* manager) {
  if (manager == nullptr) manager = &exec::EpochManager::Default();
  epoch_manager_ = manager;
  signatures_.SetEpochManager(manager);
  for (auto& fi : fis_) {
    if (fi.sfi != nullptr) {
      fi.sfi->SetEpochManager(manager);
    } else {
      fi.dfi->SetEpochManager(manager);
    }
  }
}

Status SetSimilarityIndex::BuildFilterIndices() {
  Stopwatch build_watch;
  SSR_RETURN_IF_ERROR(CreateFilterIndices());

  // Phase 0 (serial): one sequential scan collects every live set in file
  // order — the I/O is inherently serial, and it fixes the sid order the
  // sharded phases below must reproduce.
  std::vector<SetId> sids;
  std::vector<ElementSet> sets;
  Status status;
  store_->ScanAll([&](SetId sid, const ElementSet& set) {
    if (!IsNormalizedSet(set)) {
      status = Status::InvalidArgument("set must be sorted and duplicate-free");
      return false;
    }
    sids.push_back(sid);
    sets.push_back(set);
    return true;
  });
  SSR_RETURN_IF_ERROR(status);
  const std::size_t n = sids.size();

  exec::ThreadPool pool(exec::ResolveThreadCount(options_.num_threads));
  build_stats_ = BuildStats{};
  build_stats_.threads = pool.size();
  build_stats_.sets_indexed = n;

  SetId max_sid = 0;
  for (SetId sid : sids) max_sid = std::max(max_sid, sid);
  if (n > 0) {
    // Pre-grow the slot array serially so the parallel sign phase below
    // only stores into disjoint, already-allocated slots.
    signatures_.EnsureCapacity(max_sid + 1);
    if (max_sid + 1 > capacity_.load(std::memory_order_relaxed)) {
      capacity_.store(max_sid + 1, std::memory_order_relaxed);
    }
  }

  // Phase 1 (parallel): sign every set, block-batched through
  // Embedding::SignBatch so the family kernels amortize dispatch over
  // contiguous element runs. Each worker owns whole blocks and writes
  // disjoint sid-indexed slots; SignBatch is const and reentrant, and each
  // signature depends only on its own set, so the result is bit-identical
  // to the serial build for any thread count.
  double parallel_wall = 0.0;
  {
    obs::TraceSpan span("build/sign");
    span.Tag("sets", static_cast<std::uint64_t>(n));
    constexpr std::size_t kSignBlock = 32;
    const std::size_t blocks = (n + kSignBlock - 1) / kSignBlock;
    pool.ParallelFor(
        0, blocks, /*grain=*/1,
        [&](std::size_t blk, std::size_t /*worker*/) {
          const std::size_t lo = blk * kSignBlock;
          const std::size_t hi = std::min(n, lo + kSignBlock);
          thread_local std::vector<Signature> block;
          block.resize(hi - lo);
          embedding_->SignBatch(&sets[lo], hi - lo, block.data());
          for (std::size_t i = lo; i < hi; ++i) {
            signatures_.Set(sids[i], new Signature(std::move(block[i - lo])));
          }
        });
    const exec::JobStats& job = pool.last_job_stats();
    build_stats_.sign_cpu_seconds = job.TotalCpuSeconds();
    build_stats_.sign_makespan_seconds = job.MakespanSeconds();
    parallel_wall += job.wall_seconds;
  }

  // Phase 2 (parallel): insert into the hash tables, sharded by table. A
  // worker owns whole (fi, table) pairs and walks sids in ascending file
  // order — the same per-table insertion order as the serial build — so
  // bucket contents are bit-identical and no insert path needs a lock.
  struct TableRef {
    std::size_t fi;
    std::size_t table;
  };
  std::vector<TableRef> tables;
  for (std::size_t f = 0; f < fis_.size(); ++f) {
    const std::size_t l =
        fis_[f].sfi != nullptr ? fis_[f].sfi->l() : fis_[f].dfi->l();
    for (std::size_t t = 0; t < l; ++t) tables.push_back({f, t});
  }
  // Resolve each sid's signature pointer once, not per (table, sid) pair.
  std::vector<const Signature*> sig_of(n);
  for (std::size_t i = 0; i < n; ++i) sig_of[i] = signatures_.Get(sids[i]);
  {
    obs::TraceSpan span("build/insert");
    span.Tag("tables", static_cast<std::uint64_t>(tables.size()));
    pool.ParallelFor(
        0, tables.size(), /*grain=*/1,
        [&](std::size_t ti, std::size_t /*worker*/) {
          const TableRef ref = tables[ti];
          BuiltFi& fi = fis_[ref.fi];
          if (fi.sfi != nullptr) {
            for (std::size_t i = 0; i < n; ++i) {
              fi.sfi->InsertIntoTable(ref.table, sids[i], *sig_of[i]);
            }
          } else {
            for (std::size_t i = 0; i < n; ++i) {
              fi.dfi->InsertIntoTable(ref.table, sids[i], *sig_of[i]);
            }
          }
        });
    const exec::JobStats& job = pool.last_job_stats();
    build_stats_.insert_cpu_seconds = job.TotalCpuSeconds();
    build_stats_.insert_makespan_seconds = job.MakespanSeconds();
    parallel_wall += job.wall_seconds;
  }

  // Phase 3 (serial): size bookkeeping.
  for (auto& fi : fis_) {
    if (fi.sfi != nullptr) {
      fi.sfi->NoteBulkEntries(n);
    } else {
      fi.dfi->NoteBulkEntries(n);
    }
  }
  // Liveness is the non-null signature slot, already published in phase 1.
  num_live_.fetch_add(n, std::memory_order_relaxed);
  live_sets_->Set(
      static_cast<double>(num_live_.load(std::memory_order_relaxed)));

  build_stats_.wall_seconds = build_watch.ElapsedSeconds();
  // Modeled build time: the serial portions at wall-clock cost plus each
  // parallel phase at its busiest worker's CPU cost. Equals wall_seconds
  // when the machine really runs `threads` workers concurrently.
  build_stats_.makespan_seconds =
      (build_stats_.wall_seconds - parallel_wall) +
      build_stats_.sign_makespan_seconds +
      build_stats_.insert_makespan_seconds;
  return Status::OK();
}

Status SetSimilarityIndex::CreateFilterIndices() {
  const std::size_t expected = store_->size();
  std::size_t buckets = options_.buckets_per_table;
  if (buckets == 0) buckets = expected < 16 ? 16 : expected;

  for (std::size_t i = 0; i < layout_.points.size(); ++i) {
    const FilterPoint& p = layout_.points[i];
    SfiParams params;
    params.l = p.tables;
    params.r = p.r;
    params.num_buckets = buckets;
    params.seed = HashCombine(options_.seed, i * 0x9e37 + 1);
    BuiltFi built;
    built.point = p;
    // Theorem 1 converts the set-similarity location to Hamming similarity.
    const double s_hamming =
        embedding_->SetToHammingSimilarity(p.similarity);
    if (p.kind == FilterKind::kSimilarity) {
      params.s_star = s_hamming;
      auto sfi = SimilarityFilterIndex::Create(*embedding_, params, expected);
      if (!sfi.ok()) return sfi.status();
      built.sfi = std::make_unique<SimilarityFilterIndex>(
          std::move(sfi).value());
    } else {
      params.s_star = s_hamming;
      auto dfi =
          DissimilarityFilterIndex::Create(*embedding_, params, expected);
      if (!dfi.ok()) return dfi.status();
      built.dfi = std::make_unique<DissimilarityFilterIndex>(
          std::move(dfi).value());
    }
    fis_.push_back(std::move(built));
  }
  return Status::OK();
}

Status SetSimilarityIndex::Insert(SetId sid, const ElementSet& set) {
  if (!IsNormalizedSet(set)) {
    return Status::InvalidArgument("set must be sorted and duplicate-free");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (signatures_.Get(sid) != nullptr) {
    return Status::AlreadyExists("sid already indexed");
  }
  // Write-ahead: the mutation reaches the log before any in-memory state
  // changes, and a failed append fails the whole Insert with nothing
  // applied — memory is never ahead of the log.
  if (wal_ != nullptr) {
    SSR_RETURN_IF_ERROR(wal_->AppendInsert(sid, set).status());
  }
  return InsertSignatureLocked(sid, embedding_->Sign(set));
}

Status SetSimilarityIndex::InsertSignature(SetId sid, Signature sig) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return InsertSignatureLocked(sid, std::move(sig));
}

Status SetSimilarityIndex::InsertSignatureLocked(SetId sid, Signature sig) {
  if (signatures_.Get(sid) != nullptr) {
    return Status::AlreadyExists("sid already indexed");
  }
  if (sig.size() != embedding_->hasher().params().num_hashes) {
    return Status::InvalidArgument("signature dimension mismatch");
  }
  auto* owned = new Signature(std::move(sig));
  // Tables first, then the signature slot: once the slot is non-null the
  // sid is live, and every table already holds it — a reader that sees it
  // live can probe it, and one that saw a table entry early just verifies
  // an extra candidate against the store.
  for (auto& fi : fis_) {
    if (fi.sfi != nullptr) {
      fi.sfi->Insert(sid, *owned);
    } else {
      fi.dfi->Insert(sid, *owned);
    }
  }
  signatures_.Set(sid, owned);
  if (sid + std::size_t{1} > capacity_.load(std::memory_order_relaxed)) {
    capacity_.store(sid + std::size_t{1}, std::memory_order_relaxed);
  }
  num_live_.fetch_add(1, std::memory_order_relaxed);
  live_sets_->Set(
      static_cast<double>(num_live_.load(std::memory_order_relaxed)));
  return Status::OK();
}

Status SetSimilarityIndex::Erase(SetId sid) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Signature* sig = signatures_.Get(sid);
  if (sig == nullptr) {
    return Status::NotFound("sid not indexed");
  }
  if (wal_ != nullptr) {
    SSR_RETURN_IF_ERROR(wal_->AppendErase(sid).status());
  }
  for (auto& fi : fis_) {
    if (fi.sfi != nullptr) {
      fi.sfi->Erase(sid, *sig);
    } else {
      fi.dfi->Erase(sid, *sig);
    }
  }
  signatures_.Set(sid, nullptr);
  // A pinned reader may still dereference the signature it loaded before
  // the swap; defer the free to its retire epoch.
  if (epoch_manager_ != nullptr) {
    epoch_manager_->Retire([sig] { delete sig; });
  } else {
    delete sig;
  }
  num_live_.fetch_sub(1, std::memory_order_relaxed);
  live_sets_->Set(
      static_cast<double>(num_live_.load(std::memory_order_relaxed)));
  return Status::OK();
}

std::optional<Signature> SetSimilarityIndex::signature(SetId sid) const {
  std::optional<exec::EpochGuard> guard;
  if (epoch_manager_ != nullptr) guard.emplace(*epoch_manager_);
  const Signature* sig = signatures_.Get(sid);
  if (sig == nullptr) return std::nullopt;
  return *sig;
}

bool SetSimilarityIndex::HasDfi() const {
  for (const auto& fi : fis_) {
    if (fi.point.kind == FilterKind::kDissimilarity) return true;
  }
  return false;
}

std::vector<SetId> SetSimilarityIndex::LiveSids() const {
  std::vector<SetId> out;
  out.reserve(num_live_.load(std::memory_order_relaxed));
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  for (std::size_t sid = 0; sid < cap; ++sid) {
    if (signatures_.Get(sid) != nullptr) {
      out.push_back(static_cast<SetId>(sid));
    }
  }
  return out;
}

Status SetSimilarityIndex::ProbeFi(std::size_t fi_idx, const Signature& query,
                                   bool* partial, QueryStats* stats,
                                   IoCostModel& io,
                                   std::vector<SetId>* out) const {
  const BuiltFi& fi = fis_[fi_idx];
  obs::TraceSpan span("probe_fi");
  span.Tag("fi", static_cast<std::uint64_t>(fi_idx));
  span.Tag("kind", fi.sfi != nullptr ? "sfi" : "dfi");
  span.Tag("point", fi.point.similarity);
  *partial = false;
  SfiProbeStats probe;
  fault::RetryStats retry_stats;
  Status status =
      fault::RetryWithPolicy(options_.probe_retry, [&]() -> Status {
        SSR_RETURN_IF_ERROR(
            fault::FaultInjector::Default().CheckStatus("index/probe_fi"));
        probe = SfiProbeStats{};
        if (fi.sfi != nullptr) {
          fi.sfi->SimVectorInto(query, /*complemented=*/false, &probe, out);
        } else {
          fi.dfi->DissimVectorInto(query, &probe, out);
        }
        return Status::OK();
      }, &retry_stats);
  stats->retry_attempts += retry_stats.retries;
  stats->retry_backoff_micros += retry_stats.backoff_micros;
  if (!status.ok()) {
    stats->probe_failures += 1;
    probe_failures_->Increment();
    stats->fi_probes.push_back(
        {static_cast<std::uint32_t>(fi_idx), 0, 0, /*failed=*/true});
    span.Tag("failed", std::uint64_t{1});
    return status;
  }
  // Accumulate into the query's own stats and mirror the same amounts into
  // the process-wide instruments (the two stay consistent by construction;
  // per-query stats never see a concurrent query's probes).
  stats->bucket_accesses += probe.bucket_accesses;
  stats->bucket_pages += probe.bucket_pages;
  stats->sids_scanned += probe.sids_scanned;
  bucket_accesses_->Add(probe.bucket_accesses);
  bucket_pages_->Add(probe.bucket_pages);
  sids_scanned_->Add(probe.sids_scanned);
  if (probe.tables_failed > 0) {
    *partial = true;
    stats->probe_failures += 1;
    probe_failures_->Increment();
    span.Tag("tables_failed",
             static_cast<std::uint64_t>(probe.tables_failed));
  }
  stats->fi_probes.push_back({static_cast<std::uint32_t>(fi_idx),
                              probe.bucket_accesses, out->size(),
                              /*failed=*/probe.tables_failed > 0});
  span.Tag("sids", static_cast<std::uint64_t>(out->size()));
  if (options_.charge_bucket_io) {
    io.ChargeRandomRead(probe.bucket_pages);
  }
  return status;
}

std::vector<SetId> SetSimilarityIndex::ComputeCandidates(
    const Signature& query, double sigma1, double sigma2, QueryStats* stats,
    bool* additive_loss, IoCostModel& io,
    std::vector<SetId>* scratch) const {
  // All probes share one scratch vector (caller-provided when available):
  // the union is built in place with warm capacity and copied out once per
  // probe, eliminating the per-table growth reallocations.
  std::vector<SetId> local_scratch;
  std::vector<SetId>* probe_out =
      scratch != nullptr ? scratch : &local_scratch;
  // A failed or partial *additive* probe can lose true candidates: report
  // it through *additive_loss and contribute a best-effort (possibly
  // empty) set. A failed *subtractive* probe subtracts nothing — the
  // result stays a sound superset and verification still yields exact
  // answers. Both paths tag the query degraded.
  const auto additive = [&](std::size_t idx) -> std::vector<SetId> {
    bool partial = false;
    Status s = ProbeFi(idx, query, &partial, stats, io, probe_out);
    if (!s.ok() || partial) {
      stats->degraded = true;
      *additive_loss = true;
      if (!s.ok()) return {};
    }
    return *probe_out;
  };
  const auto subtractive = [&](std::size_t idx) -> std::vector<SetId> {
    bool partial = false;
    Status s = ProbeFi(idx, query, &partial, stats, io, probe_out);
    if (!s.ok() || partial) {
      stats->degraded = true;
      if (!s.ok()) return {};
    }
    return *probe_out;
  };

  // Virtual enclosing-point selection over [0 | layout points | 1].
  // lo = highest point <= σ1 (virtual 0 if none);
  // up = lowest point >= σ2 (virtual 1 if none).
  constexpr std::size_t kVirtual = static_cast<std::size_t>(-1);
  std::size_t lo_idx = kVirtual, up_idx = kVirtual;
  for (std::size_t i = 0; i < fis_.size(); ++i) {
    if (fis_[i].point.similarity <= sigma1) lo_idx = i;
  }
  for (std::size_t i = fis_.size(); i-- > 0;) {
    if (fis_[i].point.similarity >= sigma2) up_idx = i;
  }
  // If both land on the same point (σ1 <= p <= σ2 with one point in range),
  // widen lo downward so the enclosure is proper.
  if (lo_idx != kVirtual && lo_idx == up_idx) {
    lo_idx = lo_idx == 0 ? kVirtual : lo_idx - 1;
  }

  stats->lo_point = lo_idx == kVirtual ? 0.0 : fis_[lo_idx].point.similarity;
  stats->up_point = up_idx == kVirtual ? 1.0 : fis_[up_idx].point.similarity;

  const bool lo_virtual = lo_idx == kVirtual;
  const bool up_virtual = up_idx == kVirtual;

  if (lo_virtual && up_virtual) {
    stats->plan = QueryPlanKind::kFullCollection;
    return LiveSids();
  }

  const auto kind_of = [&](std::size_t idx) { return fis_[idx].point.kind; };

  // Case 1: both enclosing points are DFIs (or lo is virtual 0, an empty
  // DissimVector): A = Dissim(up) \ Dissim(lo).
  if (!up_virtual && kind_of(up_idx) == FilterKind::kDissimilarity) {
    stats->plan = QueryPlanKind::kDfiPair;
    std::vector<SetId> up_set = additive(up_idx);
    if (lo_virtual) return up_set;
    assert(kind_of(lo_idx) == FilterKind::kDissimilarity);
    std::vector<SetId> lo_set = subtractive(lo_idx);
    return SortedDifference(up_set, lo_set);
  }

  // Case 2: both enclosing points are SFIs (or up is virtual 1, an empty
  // SimVector): A = Sim(lo) \ Sim(up). A virtual-0 lo with an SFI-side up
  // degenerates to "all live sids minus Sim(up)" — the expensive plan the
  // paper's first-attempt scheme suffers from; the optimizer's layouts
  // avoid it by covering [0, δ] with DFIs.
  const bool lo_is_sfi =
      !lo_virtual && kind_of(lo_idx) == FilterKind::kSimilarity;
  const bool lo_dfi_side =
      !lo_virtual && kind_of(lo_idx) == FilterKind::kDissimilarity;
  if (lo_is_sfi || (lo_virtual && !up_virtual &&
                    kind_of(up_idx) == FilterKind::kSimilarity &&
                    !HasDfi())) {
    stats->plan = QueryPlanKind::kSfiPair;
    std::vector<SetId> lo_set = lo_is_sfi ? additive(lo_idx) : LiveSids();
    if (up_virtual) return lo_set;
    std::vector<SetId> up_set = subtractive(up_idx);
    return SortedDifference(lo_set, up_set);
  }

  // Case 3: lo on the DFI side (a real DFI or virtual 0 with DFIs present),
  // up on the SFI side (a real SFI or virtual 1). Uses the two FIs nearest
  // δ: A = (Dissim(r_m) \ Dissim(lo)) ∪ (Sim(t_m) \ Sim(up)).
  stats->plan = QueryPlanKind::kMixed;
  std::size_t dfi_mid = kVirtual, sfi_mid = kVirtual;
  for (std::size_t i = 0; i < fis_.size(); ++i) {
    if (fis_[i].point.kind == FilterKind::kDissimilarity) dfi_mid = i;
  }
  for (std::size_t i = fis_.size(); i-- > 0;) {
    if (fis_[i].point.kind == FilterKind::kSimilarity) sfi_mid = i;
  }

  if (sfi_mid == kVirtual) {
    // DFI-only layout with the range extending above every DFI point: the
    // only sound superset is everything not excluded below lo.
    std::vector<SetId> all = LiveSids();
    if (lo_dfi_side) {
      return SortedDifference(all, subtractive(lo_idx));
    }
    return all;
  }

  std::vector<SetId> left;
  if (dfi_mid != kVirtual) {
    left = additive(dfi_mid);
    if (lo_dfi_side && lo_idx != dfi_mid) {
      left = SortedDifference(left, subtractive(lo_idx));
    }
  }
  std::vector<SetId> right;
  if (sfi_mid != kVirtual) {
    right = additive(sfi_mid);
    if (!up_virtual && up_idx != sfi_mid &&
        kind_of(up_idx) == FilterKind::kSimilarity) {
      right = SortedDifference(right, subtractive(up_idx));
    }
  }
  return SortedUnion(left, right);
}

namespace {
constexpr std::string_view kIndexMagic = "SSRINDEX";
// v3 appended the minhash family byte to the "options" section; v2
// snapshots predate signature engine v2 and load as the classic family
// (the only one that existed when they were written).
constexpr std::uint32_t kIndexVersion = 3;
constexpr std::uint32_t kIndexVersionPreFamily = 2;
}  // namespace

Status SetSimilarityIndex::SaveTo(std::ostream& out) const {
  // Pin the signature versions being serialized against concurrent retires
  // (callers normally quiesce writers first for a point-in-time snapshot).
  std::optional<exec::EpochGuard> epoch_guard;
  if (epoch_manager_ != nullptr) epoch_guard.emplace(*epoch_manager_);
  SnapshotWriter snapshot(out, kIndexMagic, kIndexVersion);

  BinaryWriter& opts = snapshot.BeginSection("options");
  opts.WriteU64(options_.embedding.minhash.num_hashes);
  opts.WriteU32(options_.embedding.minhash.value_bits);
  opts.WriteU64(options_.embedding.minhash.seed);
  opts.WriteU8(static_cast<std::uint8_t>(options_.embedding.code_kind));
  opts.WriteU64(options_.buckets_per_table);
  opts.WriteU64(options_.seed);
  opts.WriteBool(options_.charge_bucket_io);
  // v3: the signing family. Appended last so the field order of v2
  // readers' fields is untouched.
  opts.WriteU8(static_cast<std::uint8_t>(options_.embedding.minhash.family));
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  BinaryWriter& lay = snapshot.BeginSection("layout");
  lay.WriteDouble(layout_.delta);
  lay.WriteU64(layout_.points.size());
  for (const FilterPoint& p : layout_.points) {
    lay.WriteDouble(p.similarity);
    lay.WriteU8(static_cast<std::uint8_t>(p.kind));
    lay.WriteU64(p.tables);
    lay.WriteU64(p.r);
  }
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  // Signatures of live sids. Last and largest: damage here is recoverable
  // (signatures re-embed from the store), so keep it after the sections
  // that are not.
  BinaryWriter& sigs = snapshot.BeginSection("signatures");
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  sigs.WriteU64(cap);
  sigs.WriteU64(num_live_.load(std::memory_order_relaxed));
  for (std::size_t sid = 0; sid < cap; ++sid) {
    const Signature* sig = signatures_.Get(sid);
    if (sig == nullptr) continue;
    sigs.WriteU32(static_cast<std::uint32_t>(sid));
    sigs.WriteVector(sig->values());
  }
  SSR_RETURN_IF_ERROR(snapshot.EndSection());

  return snapshot.Finish();
}

Result<SetSimilarityIndex> SetSimilarityIndex::Load(
    SetStore& store, std::istream& in,
    const SnapshotLoadOptions& load_options) {
  SnapshotReader snapshot(in);
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(snapshot.ReadHeader(kIndexMagic, &version));
  if (version != kIndexVersion && version != kIndexVersionPreFamily) {
    return Status::NotSupported("unknown index version");
  }

  std::string payload;
  SSR_RETURN_IF_ERROR(snapshot.ReadSection("options", &payload));
  IndexOptions options;
  {
    std::istringstream opts_in(payload);
    BinaryReader opts(opts_in);
    std::uint64_t num_hashes = 0;
    std::uint32_t value_bits = 0;
    std::uint8_t code_kind = 0;
    SSR_RETURN_IF_ERROR(opts.ReadU64(&num_hashes));
    SSR_RETURN_IF_ERROR(opts.ReadU32(&value_bits));
    SSR_RETURN_IF_ERROR(opts.ReadU64(&options.embedding.minhash.seed));
    SSR_RETURN_IF_ERROR(opts.ReadU8(&code_kind));
    SSR_RETURN_IF_ERROR(opts.ReadU64(&options.buckets_per_table));
    SSR_RETURN_IF_ERROR(opts.ReadU64(&options.seed));
    SSR_RETURN_IF_ERROR(opts.ReadBool(&options.charge_bucket_io));
    options.embedding.minhash.num_hashes =
        static_cast<std::size_t>(num_hashes);
    options.embedding.minhash.value_bits = value_bits;
    if (code_kind > static_cast<std::uint8_t>(CodeKind::kNaiveBinary)) {
      return Status::Corruption("unknown code kind");
    }
    options.embedding.code_kind = static_cast<CodeKind>(code_kind);
    if (version >= kIndexVersion) {
      // The family the store was signed under. An out-of-range byte in a
      // CRC-clean section is a snapshot from a newer engine, not damage:
      // refuse with NotSupported rather than probe under the wrong family.
      std::uint8_t family_byte = 0;
      SSR_RETURN_IF_ERROR(opts.ReadU8(&family_byte));
      auto family = MinHashFamilyFromByte(family_byte);
      if (!family.ok()) return family.status();
      options.embedding.minhash.family = family.value();
    } else {
      options.embedding.minhash.family = MinHashFamilyKind::kClassic;
    }
    // Every version's field list is exhaustive. Leftover payload means the
    // version field (which no CRC covers) was damaged into an older value
    // that would silently ignore trailing fields — the family byte, under
    // v3 -> v2 — and that is exactly the "probe under the wrong family"
    // outcome the format forbids.
    if (opts_in.peek() != std::istringstream::traits_type::eof()) {
      return Status::Corruption("options section has trailing bytes");
    }
  }

  SSR_RETURN_IF_ERROR(snapshot.ReadSection("layout", &payload));
  IndexLayout layout;
  {
    std::istringstream lay_in(payload);
    BinaryReader lay(lay_in);
    SSR_RETURN_IF_ERROR(lay.ReadDouble(&layout.delta));
    std::uint64_t num_points = 0;
    SSR_RETURN_IF_ERROR(lay.ReadU64(&num_points));
    if (num_points > 100000) return Status::Corruption("absurd point count");
    for (std::uint64_t i = 0; i < num_points; ++i) {
      FilterPoint p;
      std::uint8_t kind = 0;
      std::uint64_t tables = 0, r = 0;
      SSR_RETURN_IF_ERROR(lay.ReadDouble(&p.similarity));
      SSR_RETURN_IF_ERROR(lay.ReadU8(&kind));
      SSR_RETURN_IF_ERROR(lay.ReadU64(&tables));
      SSR_RETURN_IF_ERROR(lay.ReadU64(&r));
      p.kind =
          kind == 0 ? FilterKind::kSimilarity : FilterKind::kDissimilarity;
      p.tables = static_cast<std::size_t>(tables);
      p.r = static_cast<std::size_t>(r);
      layout.points.push_back(p);
    }
  }
  SSR_RETURN_IF_ERROR(layout.Validate());
  if (layout.points.empty()) {
    return Status::Corruption("persisted layout has no points");
  }

  auto embedding = Embedding::Create(options.embedding);
  if (!embedding.ok()) return embedding.status();
  SetSimilarityIndex index(store, std::move(layout), options,
                           std::move(embedding).value());
  SSR_RETURN_IF_ERROR(index.CreateFilterIndices());

  const Status sig_status = snapshot.ReadSection("signatures", &payload);
  const bool sigs_damaged = !sig_status.ok();
  if (sigs_damaged && !(load_options.salvage && (sig_status.IsDataLoss() ||
                                                 sig_status.IsCorruption()))) {
    return sig_status;
  }

  std::size_t rebuilt = 0;
  if (sigs_damaged) {
    // Recovery: the signatures are derived data — re-embed every surviving
    // record from the (possibly itself salvaged) store and rebuild the
    // hash tables from scratch.
    Status rebuild_status;
    store.ScanAll([&](SetId sid, const ElementSet& set) {
      Status s = index.Insert(sid, set);
      if (!s.ok()) {
        rebuild_status = s;
        return false;
      }
      ++rebuilt;
      return true;
    });
    SSR_RETURN_IF_ERROR(rebuild_status);
    store.ResetIoAccounting();  // the rebuild scan is not query I/O
  } else {
    std::istringstream sigs_in(payload);
    BinaryReader sigs(sigs_in);
    std::uint64_t capacity = 0, live_count = 0;
    SSR_RETURN_IF_ERROR(sigs.ReadU64(&capacity));
    SSR_RETURN_IF_ERROR(sigs.ReadU64(&live_count));
    for (std::uint64_t i = 0; i < live_count; ++i) {
      std::uint32_t sid = 0;
      std::vector<std::uint16_t> values;
      SSR_RETURN_IF_ERROR(sigs.ReadU32(&sid));
      SSR_RETURN_IF_ERROR(sigs.ReadVector(&values));
      if (load_options.salvage && !store.Contains(sid)) {
        // The store's salvage dropped this record; indexing it would only
        // produce candidates that can never verify.
        continue;
      }
      SSR_RETURN_IF_ERROR(
          index.InsertSignature(sid, Signature(std::move(values))));
    }
    if (index.capacity_.load(std::memory_order_relaxed) < capacity) {
      // Restore the saved logical capacity even past the highest live sid:
      // it round-trips through SaveTo and keeps sid allocation consistent
      // across save/load cycles with trailing erased sids.
      index.signatures_.EnsureCapacity(static_cast<std::size_t>(capacity));
      index.capacity_.store(static_cast<std::size_t>(capacity),
                            std::memory_order_relaxed);
    }
  }

  const Status footer_status = snapshot.VerifyFooter();
  if (!footer_status.ok() && !load_options.salvage) return footer_status;

  if (load_options.report != nullptr) {
    RecoveryReport r;
    r.signatures_rebuilt = rebuilt;
    r.salvaged = sigs_damaged || !footer_status.ok();
    load_options.report->MergeFrom(r);
  }
  if (sigs_damaged) {
    obs::MetricsRegistry::Default()
        .GetCounter("ssr_recovery_signatures_rebuilt_total",
                    index.options_.metrics_scope)
        ->Add(rebuilt);
  }
  return index;
}

Result<QueryResult> SetSimilarityIndex::QueryCandidates(
    const ElementSet& query, double sigma1, double sigma2) const {
  if (!(sigma1 >= 0.0 && sigma1 <= sigma2 && sigma2 <= 1.0)) {
    return Status::InvalidArgument("require 0 <= sigma1 <= sigma2 <= 1");
  }
  if (!IsNormalizedSet(query)) {
    return Status::InvalidArgument("query set must be sorted and unique");
  }
  // Pin an epoch for the query's whole lifetime: every bucket, directory,
  // or signature version loaded below stays allocated until the guard
  // drops, whatever concurrent writers retire meanwhile.
  std::optional<exec::EpochGuard> epoch_guard;
  if (epoch_manager_ != nullptr) epoch_guard.emplace(*epoch_manager_);
  Stopwatch watch;
  obs::TraceSpan root("query_candidates");
  IoCostModel& io = store_->io();
  const IoStats io_before = io.stats();
  queries_->Increment();
  QueryResult result;
  Signature sig;
  {
    obs::TraceSpan embed("embed");
    sig = embedding_->Sign(query);
  }
  bool additive_loss = false;
  {
    obs::TraceSpan plan("plan");
    result.sids = ComputeCandidates(sig, sigma1, sigma2, &result.stats,
                                    &additive_loss, io, nullptr);
  }
  if (result.stats.degraded &&
      options_.degrade == DegradeMode::kFailFast) {
    return Status::Unavailable("filter probe failed (fail-fast)");
  }
  if (additive_loss &&
      options_.degrade == DegradeMode::kSequentialFallback) {
    // Candidates may be missing true positives; the sound fallback is the
    // full live-sid superset (verification downstream removes the extra
    // false positives).
    obs::TraceSpan fallback("degraded_scan");
    seqscan_fallbacks_->Increment();
    result.sids = LiveSids();
  }
  if (result.stats.degraded) degraded_queries_->Increment();
  result.stats.candidates = result.sids.size();
  result.stats.results = result.sids.size();
  candidates_hist_->Observe(static_cast<double>(result.sids.size()));
  result.stats.io = io.stats() - io_before;
  FinishStats(watch, &result.stats);
  root.Tag("plan", QueryPlanKindName(result.stats.plan));
  root.Tag("candidates", static_cast<std::uint64_t>(result.stats.candidates));
  if (result.stats.degraded) root.Tag("degraded", std::uint64_t{1});
  if (workload_observer_ != nullptr) {
    // Candidate-only queries count toward the workload shape but are not
    // offered to the sampled channels: candidates are not verified answers.
    workload_observer_->CountQuery(sigma1, sigma2, query.size());
    for (const auto& p : result.stats.fi_probes) {
      workload_observer_->CountFiProbe(p.fi, p.bucket_accesses, p.sids,
                                       p.failed);
    }
    workload_observer_->UpdateGauges();
  }
  return result;
}

Result<QueryResult> SetSimilarityIndex::Query(const ElementSet& query,
                                              double sigma1,
                                              double sigma2) const {
  return QueryImpl(query, sigma1, sigma2, /*view=*/nullptr,
                   /*scratch=*/nullptr);
}

Result<QueryResult> SetSimilarityIndex::QueryThrough(
    SetStore::ReadView& view, const ElementSet& query, double sigma1,
    double sigma2, std::vector<SetId>* scratch) const {
  return QueryImpl(query, sigma1, sigma2, &view, scratch);
}

Result<QueryResult> SetSimilarityIndex::QueryImpl(
    const ElementSet& query, double sigma1, double sigma2,
    SetStore::ReadView* view, std::vector<SetId>* scratch) const {
  if (!(sigma1 >= 0.0 && sigma1 <= sigma2 && sigma2 <= 1.0)) {
    return Status::InvalidArgument("require 0 <= sigma1 <= sigma2 <= 1");
  }
  if (!IsNormalizedSet(query)) {
    return Status::InvalidArgument("query set must be sorted and unique");
  }
  // Pin an epoch for the query's whole lifetime (see QueryCandidates).
  std::optional<exec::EpochGuard> epoch_guard;
  if (epoch_manager_ != nullptr) epoch_guard.emplace(*epoch_manager_);
  Stopwatch watch;
  obs::TraceSpan root("query");
  // All I/O this query causes — bucket probes, candidate fetches, a
  // degraded scan — lands on one model: the store's (serial path) or the
  // worker's private view (concurrent path). Its delta is this query's io.
  IoCostModel& io = view != nullptr ? view->io() : store_->io();
  const IoStats io_before = io.stats();
  queries_->Increment();
  QueryResult result;
  Signature sig;
  {
    obs::TraceSpan embed("embed");
    sig = embedding_->Sign(query);
  }
  std::vector<SetId> candidates;
  bool additive_loss = false;
  {
    obs::TraceSpan plan("plan");
    candidates = ComputeCandidates(sig, sigma1, sigma2, &result.stats,
                                   &additive_loss, io, scratch);
  }
  result.stats.candidates = candidates.size();
  candidates_hist_->Observe(static_cast<double>(candidates.size()));

  if (result.stats.degraded &&
      options_.degrade == DegradeMode::kFailFast) {
    return Status::Unavailable("filter probe failed (fail-fast)");
  }
  // Under sequential fallback, a lossy candidate set means the verified
  // answer could miss true results — go straight to the exact full scan.
  bool need_full_scan =
      additive_loss && options_.degrade == DegradeMode::kSequentialFallback;
  constexpr double kEps = 1e-12;

  if (!need_full_scan &&
      result.stats.plan == QueryPlanKind::kFullCollection && sigma1 <= 0.0 &&
      sigma2 >= 1.0) {
    // [0, 1] covers every set by definition; no verification needed. Any
    // narrower range that still fell through to the full-collection plan
    // (no enclosing filter points) must be verified like any other.
    result.sids = std::move(candidates);
  } else if (!need_full_scan) {
    // Verification: fetch each candidate and keep exact-similarity matches.
    obs::TraceSpan verify("verify");
    for (SetId sid : candidates) {
      auto set = view != nullptr ? view->Get(sid) : store_->Get(sid);
      if (!set.ok()) {
        if (set.status().IsNotFound()) continue;  // deleted concurrently
        // A real fetch failure (transient fault that exhausted retries, or
        // data loss): never silently drop the candidate.
        result.stats.fetch_failures += 1;
        fetch_failures_->Increment();
        result.stats.degraded = true;
        if (options_.degrade == DegradeMode::kFailFast) {
          return Status::Unavailable("candidate fetch failed (fail-fast)");
        }
        if (options_.degrade == DegradeMode::kSequentialFallback) {
          need_full_scan = true;
          break;
        }
        continue;  // kPartialResults: skip, answer stays tagged degraded
      }
      result.stats.sets_fetched += 1;
      sets_fetched_->Increment();
      const double sim = Jaccard(set.value(), query);
      if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
        result.sids.push_back(sid);
      }
    }
    verify.Tag("fetched",
               static_cast<std::uint64_t>(result.stats.sets_fetched));
  }

  if (need_full_scan) {
    // Exact degraded path: verify the whole collection sequentially. Same
    // answer as the sequential-scan baseline, at its I/O cost.
    obs::TraceSpan scan("degraded_scan");
    seqscan_fallbacks_->Increment();
    result.stats.degraded = true;
    result.sids.clear();
    const auto verify_all = [&](SetId sid, const ElementSet& set) {
      const double sim = Jaccard(set, query);
      if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
        result.sids.push_back(sid);
      }
      return true;
    };
    if (view != nullptr) {
      view->ScanAll(verify_all);
    } else {
      store_->ScanAll(verify_all);
    }
    scan.Tag("results", static_cast<std::uint64_t>(result.sids.size()));
  }
  if (result.stats.degraded) degraded_queries_->Increment();
  result.stats.io = io.stats() - io_before;
  FinishStats(watch, &result.stats);
  results_->Add(result.sids.size());
  result.stats.results = result.sids.size();
  root.Tag("plan", QueryPlanKindName(result.stats.plan));
  root.Tag("lo", result.stats.lo_point);
  root.Tag("up", result.stats.up_point);
  root.Tag("candidates", static_cast<std::uint64_t>(result.stats.candidates));
  root.Tag("results", static_cast<std::uint64_t>(result.stats.results));
  if (result.stats.degraded) root.Tag("degraded", std::uint64_t{1});
  if (view == nullptr && workload_observer_ != nullptr) {
    // Serial-path workload capture. Concurrent callers (QueryThrough) are
    // deliberately excluded: their executors own per-worker observers fed
    // from the returned QueryStats, so nothing is double counted.
    workload_observer_->CountQuery(sigma1, sigma2, query.size());
    for (const auto& p : result.stats.fi_probes) {
      workload_observer_->CountFiProbe(p.fi, p.bucket_accesses, p.sids,
                                       p.failed);
    }
    workload_observer_->OfferSample(query, sigma1, sigma2, result.sids,
                                    result.stats.candidates);
    workload_observer_->UpdateGauges();
  }
  return result;
}

void SetSimilarityIndex::FinishStats(const Stopwatch& watch,
                                     QueryStats* stats) const {
  stats->io_seconds = stats->io.SimulatedSeconds(store_->io().params());
  stats->cpu_seconds = watch.ElapsedSeconds();
  latency_hist_->Observe(stats->cpu_seconds * 1e6);
}

std::uint64_t SetSimilarityIndex::ContentDigest() const {
  std::optional<exec::EpochGuard> epoch_guard;
  if (epoch_manager_ != nullptr) epoch_guard.emplace(*epoch_manager_);
  std::uint64_t h = SplitMix64(fis_.size());
  for (const auto& fi : fis_) {
    h = HashCombine(h, fi.sfi != nullptr ? fi.sfi->ContentDigest()
                                         : fi.dfi->ContentDigest());
  }
  h = HashCombine(h, num_live_.load(std::memory_order_relaxed));
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  for (std::size_t sid = 0; sid < cap; ++sid) {
    const Signature* sig = signatures_.Get(sid);
    if (sig == nullptr) continue;
    h = HashCombine(h, static_cast<SetId>(sid));
    for (std::uint16_t v : sig->values()) {
      h = HashCombine(h, v);
    }
  }
  return h;
}

}  // namespace ssr
