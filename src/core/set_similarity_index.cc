#include "core/set_similarity_index.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/hash.h"
#include "util/serialize.h"
#include "util/set_ops.h"
#include "util/stopwatch.h"

namespace ssr {

namespace {

std::vector<SetId> SortedDifference(const std::vector<SetId>& a,
                                    const std::vector<SetId>& b) {
  std::vector<SetId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<SetId> SortedUnion(const std::vector<SetId>& a,
                               const std::vector<SetId>& b) {
  std::vector<SetId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

IndexOptions ResolveIndexMetricsScope(IndexOptions options) {
  if (options.metrics_scope.empty()) {
    options.metrics_scope = obs::MetricsRegistry::Default().NewScope("index");
  }
  return options;
}

}  // namespace

const char* QueryPlanKindName(QueryPlanKind kind) {
  switch (kind) {
    case QueryPlanKind::kDfiPair:
      return "dfi_pair";
    case QueryPlanKind::kSfiPair:
      return "sfi_pair";
    case QueryPlanKind::kMixed:
      return "mixed";
    case QueryPlanKind::kFullCollection:
      return "full_collection";
  }
  return "unknown";
}

Result<SetSimilarityIndex> SetSimilarityIndex::Build(
    SetStore& store, const IndexLayout& layout, const IndexOptions& options) {
  SSR_RETURN_IF_ERROR(layout.Validate());
  if (layout.points.empty()) {
    return Status::InvalidArgument("layout must have at least one FI");
  }
  auto embedding = Embedding::Create(options.embedding);
  if (!embedding.ok()) return embedding.status();
  SetSimilarityIndex index(store, layout, options,
                           std::move(embedding).value());
  SSR_RETURN_IF_ERROR(index.BuildFilterIndices());
  // Preprocessing I/O (the full-collection scan) must not pollute the
  // per-query measurements.
  store.ResetIoAccounting();
  return index;
}

SetSimilarityIndex::SetSimilarityIndex(SetStore& store, IndexLayout layout,
                                       IndexOptions options,
                                       Embedding embedding)
    : store_(&store),
      layout_(std::move(layout)),
      options_(ResolveIndexMetricsScope(std::move(options))),
      embedding_(std::make_unique<Embedding>(std::move(embedding))) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string& scope = options_.metrics_scope;
  queries_ = registry.GetCounter("ssr_index_queries_total", scope);
  bucket_accesses_ =
      registry.GetCounter("ssr_index_bucket_accesses_total", scope);
  bucket_pages_ = registry.GetCounter("ssr_index_bucket_pages_total", scope);
  sids_scanned_ = registry.GetCounter("ssr_index_sids_scanned_total", scope);
  sets_fetched_ = registry.GetCounter("ssr_index_sets_fetched_total", scope);
  results_ = registry.GetCounter("ssr_index_results_total", scope);
  live_sets_ = registry.GetGauge("ssr_index_live_sets", scope);
  candidates_hist_ = registry.GetHistogram(
      "ssr_index_candidates_per_query", scope,
      obs::ExponentialBounds(1.0, 4.0, 10));
}

Status SetSimilarityIndex::BuildFilterIndices() {
  SSR_RETURN_IF_ERROR(CreateFilterIndices());
  // Embed and insert every live set.
  Status status;
  store_->ScanAll([&](SetId sid, const ElementSet& set) {
    Status s = Insert(sid, set);
    if (!s.ok()) {
      status = s;
      return false;
    }
    return true;
  });
  return status;
}

Status SetSimilarityIndex::CreateFilterIndices() {
  const std::size_t expected = store_->size();
  std::size_t buckets = options_.buckets_per_table;
  if (buckets == 0) buckets = expected < 16 ? 16 : expected;

  for (std::size_t i = 0; i < layout_.points.size(); ++i) {
    const FilterPoint& p = layout_.points[i];
    SfiParams params;
    params.l = p.tables;
    params.r = p.r;
    params.num_buckets = buckets;
    params.seed = HashCombine(options_.seed, i * 0x9e37 + 1);
    BuiltFi built;
    built.point = p;
    // Theorem 1 converts the set-similarity location to Hamming similarity.
    const double s_hamming =
        embedding_->SetToHammingSimilarity(p.similarity);
    if (p.kind == FilterKind::kSimilarity) {
      params.s_star = s_hamming;
      auto sfi = SimilarityFilterIndex::Create(*embedding_, params, expected);
      if (!sfi.ok()) return sfi.status();
      built.sfi = std::make_unique<SimilarityFilterIndex>(
          std::move(sfi).value());
    } else {
      params.s_star = s_hamming;
      auto dfi =
          DissimilarityFilterIndex::Create(*embedding_, params, expected);
      if (!dfi.ok()) return dfi.status();
      built.dfi = std::make_unique<DissimilarityFilterIndex>(
          std::move(dfi).value());
    }
    fis_.push_back(std::move(built));
  }
  return Status::OK();
}

Status SetSimilarityIndex::Insert(SetId sid, const ElementSet& set) {
  if (!IsNormalizedSet(set)) {
    return Status::InvalidArgument("set must be sorted and duplicate-free");
  }
  return InsertSignature(sid, embedding_->Sign(set));
}

Status SetSimilarityIndex::InsertSignature(SetId sid, Signature sig) {
  if (sid < live_.size() && live_[sid]) {
    return Status::AlreadyExists("sid already indexed");
  }
  if (sig.size() != embedding_->hasher().params().num_hashes) {
    return Status::InvalidArgument("signature dimension mismatch");
  }
  if (sid >= live_.size()) {
    live_.resize(sid + 1, false);
    signatures_.resize(sid + 1);
  }
  for (auto& fi : fis_) {
    if (fi.sfi != nullptr) {
      fi.sfi->Insert(sid, sig);
    } else {
      fi.dfi->Insert(sid, sig);
    }
  }
  signatures_[sid] = std::move(sig);
  live_[sid] = true;
  ++num_live_;
  live_sets_->Set(static_cast<double>(num_live_));
  return Status::OK();
}

Status SetSimilarityIndex::Erase(SetId sid) {
  if (sid >= live_.size() || !live_[sid]) {
    return Status::NotFound("sid not indexed");
  }
  const Signature& sig = signatures_[sid];
  for (auto& fi : fis_) {
    if (fi.sfi != nullptr) {
      fi.sfi->Erase(sid, sig);
    } else {
      fi.dfi->Erase(sid, sig);
    }
  }
  live_[sid] = false;
  signatures_[sid] = Signature();
  --num_live_;
  live_sets_->Set(static_cast<double>(num_live_));
  return Status::OK();
}

std::optional<Signature> SetSimilarityIndex::signature(SetId sid) const {
  if (sid >= live_.size() || !live_[sid]) return std::nullopt;
  return signatures_[sid];
}

bool SetSimilarityIndex::HasDfi() const {
  for (const auto& fi : fis_) {
    if (fi.point.kind == FilterKind::kDissimilarity) return true;
  }
  return false;
}

std::vector<SetId> SetSimilarityIndex::LiveSids() const {
  std::vector<SetId> out;
  out.reserve(num_live_);
  for (SetId sid = 0; sid < live_.size(); ++sid) {
    if (live_[sid]) out.push_back(sid);
  }
  return out;
}

std::vector<SetId> SetSimilarityIndex::ProbeFi(std::size_t fi_idx,
                                               const Signature& query) const {
  const BuiltFi& fi = fis_[fi_idx];
  obs::TraceSpan span("probe_fi");
  span.Tag("fi", static_cast<std::uint64_t>(fi_idx));
  span.Tag("kind", fi.sfi != nullptr ? "sfi" : "dfi");
  span.Tag("point", fi.point.similarity);
  SfiProbeStats probe;
  std::vector<SetId> out;
  if (fi.sfi != nullptr) {
    out = fi.sfi->SimVector(query, /*complemented=*/false, &probe);
  } else {
    out = fi.dfi->DissimVector(query, &probe);
  }
  bucket_accesses_->Add(probe.bucket_accesses);
  bucket_pages_->Add(probe.bucket_pages);
  sids_scanned_->Add(probe.sids_scanned);
  span.Tag("sids", static_cast<std::uint64_t>(out.size()));
  if (options_.charge_bucket_io) {
    store_->io().ChargeRandomRead(probe.bucket_pages);
  }
  return out;
}

QueryStats SetSimilarityIndex::SnapshotCounters() const {
  QueryStats snap;
  snap.bucket_accesses = bucket_accesses_->value();
  snap.bucket_pages = bucket_pages_->value();
  snap.sids_scanned = sids_scanned_->value();
  snap.sets_fetched = sets_fetched_->value();
  snap.io = store_->io().stats();
  return snap;
}

std::vector<SetId> SetSimilarityIndex::ComputeCandidates(
    const Signature& query, double sigma1, double sigma2,
    QueryStats* stats) const {
  // Virtual enclosing-point selection over [0 | layout points | 1].
  // lo = highest point <= σ1 (virtual 0 if none);
  // up = lowest point >= σ2 (virtual 1 if none).
  constexpr std::size_t kVirtual = static_cast<std::size_t>(-1);
  std::size_t lo_idx = kVirtual, up_idx = kVirtual;
  for (std::size_t i = 0; i < fis_.size(); ++i) {
    if (fis_[i].point.similarity <= sigma1) lo_idx = i;
  }
  for (std::size_t i = fis_.size(); i-- > 0;) {
    if (fis_[i].point.similarity >= sigma2) up_idx = i;
  }
  // If both land on the same point (σ1 <= p <= σ2 with one point in range),
  // widen lo downward so the enclosure is proper.
  if (lo_idx != kVirtual && lo_idx == up_idx) {
    lo_idx = lo_idx == 0 ? kVirtual : lo_idx - 1;
  }

  stats->lo_point = lo_idx == kVirtual ? 0.0 : fis_[lo_idx].point.similarity;
  stats->up_point = up_idx == kVirtual ? 1.0 : fis_[up_idx].point.similarity;

  const bool lo_virtual = lo_idx == kVirtual;
  const bool up_virtual = up_idx == kVirtual;

  if (lo_virtual && up_virtual) {
    stats->plan = QueryPlanKind::kFullCollection;
    return LiveSids();
  }

  const auto kind_of = [&](std::size_t idx) { return fis_[idx].point.kind; };

  // Case 1: both enclosing points are DFIs (or lo is virtual 0, an empty
  // DissimVector): A = Dissim(up) \ Dissim(lo).
  if (!up_virtual && kind_of(up_idx) == FilterKind::kDissimilarity) {
    stats->plan = QueryPlanKind::kDfiPair;
    std::vector<SetId> up_set = ProbeFi(up_idx, query);
    if (lo_virtual) return up_set;
    assert(kind_of(lo_idx) == FilterKind::kDissimilarity);
    std::vector<SetId> lo_set = ProbeFi(lo_idx, query);
    return SortedDifference(up_set, lo_set);
  }

  // Case 2: both enclosing points are SFIs (or up is virtual 1, an empty
  // SimVector): A = Sim(lo) \ Sim(up). A virtual-0 lo with an SFI-side up
  // degenerates to "all live sids minus Sim(up)" — the expensive plan the
  // paper's first-attempt scheme suffers from; the optimizer's layouts
  // avoid it by covering [0, δ] with DFIs.
  const bool lo_is_sfi =
      !lo_virtual && kind_of(lo_idx) == FilterKind::kSimilarity;
  const bool lo_dfi_side =
      !lo_virtual && kind_of(lo_idx) == FilterKind::kDissimilarity;
  if (lo_is_sfi || (lo_virtual && !up_virtual &&
                    kind_of(up_idx) == FilterKind::kSimilarity &&
                    !HasDfi())) {
    stats->plan = QueryPlanKind::kSfiPair;
    std::vector<SetId> lo_set =
        lo_is_sfi ? ProbeFi(lo_idx, query) : LiveSids();
    if (up_virtual) return lo_set;
    std::vector<SetId> up_set = ProbeFi(up_idx, query);
    return SortedDifference(lo_set, up_set);
  }

  // Case 3: lo on the DFI side (a real DFI or virtual 0 with DFIs present),
  // up on the SFI side (a real SFI or virtual 1). Uses the two FIs nearest
  // δ: A = (Dissim(r_m) \ Dissim(lo)) ∪ (Sim(t_m) \ Sim(up)).
  stats->plan = QueryPlanKind::kMixed;
  std::size_t dfi_mid = kVirtual, sfi_mid = kVirtual;
  for (std::size_t i = 0; i < fis_.size(); ++i) {
    if (fis_[i].point.kind == FilterKind::kDissimilarity) dfi_mid = i;
  }
  for (std::size_t i = fis_.size(); i-- > 0;) {
    if (fis_[i].point.kind == FilterKind::kSimilarity) sfi_mid = i;
  }

  if (sfi_mid == kVirtual) {
    // DFI-only layout with the range extending above every DFI point: the
    // only sound superset is everything not excluded below lo.
    std::vector<SetId> all = LiveSids();
    if (lo_dfi_side) {
      return SortedDifference(all, ProbeFi(lo_idx, query));
    }
    return all;
  }

  std::vector<SetId> left;
  if (dfi_mid != kVirtual) {
    left = ProbeFi(dfi_mid, query);
    if (lo_dfi_side && lo_idx != dfi_mid) {
      left = SortedDifference(left, ProbeFi(lo_idx, query));
    }
  }
  std::vector<SetId> right;
  if (sfi_mid != kVirtual) {
    right = ProbeFi(sfi_mid, query);
    if (!up_virtual && up_idx != sfi_mid &&
        kind_of(up_idx) == FilterKind::kSimilarity) {
      right = SortedDifference(right, ProbeFi(up_idx, query));
    }
  }
  return SortedUnion(left, right);
}

namespace {
constexpr std::uint32_t kIndexVersion = 1;
}  // namespace

Status SetSimilarityIndex::SaveTo(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.WriteString("SSRINDEX");
  writer.WriteU32(kIndexVersion);
  // Options.
  writer.WriteU64(options_.embedding.minhash.num_hashes);
  writer.WriteU32(options_.embedding.minhash.value_bits);
  writer.WriteU64(options_.embedding.minhash.seed);
  writer.WriteU8(static_cast<std::uint8_t>(options_.embedding.code_kind));
  writer.WriteU64(options_.buckets_per_table);
  writer.WriteU64(options_.seed);
  writer.WriteBool(options_.charge_bucket_io);
  // Layout.
  writer.WriteDouble(layout_.delta);
  writer.WriteU64(layout_.points.size());
  for (const FilterPoint& p : layout_.points) {
    writer.WriteDouble(p.similarity);
    writer.WriteU8(static_cast<std::uint8_t>(p.kind));
    writer.WriteU64(p.tables);
    writer.WriteU64(p.r);
  }
  // Signatures of live sids.
  writer.WriteU64(live_.size());
  writer.WriteU64(num_live_);
  for (SetId sid = 0; sid < live_.size(); ++sid) {
    if (!live_[sid]) continue;
    writer.WriteU32(sid);
    writer.WriteVector(signatures_[sid].values());
  }
  if (!writer.ok()) return Status::Internal("index write failed");
  return Status::OK();
}

Result<SetSimilarityIndex> SetSimilarityIndex::Load(SetStore& store,
                                                    std::istream& in) {
  BinaryReader reader(in);
  std::string magic;
  SSR_RETURN_IF_ERROR(reader.ReadString(&magic));
  if (magic != "SSRINDEX") return Status::Corruption("bad index magic");
  std::uint32_t version = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kIndexVersion) {
    return Status::NotSupported("unknown index version");
  }
  IndexOptions options;
  std::uint64_t num_hashes = 0;
  std::uint32_t value_bits = 0;
  std::uint8_t code_kind = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU64(&num_hashes));
  SSR_RETURN_IF_ERROR(reader.ReadU32(&value_bits));
  SSR_RETURN_IF_ERROR(reader.ReadU64(&options.embedding.minhash.seed));
  SSR_RETURN_IF_ERROR(reader.ReadU8(&code_kind));
  SSR_RETURN_IF_ERROR(reader.ReadU64(&options.buckets_per_table));
  SSR_RETURN_IF_ERROR(reader.ReadU64(&options.seed));
  SSR_RETURN_IF_ERROR(reader.ReadBool(&options.charge_bucket_io));
  options.embedding.minhash.num_hashes =
      static_cast<std::size_t>(num_hashes);
  options.embedding.minhash.value_bits = value_bits;
  if (code_kind > static_cast<std::uint8_t>(CodeKind::kNaiveBinary)) {
    return Status::Corruption("unknown code kind");
  }
  options.embedding.code_kind = static_cast<CodeKind>(code_kind);

  IndexLayout layout;
  SSR_RETURN_IF_ERROR(reader.ReadDouble(&layout.delta));
  std::uint64_t num_points = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU64(&num_points));
  if (num_points > 100000) return Status::Corruption("absurd point count");
  for (std::uint64_t i = 0; i < num_points; ++i) {
    FilterPoint p;
    std::uint8_t kind = 0;
    std::uint64_t tables = 0, r = 0;
    SSR_RETURN_IF_ERROR(reader.ReadDouble(&p.similarity));
    SSR_RETURN_IF_ERROR(reader.ReadU8(&kind));
    SSR_RETURN_IF_ERROR(reader.ReadU64(&tables));
    SSR_RETURN_IF_ERROR(reader.ReadU64(&r));
    p.kind = kind == 0 ? FilterKind::kSimilarity : FilterKind::kDissimilarity;
    p.tables = static_cast<std::size_t>(tables);
    p.r = static_cast<std::size_t>(r);
    layout.points.push_back(p);
  }
  SSR_RETURN_IF_ERROR(layout.Validate());
  if (layout.points.empty()) {
    return Status::Corruption("persisted layout has no points");
  }

  auto embedding = Embedding::Create(options.embedding);
  if (!embedding.ok()) return embedding.status();
  SetSimilarityIndex index(store, std::move(layout), options,
                           std::move(embedding).value());
  SSR_RETURN_IF_ERROR(index.CreateFilterIndices());

  std::uint64_t capacity = 0, live_count = 0;
  SSR_RETURN_IF_ERROR(reader.ReadU64(&capacity));
  SSR_RETURN_IF_ERROR(reader.ReadU64(&live_count));
  for (std::uint64_t i = 0; i < live_count; ++i) {
    std::uint32_t sid = 0;
    std::vector<std::uint16_t> values;
    SSR_RETURN_IF_ERROR(reader.ReadU32(&sid));
    SSR_RETURN_IF_ERROR(reader.ReadVector(&values));
    SSR_RETURN_IF_ERROR(
        index.InsertSignature(sid, Signature(std::move(values))));
  }
  if (index.live_.size() < capacity) {
    index.live_.resize(capacity, false);
    index.signatures_.resize(capacity);
  }
  return index;
}

Result<QueryResult> SetSimilarityIndex::QueryCandidates(
    const ElementSet& query, double sigma1, double sigma2) {
  if (!(sigma1 >= 0.0 && sigma1 <= sigma2 && sigma2 <= 1.0)) {
    return Status::InvalidArgument("require 0 <= sigma1 <= sigma2 <= 1");
  }
  if (!IsNormalizedSet(query)) {
    return Status::InvalidArgument("query set must be sorted and unique");
  }
  Stopwatch watch;
  obs::TraceSpan root("query_candidates");
  const QueryStats before = SnapshotCounters();
  queries_->Increment();
  QueryResult result;
  Signature sig;
  {
    obs::TraceSpan embed("embed");
    sig = embedding_->Sign(query);
  }
  {
    obs::TraceSpan plan("plan");
    result.sids = ComputeCandidates(sig, sigma1, sigma2, &result.stats);
  }
  result.stats.candidates = result.sids.size();
  result.stats.results = result.sids.size();
  candidates_hist_->Observe(static_cast<double>(result.sids.size()));
  FinishStats(before, watch, &result.stats);
  root.Tag("plan", QueryPlanKindName(result.stats.plan));
  root.Tag("candidates", static_cast<std::uint64_t>(result.stats.candidates));
  return result;
}

Result<QueryResult> SetSimilarityIndex::Query(const ElementSet& query,
                                              double sigma1, double sigma2) {
  if (!(sigma1 >= 0.0 && sigma1 <= sigma2 && sigma2 <= 1.0)) {
    return Status::InvalidArgument("require 0 <= sigma1 <= sigma2 <= 1");
  }
  if (!IsNormalizedSet(query)) {
    return Status::InvalidArgument("query set must be sorted and unique");
  }
  Stopwatch watch;
  obs::TraceSpan root("query");
  const QueryStats before = SnapshotCounters();
  queries_->Increment();
  QueryResult result;
  Signature sig;
  {
    obs::TraceSpan embed("embed");
    sig = embedding_->Sign(query);
  }
  std::vector<SetId> candidates;
  {
    obs::TraceSpan plan("plan");
    candidates = ComputeCandidates(sig, sigma1, sigma2, &result.stats);
  }
  result.stats.candidates = candidates.size();
  candidates_hist_->Observe(static_cast<double>(candidates.size()));

  if (result.stats.plan == QueryPlanKind::kFullCollection && sigma1 <= 0.0 &&
      sigma2 >= 1.0) {
    // [0, 1] covers every set by definition; no verification needed. Any
    // narrower range that still fell through to the full-collection plan
    // (no enclosing filter points) must be verified like any other.
    result.sids = std::move(candidates);
  } else {
    // Verification: fetch each candidate and keep exact-similarity matches.
    obs::TraceSpan verify("verify");
    constexpr double kEps = 1e-12;
    for (SetId sid : candidates) {
      auto set = store_->Get(sid);
      if (!set.ok()) continue;  // deleted concurrently; skip
      sets_fetched_->Increment();
      const double sim = Jaccard(set.value(), query);
      if (sim >= sigma1 - kEps && sim <= sigma2 + kEps) {
        result.sids.push_back(sid);
      }
    }
    verify.Tag("fetched",
               sets_fetched_->value() - before.sets_fetched);
  }
  FinishStats(before, watch, &result.stats);
  results_->Add(result.sids.size());
  result.stats.results = result.sids.size();
  root.Tag("plan", QueryPlanKindName(result.stats.plan));
  root.Tag("lo", result.stats.lo_point);
  root.Tag("up", result.stats.up_point);
  root.Tag("candidates", static_cast<std::uint64_t>(result.stats.candidates));
  root.Tag("results", static_cast<std::uint64_t>(result.stats.results));
  return result;
}

void SetSimilarityIndex::FinishStats(const QueryStats& before,
                                     const Stopwatch& watch,
                                     QueryStats* stats) const {
  const QueryStats after = SnapshotCounters();
  stats->bucket_accesses = after.bucket_accesses - before.bucket_accesses;
  stats->bucket_pages = after.bucket_pages - before.bucket_pages;
  stats->sids_scanned = after.sids_scanned - before.sids_scanned;
  stats->sets_fetched = after.sets_fetched - before.sets_fetched;
  stats->io = after.io - before.io;
  stats->io_seconds = stats->io.SimulatedSeconds(store_->io().params());
  stats->cpu_seconds = watch.ElapsedSeconds();
}

}  // namespace ssr
