// The probabilistic filter function of Section 4.1:
//     p_{r,l}(s) = 1 − (1 − s^r)^l
// — the probability that two vectors with Hamming similarity s collide in at
// least one of l hash tables keyed on r sampled bits each. An S-curve in s
// whose turning point s* satisfies p_{r,l}(s*) = 1/2; for fixed s* the pair
// (r, l) trades table count against steepness (more tables -> larger r ->
// sharper filter), the tradeoff the optimizer exploits (Section 5).

#ifndef SSR_CORE_FILTER_FUNCTION_H_
#define SSR_CORE_FILTER_FUNCTION_H_

#include <cstddef>

namespace ssr {

/// Immutable (r, l) filter-function parameters with analysis helpers.
class FilterFunction {
 public:
  /// Direct construction from r >= 1 and l >= 1.
  FilterFunction(std::size_t r, std::size_t l);

  /// Solves p_{r,l}(s_star) = 1/2 for r given l and a turning point
  /// s_star in (0, 1): r = ln(1 − 2^{−1/l}) / ln(s_star), rounded to the
  /// nearest integer >= 1.
  static FilterFunction ForTurningPoint(double s_star, std::size_t l);

  /// Solves for the minimum l achieving turning point <= s_star for a given
  /// r: l = ceil(ln(1/2) / ln(1 − s_star^r)).
  static std::size_t TablesForTurningPoint(double s_star, std::size_t r);

  /// p_{r,l}(s): collision probability at similarity s.
  double Collision(double s) const;

  /// The turning point: the s with p_{r,l}(s) = 1/2, i.e.
  /// (1 − 2^{−1/l})^{1/r}.
  double TurningPoint() const;

  /// Derivative dp/ds at similarity s (steepness diagnostic).
  double Slope(double s) const;

  /// Width of the "uncertainty band": the s-interval over which p rises
  /// from `low` to `high` (default 0.1 to 0.9). Smaller is sharper.
  double TransitionWidth(double low = 0.1, double high = 0.9) const;

  /// Inverse: the s with p_{r,l}(s) = p, for p in (0, 1).
  double InverseCollision(double p) const;

  std::size_t r() const { return r_; }
  std::size_t l() const { return l_; }

 private:
  std::size_t r_;
  std::size_t l_;
};

}  // namespace ssr

#endif  // SSR_CORE_FILTER_FUNCTION_H_
