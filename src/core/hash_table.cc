#include "core/hash_table.h"

#include <algorithm>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/mathutil.h"

namespace ssr {

SidHashTable::SidHashTable(std::size_t num_buckets) {
  const std::size_t n = static_cast<std::size_t>(
      NextPowerOfTwo(num_buckets == 0 ? 1 : num_buckets));
  buckets_.resize(n);
  mask_ = n - 1;
}

void SidHashTable::Insert(std::uint64_t key_hash, SetId sid) {
  buckets_[BucketIndex(key_hash)].push_back({Fingerprint(key_hash), sid});
  ++size_;
}

bool SidHashTable::Erase(std::uint64_t key_hash, SetId sid) {
  auto& bucket = buckets_[BucketIndex(key_hash)];
  const std::uint16_t fp = Fingerprint(key_hash);
  auto it = std::find_if(bucket.begin(), bucket.end(), [&](const Entry& e) {
    return e.sid == sid && e.fingerprint == fp;
  });
  if (it == bucket.end()) return false;
  bucket.erase(it);
  --size_;
  return true;
}

std::size_t SidHashTable::Probe(std::uint64_t key_hash,
                                std::vector<SetId>* out) const {
  // Process-wide probe accounting shared by every table (the per-instance
  // bucket_accesses_ counter stays for targeted diagnostics). The pointers
  // are fetched once; registry instruments have stable addresses.
  static obs::Counter* const probes = obs::MetricsRegistry::Default().GetCounter(
      "ssr_hash_bucket_probes_total");
  static obs::Counter* const scanned =
      obs::MetricsRegistry::Default().GetCounter("ssr_hash_sids_scanned_total");
  bucket_accesses_.fetch_add(1, std::memory_order_relaxed);
  probes->Increment();
  // Latency-only fault site: a kLatency schedule here simulates a slow
  // bucket page. Error kinds are deliberately ignored — the in-memory table
  // itself cannot fail; loss is modeled one level up ("sfi/probe_table").
  {
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    if (injector.enabled()) injector.Check("hash_table/probe");
  }
  const auto& bucket = buckets_[BucketIndex(key_hash)];
  scanned->Add(bucket.size());
  const std::uint16_t fp = Fingerprint(key_hash);
  for (const Entry& e : bucket) {
    if (e.fingerprint == fp) out->push_back(e.sid);
  }
  return bucket.size();
}

std::size_t SidHashTable::max_bucket_size() const {
  std::size_t max_size = 0;
  for (const auto& b : buckets_) {
    max_size = std::max(max_size, b.size());
  }
  return max_size;
}

std::uint64_t SidHashTable::ContentDigest() const {
  std::uint64_t h = SplitMix64(buckets_.size());
  for (const auto& bucket : buckets_) {
    h = HashCombine(h, bucket.size());
    for (const Entry& e : bucket) {
      h = HashCombine(h, (static_cast<std::uint64_t>(e.fingerprint) << 48) ^
                             static_cast<std::uint64_t>(e.sid));
    }
  }
  return h;
}

}  // namespace ssr
