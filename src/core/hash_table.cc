#include "core/hash_table.h"

#include <algorithm>
#include <utility>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/mathutil.h"

namespace ssr {

SidHashTable::SidHashTable(std::size_t num_buckets) {
  const std::size_t n = static_cast<std::size_t>(
      NextPowerOfTwo(num_buckets == 0 ? 1 : num_buckets));
  buckets_ = std::make_unique<std::atomic<Bucket*>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i].store(nullptr, std::memory_order_relaxed);
  }
  num_buckets_ = n;
  mask_ = n - 1;
}

SidHashTable::~SidHashTable() {
  if (buckets_ == nullptr) return;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    delete buckets_[i].load(std::memory_order_relaxed);
  }
}

SidHashTable::SidHashTable(SidHashTable&& other) noexcept
    : buckets_(std::move(other.buckets_)),
      num_buckets_(other.num_buckets_),
      mask_(other.mask_),
      size_(other.size_.load(std::memory_order_relaxed)),
      manager_(other.manager_),
      bucket_accesses_(
          other.bucket_accesses_.load(std::memory_order_relaxed)) {
  other.num_buckets_ = 0;
}

SidHashTable& SidHashTable::operator=(SidHashTable&& other) noexcept {
  if (this != &other) {
    if (buckets_ != nullptr) {
      for (std::size_t i = 0; i < num_buckets_; ++i) {
        delete buckets_[i].load(std::memory_order_relaxed);
      }
    }
    buckets_ = std::move(other.buckets_);
    num_buckets_ = other.num_buckets_;
    mask_ = other.mask_;
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    manager_ = other.manager_;
    bucket_accesses_.store(
        other.bucket_accesses_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.num_buckets_ = 0;
  }
  return *this;
}

void SidHashTable::PublishBucket(std::size_t i, Bucket* replacement) {
  Bucket* old = buckets_[i].exchange(replacement, std::memory_order_seq_cst);
  if (old == nullptr) return;
  if (manager_ != nullptr) {
    manager_->Retire([old] { delete old; });
  } else {
    delete old;
  }
}

void SidHashTable::Insert(std::uint64_t key_hash, SetId sid) {
  const std::size_t i = BucketIndex(key_hash);
  Bucket* bucket = buckets_[i].load(std::memory_order_relaxed);
  if (manager_ == nullptr) {
    // Build mode: single-threaded ownership, edit in place.
    if (bucket == nullptr) {
      bucket = new Bucket();
      buckets_[i].store(bucket, std::memory_order_relaxed);
    }
    bucket->push_back({Fingerprint(key_hash), sid});
  } else {
    // COW mode: publish a replacement, retire the old bucket.
    auto* grown = bucket == nullptr ? new Bucket() : new Bucket(*bucket);
    grown->push_back({Fingerprint(key_hash), sid});
    PublishBucket(i, grown);
  }
  size_.fetch_add(1, std::memory_order_relaxed);
}

bool SidHashTable::Erase(std::uint64_t key_hash, SetId sid) {
  const std::size_t i = BucketIndex(key_hash);
  Bucket* bucket = buckets_[i].load(std::memory_order_relaxed);
  if (bucket == nullptr) return false;
  const std::uint16_t fp = Fingerprint(key_hash);
  auto matches = [&](const Entry& e) {
    return e.sid == sid && e.fingerprint == fp;
  };
  auto it = std::find_if(bucket->begin(), bucket->end(), matches);
  if (it == bucket->end()) return false;
  if (manager_ == nullptr) {
    bucket->erase(it);
  } else {
    auto* shrunk = new Bucket(*bucket);
    shrunk->erase(shrunk->begin() + (it - bucket->begin()));
    PublishBucket(i, shrunk);
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t SidHashTable::Probe(std::uint64_t key_hash,
                                std::vector<SetId>* out) const {
  // Process-wide probe accounting shared by every table (the per-instance
  // bucket_accesses_ counter stays for targeted diagnostics). The pointers
  // are fetched once; registry instruments have stable addresses.
  static obs::Counter* const probes = obs::MetricsRegistry::Default().GetCounter(
      "ssr_hash_bucket_probes_total");
  static obs::Counter* const scanned =
      obs::MetricsRegistry::Default().GetCounter("ssr_hash_sids_scanned_total");
  bucket_accesses_.fetch_add(1, std::memory_order_relaxed);
  probes->Increment();
  // Latency-only fault site: a kLatency schedule here simulates a slow
  // bucket page. Error kinds are deliberately ignored — the in-memory table
  // itself cannot fail; loss is modeled one level up ("sfi/probe_table").
  {
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    if (injector.enabled()) injector.Check("hash_table/probe");
  }
  const Bucket* bucket = LoadBucket(BucketIndex(key_hash));
  if (bucket == nullptr) return 0;
  scanned->Add(bucket->size());
  const std::uint16_t fp = Fingerprint(key_hash);
  for (const Entry& e : *bucket) {
    if (e.fingerprint == fp) out->push_back(e.sid);
  }
  return bucket->size();
}

std::size_t SidHashTable::max_bucket_size() const {
  std::size_t max_size = 0;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    const Bucket* b = LoadBucket(i);
    if (b != nullptr) max_size = std::max(max_size, b->size());
  }
  return max_size;
}

std::uint64_t SidHashTable::ContentDigest() const {
  std::uint64_t h = SplitMix64(num_buckets_);
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    const Bucket* bucket = LoadBucket(i);
    h = HashCombine(h, bucket == nullptr ? 0 : bucket->size());
    if (bucket == nullptr) continue;
    for (const Entry& e : *bucket) {
      h = HashCombine(h, (static_cast<std::uint64_t>(e.fingerprint) << 48) ^
                             static_cast<std::uint64_t>(e.sid));
    }
  }
  return h;
}

}  // namespace ssr
