#include "core/sfi.h"

#include <algorithm>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "util/hash.h"
#include "util/mathutil.h"

namespace ssr {

std::size_t SimilarityFilterIndex::SidsPerPage() {
  return kPageSize / sizeof(SetId);
}

Result<SimilarityFilterIndex> SimilarityFilterIndex::Create(
    const Embedding& embedding, const SfiParams& params,
    std::size_t expected_sets) {
  if (params.s_star <= 0.0 || params.s_star >= 1.0) {
    return Status::InvalidArgument("s_star must be in (0, 1)");
  }
  if (params.l < 1) {
    return Status::InvalidArgument("l must be >= 1");
  }
  FilterFunction filter =
      params.r == 0 ? FilterFunction::ForTurningPoint(params.s_star, params.l)
                    : FilterFunction(params.r, params.l);
  std::size_t num_buckets = params.num_buckets;
  if (num_buckets == 0) {
    // One expected sid per bucket keeps chains short; the paper sizes
    // buckets so no overflow chains are needed.
    num_buckets = expected_sets < 16 ? 16 : expected_sets;
  }
  return SimilarityFilterIndex(embedding, params, filter, num_buckets,
                               params.seed);
}

SimilarityFilterIndex::SimilarityFilterIndex(const Embedding& embedding,
                                             SfiParams params,
                                             FilterFunction filter,
                                             std::size_t num_buckets,
                                             std::uint64_t seed)
    : embedding_(&embedding), params_(params), filter_(filter) {
  Rng rng(seed);
  samplers_.reserve(filter_.l());
  tables_.reserve(filter_.l());
  for (std::size_t i = 0; i < filter_.l(); ++i) {
    samplers_.emplace_back(embedding, filter_.r(), rng);
    tables_.emplace_back(num_buckets);
  }
}

void SimilarityFilterIndex::Insert(SetId sid, const Signature& sig) {
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    tables_[i].Insert(samplers_[i].ExtractKeyHash(sig), sid);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SimilarityFilterIndex::Erase(SetId sid, const Signature& sig) {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].Erase(samplers_[i].ExtractKeyHash(sig), sid)) ++removed;
  }
  if (removed == tables_.size() &&
      num_entries_.load(std::memory_order_relaxed) > 0) {
    num_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  return removed;
}

std::vector<SetId> SimilarityFilterIndex::SimVector(
    const Signature& query, bool complemented, SfiProbeStats* stats) const {
  std::vector<SetId> out;
  SimVectorInto(query, complemented, stats, &out);
  return out;
}

void SimilarityFilterIndex::SimVectorInto(const Signature& query,
                                          bool complemented,
                                          SfiProbeStats* stats,
                                          std::vector<SetId>* out) const {
  // Complemented probes come from a DFI wrapper (Theorem 2); plain probes
  // are SFI queries. Counted process-wide.
  static obs::Counter* const sfi_probes =
      obs::MetricsRegistry::Default().GetCounter("ssr_sfi_probes_total");
  static obs::Counter* const dfi_probes =
      obs::MetricsRegistry::Default().GetCounter("ssr_dfi_probes_total");
  (complemented ? dfi_probes : sfi_probes)->Increment();
  out->clear();
  const std::size_t sids_per_page = SidsPerPage();
  std::size_t pages = 0;
  std::size_t scanned = 0;
  std::size_t failed = 0;
  fault::FaultInjector& injector = fault::FaultInjector::Default();
  const bool faults_on = injector.enabled();
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    // Any fired fault at the per-table site loses this table's bucket for
    // this probe; the caller sees tables_failed and can degrade or retry.
    if (faults_on && injector.Check("sfi/probe_table").has_value()) {
      ++failed;
      continue;
    }
    const std::uint64_t key =
        samplers_[i].ExtractKeyHash(query, complemented);
    const std::size_t bucket_size = tables_[i].Probe(key, out);
    scanned += bucket_size;
    pages += 1 + (bucket_size > 0 ? (bucket_size - 1) / sids_per_page : 0);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  if (stats != nullptr) {
    stats->bucket_accesses = tables_.size();
    stats->bucket_pages = pages;
    stats->sids_scanned = scanned;
    stats->tables_failed = failed;
  }
}

std::uint64_t SimilarityFilterIndex::ContentDigest() const {
  std::uint64_t h = SplitMix64(tables_.size());
  for (const SidHashTable& table : tables_) {
    h = HashCombine(h, table.ContentDigest());
  }
  return h;
}

}  // namespace ssr
