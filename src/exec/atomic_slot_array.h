// A growable array of atomic slots that readers can index without locks
// while a single (externally serialized) writer grows it and stores into
// it. The building block for concurrent-read index state that used to be
// plain std::vector: per-sid signature pointers, shard-local-to-global sid
// maps.
//
// Layout: fixed-size chunks that never move once allocated, reached
// through a directory (chunk-pointer array) that is grown copy-on-write —
// the old directory is retired through the EpochManager so a reader that
// loaded it before the swap can keep using it. Slot values themselves are
// std::atomic<T>, so readers see each slot either at its default value or
// at something a writer published; there is no torn state.
//
// Memory ordering follows the repo's epoch convention (see exec/epoch.h):
// directory and slot loads/stores are seq_cst, which costs nothing on
// x86-64 and keeps the pin/scan ordering argument intact under TSan.
//
// T must be a trivially copyable type that std::atomic supports lock-free
// (pointers, integral ids).

#ifndef SSR_EXEC_ATOMIC_SLOT_ARRAY_H_
#define SSR_EXEC_ATOMIC_SLOT_ARRAY_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "exec/epoch.h"

namespace ssr {
namespace exec {

template <typename T>
class AtomicSlotArray {
 public:
  static constexpr std::size_t kChunkSlots = 1024;

  explicit AtomicSlotArray(T default_value = T())
      : default_value_(default_value) {
    directory_.store(nullptr, std::memory_order_seq_cst);
  }

  ~AtomicSlotArray() {
    delete directory_.load(std::memory_order_seq_cst);
  }

  AtomicSlotArray(const AtomicSlotArray&) = delete;
  AtomicSlotArray& operator=(const AtomicSlotArray&) = delete;

  AtomicSlotArray(AtomicSlotArray&& other) noexcept
      : default_value_(other.default_value_),
        manager_(other.manager_),
        chunks_(std::move(other.chunks_)) {
    directory_.store(other.directory_.load(std::memory_order_seq_cst),
                     std::memory_order_seq_cst);
    other.directory_.store(nullptr, std::memory_order_seq_cst);
    other.manager_ = nullptr;
  }

  AtomicSlotArray& operator=(AtomicSlotArray&& other) noexcept {
    if (this != &other) {
      delete directory_.load(std::memory_order_seq_cst);
      default_value_ = other.default_value_;
      manager_ = other.manager_;
      chunks_ = std::move(other.chunks_);
      directory_.store(other.directory_.load(std::memory_order_seq_cst),
                       std::memory_order_seq_cst);
      other.directory_.store(nullptr, std::memory_order_seq_cst);
      other.manager_ = nullptr;
    }
    return *this;
  }

  /// Concurrent mode: once set, replaced directories are retired through
  /// `manager` instead of freed inline. Call before the first concurrent
  /// reader; moves/mutations before that point run in plain single-thread
  /// mode.
  void SetEpochManager(EpochManager* manager) { manager_ = manager; }

  /// Slots currently addressable. Reader-safe.
  std::size_t capacity() const {
    const Directory* dir = directory_.load(std::memory_order_seq_cst);
    return dir == nullptr ? 0 : dir->capacity;
  }

  /// Reader-safe slot load; out-of-range indices read as the default
  /// value (a slot the writer has not grown into yet is indistinguishable
  /// from one it never stored to — both mean "nothing here").
  T Get(std::size_t i) const {
    const Directory* dir = directory_.load(std::memory_order_seq_cst);
    if (dir == nullptr || i >= dir->capacity) return default_value_;
    return dir->chunks[i / kChunkSlots]->slots[i % kChunkSlots].load(
        std::memory_order_seq_cst);
  }

  /// Writer-only (externally serialized): grows capacity to hold slot `i`
  /// and stores `value`.
  void Set(std::size_t i, T value) {
    EnsureCapacity(i + 1);
    const Directory* dir = directory_.load(std::memory_order_seq_cst);
    dir->chunks[i / kChunkSlots]->slots[i % kChunkSlots].store(
        value, std::memory_order_seq_cst);
  }

  /// Writer-only: pre-grows capacity to at least `n` slots (new slots read
  /// as the default value).
  void EnsureCapacity(std::size_t n) {
    const Directory* dir = directory_.load(std::memory_order_seq_cst);
    if (dir != nullptr && dir->capacity >= n) return;
    const std::size_t want_chunks = (n + kChunkSlots - 1) / kChunkSlots;
    auto* grown = new Directory();
    if (dir != nullptr) grown->chunks = dir->chunks;
    while (grown->chunks.size() < want_chunks) {
      chunks_.push_back(std::make_unique<Chunk>(default_value_));
      grown->chunks.push_back(chunks_.back().get());
    }
    grown->capacity = grown->chunks.size() * kChunkSlots;
    directory_.store(grown, std::memory_order_seq_cst);
    RetireDirectory(dir);
  }

 private:
  struct Chunk {
    explicit Chunk(T default_value) {
      for (std::atomic<T>& slot : slots) {
        slot.store(default_value, std::memory_order_relaxed);
      }
    }
    std::atomic<T> slots[kChunkSlots];
  };

  struct Directory {
    std::vector<Chunk*> chunks;  // chunks never move; owned by chunks_
    std::size_t capacity = 0;
  };

  void RetireDirectory(const Directory* dir) {
    if (dir == nullptr) return;
    if (manager_ != nullptr) {
      manager_->Retire([dir] { delete dir; });
    } else {
      delete dir;
    }
  }

  T default_value_;
  EpochManager* manager_ = nullptr;
  std::atomic<const Directory*> directory_{nullptr};
  std::vector<std::unique_ptr<Chunk>> chunks_;  // writer-only ownership
};

}  // namespace exec
}  // namespace ssr

#endif  // SSR_EXEC_ATOMIC_SLOT_ARRAY_H_
