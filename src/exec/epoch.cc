#include "exec/epoch.h"

#include <cstdlib>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

namespace ssr {
namespace exec {
namespace {

/// Process-unique id per manager instance. The thread-local slot cache is
/// keyed by (pointer, id) so a fresh manager reallocated at a dead
/// manager's address can never inherit a stale cached slot.
std::uint64_t NextManagerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Registry of live managers, keyed by address with the process-unique id
/// as the liveness check. The thread-exit slot release consults it under
/// the lock so a thread that outlives a test-scoped manager skips the dead
/// manager instead of dereferencing it; a manager's destructor blocks on
/// the same lock, so a release that found it live completes before the
/// manager's memory goes away. Leaked (like Default()) so thread-exit
/// destructors can run during process teardown.
struct ManagerRegistry {
  std::mutex mu;
  std::unordered_map<const void*, std::uint64_t> live;  // address -> id

  static ManagerRegistry& Get() {
    static ManagerRegistry* registry = new ManagerRegistry();
    return *registry;
  }
};

struct CachedSlot {
  EpochManager* manager = nullptr;
  std::uint64_t manager_id = 0;
  std::size_t slot = 0;
  bool claimed = false;
  std::size_t depth = 0;
};

}  // namespace

/// Per-thread pin state. The destructor hands every claimed slot back to
/// its manager (when the manager is still live) so slots bound *live*
/// pinning threads, not total threads over the process lifetime — a
/// thread-per-request deployment never exhausts kMaxThreads.
struct ThreadSlotCache {
  std::vector<CachedSlot> slots;

  ~ThreadSlotCache() {
    ManagerRegistry& registry = ManagerRegistry::Get();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const CachedSlot& c : slots) {
      if (!c.claimed) continue;
      auto it = registry.live.find(c.manager);
      if (it == registry.live.end() || it->second != c.manager_id) {
        continue;  // the manager died first; its slots died with it
      }
      c.manager->ReleaseSlot(c.slot);
    }
  }
};

namespace {

thread_local ThreadSlotCache t_cache;

CachedSlot& FindOrAddCache(EpochManager* manager, std::uint64_t id) {
  for (CachedSlot& c : t_cache.slots) {
    if (c.manager == manager && c.manager_id == id) return c;
  }
  t_cache.slots.push_back(CachedSlot{manager, id, 0, false, 0});
  return t_cache.slots.back();
}

}  // namespace

EpochManager::EpochManager() : id_(NextManagerId()), slots_(kMaxThreads) {
  ManagerRegistry& registry = ManagerRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.live.emplace(this, id_);
}

EpochManager::~EpochManager() {
  {
    // After this no exiting thread will touch our slots (see
    // ManagerRegistry): one in flight holds the lock we are waiting on.
    ManagerRegistry& registry = ManagerRegistry::Get();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.live.erase(this);
  }
  // Callers guarantee no reader is pinned at destruction (the same
  // contract as destroying the guarded structures themselves), so
  // whatever is still deferred is safe to free now.
  for (Deferred& d : deferred_) {
    if (d.free_fn) d.free_fn();
  }
}

void EpochManager::ReleaseSlot(std::size_t slot) {
  // The owning thread is exiting with no guard held (depth 0), so the
  // epoch store is already 0; clear it anyway for robustness, then return
  // the claim so a future thread's CAS can take the slot.
  slots_[slot].epoch.store(0, std::memory_order_seq_cst);
  slots_[slot].claimed.store(false, std::memory_order_seq_cst);
}

EpochManager& EpochManager::Default() {
  static EpochManager* instance = new EpochManager();
  return *instance;
}

void EpochManager::Pin() {
  CachedSlot& cache = FindOrAddCache(this, id_);
  if (cache.depth++ > 0) return;  // nested guard: slot already published
  if (!cache.claimed) {
    // First pin from this thread: claim a free slot with CAS.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      bool expected = false;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        cache.slot = i;
        cache.claimed = true;
        break;
      }
    }
    // More than kMaxThreads live pinning threads: crash loudly rather
    // than silently corrupt reclamation.
    if (!cache.claimed) std::abort();
  }
  // Publish the epoch we read under. seq_cst so this store orders against
  // the writer's reclaim scan in the single total order (see header).
  slots_[cache.slot].epoch.store(
      global_epoch_.load(std::memory_order_seq_cst), std::memory_order_seq_cst);
}

void EpochManager::Unpin() {
  CachedSlot& cache = FindOrAddCache(this, id_);
  if (--cache.depth > 0) return;
  slots_[cache.slot].epoch.store(0, std::memory_order_seq_cst);
}

std::uint64_t EpochManager::MinPinnedEpoch() const {
  std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochManager::Advance() {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
}

void EpochManager::Retire(std::function<void()> free_fn) {
  std::lock_guard<std::mutex> lock(retire_mu_);
  Deferred d;
  d.epoch = global_epoch_.load(std::memory_order_seq_cst);
  d.free_fn = std::move(free_fn);
  deferred_.push_back(std::move(d));
  ++retired_total_;
  Advance();
  ReclaimLocked();
}

std::size_t EpochManager::TryReclaim() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return ReclaimLocked();
}

std::size_t EpochManager::ReclaimLocked() {
  if (deferred_.empty()) return 0;
  const std::uint64_t min_pinned = MinPinnedEpoch();
  std::size_t freed = 0;
  std::vector<Deferred> kept;
  kept.reserve(deferred_.size());
  for (Deferred& d : deferred_) {
    if (d.epoch < min_pinned) {
      if (d.free_fn) d.free_fn();
      ++freed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  deferred_ = std::move(kept);
  reclaimed_total_ += freed;
  return freed;
}

void EpochManager::Quiesce() {
  for (;;) {
    Advance();
    TryReclaim();
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      if (deferred_.empty()) return;
    }
    std::this_thread::yield();
  }
}

std::size_t EpochManager::deferred_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return deferred_.size();
}

std::uint64_t EpochManager::retired_total() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_total_;
}

std::uint64_t EpochManager::reclaimed_total() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return reclaimed_total_;
}

std::size_t EpochManager::pinned_threads() const {
  std::size_t pinned = 0;
  for (const Slot& slot : slots_) {
    if (slot.epoch.load(std::memory_order_seq_cst) != 0) ++pinned;
  }
  return pinned;
}

std::size_t EpochManager::claimed_slots() const {
  std::size_t claimed = 0;
  for (const Slot& slot : slots_) {
    if (slot.claimed.load(std::memory_order_seq_cst)) ++claimed;
  }
  return claimed;
}

}  // namespace exec
}  // namespace ssr
