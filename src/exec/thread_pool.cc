#include "exec/thread_pool.h"

#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "obs/trace.h"

namespace ssr {
namespace exec {

namespace {

/// CPU time consumed by the calling thread, in seconds.
double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

std::size_t ResolveThreadCount(std::size_t num_threads) {
  if (num_threads > 0) return num_threads;
  if (const char* env = std::getenv("SSR_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

double JobStats::MakespanSeconds() const {
  double makespan = 0.0;
  for (double cpu : worker_cpu_seconds) {
    if (cpu > makespan) makespan = cpu;
  }
  return makespan;
}

double JobStats::TotalCpuSeconds() const {
  double total = 0.0;
  for (double cpu : worker_cpu_seconds) total += cpu;
  return total;
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_workers_(num_threads < 1 ? 1 : num_threads) {
  threads_.reserve(num_workers_ - 1);
  for (std::size_t w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerMain(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerMain(std::size_t worker) {
  // Published once: the thread's id is fixed for the pool's lifetime, so
  // every TraceSpan opened from this thread lands on its worker track.
  obs::SetCurrentWorkerId(static_cast<std::uint32_t>(worker));
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock,
                      [&] { return stopping_ || job_seq_ != seen_seq; });
      if (stopping_) return;
      seen_seq = job_seq_;
      job = job_;  // shared callable; invoking it concurrently is safe
    }
    job(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_remaining_;
    }
    job_done_.notify_one();
  }
}

void ThreadPool::RunOnAllWorkers(const std::function<void(std::size_t)>& fn) {
  busy_.store(true, std::memory_order_relaxed);
  last_job_ = JobStats{};
  last_job_.worker_cpu_seconds.assign(num_workers_, 0.0);
  const auto wall_start = std::chrono::steady_clock::now();
  // Per-worker CPU accounting wraps the user function; workers write
  // disjoint slots, so no synchronization is needed beyond job completion.
  double* cpu_slots = last_job_.worker_cpu_seconds.data();
  const auto wrapped = [&fn, cpu_slots](std::size_t worker) {
    const double cpu_before = ThreadCpuSeconds();
    fn(worker);
    cpu_slots[worker] = ThreadCpuSeconds() - cpu_before;
  };
  if (num_workers_ == 1) {
    wrapped(0);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = wrapped;
      ++job_seq_;
      workers_remaining_ = num_workers_ - 1;
    }
    job_ready_.notify_all();
    wrapped(0);
    std::unique_lock<std::mutex> lock(mu_);
    job_done_.wait(lock, [&] { return workers_remaining_ == 0; });
    job_ = nullptr;
  }
  last_job_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  busy_.store(false, std::memory_order_relaxed);
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) {
    last_job_ = JobStats{};
    last_job_.worker_cpu_seconds.assign(num_workers_, 0.0);
    return;
  }
  const std::size_t range = end - begin;
  std::size_t chunk = grain;
  if (chunk == 0) {
    // ~8 chunks per worker keeps round-robin shares even when per-index
    // cost varies; clamp to >= 1.
    chunk = range / (num_workers_ * 8);
    if (chunk == 0) chunk = 1;
  }
  // Static blocked round-robin: chunk c belongs to worker c % num_workers_.
  // A dynamic work-stealing cursor would balance better on a genuinely
  // parallel host, but on a core-starved one (CI) whichever worker the OS
  // runs first would drain most of the range, skewing the per-worker CPU
  // accounting that the modeled makespan is built from. The static schedule
  // makes each worker's share — and the makespan — a property of the job,
  // not of the host's scheduler.
  const std::size_t stride = chunk * num_workers_;
  RunOnAllWorkers([&](std::size_t worker) {
    for (std::size_t start = begin + worker * chunk; start < end;
         start += stride) {
      const std::size_t stop = start + chunk < end ? start + chunk : end;
      for (std::size_t i = start; i < stop; ++i) body(i, worker);
    }
  });
}

}  // namespace exec
}  // namespace ssr
