// Concurrent batch-query executor: fans a batch of (q, [σ1, σ2]) queries
// across a worker pool against an immutable SetSimilarityIndex. Each worker
// gets a private SetStore::ReadView (its own buffer pool + I/O cost model)
// and a private probe-scratch buffer, so the only shared state the workers
// touch is read-only index structure and relaxed-atomic instruments.
// Answers are identical to issuing the queries serially through
// SetSimilarityIndex::Query.
//
// Throughput is reported two ways, consistent with the repo's convention
// that absolute times come from measured CPU plus the simulated I/O model:
//   - wall_seconds / wall QPS: honest host wall clock (bounded by however
//     many physical cores the machine actually has), and
//   - modeled makespan / modeled QPS: max over workers of (thread CPU time
//     + simulated I/O time), the batch's runtime on a machine that really
//     runs `threads_used` workers concurrently against the modeled disk.

#ifndef SSR_EXEC_BATCH_EXECUTOR_H_
#define SSR_EXEC_BATCH_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/set_similarity_index.h"
#include "exec/thread_pool.h"
#include "obs/workload_observer.h"
#include "util/status.h"
#include "util/types.h"

namespace ssr {
namespace exec {

/// One query of a batch.
struct BatchQuery {
  ElementSet query;
  double sigma1 = 0.0;
  double sigma2 = 1.0;
};

struct BatchExecutorOptions {
  /// Worker threads: 0 = resolve from SSR_THREADS / hardware concurrency
  /// (ResolveThreadCount), 1 = serial.
  std::size_t num_threads = 0;

  /// Queries per scheduling chunk. 1 (default) gives the best balance for
  /// heterogeneous queries; raise it only if per-chunk overhead ever shows.
  std::size_t grain = 1;

  /// Buffer-pool pages per worker view; 0 = the store's configured
  /// capacity per view.
  std::size_t view_buffer_pool_pages = 0;

  /// Workload capture target (not owned; may be null). Each worker counts
  /// into a private unscoped observer shaped like this one, and Run merges
  /// them in (MergeFrom) — exactly the QueryStats per-worker pattern. The
  /// sampled side channels attached to the target (shadow oracle, query
  /// log) are fed in a serial post-batch pass over the answers in input
  /// order, so their 1-in-N decimation stays deterministic regardless of
  /// worker scheduling. Must outlive the Run.
  obs::WorkloadObserver* workload_observer = nullptr;
};

/// The outcome of one BatchExecutor::Run.
struct BatchResult {
  /// Per-query status/result, in input order. results[i] is meaningful iff
  /// statuses[i].ok().
  std::vector<Status> statuses;
  std::vector<QueryResult> results;

  std::size_t threads_used = 0;
  std::size_t queries = 0;
  std::size_t failed = 0;  // queries whose status is not OK

  /// Host wall clock for the whole batch and its QPS.
  double wall_seconds = 0.0;
  double wall_qps = 0.0;

  /// Per-worker totals: thread CPU time and simulated I/O time.
  std::vector<double> worker_cpu_seconds;
  std::vector<double> worker_io_seconds;

  /// Modeled batch runtime: max over workers of (cpu + simulated I/O);
  /// modeled_qps = queries / that. Shows the parallel speedup even when
  /// the host has fewer cores than workers.
  double modeled_makespan_seconds = 0.0;
  double modeled_qps = 0.0;
};

/// Runs batches of queries concurrently against one immutable index. The
/// index (and its store) must not be mutated while a Run is in flight.
class BatchExecutor {
 public:
  explicit BatchExecutor(const SetSimilarityIndex& index,
                         BatchExecutorOptions options = {});

  /// Shares a caller-owned pool instead of spawning a private one
  /// (options.num_threads is then ignored). The sharded query router uses
  /// this to schedule every shard's batch on one pool. `pool` must outlive
  /// the executor, and Run must not be issued from inside one of the pool's
  /// own jobs (ThreadPool is not reentrant).
  BatchExecutor(const SetSimilarityIndex& index, ThreadPool& pool,
                BatchExecutorOptions options = {});

  /// Executes every query (order-preserving results) and blocks until done.
  BatchResult Run(const std::vector<BatchQuery>& queries);

  std::size_t num_threads() const { return pool_->size(); }

 private:
  const SetSimilarityIndex* index_;
  BatchExecutorOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null when sharing
  ThreadPool* pool_;                        // the pool Run schedules on
};

}  // namespace exec
}  // namespace ssr

#endif  // SSR_EXEC_BATCH_EXECUTOR_H_
