// Execution subsystem: a fixed-size worker pool with a blocking
// ParallelFor. The rest of the codebase stays single-threaded by default;
// the two opt-in users are the parallel index build
// (SetSimilarityIndex::Build with IndexOptions::num_threads != 1) and the
// concurrent batch-query executor (exec::BatchExecutor).
//
// Thread-count resolution is uniform across both users: an explicit n > 0
// wins, n == 0 consults the SSR_THREADS environment variable and falls back
// to std::thread::hardware_concurrency(). A resolved count of 1 means no
// threads are ever spawned and every job runs inline on the caller — the
// serial behavior of the pre-exec codebase, bit for bit.
//
// Worker identity: while a job runs, each participating thread (the caller
// is always worker 0) publishes its worker id through
// obs::SetCurrentWorkerId, so TraceSpans opened inside the job land on
// per-worker tracks in the Chrome-trace export.

#ifndef SSR_EXEC_THREAD_POOL_H_
#define SSR_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssr {
namespace exec {

/// Resolves a `num_threads` knob to a concrete worker count (always >= 1):
/// n > 0 is taken as-is; n == 0 means the SSR_THREADS environment variable
/// when set to a positive integer, otherwise hardware_concurrency().
std::size_t ResolveThreadCount(std::size_t num_threads);

/// Per-job execution statistics: one entry per worker that participated.
/// cpu_seconds is thread CPU time (CLOCK_THREAD_CPUTIME_ID), so the
/// makespan — the critical-path length max_w(cpu_w) — measures parallel
/// balance independently of how many physical cores the host exposes.
struct JobStats {
  std::vector<double> worker_cpu_seconds;
  double wall_seconds = 0.0;

  /// The slowest worker's CPU time: the job's modeled parallel runtime.
  double MakespanSeconds() const;
  /// Sum over workers: the job's total CPU cost (serial-equivalent time).
  double TotalCpuSeconds() const;
};

/// A fixed-size pool of `size() - 1` background threads plus the calling
/// thread. Jobs are collective: every worker runs the same function once,
/// or pulls ParallelFor chunks from a shared cursor. One job runs at a
/// time; jobs must not be issued from inside a job (not reentrant).
class ThreadPool {
 public:
  /// `num_threads` is a resolved count (>= 1; callers that accept a 0 =
  /// auto knob resolve it with ResolveThreadCount first). A pool of size 1
  /// spawns nothing and runs jobs inline.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread.
  std::size_t size() const { return num_workers_; }

  /// Runs `fn(worker)` exactly once on every worker (0 = the calling
  /// thread) and blocks until all return.
  void RunOnAllWorkers(const std::function<void(std::size_t)>& fn);

  /// Runs `body(i, worker)` for every i in [begin, end), distributing
  /// contiguous chunks of `grain` indices (0 = pick a chunk size from the
  /// range and worker count) over all workers in static round-robin order:
  /// chunk c always belongs to worker c % size(). Blocks until every index
  /// has been processed. The static schedule makes each worker's share
  /// deterministic and independent of host scheduling — the property the
  /// modeled makespan (JobStats) relies on. Side effects must be safe under
  /// concurrent workers — index-disjoint writes, atomics, or per-worker
  /// state indexed by `worker`.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// Statistics of the most recent RunOnAllWorkers/ParallelFor call.
  const JobStats& last_job_stats() const { return last_job_; }

  /// Collective jobs completed over the pool's lifetime (a ParallelFor
  /// counts as one job). Occupancy signal for /statusz.
  std::uint64_t jobs_run() const {
    return jobs_run_.load(std::memory_order_relaxed);
  }
  /// True while a collective job is executing.
  bool busy() const { return busy_.load(std::memory_order_relaxed); }

 private:
  void WorkerMain(std::size_t worker);

  const std::size_t num_workers_;
  std::vector<std::thread> threads_;  // num_workers_ - 1 entries
  JobStats last_job_;
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<bool> busy_{false};

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  std::function<void(std::size_t)> job_;  // null = no pending job
  std::uint64_t job_seq_ = 0;             // bumps per job (wakeup token)
  std::size_t workers_remaining_ = 0;     // workers yet to finish current job
  bool stopping_ = false;
};

}  // namespace exec
}  // namespace ssr

#endif  // SSR_EXEC_THREAD_POOL_H_
