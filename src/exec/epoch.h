// Epoch-based reclamation for the concurrent read path. Readers pin the
// current global epoch with an `EpochGuard` (RAII) before walking any
// copy-on-write index structure; writers that swap a published pointer
// retire the old object with `Retire`, and the manager frees it only once
// every reader slot has observed a strictly newer epoch — so a reader that
// pinned before the swap can keep dereferencing the old object for as long
// as it stays pinned.
//
// The design is the classic three-part EBR scheme specialized for this
// codebase's write model (all writers of one index serialize on a mutex,
// readers are wait-free):
//
//   * a global epoch counter, advanced by writers after each retire batch,
//   * a fixed array of per-thread slots — each thread lazily claims one on
//     its first pin and publishes the epoch it is reading under,
//   * per-manager deferred retire lists tagged with the epoch at retire
//     time; `TryReclaim` frees every entry whose tag is older than the
//     minimum epoch any pinned slot still publishes.
//
// Memory ordering: slot pin/unpin stores and the reclaim scan are
// seq_cst, so a reader's pin and a writer's min-epoch scan order against
// each other without standalone fences (which TSan does not model).
// Writers are expected to be rare relative to reads; all writer-side cost
// (retire bookkeeping, reclaim scans) is mutex-guarded and off the read
// path entirely.

#ifndef SSR_EXEC_EPOCH_H_
#define SSR_EXEC_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace ssr {
namespace exec {

/// Coordinates epoch pinning and deferred reclamation. One process-wide
/// Default() instance serves every index; isolated instances exist for
/// tests that need to observe reclaim timing deterministically.
///
/// Thread-safety: Pin/Unpin (via EpochGuard) are wait-free and may be
/// called from any thread. Retire/Advance/TryReclaim/Quiesce are
/// internally mutex-guarded; they are cheap enough to call from every
/// write, and writers of one structure are serialized anyway.
class EpochManager {
 public:
  /// Hard cap on concurrently pinning threads. Slots are claimed lazily
  /// (first pin) and released at thread exit while the manager is live, so
  /// this bounds *live* threads that have ever pinned, not total threads
  /// over the process lifetime. The 257th concurrent pinning thread aborts
  /// loudly rather than silently corrupting reclamation; claimed_slots()
  /// tracks how close a deployment runs to the cap.
  static constexpr std::size_t kMaxThreads = 256;

  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The process-wide manager every index uses by default. Never destroyed
  /// (leaked like the metrics registry) so retire callbacks registered by
  /// static-lifetime objects stay safe during teardown.
  static EpochManager& Default();

  /// Defers `free_fn` until every epoch pinned at call time has been
  /// released. Runs `free_fn` inline if no thread is currently pinned and
  /// the deferred list is empty (the quiescent fast path). Amortizes a
  /// reclaim scan over the deferred list on every call.
  void Retire(std::function<void()> free_fn);

  /// Bumps the global epoch. Called internally by Retire; exposed for
  /// tests that drive the lifecycle by hand.
  void Advance();

  /// One reclaim pass: frees every deferred entry retired strictly before
  /// the oldest pinned epoch. Returns the number of entries freed.
  std::size_t TryReclaim();

  /// Advance + reclaim until the deferred list drains. Requires that no
  /// thread holds a pin forever; callers use it at shutdown or between
  /// test phases. Must not be called while the calling thread holds an
  /// EpochGuard (it would wait on itself).
  void Quiesce();

  /// Observability for tests and /metrics.
  std::uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }
  std::size_t deferred_count() const;
  std::uint64_t retired_total() const;
  std::uint64_t reclaimed_total() const;
  /// Number of slots currently publishing a pinned epoch.
  std::size_t pinned_threads() const;
  /// Number of slots claimed by live threads (pinned or not). Claims are
  /// released at thread exit, so this tracks the kMaxThreads headroom.
  std::size_t claimed_slots() const;

 private:
  friend class EpochGuard;
  friend struct ThreadSlotCache;

  struct alignas(64) Slot {
    /// 0 = unpinned; otherwise the epoch the owning thread reads under.
    std::atomic<std::uint64_t> epoch{0};
    /// Claimed by a live thread (slot ownership, not pin state).
    std::atomic<bool> claimed{false};
  };

  struct Deferred {
    std::uint64_t epoch = 0;
    std::function<void()> free_fn;
  };

  /// Pin/unpin for EpochGuard. Re-entrant: nested guards share the slot
  /// and only the outermost one publishes/clears the epoch.
  void Pin();
  void Unpin();

  /// Returns a dead thread's claimed slot to the free pool. Called only
  /// from the thread-exit cache destructor, under the live-manager
  /// registry lock (so the manager cannot be mid-destruction).
  void ReleaseSlot(std::size_t slot);

  /// Minimum epoch over all pinned slots; ~0 when nothing is pinned.
  std::uint64_t MinPinnedEpoch() const;

  /// Reclaim pass with retire_mu_ already held.
  std::size_t ReclaimLocked();

  const std::uint64_t id_;  // process-unique, keys the thread slot cache
  std::atomic<std::uint64_t> global_epoch_{1};
  std::vector<Slot> slots_;

  mutable std::mutex retire_mu_;
  std::vector<Deferred> deferred_;
  std::uint64_t retired_total_ = 0;
  std::uint64_t reclaimed_total_ = 0;
};

/// RAII epoch pin. Every reader of a copy-on-write structure holds one for
/// the duration of its traversal; construction publishes the current
/// global epoch in this thread's slot, destruction clears it. Nesting is
/// cheap (a thread-local depth counter); only the outermost guard touches
/// the slot.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager = EpochManager::Default())
      : manager_(&manager) {
    manager_->Pin();
  }
  ~EpochGuard() { manager_->Unpin(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
};

}  // namespace exec
}  // namespace ssr

#endif  // SSR_EXEC_EPOCH_H_
