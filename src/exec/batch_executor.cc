#include "exec/batch_executor.h"

#include <algorithm>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ssr {
namespace exec {

BatchExecutor::BatchExecutor(const SetSimilarityIndex& index,
                             BatchExecutorOptions options)
    : index_(&index),
      options_(options),
      owned_pool_(std::make_unique<ThreadPool>(
          ResolveThreadCount(options.num_threads))),
      pool_(owned_pool_.get()) {}

BatchExecutor::BatchExecutor(const SetSimilarityIndex& index, ThreadPool& pool,
                             BatchExecutorOptions options)
    : index_(&index), options_(options), pool_(&pool) {}

BatchResult BatchExecutor::Run(const std::vector<BatchQuery>& queries) {
  static obs::Counter* const batches =
      obs::MetricsRegistry::Default().GetCounter("ssr_exec_batches_total");
  static obs::Counter* const batch_queries = obs::MetricsRegistry::Default()
      .GetCounter("ssr_exec_batch_queries_total");
  batches->Increment();
  batch_queries->Add(queries.size());

  const std::size_t workers = pool_->size();
  BatchResult out;
  out.threads_used = workers;
  out.queries = queries.size();
  out.statuses.assign(queries.size(), Status::OK());
  out.results.resize(queries.size());

  obs::TraceSpan span("batch");
  span.Tag("queries", static_cast<std::uint64_t>(queries.size()));
  span.Tag("workers", static_cast<std::uint64_t>(workers));

  // Per-worker isolation: a private store view (buffer pool + I/O model)
  // and a private probe-scratch buffer each. Built fresh per Run so a
  // batch's I/O accounting starts from zero.
  std::vector<SetStore::ReadView> views;
  views.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    views.emplace_back(index_->store(), options_.view_buffer_pool_pages);
  }
  std::vector<std::vector<SetId>> scratch(workers);

  // Per-worker workload observers, shaped like the merge target so the
  // threshold/FI bins line up. Unscoped: pure counters, no registry churn
  // on the hot path.
  obs::WorkloadObserver* const target = options_.workload_observer;
  std::vector<std::unique_ptr<obs::WorkloadObserver>> worker_observers;
  if (target != nullptr) {
    obs::WorkloadObserverOptions shape = target->options();
    shape.metrics_scope.clear();
    worker_observers.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_observers.push_back(
          std::make_unique<obs::WorkloadObserver>(shape));
    }
  }

  pool_->ParallelFor(
      0, queries.size(), options_.grain,
      [&](std::size_t i, std::size_t worker) {
        const BatchQuery& q = queries[i];
        auto r = index_->QueryThrough(views[worker], q.query, q.sigma1,
                                      q.sigma2, &scratch[worker]);
        if (r.ok()) {
          out.results[i] = std::move(r).value();
          if (target != nullptr) {
            obs::WorkloadObserver& local = *worker_observers[worker];
            const QueryStats& stats = out.results[i].stats;
            local.CountQuery(q.sigma1, q.sigma2, q.query.size());
            for (const auto& p : stats.fi_probes) {
              local.CountFiProbe(p.fi, p.bucket_accesses, p.sids, p.failed);
            }
          }
        } else {
          out.statuses[i] = r.status();
        }
      });

  if (target != nullptr) {
    for (const auto& local : worker_observers) target->MergeFrom(*local);
    // Sampled side channels run serially in input order, off the parallel
    // section: deterministic decimation, and the shadow oracle's scans
    // never contend with live workers.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!out.statuses[i].ok()) continue;
      target->OfferSample(queries[i].query, queries[i].sigma1,
                          queries[i].sigma2, out.results[i].sids,
                          out.results[i].stats.candidates);
    }
    target->UpdateGauges();
  }

  const JobStats& job = pool_->last_job_stats();
  out.wall_seconds = job.wall_seconds;
  out.worker_cpu_seconds = job.worker_cpu_seconds;
  out.worker_io_seconds.resize(workers, 0.0);
  const IoCostParams& io_params = index_->store().io().params();
  for (std::size_t w = 0; w < workers; ++w) {
    out.worker_io_seconds[w] =
        views[w].io_stats().SimulatedSeconds(io_params);
  }
  for (const Status& s : out.statuses) {
    if (!s.ok()) ++out.failed;
  }

  // The modeled runtime of the batch is its critical path: the busiest
  // worker's CPU plus the simulated time of the I/O that worker issued.
  for (std::size_t w = 0; w < workers; ++w) {
    out.modeled_makespan_seconds =
        std::max(out.modeled_makespan_seconds,
                 out.worker_cpu_seconds[w] + out.worker_io_seconds[w]);
  }
  if (out.wall_seconds > 0.0) {
    out.wall_qps = static_cast<double>(out.queries) / out.wall_seconds;
  }
  if (out.modeled_makespan_seconds > 0.0) {
    out.modeled_qps =
        static_cast<double>(out.queries) / out.modeled_makespan_seconds;
  }
  span.Tag("failed", static_cast<std::uint64_t>(out.failed));
  span.Tag("modeled_qps", out.modeled_qps);
  return out;
}

}  // namespace exec
}  // namespace ssr
